package hosminer_test

import (
	"math/rand"

	"repro/internal/lattice"
)

func experimentsRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func latticeFresh(d int) (*lattice.Tracker, error) { return lattice.NewTracker(d) }
