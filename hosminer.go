// Package hosminer is the public API of the HOS-Miner reproduction
// (Zhang, Lou, Ling, Wang: "HOS-Miner: A System for Detecting
// Outlying Subspaces of High-dimensional Data", VLDB 2004).
//
// Given a dataset and a query point, HOS-Miner answers the
// "outlier → spaces" question: in which subspaces of the attribute
// space is this point an outlier? A point p is an outlier in subspace
// s when its Outlying Degree OD(p, s) — the sum of distances to its k
// nearest neighbours within s — reaches a threshold T. OD is monotone
// along the subspace lattice, which HOS-Miner exploits with upward and
// downward pruning, a Total-Saving-Factor-driven dynamic search, a
// sample-based learning phase that estimates pruning probabilities,
// and a refinement filter that reports only the minimal outlying
// subspaces.
//
// Quickstart:
//
//	ds, truth, _ := hosminer.GenerateSynthetic(hosminer.SyntheticConfig{
//		N: 1000, D: 8, NumOutliers: 5, Seed: 1,
//	})
//	m, _ := hosminer.New(ds, hosminer.Config{K: 5, TQuantile: 0.95, SampleSize: 20, Seed: 1})
//	res, _ := m.OutlyingSubspacesOfPoint(truth.Outliers[0].Index)
//	fmt.Println(res.Minimal) // e.g. [[2,5]]
//
// For serving: NewServer (and the hosserve command) wrap a
// preprocessed Miner in a concurrent HTTP/JSON query service with a
// result cache — see README.md and DESIGN.md §4.
package hosminer

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Subspace identifies a subset of the attribute dimensions (0-based)
// as a bitmask. See NewSubspace and ParseSubspace.
type Subspace = subspace.Mask

// NewSubspace builds a Subspace from explicit dimension indices.
func NewSubspace(dims ...int) Subspace { return subspace.New(dims...) }

// ParseSubspace parses "[0,2]" (or "0,2") into a Subspace.
func ParseSubspace(s string) (Subspace, error) { return subspace.Parse(s) }

// FullSubspace returns the subspace of all d dimensions.
func FullSubspace(d int) Subspace { return subspace.Full(d) }

// MaxDim is the largest supported dataset dimensionality.
const MaxDim = subspace.MaxDim

// Dataset is an immutable collection of d-dimensional points.
type Dataset = vector.Dataset

// FromRows builds a Dataset from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Dataset, error) { return vector.FromRows(rows) }

// Metric selects the distance function.
type Metric = vector.Metric

// Distance metrics. L2 (Euclidean) is the paper's default.
const (
	L2   = vector.L2
	L1   = vector.L1
	LInf = vector.LInf
)

// Config parameterises a Miner; see the field documentation in
// internal/core. Zero values select sensible defaults except K and
// the threshold (set either T or TQuantile).
type Config = core.Config

// Policy selects the search's layer ordering.
type Policy = core.Policy

// Search ordering policies. PolicyTSF is HOS-Miner's dynamic search;
// the others exist for ablation studies.
const (
	PolicyTSF      = core.PolicyTSF
	PolicyBottomUp = core.PolicyBottomUp
	PolicyTopDown  = core.PolicyTopDown
	PolicyRandom   = core.PolicyRandom
)

// Backend selects the k-NN engine.
type Backend = core.Backend

// k-NN backends. BackendAuto picks the X-tree for large datasets.
const (
	BackendAuto   = core.BackendAuto
	BackendLinear = core.BackendLinear
	BackendXTree  = core.BackendXTree
)

// Miner is the HOS-Miner system over one dataset.
type Miner = core.Miner

// QueryResult carries the outlying subspaces of one query point plus
// search accounting.
type QueryResult = core.QueryResult

// ScanOptions tunes Miner.ScanAll, the whole-dataset sweep.
type ScanOptions = core.ScanOptions

// ScanHit is one outlying point found by Miner.ScanAll.
type ScanHit = core.ScanHit

// State is the serializable preprocessing outcome (threshold +
// priors); see Miner.ExportState / ImportState and the
// SaveStateFile / LoadStateFile helpers.
type State = core.State

// New builds a Miner for the dataset. Call Preprocess to index and
// learn eagerly, or query directly (preprocessing then runs lazily on
// first use).
func New(ds *Dataset, cfg Config) (*Miner, error) { return core.NewMiner(ds, cfg) }

// MinimalSubspaces applies the paper's §3.4 refinement filter to an
// arbitrary set of outlying subspaces.
func MinimalSubspaces(outlying []Subspace) []Subspace { return core.MinimalSubspaces(outlying) }

// SyntheticConfig parameterises GenerateSynthetic.
type SyntheticConfig = datagen.SyntheticConfig

// GroundTruth records planted outliers and their true outlying
// subspaces.
type GroundTruth = datagen.GroundTruth

// PlantedOutlier is one entry of a GroundTruth.
type PlantedOutlier = datagen.PlantedOutlier

// GenerateSynthetic builds a clustered dataset with planted subspace
// outliers and known ground truth.
func GenerateSynthetic(cfg SyntheticConfig) (*Dataset, GroundTruth, error) {
	return datagen.GenerateSynthetic(cfg)
}

// GenerateAthlete builds the athlete-training pseudo-real dataset
// (see DESIGN.md on real-data substitution).
func GenerateAthlete(n, numDeviants int, seed int64) (*Dataset, GroundTruth, error) {
	return datagen.Athlete(n, numDeviants, seed)
}

// GenerateMedical builds the medical-labs pseudo-real dataset.
func GenerateMedical(n, numDeviants int, seed int64) (*Dataset, GroundTruth, error) {
	return datagen.Medical(n, numDeviants, seed)
}

// GenerateNBA builds the season-statistics pseudo-real dataset.
func GenerateNBA(n, numDeviants int, seed int64) (*Dataset, GroundTruth, error) {
	return datagen.NBA(n, numDeviants, seed)
}

// LoadCSV reads a dataset from a CSV file (optional header row).
func LoadCSV(path string) (*Dataset, error) { return dataio.LoadFile(path) }

// SaveCSV writes a dataset to a CSV file with a header row.
func SaveCSV(path string, ds *Dataset) error { return dataio.SaveFile(path, ds) }

// MatchMode defines how predicted subspaces are matched against
// ground truth when scoring effectiveness.
type MatchMode = metrics.MatchMode

// Match modes for Score.
const (
	MatchExact   = metrics.MatchExact
	MatchSubset  = metrics.MatchSubset
	MatchOverlap = metrics.MatchOverlap
)

// EvaluatorPool recycles per-goroutine OD evaluators for concurrent
// querying; see Miner.QueryWith and the concurrency contract on
// Miner.
type EvaluatorPool = core.EvaluatorPool

// BatchQuery is one item of a Miner.QueryBatch: a dataset row or an
// external point. Build items with BatchIndex / BatchPoint.
type BatchQuery = core.BatchQuery

// BatchIndex makes a BatchQuery for dataset row idx.
func BatchIndex(idx int) BatchQuery { return core.BatchIndex(idx) }

// BatchPoint makes a BatchQuery for an external point.
func BatchPoint(p []float64) BatchQuery { return core.BatchPoint(p) }

// BatchOptions tunes Miner.QueryBatch (fan-out, shared OD cache
// bound, evaluator pool); the zero value selects the documented
// defaults.
type BatchOptions = core.BatchOptions

// BatchResult is the outcome of a Miner.QueryBatch: per-item results
// in input order plus shared-cache accounting. Many queries evaluated
// as one batch share a bounded memo of OD evaluations, so duplicated
// points across the batch pay for each distinct (point, subspace)
// evaluation once — see DESIGN.md §4.5.
type BatchResult = core.BatchResult

// BatchItemResult is one item's outcome inside a BatchResult.
type BatchItemResult = core.BatchItemResult

// BatchCacheStats summarises a batch's shared OD cache work.
type BatchCacheStats = core.BatchCacheStats

// ErrNotPreprocessed is returned by Miner.QueryWith before Preprocess
// or ImportState has completed.
var ErrNotPreprocessed = core.ErrNotPreprocessed

// Server is the HTTP/JSON query service over one preprocessed Miner
// (the library behind the hosserve command).
type Server = server.Server

// ServerOptions tunes NewServer (timeouts, body limit, cache size,
// scan bounds); the zero value selects the documented defaults.
type ServerOptions = server.Options

// ServerStats is the counter snapshot served at GET /stats.
type ServerStats = server.StatsSnapshot

// NewServer wraps the Miner in the HTTP service, preprocessing it if
// the caller has not. Serve the result with http.Server on
// srv.Handler().
func NewServer(m *Miner, opts ServerOptions) (*Server, error) { return server.New(m, opts) }

// PRF bundles precision, recall and F1.
type PRF = metrics.PRF

// Score compares predicted subspaces against ground truth.
func Score(predicted, truth []Subspace, mode MatchMode) PRF {
	return metrics.Score(predicted, truth, mode)
}
