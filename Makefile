# The lint target is the exact composition CI's lint job runs — if
# `make lint` is clean, the lint job is green. staticcheck is the one
# external tool; CI pins it to 2024.1.1 and `make lint` degrades to a
# warning when it is not installed (the in-repo checks still run).

GO ?= go
STATICCHECK_VERSION := 2024.1.1

.PHONY: lint build test cover

lint:
	$(GO) vet ./...
	$(GO) run ./tools/hosvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# cover reproduces CI's per-package coverage gate.
cover:
	$(GO) test -race -coverprofile=coverage.out ./...
	$(GO) run ./tools/covgate -profile coverage.out -min 85 \
		repro/internal/core repro/internal/server repro/internal/shard \
		repro/internal/jobs repro/internal/snapshot repro/internal/overload \
		repro/internal/wal \
		repro/internal/analysis repro/internal/analysis/load \
		repro/internal/analysis/antest repro/internal/analysis/viewpin \
		repro/internal/analysis/durability repro/internal/analysis/statslock \
		repro/internal/analysis/hotpath repro/internal/analysis/determinism \
		repro/internal/analysis/lostcancel \
		repro/tools/hosvet repro/tools/covgate repro/tools/benchjson
