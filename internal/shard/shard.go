// Package shard partitions a dataset across N shards, each with its
// own k-NN backend index, and answers neighbourhood queries by
// scatter-gather: every (point, subspace) probe fans out to all shards
// in parallel, each shard returns its local k nearest neighbours, and
// the partials are merged into the exact global answer.
//
// The merge is exact, not approximate: the global k nearest
// neighbours of a query each live in some shard, and within that
// shard nothing can outrank them, so each one appears in its shard's
// local top-k. The union of the per-shard top-k lists therefore
// contains the global top-k, and selecting the k best by the same
// (distance, index) order every Searcher already guarantees
// reproduces the single-index answer byte for byte — both backends
// compute a point's distance with the identical float operations
// regardless of which shard holds it. Since the Outlying Degree (§2)
// is the distance sum over exactly that neighbour set, a sharded
// OD equals the unsharded OD bit for bit; internal/conformance
// asserts this across shard counts, partitioners and policies.
package shard

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
	"repro/internal/xtree"
)

// Partitioner selects how dataset rows are assigned to shards. Both
// strategies are deterministic: the same dataset and shard count
// always produce the same partition.
type Partitioner uint8

const (
	// RoundRobin deals rows to shards in turn (row i → shard i mod N):
	// perfectly balanced and oblivious to the data.
	RoundRobin Partitioner = iota
	// HashPoint assigns each row by an FNV-1a hash of its coordinate
	// bit patterns, so a point's shard is a function of its value, not
	// its position — stable under row reordering, at the cost of
	// statistical (not exact) balance.
	HashPoint
)

// String names the partitioner (the spelling ParsePartitioner accepts).
func (p Partitioner) String() string {
	switch p {
	case RoundRobin:
		return "roundrobin"
	case HashPoint:
		return "hash"
	default:
		return fmt.Sprintf("Partitioner(%d)", uint8(p))
	}
}

// Valid reports whether p is a defined partitioner.
func (p Partitioner) Valid() bool { return p <= HashPoint }

// ParsePartitioner parses the CLI spelling of a Partitioner — the
// inverse of Partitioner.String.
func ParsePartitioner(s string) (Partitioner, error) {
	switch s {
	case "roundrobin", "round-robin":
		return RoundRobin, nil
	case "hash":
		return HashPoint, nil
	default:
		return 0, fmt.Errorf("shard: unknown partitioner %q (have roundrobin|hash)", s)
	}
}

// Assign returns the shard in [0, shards) for dataset row idx with
// coordinates point.
func (p Partitioner) Assign(idx int, point []float64, shards int) int {
	if shards <= 1 {
		return 0
	}
	switch p {
	case HashPoint:
		const (
			offset64 = 14695981039346656037
			prime64  = 1099511628211
		)
		h := uint64(offset64)
		for _, v := range point {
			bits := math.Float64bits(v)
			for b := 0; b < 64; b += 8 {
				h = (h ^ (bits >> b & 0xff)) * prime64
			}
		}
		return int(h % uint64(shards))
	default: // RoundRobin
		return idx % shards
	}
}

// IndexKind selects the per-shard k-NN index, mirroring the engine
// backends of internal/core but applied shard by shard.
type IndexKind uint8

const (
	// IndexAuto builds an X-tree for shards at or above
	// AutoXTreeThreshold points and a linear scan below it.
	IndexAuto IndexKind = iota
	// IndexLinear always scans.
	IndexLinear
	// IndexXTree always builds an X-tree per shard.
	IndexXTree
)

// AutoXTreeThreshold is the per-shard size at which IndexAuto switches
// from a linear scan to an X-tree.
const AutoXTreeThreshold = 512

// Config parameterises an Engine.
type Config struct {
	// Shards is the partition width (≥ 1; 1 degrades to a single
	// index behind the scatter-gather plumbing).
	Shards int
	// Partitioner assigns rows to shards (default RoundRobin).
	Partitioner Partitioner
	// Metric is the distance metric shared by every shard index.
	Metric vector.Metric
	// Index selects the per-shard backend (default IndexAuto).
	Index IndexKind
}

// partition is one shard: a copied sub-dataset, its local→global row
// mapping, and the immutable index built over it (tree == nil means
// linear scan). Everything here is read-only after NewEngine.
type partition struct {
	sub    *vector.Dataset
	global []int       // local row → global row
	tree   *xtree.Tree // non-nil when this shard is X-tree backed
}

// shardCounters aggregates work across all Searchers, per shard.
type shardCounters struct {
	queries        atomic.Int64
	pointsExamined atomic.Int64
	nodesVisited   atomic.Int64
}

// Engine is the immutable heart of the sharded backend: the partition
// of one dataset plus the per-shard indexes. Build one Engine per
// dataset, then give each worker goroutine its own Searcher via
// NewSearcher — the Engine itself is safe for any number of
// concurrent readers.
type Engine struct {
	ds      *vector.Dataset
	cfg     Config
	parts   []*partition
	shardOf []int32 // global row → owning shard
	localOf []int32 // global row → local row within its shard
	work    []shardCounters
	// parallel is the fan-out decision, taken once at construction:
	// probing it per KNN call via runtime.GOMAXPROCS(0) would take the
	// scheduler lock on the hottest path in the system.
	parallel bool
}

// NewEngine partitions ds and builds one index per shard.
func NewEngine(ds *vector.Dataset, cfg Config) (*Engine, error) {
	return newEngine(ds, cfg, nil)
}

// NewEngineFromEncoded is NewEngine with warm-started per-shard
// indexes: encoded[s] holds the xtree.Encode bytes of shard s's tree
// (nil for shards the configuration backs with a linear scan). The
// partition itself is recomputed — it is a pure function of (dataset,
// config) — and each provided tree is decoded against its shard's
// sub-dataset and validated, so a snapshot restore skips the index
// build but not the integrity checks. A tree supplied for a shard the
// configuration would not index (or vice versa) is a shape mismatch
// and fails, as does a decoded tree whose metric disagrees with the
// engine's.
func NewEngineFromEncoded(ds *vector.Dataset, cfg Config, encoded [][]byte) (*Engine, error) {
	if encoded == nil {
		return nil, fmt.Errorf("shard: nil encoded tree set")
	}
	return newEngine(ds, cfg, encoded)
}

func newEngine(ds *vector.Dataset, cfg Config, encoded [][]byte) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("shard: nil dataset")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: %d shards, need ≥ 1", cfg.Shards)
	}
	if cfg.Shards > ds.N() {
		return nil, fmt.Errorf("shard: %d shards exceed the %d dataset points", cfg.Shards, ds.N())
	}
	if !cfg.Partitioner.Valid() {
		return nil, fmt.Errorf("shard: invalid partitioner %v", cfg.Partitioner)
	}
	if !cfg.Metric.Valid() {
		return nil, fmt.Errorf("shard: invalid metric %v", cfg.Metric)
	}
	if cfg.Index > IndexXTree {
		return nil, fmt.Errorf("shard: invalid index kind %v", cfg.Index)
	}
	if encoded != nil && len(encoded) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d encoded trees for %d shards", len(encoded), cfg.Shards)
	}

	n, d := ds.N(), ds.Dim()
	e := &Engine{
		ds:       ds,
		cfg:      cfg,
		parts:    make([]*partition, cfg.Shards),
		shardOf:  make([]int32, n),
		localOf:  make([]int32, n),
		work:     make([]shardCounters, cfg.Shards),
		parallel: cfg.Shards > 1 && runtime.GOMAXPROCS(0) > 1,
	}

	rows := make([][]int, cfg.Shards)
	for i := 0; i < n; i++ {
		s := cfg.Partitioner.Assign(i, ds.Point(i), cfg.Shards)
		e.shardOf[i] = int32(s)
		e.localOf[i] = int32(len(rows[s]))
		rows[s] = append(rows[s], i)
	}

	for s := range e.parts {
		flat := make([]float64, 0, len(rows[s])*d)
		for _, g := range rows[s] {
			flat = append(flat, ds.Point(g)...)
		}
		sub, err := vector.NewDataset(flat, len(rows[s]), d)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		p := &partition{sub: sub, global: rows[s]}
		useTree := cfg.Index == IndexXTree ||
			(cfg.Index == IndexAuto && sub.N() >= AutoXTreeThreshold)
		switch {
		case encoded != nil && useTree != (len(encoded[s]) > 0):
			// The warm-start set must mirror exactly the shards this
			// configuration indexes: a missing or surplus tree means the
			// snapshot was taken under a different topology.
			return nil, fmt.Errorf("shard %d: encoded index shape mismatch (tree expected: %v)", s, useTree)
		case encoded != nil && useTree:
			t, err := xtree.Decode(bytes.NewReader(encoded[s]), sub)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
			if t.Metric() != cfg.Metric {
				return nil, fmt.Errorf("shard %d: encoded tree metric %v, engine uses %v", s, t.Metric(), cfg.Metric)
			}
			p.tree = t
		case useTree:
			t, err := xtree.Build(sub, cfg.Metric, xtree.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
			p.tree = t
		}
		e.parts[s] = p
	}
	return e, nil
}

// EncodedTrees serializes every shard's X-tree for snapshotting:
// entry s is the xtree.Encode bytes of shard s's index, or nil when
// the shard is backed by a linear scan. NewEngineFromEncoded accepts
// the result, given the same dataset and configuration.
func (e *Engine) EncodedTrees() ([][]byte, error) {
	out := make([][]byte, len(e.parts))
	for s, p := range e.parts {
		if p.tree == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.tree.Encode(&buf); err != nil {
			return nil, fmt.Errorf("shard %d: encoding tree: %w", s, err)
		}
		out[s] = buf.Bytes()
	}
	return out, nil
}

// NumShards returns the partition width.
func (e *Engine) NumShards() int { return len(e.parts) }

// ShardSizes returns the number of points resident in each shard.
func (e *Engine) ShardSizes() []int {
	out := make([]int, len(e.parts))
	for i, p := range e.parts {
		out[i] = p.sub.N()
	}
	return out
}

// ShardOf returns the shard owning global row idx.
func (e *Engine) ShardOf(idx int) int { return int(e.shardOf[idx]) }

// Config returns the Engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// ShardStats returns cumulative per-shard work counters aggregated
// across every Searcher the Engine has handed out.
func (e *Engine) ShardStats() []knn.SearchStats {
	out := make([]knn.SearchStats, len(e.work))
	for i := range e.work {
		out[i] = knn.SearchStats{
			Queries:        e.work[i].queries.Load(),
			PointsExamined: e.work[i].pointsExamined.Load(),
			NodesVisited:   e.work[i].nodesVisited.Load(),
		}
	}
	return out
}

// newSubSearcher builds a fresh cursor over shard s: the underlying
// index (dataset or tree) is shared and immutable, only the cursor
// and its counters are per-Searcher.
func (e *Engine) newSubSearcher(s int) (knn.Searcher, error) {
	p := e.parts[s]
	if p.tree != nil {
		return xtree.NewSearcher(p.tree), nil
	}
	return knn.NewLinear(p.sub, e.cfg.Metric)
}

// NewSearcher builds a scatter-gather cursor over every shard for use
// by one goroutine at a time — the per-worker analogue of
// knn.NewLinear / xtree.NewSearcher. Construction is cheap (one
// cursor per shard); the heavy per-shard indexes are shared.
func (e *Engine) NewSearcher() (*Searcher, error) {
	subs := make([]knn.Searcher, len(e.parts))
	for s := range subs {
		sub, err := e.newSubSearcher(s)
		if err != nil {
			return nil, err
		}
		subs[s] = sub
	}
	return &Searcher{engine: e, subs: subs}, nil
}

// Searcher implements knn.Searcher by scatter-gather over the
// Engine's shards. One Searcher serves one goroutine at a time; any
// number of Searchers from the same Engine may run concurrently. See
// knn.Searcher for the scratch-ownership contract: the returned slice
// (backed by the merge heap) is valid until the next KNN call.
type Searcher struct {
	engine   *Engine
	subs     []knn.Searcher
	queries  atomic.Int64
	partials [][]knn.Neighbor // per-shard result table, reused
	merge    knn.BoundedHeap  // global top-k, backs the returned slice
}

// probeShard runs the query on shard i's cursor, remaps local indices
// to global rows and charges the work to the engine's shard counters.
// The returned slice aliases the sub-searcher's scratch.
func (s *Searcher) probeShard(i int, query []float64, sub subspace.Mask, k int, exclude int) []knn.Neighbor {
	e := s.engine
	localExclude := -1
	if exclude >= 0 && int(e.shardOf[exclude]) == i {
		localExclude = int(e.localOf[exclude])
	}
	before := s.subs[i].Stats()
	nbs := s.subs[i].KNN(query, sub, k, localExclude)
	delta := s.subs[i].Stats()
	delta.Queries -= before.Queries
	delta.PointsExamined -= before.PointsExamined
	delta.NodesVisited -= before.NodesVisited
	global := e.parts[i].global
	for j := range nbs {
		nbs[j].Index = global[nbs[j].Index]
	}
	e.work[i].queries.Add(delta.Queries)
	e.work[i].pointsExamined.Add(delta.PointsExamined)
	e.work[i].nodesVisited.Add(delta.NodesVisited)
	return nbs
}

// KNN implements knn.Searcher: fan the probe out to every shard in
// parallel, remap each shard's local indices to global rows, and merge
// the partials into the exact global top-k.
//
//hos:hotpath
func (s *Searcher) KNN(query []float64, sub subspace.Mask, k int, exclude int) []knn.Neighbor {
	s.queries.Add(1)
	if k <= 0 || sub.IsEmpty() {
		return nil
	}
	e := s.engine
	if cap(s.partials) < len(s.subs) {
		s.partials = make([][]knn.Neighbor, len(s.subs))
	}
	partials := s.partials[:len(s.subs)]
	if !e.parallel {
		// No parallelism to win (single shard, or a single-core box at
		// engine-build time, where goroutine handoffs only add
		// latency): probe in place. The merged answer is identical
		// either way, and this path allocates nothing in steady state.
		for i := range s.subs {
			partials[i] = s.probeShard(i, query, sub, k, exclude)
		}
	} else {
		s.fanOut(partials, query, sub, k, exclude)
	}
	s.merge.Reset(k)
	for _, part := range partials {
		for _, nb := range part {
			s.merge.Push(nb.Index, nb.Dist)
		}
	}
	return s.merge.Sorted()
}

// fanOut is the parallel arm of KNN: shards 1..n-1 probe on their own
// goroutines while shard 0 probes in place (one fewer handoff). It
// lives outside the //hos:hotpath annotation on purpose — the
// goroutine launches and their closure are the deliberate cost of the
// multicore mode, bought back by the shards=4 speedup floor in CI.
func (s *Searcher) fanOut(partials [][]knn.Neighbor, query []float64, sub subspace.Mask, k, exclude int) {
	var wg sync.WaitGroup
	for i := 1; i < len(s.subs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partials[i] = s.probeShard(i, query, sub, k, exclude)
		}(i)
	}
	partials[0] = s.probeShard(0, query, sub, k, exclude)
	wg.Wait()
}

// Stats implements knn.Searcher: scatter-gather probes issued through
// this cursor plus the per-shard point/node work they caused. Safe to
// call concurrently with the querying goroutine.
func (s *Searcher) Stats() knn.SearchStats {
	out := knn.SearchStats{Queries: s.queries.Load()}
	for _, sub := range s.subs {
		st := sub.Stats()
		out.PointsExamined += st.PointsExamined
		out.NodesVisited += st.NodesVisited
	}
	return out
}

// ResetStats implements knn.Searcher.
func (s *Searcher) ResetStats() {
	s.queries.Store(0)
	for _, sub := range s.subs {
		sub.ResetStats()
	}
}

// Merge folds per-shard top-k lists into the global top-k, preserving
// the Searcher contract order (ascending distance, ties by ascending
// global index). It is symmetric in its inputs: any permutation of
// the partials, or of the items within one partial, yields the same
// answer — the property test in internal/conformance pins this down.
func Merge(k int, partials ...[]knn.Neighbor) []knn.Neighbor {
	h := knn.NewBoundedHeap(k)
	for _, part := range partials {
		for _, nb := range part {
			h.Push(nb.Index, nb.Dist)
		}
	}
	return h.Sorted()
}
