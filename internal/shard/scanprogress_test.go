// Progress reporting over the sharded scan path. This lives in an
// external test package so it can drive core.ScanAllParallelContext —
// the consumer of shard.Engine — over a scatter-gather miner: the
// async job subsystem reports scan progress through exactly this
// route, so a sharded dataset must deliver the same complete,
// non-regressing progress stream as a single-index one, and the same
// hits.
package shard_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
)

func TestShardedScanReportsFullProgress(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 120, D: 4, NumOutliers: 3, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	build := func(shards int) *core.Miner {
		t.Helper()
		m, err := core.NewMiner(ds, core.Config{
			K: 4, TQuantile: 0.92, Seed: 1,
			Shards: shards, Partitioner: shard.HashPoint,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Preprocess(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	sharded := build(3)
	var mu sync.Mutex
	seen := make(map[int]int)
	hits, err := sharded.ScanAllParallelContext(context.Background(), core.ScanOptions{
		OnProgress: func(done, total int) {
			if total != ds.N() {
				t.Errorf("total = %d, want %d", total, ds.N())
			}
			mu.Lock()
			seen[done]++
			mu.Unlock()
		},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every done value in 1..N exactly once: progress is complete and
	// never double-counted, regardless of which shard served a point.
	if len(seen) != ds.N() {
		t.Fatalf("saw %d distinct done values for %d points", len(seen), ds.N())
	}
	for v := 1; v <= ds.N(); v++ {
		if seen[v] != 1 {
			t.Fatalf("done value %d reported %d times", v, seen[v])
		}
	}

	// The progress plumbing must not perturb answers: sharded hits
	// equal the unsharded scan's bit for bit.
	plain, err := build(0).ScanAllParallelContext(context.Background(), core.ScanOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(plain) {
		t.Fatalf("sharded scan found %d hits, unsharded %d", len(hits), len(plain))
	}
	for i := range hits {
		if hits[i].Index != plain[i].Index ||
			hits[i].OutlyingCount != plain[i].OutlyingCount ||
			hits[i].FullSpaceOD != plain[i].FullSpaceOD {
			t.Fatalf("hit %d diverged: sharded %+v, unsharded %+v", i, hits[i], plain[i])
		}
	}
}
