package shard

import (
	"fmt"
	"runtime"

	"repro/internal/vector"
	"repro/internal/xtree"
)

// Append returns a new Engine over newDS, reusing this engine's work
// where the partition allows it. newDS must extend the engine's
// dataset: same dimensionality, rows [0, e.ds.N()) byte-identical. The
// new rows are routed to their shards by the configured partitioner
// (deterministic in (row index, coordinates), so the assignment
// matches what NewEngine over the full dataset would compute), and
// only the shards that receive rows rebuild: their sub-datasets grow,
// their X-trees take the incremental xtree.Append path (or a linear
// shard crossing AutoXTreeThreshold gets its first tree, exactly as a
// fresh partition would). Untouched shards share their partition —
// sub-dataset, mapping and index — with the source engine, which stays
// valid and unchanged for in-flight searchers.
//
// The result is indistinguishable from NewEngine(newDS, e.Config()):
// identical partition maps, identical per-shard indexes (byte-for-byte
// under EncodedTrees), identical answers. Cumulative shard work
// counters are carried over as a snapshot; probes still running
// against the old engine keep charging the old counters.
func (e *Engine) Append(newDS *vector.Dataset) (*Engine, error) {
	if newDS == nil {
		return nil, fmt.Errorf("shard: append: nil dataset")
	}
	d := e.ds.Dim()
	if newDS.Dim() != d {
		return nil, fmt.Errorf("shard: append: dim %d != engine dim %d", newDS.Dim(), d)
	}
	oldN, n := e.ds.N(), newDS.N()
	if n < oldN {
		return nil, fmt.Errorf("shard: append: dataset has %d rows, engine indexes %d", n, oldN)
	}
	oldSlab, newSlab := e.ds.Slab(), newDS.Slab()
	for i := 0; i < oldN*d; i++ {
		if oldSlab[i] != newSlab[i] {
			return nil, fmt.Errorf("shard: append: row %d differs from the indexed dataset", i/d)
		}
	}

	shards := e.cfg.Shards
	ne := &Engine{
		ds:       newDS,
		cfg:      e.cfg,
		parts:    make([]*partition, shards),
		shardOf:  make([]int32, n),
		localOf:  make([]int32, n),
		work:     make([]shardCounters, shards),
		parallel: shards > 1 && runtime.GOMAXPROCS(0) > 1,
	}
	copy(ne.shardOf, e.shardOf)
	copy(ne.localOf, e.localOf)
	for s := range e.work {
		ne.work[s].queries.Store(e.work[s].queries.Load())
		ne.work[s].pointsExamined.Store(e.work[s].pointsExamined.Load())
		ne.work[s].nodesVisited.Store(e.work[s].nodesVisited.Load())
	}

	added := make([][]int, shards)
	for i := oldN; i < n; i++ {
		s := e.cfg.Partitioner.Assign(i, newDS.Point(i), shards)
		ne.shardOf[i] = int32(s)
		ne.localOf[i] = int32(e.parts[s].sub.N() + len(added[s]))
		added[s] = append(added[s], i)
	}

	for s, old := range e.parts {
		if len(added[s]) == 0 {
			ne.parts[s] = old // untouched: share wholesale
			continue
		}
		oldSub := old.sub
		flat := make([]float64, 0, (oldSub.N()+len(added[s]))*d)
		flat = append(flat, oldSub.Slab()...)
		for _, g := range added[s] {
			flat = append(flat, newDS.Point(g)...)
		}
		sub, err := vector.NewDataset(flat, oldSub.N()+len(added[s]), d)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		global := make([]int, 0, len(old.global)+len(added[s]))
		global = append(global, old.global...)
		global = append(global, added[s]...)
		p := &partition{sub: sub, global: global}
		useTree := e.cfg.Index == IndexXTree ||
			(e.cfg.Index == IndexAuto && sub.N() >= AutoXTreeThreshold)
		switch {
		case useTree && old.tree != nil:
			t, err := old.tree.Append(sub)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
			p.tree = t
		case useTree:
			// A linear shard just crossed the auto threshold (or the
			// config always indexes): first build, same as a fresh
			// partition of the grown dataset.
			t, err := xtree.Build(sub, e.cfg.Metric, xtree.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
			p.tree = t
		}
		ne.parts[s] = p
	}
	return ne, nil
}

// AppendBatch is the group-commit entry point: it grows the engine's
// dataset by every batch of rows at once. All rows route to their
// shards in one pass, so each touched shard pays its rebuild (one
// xtree.Append unpack/insert/repack, or its first build past the auto
// threshold) once per drain instead of once per queued batch, and
// untouched shards are still shared wholesale. Exactness is Append's:
// indistinguishable from NewEngine over the combined dataset.
func (e *Engine) AppendBatch(batches ...[][]float64) (*Engine, error) {
	total := 0
	for _, rows := range batches {
		total += len(rows)
	}
	all := make([][]float64, 0, total)
	for _, rows := range batches {
		all = append(all, rows...)
	}
	newDS, err := e.ds.Append(all...)
	if err != nil {
		return nil, fmt.Errorf("shard: append batch: %w", err)
	}
	return e.Append(newDS)
}
