package shard

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/subspace"
	"repro/internal/vector"
)

func appendRows(t *testing.T, ds *vector.Dataset, rows [][]float64) *vector.Dataset {
	t.Helper()
	out, err := ds.Append(rows...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 5
		}
		rows[i] = row
	}
	return rows
}

// engineEqual asserts ne is indistinguishable from a fresh
// NewEngine over the same dataset/config: partition maps, shard sizes,
// encoded indexes and answers all match.
func engineEqual(t *testing.T, ne, fresh *Engine) {
	t.Helper()
	if !reflect.DeepEqual(ne.shardOf, fresh.shardOf) {
		t.Fatal("shardOf maps differ")
	}
	if !reflect.DeepEqual(ne.localOf, fresh.localOf) {
		t.Fatal("localOf maps differ")
	}
	if !reflect.DeepEqual(ne.ShardSizes(), fresh.ShardSizes()) {
		t.Fatal("shard sizes differ")
	}
	for s := range ne.parts {
		if !reflect.DeepEqual(ne.parts[s].sub.Slab(), fresh.parts[s].sub.Slab()) {
			t.Fatalf("shard %d: sub-dataset slabs differ", s)
		}
		if !reflect.DeepEqual(ne.parts[s].global, fresh.parts[s].global) {
			t.Fatalf("shard %d: global maps differ", s)
		}
	}
	et1, err := ne.EncodedTrees()
	if err != nil {
		t.Fatal(err)
	}
	et2, err := fresh.EncodedTrees()
	if err != nil {
		t.Fatal(err)
	}
	if len(et1) != len(et2) {
		t.Fatalf("encoded tree counts differ: %d vs %d", len(et1), len(et2))
	}
	for s := range et1 {
		if !bytes.Equal(et1[s], et2[s]) {
			t.Fatalf("shard %d: encoded trees differ (%d vs %d bytes)", s, len(et1[s]), len(et2[s]))
		}
	}
	s1, err := ne.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fresh.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	full := subspace.Full(ne.ds.Dim())
	for q := 0; q < ne.ds.N(); q += 17 {
		a := append([]float64(nil), ne.ds.Point(q)...)
		n1 := s1.KNN(a, full, 5, q)
		got := make([]int, len(n1))
		for i, nb := range n1 {
			got[i] = nb.Index
		}
		n2 := s2.KNN(a, full, 5, q)
		want := make([]int, len(n2))
		for i, nb := range n2 {
			want[i] = nb.Index
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: appended engine answers %v, fresh %v", q, got, want)
		}
	}
}

// TestEngineAppendEqualsNewEngine: appending through the engine is
// indistinguishable from repartitioning the grown dataset from
// scratch, across partitioners, index kinds and widths.
func TestEngineAppendEqualsNewEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const d = 4
	base := randRows(rng, 240, d)
	extra := randRows(rng, 60, d)
	ds0, err := vector.FromRows(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []Partitioner{RoundRobin, HashPoint} {
		for _, kind := range []IndexKind{IndexLinear, IndexXTree} {
			for _, shards := range []int{1, 2, 7} {
				cfg := Config{Shards: shards, Partitioner: part, Metric: vector.L2, Index: kind}
				e, err := NewEngine(ds0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Two batches: 1 row, then the rest.
				ds1 := appendRows(t, ds0, extra[:1])
				e1, err := e.Append(ds1)
				if err != nil {
					t.Fatal(err)
				}
				ds2 := appendRows(t, ds1, extra[1:])
				e2, err := e1.Append(ds2)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := NewEngine(ds2, cfg)
				if err != nil {
					t.Fatal(err)
				}
				engineEqual(t, e2, fresh)
			}
		}
	}
}

// TestEngineAppendCrossesAutoThreshold: a linear IndexAuto shard that
// grows past AutoXTreeThreshold gets an X-tree, matching NewEngine.
func TestEngineAppendCrossesAutoThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const d = 3
	// 2 shards roundrobin: 500 rows each → linear under IndexAuto.
	base := randRows(rng, 1000, d)
	ds0, err := vector.FromRows(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 2, Partitioner: RoundRobin, Metric: vector.L2, Index: IndexAuto}
	e, err := NewEngine(ds0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range e.parts {
		if p.tree != nil {
			t.Fatalf("shard %d unexpectedly has a tree before append", s)
		}
	}
	// +60 rows → 530 per shard, past the 512 threshold.
	ds1 := appendRows(t, ds0, randRows(rng, 60, d))
	e1, err := e.Append(ds1)
	if err != nil {
		t.Fatal(err)
	}
	for s, p := range e1.parts {
		if p.tree == nil {
			t.Fatalf("shard %d missing its tree after crossing the auto threshold", s)
		}
	}
	fresh, err := NewEngine(ds1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	engineEqual(t, e1, fresh)
}

// TestEngineAppendSharesUntouchedShards: shards that receive no rows
// keep their exact partition (pointer identity), and the source engine
// is not mutated.
func TestEngineAppendSharesUntouchedShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const d = 3
	ds0, err := vector.FromRows(randRows(rng, 40, d))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 4, Partitioner: RoundRobin, Metric: vector.L2, Index: IndexLinear}
	e, err := NewEngine(ds0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldParts := append([]*partition(nil), e.parts...)
	oldSizes := e.ShardSizes()
	// One appended row at index 40 → roundrobin shard 0 only.
	ds1 := appendRows(t, ds0, randRows(rng, 1, d))
	e1, err := e.Append(ds1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.parts[0] == oldParts[0] {
		t.Fatal("touched shard 0 was not rebuilt")
	}
	for s := 1; s < 4; s++ {
		if e1.parts[s] != oldParts[s] {
			t.Fatalf("untouched shard %d was rebuilt", s)
		}
	}
	if !reflect.DeepEqual(e.ShardSizes(), oldSizes) {
		t.Fatal("append mutated the source engine")
	}
}

// TestEngineAppendBatchEqualsChained: the group-commit entry point —
// several queued row batches routed in one pass — matches both the
// chained per-batch appends and a fresh engine over the combined data.
func TestEngineAppendBatchEqualsChained(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const d = 4
	base := randRows(rng, 180, d)
	extra := randRows(rng, 45, d)
	ds0, err := vector.FromRows(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []Partitioner{RoundRobin, HashPoint} {
		for _, shards := range []int{1, 2, 7} {
			cfg := Config{Shards: shards, Partitioner: part, Metric: vector.L2, Index: IndexXTree}
			e, err := NewEngine(ds0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := e.AppendBatch(extra[:1], extra[1:20], extra[20:])
			if err != nil {
				t.Fatal(err)
			}
			chained := e
			ds := ds0
			for _, chunk := range [][][]float64{extra[:1], extra[1:20], extra[20:]} {
				ds = appendRows(t, ds, chunk)
				chained, err = chained.Append(ds)
				if err != nil {
					t.Fatal(err)
				}
			}
			fresh, err := NewEngine(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			engineEqual(t, batched, fresh)
			engineEqual(t, batched, chained)
		}
	}
}

// TestEngineAppendEmptyBatch: an append that adds no rows (the
// coalescer can drain into one after per-op validation rejects every
// queued request) is a clean no-op epoch — same answers, no error.
func TestEngineAppendEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const d = 3
	ds0, err := vector.FromRows(randRows(rng, 50, d))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 2, Partitioner: RoundRobin, Metric: vector.L2, Index: IndexXTree}
	e, err := NewEngine(ds0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same, err := e.Append(ds0)
	if err != nil {
		t.Fatalf("no-op append rejected: %v", err)
	}
	engineEqual(t, same, e)
	viaBatch, err := e.AppendBatch()
	if err != nil {
		t.Fatalf("empty batch append rejected: %v", err)
	}
	engineEqual(t, viaBatch, e)
}

// TestEngineAppendDimMismatchRows: rows of the wrong width surface as
// errors from the batch entry point, before any shard is touched.
func TestEngineAppendDimMismatchRows(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	const d = 3
	ds0, err := vector.FromRows(randRows(rng, 30, d))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds0, Config{Shards: 2, Metric: vector.L2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendBatch([][]float64{{1, 2}}); err == nil {
		t.Fatal("narrow row accepted")
	}
	if _, err := e.AppendBatch(randRows(rng, 2, d), [][]float64{{1, 2, 3, 4}}); err == nil {
		t.Fatal("wide row in second batch accepted")
	}
	// The source engine still answers correctly after the rejections.
	fresh, err := NewEngine(ds0, Config{Shards: 2, Metric: vector.L2})
	if err != nil {
		t.Fatal(err)
	}
	engineEqual(t, e, fresh)
}

// TestEngineAppendWidthOne: a width-1 engine (single shard holding
// everything) takes the same incremental path and matches a fresh
// single-shard engine — the degenerate partition is not special-cased
// anywhere.
func TestEngineAppendWidthOne(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const d = 4
	ds0, err := vector.FromRows(randRows(rng, 120, d))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []IndexKind{IndexLinear, IndexXTree} {
		cfg := Config{Shards: 1, Partitioner: HashPoint, Metric: vector.L2, Index: kind}
		e, err := NewEngine(ds0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ds1 := appendRows(t, ds0, randRows(rng, 15, d))
		e1, err := e.Append(ds1)
		if err != nil {
			t.Fatal(err)
		}
		if got := e1.ShardSizes(); len(got) != 1 || got[0] != 135 {
			t.Fatalf("width-1 shard sizes after append: %v", got)
		}
		fresh, err := NewEngine(ds1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		engineEqual(t, e1, fresh)
	}
}

// TestEngineAppendRejectsBadDatasets pins the contract errors.
func TestEngineAppendRejectsBadDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const d = 3
	ds0, err := vector.FromRows(randRows(rng, 30, d))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds0, Config{Shards: 2, Metric: vector.L2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	wrong, err := vector.FromRows(randRows(rng, 40, d+2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(wrong); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	shrunk, err := vector.FromRows(randRows(rng, 10, d))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(shrunk); err == nil {
		t.Fatal("shrunk dataset accepted")
	}
	mut := make([][]float64, 30)
	for i := 0; i < 30; i++ {
		mut[i] = append([]float64(nil), ds0.Point(i)...)
	}
	mut[4][0] += 1
	mds, err := vector.FromRows(mut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(mds); err == nil {
		t.Fatal("mutated prefix accepted")
	}
}
