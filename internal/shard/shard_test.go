package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// randomDataset builds a deterministic n×d dataset with a few
// duplicated rows so ties between equal distances actually occur.
func randomDataset(t testing.TB, n, d int, seed int64) *vector.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	// Duplicate a couple of rows verbatim: distance ties force the
	// (dist, index) tie-break to matter.
	if n > 10 {
		copy(flat[3*d:4*d], flat[7*d:8*d])
		copy(flat[5*d:6*d], flat[9*d:10*d])
	}
	ds, err := vector.NewDataset(flat, n, d)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPartitionerStringParseRoundTrip(t *testing.T) {
	for _, p := range []Partitioner{RoundRobin, HashPoint} {
		got, err := ParsePartitioner(p.String())
		if err != nil || got != p {
			t.Fatalf("round-trip %v: got %v, %v", p, got, err)
		}
		if !p.Valid() {
			t.Fatalf("%v should be valid", p)
		}
	}
	if _, err := ParsePartitioner("zigzag"); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
	if _, err := ParsePartitioner("round-robin"); err != nil {
		t.Fatalf("hyphenated spelling rejected: %v", err)
	}
	if Partitioner(99).Valid() {
		t.Fatal("Partitioner(99) reported valid")
	}
	if s := Partitioner(99).String(); s != "Partitioner(99)" {
		t.Fatalf("String() = %q", s)
	}
}

func TestAssignDeterministicAndInRange(t *testing.T) {
	ds := randomDataset(t, 50, 4, 11)
	for _, p := range []Partitioner{RoundRobin, HashPoint} {
		for _, shards := range []int{1, 2, 3, 7} {
			for i := 0; i < ds.N(); i++ {
				a := p.Assign(i, ds.Point(i), shards)
				b := p.Assign(i, ds.Point(i), shards)
				if a != b {
					t.Fatalf("%v not deterministic: %d vs %d", p, a, b)
				}
				if a < 0 || a >= shards {
					t.Fatalf("%v assigned shard %d of %d", p, a, shards)
				}
			}
		}
	}
	// RoundRobin is exactly balanced.
	if got := RoundRobin.Assign(13, nil, 5); got != 3 {
		t.Fatalf("roundrobin(13, 5 shards) = %d", got)
	}
	// HashPoint depends on values, not position.
	p := []float64{1.5, -2.25}
	if HashPoint.Assign(0, p, 8) != HashPoint.Assign(42, p, 8) {
		t.Fatal("hash partitioner should ignore the row index")
	}
}

func TestNewEngineValidation(t *testing.T) {
	ds := randomDataset(t, 20, 3, 1)
	cases := []Config{
		{Shards: 0, Metric: vector.L2},
		{Shards: 21, Metric: vector.L2},
		{Shards: 2, Metric: vector.Metric(99)},
		{Shards: 2, Metric: vector.L2, Partitioner: Partitioner(99)},
		{Shards: 2, Metric: vector.L2, Index: IndexKind(99)},
	}
	for i, cfg := range cases {
		if _, err := NewEngine(ds, cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := NewEngine(nil, Config{Shards: 1, Metric: vector.L2}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestEnginePartitionCoversDataset(t *testing.T) {
	ds := randomDataset(t, 57, 4, 7)
	for _, part := range []Partitioner{RoundRobin, HashPoint} {
		e, err := NewEngine(ds, Config{Shards: 5, Partitioner: part, Metric: vector.L2})
		if err != nil {
			t.Fatal(err)
		}
		if e.NumShards() != 5 {
			t.Fatalf("NumShards = %d", e.NumShards())
		}
		total := 0
		for _, n := range e.ShardSizes() {
			total += n
		}
		if total != ds.N() {
			t.Fatalf("%v: shard sizes sum to %d, want %d", part, total, ds.N())
		}
		// Row round-trip: every global row is stored verbatim in its shard.
		for i := 0; i < ds.N(); i++ {
			s := e.ShardOf(i)
			local := int(e.localOf[i])
			got := e.parts[s].sub.Point(local)
			if !reflect.DeepEqual(got, ds.Point(i)) {
				t.Fatalf("row %d corrupted in shard %d", i, s)
			}
			if e.parts[s].global[local] != i {
				t.Fatalf("row %d: local→global mapping broken", i)
			}
		}
		if e.Config().Partitioner != part {
			t.Fatalf("Config() lost the partitioner")
		}
	}
}

// TestScatterGatherMatchesSingleIndex is the package-level exactness
// guarantee: the merged sharded answer is identical (indices AND float
// distances) to a single linear index over the whole dataset.
func TestScatterGatherMatchesSingleIndex(t *testing.T) {
	ds := randomDataset(t, 160, 5, 42)
	oracle, err := knn.NewLinear(ds, vector.L2)
	if err != nil {
		t.Fatal(err)
	}
	masks := []subspace.Mask{
		subspace.New(0), subspace.New(1, 3), subspace.New(0, 2, 4), subspace.Full(5),
	}
	for _, part := range []Partitioner{RoundRobin, HashPoint} {
		for _, shards := range []int{1, 2, 4, 7} {
			for _, kind := range []IndexKind{IndexLinear, IndexXTree, IndexAuto} {
				e, err := NewEngine(ds, Config{
					Shards: shards, Partitioner: part, Metric: vector.L2, Index: kind,
				})
				if err != nil {
					t.Fatal(err)
				}
				s, err := e.NewSearcher()
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range masks {
					for _, k := range []int{1, 3, 8} {
						for _, exclude := range []int{-1, 0, 63, 159} {
							got := s.KNN(ds.Point(10), m, k, exclude)
							want := oracle.KNN(ds.Point(10), m, k, exclude)
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%v/%d shards/%v k=%d excl=%d mask=%v:\n got %v\nwant %v",
									part, shards, kind, k, exclude, m, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestScatterGatherParallelPath forces the goroutine fan-out (skipped
// on single-core boxes by a fast path) and checks it yields the same
// bytes as the oracle — also the test that puts the fan-out under the
// race detector.
func TestScatterGatherParallelPath(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	ds := randomDataset(t, 120, 4, 21)
	oracle, _ := knn.NewLinear(ds, vector.L2)
	e, err := NewEngine(ds, Config{Shards: 5, Partitioner: HashPoint, Metric: vector.L2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	m := subspace.New(0, 2)
	for i := 0; i < ds.N(); i += 7 {
		got := s.KNN(ds.Point(i), m, 5, i)
		want := oracle.KNN(ds.Point(i), m, 5, i)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("point %d: parallel path diverged:\n got %v\nwant %v", i, got, want)
		}
	}
}

// TestScatterGatherKOverShardSize covers the regime where k exceeds a
// shard's population, so shards contribute short partials.
func TestScatterGatherKOverShardSize(t *testing.T) {
	ds := randomDataset(t, 15, 3, 5)
	oracle, _ := knn.NewLinear(ds, vector.L2)
	e, err := NewEngine(ds, Config{Shards: 7, Partitioner: RoundRobin, Metric: vector.L2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	m := subspace.Full(3)
	got := s.KNN(ds.Point(0), m, 10, 0)
	want := oracle.KNN(ds.Point(0), m, 10, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("k over shard size:\n got %v\nwant %v", got, want)
	}
}

func TestSearcherEdgeCases(t *testing.T) {
	ds := randomDataset(t, 20, 3, 3)
	e, err := NewEngine(ds, Config{Shards: 4, Metric: vector.L2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.KNN(ds.Point(0), subspace.Full(3), 0, -1); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	var empty subspace.Mask
	if got := s.KNN(ds.Point(0), empty, 3, -1); got != nil {
		t.Fatalf("empty mask returned %v", got)
	}
}

func TestStatsAggregation(t *testing.T) {
	ds := randomDataset(t, 40, 3, 9)
	e, err := NewEngine(ds, Config{Shards: 4, Metric: vector.L2, Index: IndexLinear})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	const probes = 6
	for i := 0; i < probes; i++ {
		s.KNN(ds.Point(i), subspace.Full(3), 3, i)
	}
	st := s.Stats()
	if st.Queries != probes {
		t.Fatalf("Queries = %d, want %d", st.Queries, probes)
	}
	// Each probe examines all other points exactly once across shards.
	if want := int64(probes * (ds.N() - 1)); st.PointsExamined != want {
		t.Fatalf("PointsExamined = %d, want %d", st.PointsExamined, want)
	}
	// The engine-level per-shard counters see the same work.
	var engineTotal int64
	perShard := e.ShardStats()
	if len(perShard) != 4 {
		t.Fatalf("ShardStats length %d", len(perShard))
	}
	for _, ss := range perShard {
		engineTotal += ss.PointsExamined
		if ss.Queries != probes {
			t.Fatalf("per-shard Queries = %d, want %d", ss.Queries, probes)
		}
	}
	if engineTotal != st.PointsExamined {
		t.Fatalf("engine counters %d != searcher counters %d", engineTotal, st.PointsExamined)
	}
	s.ResetStats()
	if st := s.Stats(); st.Queries != 0 || st.PointsExamined != 0 {
		t.Fatalf("ResetStats left %+v", st)
	}
}

// The order-independence property of Merge (any permutation of the
// partials and their contents yields the same answer) is pinned down
// by TestShardMergeOrderIndependent in internal/conformance, next to
// the engine-level differential specs; here only the contract order
// of the output is asserted directly.
func TestMergeRespectsContractOrder(t *testing.T) {
	got := Merge(3,
		[]knn.Neighbor{{Index: 5, Dist: 1}, {Index: 9, Dist: 2}},
		[]knn.Neighbor{{Index: 2, Dist: 1}, {Index: 7, Dist: 0.5}},
	)
	want := []knn.Neighbor{{Index: 7, Dist: 0.5}, {Index: 2, Dist: 1}, {Index: 5, Dist: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// BenchmarkShardedQuery measures scatter-gather k-NN throughput by
// shard count over one dataset; BENCH_3.json records the 4-shard over
// 1-shard speedup (tools/benchjson computes it from these timings).
func BenchmarkShardedQuery(b *testing.B) {
	ds := randomDataset(b, 8192, 8, 1)
	full := subspace.Full(8)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, err := NewEngine(ds, Config{Shards: shards, Metric: vector.L2, Index: IndexLinear})
			if err != nil {
				b.Fatal(err)
			}
			s, err := e.NewSearcher()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.KNN(ds.Point(i%ds.N()), full, 8, i%ds.N())
			}
		})
	}
}

// TestEncodedTreesRoundTrip: an engine rebuilt from EncodedTrees must
// answer scatter-gather probes identically to the original, and shape
// mismatches between the encoded set and the configuration must fail.
func TestEncodedTreesRoundTrip(t *testing.T) {
	ds := randomDataset(t, 1200, 4, 17) // > AutoXTreeThreshold per shard at width 2
	cfg := Config{Shards: 2, Partitioner: HashPoint, Metric: vector.L2, Index: IndexAuto}
	fresh, err := NewEngine(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := fresh.EncodedTrees()
	if err != nil {
		t.Fatal(err)
	}
	hasTree := false
	for _, b := range encoded {
		if len(b) > 0 {
			hasTree = true
		}
	}
	if !hasTree {
		t.Fatal("no shard produced an encoded tree; fixture too small")
	}
	warm, err := NewEngineFromEncoded(ds, cfg, encoded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.ShardSizes(), fresh.ShardSizes()) {
		t.Fatalf("shard sizes diverge: %v vs %v", warm.ShardSizes(), fresh.ShardSizes())
	}
	sa, err := fresh.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := warm.NewSearcher()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 30; q++ {
		query := make([]float64, 4)
		for j := range query {
			query[j] = rng.NormFloat64()
		}
		sub := subspace.Mask(rng.Intn(15) + 1)
		k := 1 + rng.Intn(8)
		want := sa.KNN(query, sub, k, -1)
		got := sb.KNN(query, sub, k, -1)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("probe %d diverged:\n want %v\n got  %v", q, want, got)
		}
	}

	// Shape mismatches: wrong width, tree where none belongs, missing
	// tree where one belongs.
	if _, err := NewEngineFromEncoded(ds, cfg, encoded[:1]); err == nil {
		t.Fatal("width mismatch accepted")
	}
	linCfg := cfg
	linCfg.Index = IndexLinear
	if _, err := NewEngineFromEncoded(ds, linCfg, encoded); err == nil {
		t.Fatal("trees accepted for a linear configuration")
	}
	empty := make([][]byte, cfg.Shards)
	if _, err := NewEngineFromEncoded(ds, cfg, empty); err == nil {
		t.Fatal("missing trees accepted for a tree configuration")
	}
	// Corrupt bytes must be rejected by the decoder.
	bad := make([][]byte, len(encoded))
	for i, b := range encoded {
		bad[i] = append([]byte(nil), b...)
	}
	for i := range bad {
		if len(bad[i]) > 0 {
			bad[i][len(bad[i])/3] ^= 0x55
		}
	}
	if _, err := NewEngineFromEncoded(ds, cfg, bad); err == nil {
		t.Fatal("corrupt tree bytes accepted")
	}
	// Linear configurations round-trip through an all-nil encoded set.
	linFresh, err := NewEngine(ds, linCfg)
	if err != nil {
		t.Fatal(err)
	}
	linEnc, err := linFresh.EncodedTrees()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineFromEncoded(ds, linCfg, linEnc); err != nil {
		t.Fatalf("linear round-trip failed: %v", err)
	}
}
