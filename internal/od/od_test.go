package od

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

func newEval(t *testing.T, rows [][]float64, k int, norm Normalization) *Evaluator {
	t.Helper()
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := knn.NewLinear(ds, vector.L2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(ds, ls, vector.L2, k, norm)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorValidation(t *testing.T) {
	ds, _ := vector.FromRows([][]float64{{0}, {1}, {2}})
	ls, _ := knn.NewLinear(ds, vector.L2)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"nil dataset", func() error { _, err := NewEvaluator(nil, ls, vector.L2, 1, NormNone); return err }},
		{"nil searcher", func() error { _, err := NewEvaluator(ds, nil, vector.L2, 1, NormNone); return err }},
		{"bad metric", func() error { _, err := NewEvaluator(ds, ls, vector.Metric(7), 1, NormNone); return err }},
		{"k=0", func() error { _, err := NewEvaluator(ds, ls, vector.L2, 0, NormNone); return err }},
		{"k too large", func() error { _, err := NewEvaluator(ds, ls, vector.L2, 3, NormNone); return err }},
		{"bad norm", func() error { _, err := NewEvaluator(ds, ls, vector.L2, 1, Normalization(9)); return err }},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if _, err := NewEvaluator(ds, ls, vector.L2, 2, NormNone); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestODHandComputed(t *testing.T) {
	// Points on a line; k=2. OD of point 0 in [0] = 1 + 2 = 3.
	e := newEval(t, [][]float64{{0, 9}, {1, 9}, {2, 9}, {10, 9}}, 2, NormNone)
	if got := e.ODOfPoint(0, subspace.New(0)); math.Abs(got-3) > 1e-12 {
		t.Fatalf("OD = %v, want 3", got)
	}
	// Point 3 is far: neighbours at 8 and 9 → OD = 17.
	if got := e.ODOfPoint(3, subspace.New(0)); math.Abs(got-17) > 1e-12 {
		t.Fatalf("OD = %v, want 17", got)
	}
	// In dim 1, all identical → OD = 0 everywhere.
	for i := 0; i < 4; i++ {
		if got := e.ODOfPoint(i, subspace.New(1)); got != 0 {
			t.Fatalf("OD in constant dim = %v", got)
		}
	}
}

func TestODEmptySubspace(t *testing.T) {
	e := newEval(t, [][]float64{{0}, {1}}, 1, NormNone)
	if got := e.OD([]float64{0}, subspace.Empty, -1); got != 0 {
		t.Fatalf("empty subspace OD = %v", got)
	}
}

func TestODExternalPoint(t *testing.T) {
	e := newEval(t, [][]float64{{0}, {1}, {2}}, 2, NormNone)
	// External point at 10: neighbours 2 and 1 → OD = 8 + 9 = 17.
	if got := e.OD([]float64{10}, subspace.New(0), -1); math.Abs(got-17) > 1e-12 {
		t.Fatalf("OD = %v, want 17", got)
	}
}

// TestODMonotonicity is the paper's central property (§2): for any
// point, OD_s1(p) ≥ OD_s2(p) whenever s1 ⊇ s2.
func TestODMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 25+rng.Intn(30), 2+rng.Intn(5)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		ds, _ := vector.FromRows(rows)
		metric := []vector.Metric{vector.L2, vector.L1, vector.LInf}[rng.Intn(3)]
		ls, _ := knn.NewLinear(ds, metric)
		e, err := NewEvaluator(ds, ls, metric, 1+rng.Intn(5), NormNone)
		if err != nil {
			return false
		}
		idx := rng.Intn(n)
		sub := subspace.Mask(rng.Uint32()) & subspace.Full(d)
		if sub.IsEmpty() {
			sub = subspace.New(rng.Intn(d))
		}
		sup := sub | (subspace.Mask(rng.Uint32()) & subspace.Full(d))
		return e.ODOfPoint(idx, sup) >= e.ODOfPoint(idx, sub)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNormDimRemovesDimBias(t *testing.T) {
	// A regular grid: with NormDim the OD of a central point should
	// stay roughly flat as dims are added, instead of growing.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ds, _ := vector.FromRows(rows)
	ls, _ := knn.NewLinear(ds, vector.L2)
	raw, _ := NewEvaluator(ds, ls, vector.L2, 5, NormNone)
	norm, _ := NewEvaluator(ds, ls, vector.L2, 5, NormDim)

	rawGrowth := raw.ODOfPoint(0, subspace.Full(4)) / raw.ODOfPoint(0, subspace.New(0))
	normGrowth := norm.ODOfPoint(0, subspace.Full(4)) / norm.ODOfPoint(0, subspace.New(0))
	if normGrowth >= rawGrowth {
		t.Fatalf("NormDim growth %v should be below raw growth %v", normGrowth, rawGrowth)
	}
}

func TestNormalizationString(t *testing.T) {
	if NormNone.String() != "none" || NormDim.String() != "dim" {
		t.Fatal("names")
	}
	if Normalization(9).String() == "" {
		t.Fatal("unknown name empty")
	}
}

func TestFullSpaceODs(t *testing.T) {
	e := newEval(t, [][]float64{{0, 0}, {1, 0}, {0, 1}, {50, 50}}, 2, NormNone)
	ods := e.FullSpaceODs()
	if len(ods) != 4 {
		t.Fatalf("len = %d", len(ods))
	}
	// The planted far point must have the largest OD.
	for i := 0; i < 3; i++ {
		if ods[3] <= ods[i] {
			t.Fatalf("outlier OD %v not above inlier OD %v", ods[3], ods[i])
		}
	}
}

func TestQueryCache(t *testing.T) {
	e := newEval(t, [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}, 2, NormNone)
	q := e.NewQueryForPoint(1)
	s := subspace.New(0, 1)
	v1 := q.OD(s)
	evalsAfterFirst := e.Evaluations()
	v2 := q.OD(s)
	if v1 != v2 {
		t.Fatalf("cache returned different value: %v vs %v", v1, v2)
	}
	if e.Evaluations() != evalsAfterFirst {
		t.Fatal("cache miss on repeated subspace")
	}
	hits, misses := q.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = (%d,%d), want (1,1)", hits, misses)
	}
}

func TestQueryPointIsolation(t *testing.T) {
	e := newEval(t, [][]float64{{0}, {1}, {2}}, 1, NormNone)
	p := []float64{5}
	q := e.NewQuery(p, -1)
	p[0] = 999 // mutate the caller's slice
	if got := q.Point()[0]; got != 5 {
		t.Fatalf("query point not isolated: %v", got)
	}
	// Returned copy is also isolated.
	cp := q.Point()
	cp[0] = -1
	if q.Point()[0] != 5 {
		t.Fatal("Point() leaked internal slice")
	}
}

func TestQueryMatchesEvaluator(t *testing.T) {
	e := newEval(t, [][]float64{{0, 5}, {1, 4}, {2, 3}, {9, 9}}, 2, NormNone)
	q := e.NewQueryForPoint(3)
	for _, s := range subspace.All(2) {
		if got, want := q.OD(s), e.ODOfPoint(3, s); math.Abs(got-want) > 1e-12 {
			t.Fatalf("s=%v: query OD %v, evaluator OD %v", s, got, want)
		}
	}
}
