package od

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/subspace"
)

// DefaultSharedCacheCapacity is the entry bound NewSharedCache applies
// when the caller passes 0. At 16 bytes of payload per entry (plus map
// overhead) the default keeps a batch's memo comfortably under a few
// MiB.
const DefaultSharedCacheCapacity = 1 << 16

// sharedShards is the fixed shard count of a SharedCache. Sharding by
// key hash keeps concurrent batch workers from serialising on one
// mutex.
const sharedShards = 16

// sharedKey identifies one memoised OD value: the query point's
// identity (see pointIdentity) plus the subspace it was evaluated in.
// Dataset rows are keyed by index alone so the hot batch-by-index path
// builds keys without allocating; external points carry their
// coordinate bit pattern.
type sharedKey struct {
	row   int    // dataset row index, or -1 for external points
	point string // coordinate bits for external points, "" for rows
	mask  subspace.Mask
}

type sharedShard struct {
	mu sync.Mutex
	m  map[sharedKey]float64
}

// SharedCache is a bounded, concurrency-safe memo of OD evaluations
// keyed by (point, subspace mask), shared by the Query instances of
// one batch. Duplicate queries — the common shape of multi-user
// traffic — then pay for each distinct (point, subspace) evaluation
// once per batch instead of once per request.
//
// The cache stores the OD value itself, i.e. the reduction of the
// point's k-NN neighbourhood in that subspace; since OD is the only
// consumer of neighbourhoods on the query path, memoising the value
// subsumes memoising the neighbour set. Eviction is random-replacement
// per shard: cheap, concurrency-friendly, and — because OD values are
// deterministic — only ever a performance concern, never a
// correctness one.
type SharedCache struct {
	shards    [sharedShards]sharedShard
	shardCap  int
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewSharedCache builds a cache bounded to roughly capacity entries
// (0 selects DefaultSharedCacheCapacity, negative returns nil —
// caching disabled; a nil *SharedCache is valid everywhere one is
// accepted).
func NewSharedCache(capacity int) *SharedCache {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultSharedCacheCapacity
	}
	per := (capacity + sharedShards - 1) / sharedShards
	if per < 1 {
		per = 1
	}
	c := &SharedCache{shardCap: per}
	for i := range c.shards {
		c.shards[i].m = make(map[sharedKey]float64)
	}
	return c
}

// Reset clears all entries and counters and re-bounds the cache to
// roughly capacity entries (0 selects DefaultSharedCacheCapacity),
// retaining each shard's map buckets so a pooled cache reaches an
// allocation-free steady state. It must not be called while any
// goroutine is still using the cache.
func (c *SharedCache) Reset(capacity int) {
	if c == nil {
		return
	}
	if capacity <= 0 {
		capacity = DefaultSharedCacheCapacity
	}
	per := (capacity + sharedShards - 1) / sharedShards
	if per < 1 {
		per = 1
	}
	c.shardCap = per
	for i := range c.shards {
		clear(c.shards[i].m)
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// shardFor hashes the key onto a shard (FNV-1a over the row index,
// the point bytes and the mask).
func (c *SharedCache) shardFor(k sharedKey) *sharedShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(int64(k.row))) * prime64
	for i := 0; i < len(k.point); i++ {
		h = (h ^ uint64(k.point[i])) * prime64
	}
	h = (h ^ uint64(k.mask)) * prime64
	return &c.shards[h%sharedShards]
}

// get looks up a memoised OD value, counting the outcome.
func (c *SharedCache) get(k sharedKey) (float64, bool) {
	if c == nil {
		return 0, false
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// put memoises an OD value, evicting an arbitrary resident entry when
// the shard is full.
func (c *SharedCache) put(k sharedKey, v float64) {
	if c == nil {
		return
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	if _, ok := sh.m[k]; !ok && len(sh.m) >= c.shardCap {
		for victim := range sh.m {
			delete(sh.m, victim)
			break
		}
		c.evictions.Add(1)
	}
	sh.m[k] = v
	sh.mu.Unlock()
}

// SharedCacheStats is a point-in-time counter snapshot of a
// SharedCache.
type SharedCacheStats struct {
	// Hits and Misses count lookups by Query instances attached to the
	// cache; Misses therefore equals the number of OD computations the
	// batch actually performed through shared queries.
	Hits   int64
	Misses int64
	// Evictions counts entries displaced by the capacity bound.
	Evictions int64
	// Entries is the current resident entry count.
	Entries int
}

// Stats snapshots the cache counters. A nil cache reports zeros.
func (c *SharedCache) Stats() SharedCacheStats {
	if c == nil {
		return SharedCacheStats{}
	}
	st := SharedCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
		st.Entries += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return st
}

// pointIdentity derives a query point's shared-cache identity.
// Dataset members are identified by their row index alone (which also
// pins the self-exclusion semantics) — an integer, so the hot
// batch-by-index path allocates nothing. External points are
// identified by the exact bit pattern of their coordinates — the same
// exactness-over-cleverness rule as the server's result-cache key —
// with row = -1 so they can never collide with a dataset row.
func pointIdentity(point []float64, exclude int) (row int, key string) {
	if exclude >= 0 {
		return exclude, ""
	}
	buf := make([]byte, 8*len(point))
	for i, v := range point {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return -1, string(buf)
}
