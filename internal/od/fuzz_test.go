package od

import (
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// fuzzDim and the fixed dataset keep every fuzz execution cheap; the
// fuzzer's freedom is in the subspace pair and the query point.
const fuzzDim = 8

func fuzzEvaluator(t testing.TB) *Evaluator {
	t.Helper()
	ds, err := vector.FromRows(randomRows(42, 120, fuzzDim))
	if err != nil {
		t.Fatal(err)
	}
	ls, err := knn.NewLinear(ds, vector.L2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(ds, ls, vector.L2, 5, NormNone)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// FuzzODMonotonicity fuzzes the paper's Theorem 1 — the property the
// whole pruning lattice rests on: for any point p and subspaces
// s1 ⊆ s2, OD(p, s1) ≤ OD(p, s2) under un-normalized L2. The fuzzer
// picks two arbitrary masks (intersection/union give the ⊆ pair) and
// a query point, either a dataset row or a synthesised external one.
func FuzzODMonotonicity(f *testing.F) {
	f.Add(uint32(0b0011), uint32(0b0110), int64(1), true)
	f.Add(uint32(0b1), uint32(0xff), int64(7), false)
	f.Add(uint32(0b10100), uint32(0b00111), int64(99), true)
	e := fuzzEvaluator(f)
	full := subspace.Full(fuzzDim)
	f.Fuzz(func(t *testing.T, a, b uint32, pointSeed int64, member bool) {
		ma := subspace.Mask(a) & full
		mb := subspace.Mask(b) & full
		sub := ma & mb // ⊆ both
		sup := ma | mb // ⊇ both
		if sup.IsEmpty() {
			t.Skip("empty pair")
		}
		var point []float64
		exclude := -1
		if member {
			idx := int(uint64(pointSeed) % uint64(e.Dataset().N()))
			point = e.Dataset().Point(idx)
			exclude = idx
		} else {
			rng := rand.New(rand.NewSource(pointSeed))
			point = make([]float64, fuzzDim)
			for j := range point {
				point[j] = rng.NormFloat64() * 3
			}
		}
		odSup := e.OD(point, sup, exclude)
		for _, lower := range []subspace.Mask{sub, ma, mb} {
			if lower.IsEmpty() {
				continue
			}
			// Same 1e-9 floating-point slack as TestODMonotonicity.
			if odLow := e.OD(point, lower, exclude); odLow > odSup+1e-9 {
				t.Fatalf("monotonicity violated: OD(%v) = %v > OD(%v) = %v",
					lower, odLow, sup, odSup)
			}
		}
		// The shared-cache path must agree bit-for-bit with the direct
		// evaluator on the same probes.
		q := e.NewSharedQuery(point, exclude, NewSharedCache(0))
		if q.OD(sup) != odSup {
			t.Fatal("shared query diverged from direct evaluation")
		}
	})
}
