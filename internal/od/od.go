// Package od computes the paper's Outlying Degree (§2):
//
//	OD(p, s) = Σ_{i=1..k} Dist_s(p, p_i),  p_i ∈ KNNSet(p, s)
//
// the sum of distances from p to its k nearest neighbours in subspace
// s. The Evaluator wraps a knn.Searcher, adds the optional
// dimensionality normalization discussed in DESIGN.md, and caches OD
// values per (query, subspace) so repeated lattice probes of the same
// subspace are free.
package od

import (
	"fmt"
	"math"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Normalization selects how OD values are made comparable across
// subspace dimensionalities.
type Normalization uint8

const (
	// NormNone is the paper's literal definition: raw distance sums
	// compared against one global threshold T.
	NormNone Normalization = iota
	// NormDim divides each distance by sqrt(|s|) (L2), |s| (L1) or 1
	// (LInf), removing the systematic growth of distances with
	// dimensionality. OD monotonicity across the lattice no longer
	// holds under NormDim, so HOS-Miner's pruning must not be combined
	// with it; it exists for the naive baseline and for effectiveness
	// studies.
	NormDim
)

// String names the normalization.
func (n Normalization) String() string {
	switch n {
	case NormNone:
		return "none"
	case NormDim:
		return "dim"
	default:
		return fmt.Sprintf("Normalization(%d)", uint8(n))
	}
}

// Evaluator computes OD values for query points against a dataset.
// An Evaluator is single-goroutine (its searcher carries reusable
// scratch); give each worker its own.
type Evaluator struct {
	ds       *vector.Dataset
	searcher knn.Searcher
	metric   vector.Metric
	k        int
	norm     Normalization

	evaluations int64

	// borrow is the reusable Query handed out by BorrowQuery.
	borrow Query
	// scratch is an opaque engine-owned working set (the core layer
	// attaches its per-evaluator search scratch here so pooled
	// evaluators carry it across queries).
	scratch any
}

// NewEvaluator builds an Evaluator. searcher must be constructed over
// the same dataset and metric.
func NewEvaluator(ds *vector.Dataset, searcher knn.Searcher, metric vector.Metric, k int, norm Normalization) (*Evaluator, error) {
	if ds == nil {
		return nil, fmt.Errorf("od: nil dataset")
	}
	if searcher == nil {
		return nil, fmt.Errorf("od: nil searcher")
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("od: invalid metric %v", metric)
	}
	if k < 1 {
		return nil, fmt.Errorf("od: k = %d, need k ≥ 1", k)
	}
	if k >= ds.N() {
		return nil, fmt.Errorf("od: k = %d must be smaller than the dataset size %d (self excluded)", k, ds.N())
	}
	if norm > NormDim {
		return nil, fmt.Errorf("od: invalid normalization %v", norm)
	}
	return &Evaluator{ds: ds, searcher: searcher, metric: metric, k: k, norm: norm}, nil
}

// K returns the neighbourhood size.
func (e *Evaluator) K() int { return e.k }

// Metric returns the distance metric in use.
func (e *Evaluator) Metric() vector.Metric { return e.metric }

// Dataset returns the underlying dataset.
func (e *Evaluator) Dataset() *vector.Dataset { return e.ds }

// Evaluations returns how many OD computations were performed (cache
// hits in Query excluded).
func (e *Evaluator) Evaluations() int64 { return e.evaluations }

// Scratch returns the engine-attached opaque scratch value, or nil.
func (e *Evaluator) Scratch() any { return e.scratch }

// SetScratch attaches an opaque per-evaluator scratch owned by the
// engine layer above. The evaluator only stores it, so pooled
// evaluators keep their warmed working sets without od depending on
// engine types.
func (e *Evaluator) SetScratch(v any) { e.scratch = v }

// OD computes the outlying degree of an arbitrary point in subspace
// s. exclude is the dataset index of the point itself when it is a
// dataset member (-1 otherwise), so a point never counts as its own
// neighbour.
//
//hos:hotpath
func (e *Evaluator) OD(p []float64, s subspace.Mask, exclude int) float64 {
	if s.IsEmpty() {
		return 0
	}
	e.evaluations++
	nbs := e.searcher.KNN(p, s, e.k, exclude)
	sum := knn.SumDistances(nbs)
	if e.norm == NormDim {
		sum = normalizeSum(sum, e.metric, s)
	}
	return sum
}

// ODOfPoint computes OD for dataset point idx (self-excluding).
func (e *Evaluator) ODOfPoint(idx int, s subspace.Mask) float64 {
	return e.OD(e.ds.Point(idx), s, idx)
}

// FullSpaceODs computes OD in the full space for every dataset point.
// It is the workhorse behind quantile-based threshold selection and
// the classical "space → outliers" baselines.
func (e *Evaluator) FullSpaceODs() []float64 {
	full := subspace.Full(e.ds.Dim())
	out := make([]float64, e.ds.N())
	for i := range out {
		out[i] = e.ODOfPoint(i, full)
	}
	return out
}

func normalizeSum(sum float64, m vector.Metric, s subspace.Mask) float64 {
	switch m {
	case vector.L2:
		return sum / math.Sqrt(float64(s.Card()))
	case vector.L1:
		return sum / float64(s.Card())
	default:
		return sum
	}
}

// Query is a per-point OD cache. HOS-Miner's dynamic search may probe
// a subspace more than once across phases; the cache makes the second
// probe free and exposes an exact count of distinct evaluations. A
// Query built by NewSharedQuery additionally consults (and populates)
// a batch-wide SharedCache before computing, so identical probes from
// sibling queries in the same batch are also free.
type Query struct {
	eval    *Evaluator
	point   []float64
	exclude int
	cache   map[subspace.Mask]float64

	// shared is the optional batch-wide second-level cache; skeyRow /
	// skeyPoint are this point's identity within it (computed once at
	// construction, see sharedKey).
	shared    *SharedCache
	skeyRow   int
	skeyPoint string

	hits       int64
	misses     int64
	sharedHits int64
}

// NewQuery prepares a cached OD oracle for one query point. exclude
// follows the OD convention (-1 for external points).
func (e *Evaluator) NewQuery(point []float64, exclude int) *Query {
	return &Query{
		eval:    e,
		point:   append([]float64(nil), point...),
		exclude: exclude,
		cache:   make(map[subspace.Mask]float64),
	}
}

// NewSharedQuery is NewQuery with a batch-wide second-level OD memo.
// A nil shared degrades to exactly NewQuery. The Query itself remains
// single-goroutine; only the SharedCache is safe to share.
func (e *Evaluator) NewSharedQuery(point []float64, exclude int, shared *SharedCache) *Query {
	q := e.NewQuery(point, exclude)
	if shared != nil {
		q.shared = shared
		q.skeyRow, q.skeyPoint = pointIdentity(q.point, exclude)
	}
	return q
}

// BorrowQuery is the pooled counterpart of NewSharedQuery: it reuses
// the evaluator's single resident Query — point buffer, cache map
// (cleared, buckets retained) and counters — so a steady-state query
// performs no per-query allocation. The returned Query is owned by
// the evaluator and is valid only until the next BorrowQuery call on
// it; callers that need an independent lifetime use NewQuery /
// NewSharedQuery instead.
func (e *Evaluator) BorrowQuery(point []float64, exclude int, shared *SharedCache) *Query {
	q := &e.borrow
	q.eval = e
	q.point = append(q.point[:0], point...)
	q.exclude = exclude
	if q.cache == nil {
		q.cache = make(map[subspace.Mask]float64)
	} else {
		clear(q.cache)
	}
	q.shared = shared
	q.skeyRow, q.skeyPoint = 0, ""
	q.hits, q.misses, q.sharedHits = 0, 0, 0
	if shared != nil {
		q.skeyRow, q.skeyPoint = pointIdentity(q.point, exclude)
	}
	return q
}

// NewQueryForPoint prepares a cached OD oracle for dataset point idx.
func (e *Evaluator) NewQueryForPoint(idx int) *Query {
	return e.NewQuery(e.ds.Point(idx), idx)
}

// OD returns the (possibly cached) outlying degree in subspace s.
//
//hos:hotpath
func (q *Query) OD(s subspace.Mask) float64 {
	if v, ok := q.cache[s]; ok {
		q.hits++
		return v
	}
	if q.shared != nil {
		if v, ok := q.shared.get(sharedKey{row: q.skeyRow, point: q.skeyPoint, mask: s}); ok {
			q.sharedHits++
			q.cache[s] = v
			return v
		}
	}
	q.misses++
	v := q.eval.OD(q.point, s, q.exclude)
	q.cache[s] = v
	if q.shared != nil {
		q.shared.put(sharedKey{row: q.skeyRow, point: q.skeyPoint, mask: s}, v)
	}
	return v
}

// Point returns a copy of the query point.
func (q *Query) Point() []float64 { return append([]float64(nil), q.point...) }

// CacheStats returns (hits, misses): hits answered by this Query's own
// cache and misses that required a fresh OD computation. Probes
// answered by a shared batch cache count in neither (see SharedHits),
// so misses remains an exact count of the OD computations this Query
// performed itself.
func (q *Query) CacheStats() (hits, misses int64) { return q.hits, q.misses }

// SharedHits returns how many probes were answered by the batch-wide
// shared cache (always 0 for a Query built by NewQuery).
func (q *Query) SharedHits() int64 { return q.sharedHits }
