package od

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/subspace"
)

func randomRows(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

// A shared query must return the same values as a plain query, and a
// second shared query for the same point must be answered from the
// cache without recomputation.
func TestSharedQueryMatchesPlainQuery(t *testing.T) {
	e := newEval(t, randomRows(3, 60, 6), 4, NormNone)
	sc := NewSharedCache(0)

	plain := e.NewQueryForPoint(7)
	first := e.NewSharedQuery(e.Dataset().Point(7), 7, sc)
	second := e.NewSharedQuery(e.Dataset().Point(7), 7, sc)

	var masks []subspace.Mask
	subspace.EachAll(6, func(s subspace.Mask) bool {
		masks = append(masks, s)
		return true
	})
	for _, s := range masks {
		want := plain.OD(s)
		if got := first.OD(s); got != want {
			t.Fatalf("first shared query OD(%v) = %v, plain %v", s, got, want)
		}
	}
	for _, s := range masks {
		if got := second.OD(s); got != plain.OD(s) {
			t.Fatalf("second shared query diverged on %v", s)
		}
	}
	if _, misses := second.CacheStats(); misses != 0 {
		t.Fatalf("second query recomputed %d ODs, want 0", misses)
	}
	if second.SharedHits() != int64(len(masks)) {
		t.Fatalf("second query shared hits = %d, want %d", second.SharedHits(), len(masks))
	}
	st := sc.Stats()
	if st.Hits != int64(len(masks)) || st.Misses != int64(len(masks)) {
		t.Fatalf("cache stats %+v, want %d hits and misses", st, len(masks))
	}
}

// Distinct exclusion semantics must never share entries: dataset
// member 0 queried as itself (self-excluded) and the same coordinates
// queried as an external point have different neighbourhoods.
func TestSharedCacheSeparatesMemberFromExternal(t *testing.T) {
	rows := randomRows(5, 30, 4)
	e := newEval(t, rows, 3, NormNone)
	sc := NewSharedCache(0)
	s := subspace.Full(4)

	member := e.NewSharedQuery(rows[0], 0, sc)
	external := e.NewSharedQuery(rows[0], -1, sc)
	vm := member.OD(s)
	ve := external.OD(s)
	if external.SharedHits() != 0 {
		t.Fatal("external point was answered from the member's cache entry")
	}
	// The member excludes itself; the external clone counts the member
	// as a zero-distance neighbour, so its OD must be strictly smaller.
	if ve >= vm {
		t.Fatalf("external OD %v not below member OD %v", ve, vm)
	}
}

func TestSharedCacheBounded(t *testing.T) {
	sc := NewSharedCache(32)
	for i := 0; i < 1000; i++ {
		sc.put(sharedKey{point: string(rune(i)), mask: subspace.Mask(1)}, float64(i))
	}
	st := sc.Stats()
	// Capacity is apportioned per shard with ceil division, so allow
	// one extra entry per shard.
	if st.Entries > 32+sharedShards {
		t.Fatalf("cache holds %d entries, capacity 32", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("overfull cache evicted nothing")
	}
}

func TestSharedCacheNilSafe(t *testing.T) {
	var sc *SharedCache
	if _, ok := sc.get(sharedKey{point: "x", mask: 1}); ok {
		t.Fatal("nil cache hit")
	}
	sc.put(sharedKey{point: "x", mask: 1}, 1)
	if st := sc.Stats(); st != (SharedCacheStats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	if NewSharedCache(-1) != nil {
		t.Fatal("negative capacity did not disable the cache")
	}
	// A query built with a nil shared cache is a plain query.
	e := newEval(t, randomRows(1, 20, 3), 2, NormNone)
	q := e.NewSharedQuery(e.Dataset().Point(0), 0, nil)
	q.OD(subspace.Full(3))
	if q.SharedHits() != 0 {
		t.Fatal("nil-shared query recorded shared hits")
	}
}

// Hammer one shared cache from many goroutines, each with its own
// evaluator (the Evaluator itself is single-goroutine by contract);
// run under -race this is the memory-safety test for the per-batch
// cache. Two regimes: a roomy cache where sharing is guaranteed
// (every point is probed by several workers and nothing is evicted,
// so Hits > 0 deterministically), and a tiny cache where constant
// concurrent eviction must never corrupt a value — there the hit
// count is timing-dependent and deliberately not asserted.
func TestSharedCacheConcurrent(t *testing.T) {
	t.Run("sharing", func(t *testing.T) { hammerSharedCache(t, NewSharedCache(0), true) })
	t.Run("eviction-pressure", func(t *testing.T) { hammerSharedCache(t, NewSharedCache(64), false) })
}

func hammerSharedCache(t *testing.T, sc *SharedCache, wantHits bool) {
	rows := randomRows(9, 80, 5)
	const workers = 8
	evals := make([]*Evaluator, workers)
	checks := make([]*Evaluator, workers)
	for w := range evals {
		evals[w] = newEval(t, rows, 4, NormNone)
		checks[w] = newEval(t, rows, 4, NormNone)
	}
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			e, check := evals[worker], checks[worker]
			for i := 0; i < 40; i++ {
				idx := (worker + i) % e.Dataset().N()
				q := e.NewSharedQuery(e.Dataset().Point(idx), idx, sc)
				ok := true
				subspace.EachAll(5, func(s subspace.Mask) bool {
					want := check.OD(check.Dataset().Point(idx), s, idx)
					if got := q.OD(s); got != want {
						fail <- "shared cache returned a wrong OD value"
						ok = false
					}
					return ok
				})
				if !ok {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	st := sc.Stats()
	if wantHits && st.Hits == 0 {
		t.Fatal("concurrent duplicate queries produced no sharing")
	}
}
