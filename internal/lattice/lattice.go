// Package lattice tracks the evaluation status of every subspace in
// the 2^d - 1 lattice during a HOS-Miner search, and propagates the
// paper's two pruning rules (§3.1):
//
//   - downward pruning: a non-outlying subspace marks all of its
//     subsets non-outlying (Property 1);
//   - upward pruning: an outlying subspace marks all of its supersets
//     outlying (Property 2).
//
// The tracker also maintains the per-layer "remaining workload"
// counters that the paper's f_down(m) and f_up(m) fractions
// (Definition 3) are computed from.
package lattice

import (
	"fmt"

	"repro/internal/subspace"
)

// Status is the knowledge state of a single subspace.
type Status uint8

const (
	// Unknown: not yet evaluated and not implied by any pruning rule.
	Unknown Status = iota
	// OutlierEvaluated: OD was computed and found ≥ T.
	OutlierEvaluated
	// OutlierImplied: implied outlying by upward pruning from an
	// evaluated subset.
	OutlierImplied
	// NonOutlierEvaluated: OD was computed and found < T.
	NonOutlierEvaluated
	// NonOutlierImplied: implied non-outlying by downward pruning from
	// an evaluated superset.
	NonOutlierImplied
)

// String returns a short human-readable label.
func (s Status) String() string {
	switch s {
	case Unknown:
		return "unknown"
	case OutlierEvaluated:
		return "outlier(eval)"
	case OutlierImplied:
		return "outlier(implied)"
	case NonOutlierEvaluated:
		return "non-outlier(eval)"
	case NonOutlierImplied:
		return "non-outlier(implied)"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// IsOutlier reports whether the status marks the subspace outlying.
func (s Status) IsOutlier() bool { return s == OutlierEvaluated || s == OutlierImplied }

// IsNonOutlier reports whether the status marks the subspace
// non-outlying.
func (s Status) IsNonOutlier() bool { return s == NonOutlierEvaluated || s == NonOutlierImplied }

// Known reports whether the subspace has a definite status.
func (s Status) Known() bool { return s != Unknown }

// Tracker holds per-subspace status for a d-dimensional lattice.
//
// Memory: one byte per subspace, 2^d bytes total (16 MiB at the
// supported maximum d = 24).
type Tracker struct {
	d      int
	status []Status // indexed by mask; index 0 (empty set) unused

	unknownPerLayer []int64 // unknownPerLayer[m] = # unknown subspaces of card m
	unknownTotal    int64

	evaluations  int64 // # Mark* calls with evaluated=true
	impliedUp    int64 // # subspaces settled by upward propagation
	impliedDown  int64 // # subspaces settled by downward propagation
	outlierCount int64 // # subspaces currently known outlying
}

// NewTracker creates a tracker for a d-dimensional lattice with every
// non-empty subspace Unknown.
func NewTracker(d int) (*Tracker, error) {
	if d < 1 || d > subspace.MaxDim {
		return nil, fmt.Errorf("lattice: dimensionality %d out of range [1,%d]", d, subspace.MaxDim)
	}
	t := &Tracker{
		d:               d,
		status:          make([]Status, 1<<uint(d)),
		unknownPerLayer: make([]int64, d+1),
	}
	for m := 1; m <= d; m++ {
		t.unknownPerLayer[m] = subspace.Binomial(d, m)
		t.unknownTotal += t.unknownPerLayer[m]
	}
	return t, nil
}

// Dim returns the dimensionality of the tracked lattice.
func (t *Tracker) Dim() int { return t.d }

// Reset returns the tracker to the all-Unknown state for the same
// dimensionality, reusing its allocations. It is the pooled-reuse
// path: one tracker per worker, Reset per query, instead of a fresh
// 2^d status array per query.
func (t *Tracker) Reset() {
	clear(t.status)
	t.unknownTotal = 0
	t.unknownPerLayer[0] = 0
	for m := 1; m <= t.d; m++ {
		t.unknownPerLayer[m] = subspace.Binomial(t.d, m)
		t.unknownTotal += t.unknownPerLayer[m]
	}
	t.evaluations, t.impliedUp, t.impliedDown, t.outlierCount = 0, 0, 0, 0
}

// Status returns the current status of subspace s.
func (t *Tracker) Status(s subspace.Mask) Status {
	t.check(s)
	return t.status[s]
}

// check panics on masks outside the lattice — always a programming
// error in this library.
func (t *Tracker) check(s subspace.Mask) {
	if s.IsEmpty() || !s.SubsetOf(subspace.Full(t.d)) {
		panic(fmt.Sprintf("lattice: mask %v outside %d-dimensional lattice", s, t.d))
	}
}

func (t *Tracker) set(s subspace.Mask, st Status) {
	if t.status[s] == Unknown {
		m := s.Card()
		t.unknownPerLayer[m]--
		t.unknownTotal--
	}
	t.status[s] = st
}

// MarkOutlier records that subspace s is outlying (OD ≥ T) and applies
// upward pruning: every superset becomes OutlierImplied. evaluated
// distinguishes a direct OD evaluation from an implication (the
// tracker is also usable to replay externally derived facts).
// Marking an already-known subspace is a no-op (statuses never
// conflict in a correct search; a conflicting mark panics, as it can
// only arise from a broken OD oracle violating monotonicity).
func (t *Tracker) MarkOutlier(s subspace.Mask, evaluated bool) {
	t.check(s)
	if cur := t.status[s]; cur.Known() {
		if cur.IsNonOutlier() {
			panic(fmt.Sprintf("lattice: subspace %v already non-outlying, cannot mark outlying (monotonicity violated)", s))
		}
		return
	}
	if evaluated {
		t.set(s, OutlierEvaluated)
		t.evaluations++
	} else {
		t.set(s, OutlierImplied)
		t.impliedUp++
	}
	t.outlierCount++
	t.propagateUp(s)
}

// MarkNonOutlier records that subspace s is non-outlying (OD < T) and
// applies downward pruning: every subset becomes NonOutlierImplied.
func (t *Tracker) MarkNonOutlier(s subspace.Mask, evaluated bool) {
	t.check(s)
	if cur := t.status[s]; cur.Known() {
		if cur.IsOutlier() {
			panic(fmt.Sprintf("lattice: subspace %v already outlying, cannot mark non-outlying (monotonicity violated)", s))
		}
		return
	}
	if evaluated {
		t.set(s, NonOutlierEvaluated)
		t.evaluations++
	} else {
		t.set(s, NonOutlierImplied)
		t.impliedDown++
	}
	t.propagateDown(s)
}

// propagateUp marks all proper supersets of s OutlierImplied. The
// recursion adds one dimension at a time and stops at subspaces that
// are already known outlying, so each lattice edge is crossed at most
// once over the lifetime of the tracker.
func (t *Tracker) propagateUp(s subspace.Mask) {
	full := subspace.Full(t.d)
	free := full.Without(s)
	free.EachDim(func(dim int) {
		sup := s.With(dim)
		if t.status[sup].IsOutlier() {
			return // this branch already settled
		}
		if t.status[sup].IsNonOutlier() {
			panic(fmt.Sprintf("lattice: monotonicity violated at %v ⊃ %v", sup, s))
		}
		t.set(sup, OutlierImplied)
		t.impliedUp++
		t.outlierCount++
		t.propagateUp(sup)
	})
}

// propagateDown marks all proper non-empty subsets of s
// NonOutlierImplied, with the same memoized early exit as
// propagateUp.
func (t *Tracker) propagateDown(s subspace.Mask) {
	if s.Card() <= 1 {
		return
	}
	s.EachDim(func(dim int) {
		sub := s.Drop(dim)
		if t.status[sub].IsNonOutlier() {
			return
		}
		if t.status[sub].IsOutlier() {
			panic(fmt.Sprintf("lattice: monotonicity violated at %v ⊂ %v", sub, s))
		}
		t.set(sub, NonOutlierImplied)
		t.impliedDown++
		t.propagateDown(sub)
	})
}

// UnknownInLayer returns how many cardinality-m subspaces are still
// Unknown.
func (t *Tracker) UnknownInLayer(m int) int64 {
	if m < 1 || m > t.d {
		return 0
	}
	return t.unknownPerLayer[m]
}

// UnknownTotal returns the number of Unknown subspaces in the whole
// lattice.
func (t *Tracker) UnknownTotal() int64 { return t.unknownTotal }

// Done reports whether every subspace has a definite status.
func (t *Tracker) Done() bool { return t.unknownTotal == 0 }

// CdownLeft returns Σ dim(s) over Unknown subspaces with dim(s) < m —
// the numerator of the paper's f_down(m).
func (t *Tracker) CdownLeft(m int) int64 {
	var sum int64
	for i := 1; i < m && i <= t.d; i++ {
		sum += t.unknownPerLayer[i] * int64(i)
	}
	return sum
}

// CupLeft returns Σ dim(s) over Unknown subspaces with dim(s) > m —
// the numerator of the paper's f_up(m).
func (t *Tracker) CupLeft(m int) int64 {
	var sum int64
	for i := m + 1; i <= t.d; i++ {
		sum += t.unknownPerLayer[i] * int64(i)
	}
	return sum
}

// EachUnknownInLayer calls fn for every Unknown subspace of
// cardinality m, in ascending mask order, stopping early if fn
// returns false. The snapshot semantics matter: fn may mark subspaces
// (including upcoming ones); the iterator re-checks status before
// each call, so subspaces settled mid-iteration are skipped.
func (t *Tracker) EachUnknownInLayer(m int, fn func(subspace.Mask) bool) {
	subspace.EachOfDim(t.d, m, func(s subspace.Mask) bool {
		if t.status[s] != Unknown {
			return true
		}
		return fn(s)
	})
}

// Outliers returns every subspace currently known to be outlying
// (evaluated or implied), sorted by ascending cardinality then mask.
func (t *Tracker) Outliers() []subspace.Mask {
	return t.AppendOutliers(make([]subspace.Mask, 0, t.outlierCount))
}

// AppendOutliers appends every known-outlying subspace to dst in the
// canonical (ascending cardinality, then ascending mask) order —
// exactly what SortMasks would produce — and returns the extended
// slice. It is closure- and sort-free: a counting pass over the dense
// status array bins outliers by cardinality, a placement pass writes
// them in order. With a large enough dst it performs no allocation,
// which is what the zero-alloc query path relies on.
func (t *Tracker) AppendOutliers(dst []subspace.Mask) []subspace.Mask {
	var perCard [subspace.MaxDim + 1]int
	total := 0
	for v := 1; v < len(t.status); v++ {
		if t.status[v].IsOutlier() {
			perCard[subspace.Mask(v).Card()]++
			total++
		}
	}
	base := len(dst)
	need := base + total
	if cap(dst) < need {
		grown := make([]subspace.Mask, need)
		copy(grown, dst)
		dst = grown[:base]
	}
	dst = dst[:need]
	var offsets [subspace.MaxDim + 1]int
	off := base
	for c := 1; c <= t.d; c++ {
		offsets[c] = off
		off += perCard[c]
	}
	for v := 1; v < len(t.status); v++ {
		if t.status[v].IsOutlier() {
			c := subspace.Mask(v).Card()
			dst[offsets[c]] = subspace.Mask(v)
			offsets[c]++
		}
	}
	return dst
}

// OutlierCountInLayer returns how many cardinality-m subspaces are
// known outlying.
func (t *Tracker) OutlierCountInLayer(m int) int64 {
	var n int64
	subspace.EachOfDim(t.d, m, func(s subspace.Mask) bool {
		if t.status[s].IsOutlier() {
			n++
		}
		return true
	})
	return n
}

// Counters is a snapshot of the tracker's work accounting.
type Counters struct {
	Evaluations int64 // subspaces settled by direct OD evaluation
	ImpliedUp   int64 // settled by upward pruning
	ImpliedDown int64 // settled by downward pruning
	Outliers    int64 // currently known outlying
	Unknown     int64 // still unknown
	Total       int64 // 2^d - 1
}

// Counters returns the current work accounting.
func (t *Tracker) Counters() Counters {
	return Counters{
		Evaluations: t.evaluations,
		ImpliedUp:   t.impliedUp,
		ImpliedDown: t.impliedDown,
		Outliers:    t.outlierCount,
		Unknown:     t.unknownTotal,
		Total:       subspace.TotalSubspaces(t.d),
	}
}
