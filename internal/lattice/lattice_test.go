package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/subspace"
)

func newTracker(t *testing.T, d int) *Tracker {
	t.Helper()
	tr, err := NewTracker(d)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewTracker(subspace.MaxDim + 1); err == nil {
		t.Fatal("d>MaxDim accepted")
	}
	tr := newTracker(t, 5)
	if tr.Dim() != 5 {
		t.Fatalf("Dim = %d", tr.Dim())
	}
	if tr.UnknownTotal() != subspace.TotalSubspaces(5) {
		t.Fatalf("initial unknown = %d", tr.UnknownTotal())
	}
	if tr.Done() {
		t.Fatal("fresh tracker cannot be done")
	}
}

func TestStatusPredicates(t *testing.T) {
	if !OutlierEvaluated.IsOutlier() || !OutlierImplied.IsOutlier() {
		t.Fatal("outlier predicates")
	}
	if !NonOutlierEvaluated.IsNonOutlier() || !NonOutlierImplied.IsNonOutlier() {
		t.Fatal("non-outlier predicates")
	}
	if Unknown.Known() || !OutlierEvaluated.Known() {
		t.Fatal("known predicate")
	}
	for _, s := range []Status{Unknown, OutlierEvaluated, OutlierImplied, NonOutlierEvaluated, NonOutlierImplied, Status(42)} {
		if s.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestMarkOutlierPropagatesUp(t *testing.T) {
	d := 5
	tr := newTracker(t, d)
	s := subspace.New(1, 3)
	tr.MarkOutlier(s, true)
	if tr.Status(s) != OutlierEvaluated {
		t.Fatalf("status(s) = %v", tr.Status(s))
	}
	subspace.Supersets(d, s, func(sup subspace.Mask) bool {
		if tr.Status(sup) != OutlierImplied {
			t.Fatalf("superset %v = %v, want implied outlier", sup, tr.Status(sup))
		}
		return true
	})
	// Unrelated subspaces untouched.
	if tr.Status(subspace.New(0)) != Unknown || tr.Status(subspace.New(2, 4)) != Unknown {
		t.Fatal("unrelated subspaces were touched")
	}
	// Subsets untouched.
	if tr.Status(subspace.New(1)) != Unknown {
		t.Fatal("subset was touched by upward propagation")
	}
}

func TestMarkNonOutlierPropagatesDown(t *testing.T) {
	d := 5
	tr := newTracker(t, d)
	s := subspace.New(0, 2, 4)
	tr.MarkNonOutlier(s, true)
	if tr.Status(s) != NonOutlierEvaluated {
		t.Fatalf("status(s) = %v", tr.Status(s))
	}
	subspace.Subsets(s, func(sub subspace.Mask) bool {
		if tr.Status(sub) != NonOutlierImplied {
			t.Fatalf("subset %v = %v, want implied non-outlier", sub, tr.Status(sub))
		}
		return true
	})
	subspace.Supersets(d, s, func(sup subspace.Mask) bool {
		if tr.Status(sup) != Unknown {
			t.Fatalf("superset %v touched by downward propagation", sup)
		}
		return true
	})
}

func TestIdempotentMarks(t *testing.T) {
	tr := newTracker(t, 4)
	s := subspace.New(1)
	tr.MarkOutlier(s, true)
	before := tr.Counters()
	tr.MarkOutlier(s, true)                // repeat: no-op
	tr.MarkOutlier(subspace.Full(4), true) // already implied: no-op
	after := tr.Counters()
	if before != after {
		t.Fatalf("repeat marks changed counters: %+v -> %+v", before, after)
	}
}

func TestConflictPanics(t *testing.T) {
	tr := newTracker(t, 4)
	tr.MarkOutlier(subspace.New(1), true)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("marking implied-outlier superset non-outlying must panic")
			}
		}()
		tr.MarkNonOutlier(subspace.New(1, 2), true)
	}()

	tr2 := newTracker(t, 4)
	tr2.MarkNonOutlier(subspace.New(0, 1, 2), true)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("marking implied-non-outlier subset outlying must panic")
			}
		}()
		tr2.MarkOutlier(subspace.New(0, 1), true)
	}()
}

func TestOutOfLatticePanics(t *testing.T) {
	tr := newTracker(t, 3)
	for _, bad := range []subspace.Mask{subspace.Empty, subspace.New(3), subspace.New(0, 5)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mask %v accepted", bad)
				}
			}()
			tr.Status(bad)
		}()
	}
}

func TestLayerCountersAndWorkloads(t *testing.T) {
	d := 4
	tr := newTracker(t, d)
	// initial: layer m has C(4,m) unknowns
	for m := 1; m <= d; m++ {
		if got := tr.UnknownInLayer(m); got != subspace.Binomial(d, m) {
			t.Fatalf("layer %d unknown = %d", m, got)
		}
	}
	if tr.UnknownInLayer(0) != 0 || tr.UnknownInLayer(d+1) != 0 {
		t.Fatal("out-of-range layers must report 0")
	}
	// CdownLeft(3) initially = C(4,1)*1 + C(4,2)*2 = 4 + 12 = 16
	if got := tr.CdownLeft(3); got != 16 {
		t.Fatalf("CdownLeft(3) = %d, want 16", got)
	}
	// CupLeft(3) initially = C(4,4)*4 = 4
	if got := tr.CupLeft(3); got != 4 {
		t.Fatalf("CupLeft(3) = %d, want 4", got)
	}
	// Settle [0] as outlier: supersets of [0] all become implied.
	tr.MarkOutlier(subspace.New(0), true)
	// Layer 1 now has 3 unknowns; layer 2 has C(4,2)-3=3; layer 3 has
	// C(4,3)-3=1; layer 4 has 0.
	wants := []int64{0, 3, 3, 1, 0}
	for m := 1; m <= d; m++ {
		if got := tr.UnknownInLayer(m); got != wants[m] {
			t.Fatalf("after mark, layer %d unknown = %d, want %d", m, got, wants[m])
		}
	}
	if got := tr.CdownLeft(3); got != 3*1+3*2 {
		t.Fatalf("CdownLeft(3) = %d, want 9", got)
	}
	if got := tr.CupLeft(1); got != 3*2+1*3+0*4 {
		t.Fatalf("CupLeft(1) = %d, want 9", got)
	}
}

func TestEachUnknownInLayerSkipsSettledMidIteration(t *testing.T) {
	d := 4
	tr := newTracker(t, d)
	var visited []subspace.Mask
	tr.EachUnknownInLayer(2, func(s subspace.Mask) bool {
		visited = append(visited, s)
		// Settle everything containing dim 3 as outlier via a cheap
		// mark; later 2-dim subspaces containing 3 must be skipped.
		if len(visited) == 1 {
			tr.MarkOutlier(subspace.New(3), true)
		}
		return true
	})
	for i, s := range visited {
		if i > 0 && s.Contains(3) {
			t.Fatalf("visited settled subspace %v", s)
		}
	}
}

func TestDoneAfterFullSettlement(t *testing.T) {
	d := 6
	tr := newTracker(t, d)
	// Marking every singleton non-outlying and the full space outlying
	// is not enough; drive to done by marking every remaining unknown.
	subspace.EachAll(d, func(s subspace.Mask) bool {
		if tr.Status(s) == Unknown {
			if s.Card()%2 == 0 {
				tr.MarkOutlier(s, true)
			} else {
				tr.MarkNonOutlier(s, true)
			}
		}
		return true
	})
	if !tr.Done() || tr.UnknownTotal() != 0 {
		t.Fatalf("not done: %d unknown", tr.UnknownTotal())
	}
	c := tr.Counters()
	if c.Evaluations+c.ImpliedUp+c.ImpliedDown != c.Total {
		t.Fatalf("accounting mismatch: %+v", c)
	}
}

// TestPropagationMatchesBruteForce drives a tracker with a random
// monotone ground-truth (a threshold on a random monotone function)
// and checks that after settling all subspaces, outlier statuses agree
// with the ground truth exactly.
func TestPropagationMatchesBruteForce(t *testing.T) {
	const d = 6
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		// Monotone score: weight per dim, score = sum of weights.
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.Float64()
		}
		threshold := rng.Float64() * 3
		score := func(s subspace.Mask) float64 {
			var sum float64
			s.EachDim(func(dim int) { sum += w[dim] })
			return sum
		}
		isOut := func(s subspace.Mask) bool { return score(s) >= threshold }

		tr := newTracker(t, d)
		// Visit in random order, evaluating only unknowns.
		order := subspace.All(d)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		evals := 0
		for _, s := range order {
			if tr.Status(s) != Unknown {
				continue
			}
			evals++
			if isOut(s) {
				tr.MarkOutlier(s, true)
			} else {
				tr.MarkNonOutlier(s, true)
			}
		}
		if !tr.Done() {
			t.Fatal("tracker not done after settling all")
		}
		if int64(evals) != tr.Counters().Evaluations {
			t.Fatalf("eval accounting: %d vs %+v", evals, tr.Counters())
		}
		subspace.EachAll(d, func(s subspace.Mask) bool {
			if tr.Status(s).IsOutlier() != isOut(s) {
				t.Fatalf("trial %d: status(%v) = %v, truth outlier=%v",
					trial, s, tr.Status(s), isOut(s))
			}
			return true
		})
		// Pruning must have saved work: evaluated < total unless the
		// truth is pathologically alternating (impossible for monotone
		// truth with d=6 unless threshold puts everything on one side
		// of every chain — still saves via propagation).
		if evals > int(subspace.TotalSubspaces(d)) {
			t.Fatalf("more evals than subspaces: %d", evals)
		}
	}
}

// TestCountersInvariant (property): for any random mark sequence that
// respects monotone truth, Unknown + Evaluations + ImpliedUp +
// ImpliedDown == Total at all times.
func TestCountersInvariant(t *testing.T) {
	f := func(seed int64) bool {
		const d = 5
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.Float64()
		}
		threshold := rng.Float64() * 2.5
		tr, err := NewTracker(d)
		if err != nil {
			return false
		}
		order := subspace.All(d)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, s := range order {
			if tr.Status(s) != Unknown {
				continue
			}
			var sum float64
			s.EachDim(func(dim int) { sum += w[dim] })
			if sum >= threshold {
				tr.MarkOutlier(s, true)
			} else {
				tr.MarkNonOutlier(s, true)
			}
			c := tr.Counters()
			if c.Unknown+c.Evaluations+c.ImpliedUp+c.ImpliedDown != c.Total {
				return false
			}
		}
		return tr.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOutliersSortedAndComplete(t *testing.T) {
	d := 5
	tr := newTracker(t, d)
	tr.MarkOutlier(subspace.New(1, 2), true)
	tr.MarkOutlier(subspace.New(4), true)
	outs := tr.Outliers()
	seen := map[subspace.Mask]bool{}
	for i, s := range outs {
		if !tr.Status(s).IsOutlier() {
			t.Fatalf("non-outlier %v in Outliers()", s)
		}
		seen[s] = true
		if i > 0 {
			prev := outs[i-1]
			if prev.Card() > s.Card() || (prev.Card() == s.Card() && prev >= s) {
				t.Fatal("Outliers not canonically sorted")
			}
		}
	}
	subspace.EachAll(d, func(s subspace.Mask) bool {
		if tr.Status(s).IsOutlier() && !seen[s] {
			t.Fatalf("outlier %v missing from Outliers()", s)
		}
		return true
	})
	if got := tr.OutlierCountInLayer(1); got != 1 {
		t.Fatalf("layer-1 outliers = %d, want 1 ([4])", got)
	}
	// Layer 2: supersets of [4] are C(4,1)=4 many 2-dim subspaces, plus
	// the evaluated [1,2] = 5.
	if got := tr.OutlierCountInLayer(2); got != 5 {
		t.Fatalf("layer-2 outliers = %d, want 5", got)
	}
}
