package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// encoder appends fixed-width little-endian primitives to a buffer.
// Strings and byte blobs are u32-length-prefixed.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) f64s(vs []float64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

// decoder reads the encoder's output back with a sticky error: every
// read is bounds-checked against the remaining payload, and any
// overrun surfaces as ErrCorrupt (the CRC already passed, so a short
// field is structural corruption, not truncation).
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.remaining() < n {
		d.err = fmt.Errorf("%w: field overruns payload", ErrCorrupt)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// bytes returns a copy, so the decoded snapshot does not alias the
// payload buffer.
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if b == nil || n == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *decoder) f64s() []float64 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if d.remaining()/8 < n {
		d.err = fmt.Errorf("%w: float slice overruns payload", ErrCorrupt)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// putU32/putU64/getU32/getU64 operate on the fixed header outside the
// payload encoder.
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
