// Package snapshot persists a named dataset together with every
// preprocessing artifact the serving path needs — the normalized
// vector.Dataset, generation provenance, the full miner configuration
// (including shard layout), the resolved threshold and learned priors,
// and the serialized X-tree index — in a versioned, checksummed binary
// file. Restoring a snapshot reconstructs a miner that answers every
// query byte-identically to the freshly built one (internal/conformance
// pins this across backends and shard widths) while skipping threshold
// resolution, learning AND index construction, which dominate startup
// cost on large datasets.
//
// On-disk layout (all integers little-endian; see DESIGN.md §8):
//
//	[8]  magic "HOSSNAP1"
//	[4]  format version (currently 1)
//	[8]  payload length in bytes
//	[4]  CRC-32 (IEEE) of the payload
//	[..] payload: name, provenance, dataset, config, state?, index?
//
// The CRC covers the entire payload, so a flipped bit anywhere is
// detected before any field is trusted; within the payload every read
// is bounds-checked and every enum validated, so a corrupt or hostile
// file yields a typed error (ErrBadMagic, ErrVersion, ErrTruncated,
// ErrChecksum, ErrCorrupt — all matching errors.Is(err, ErrSnapshot)),
// never a panic. A snapshot may be dataset-only (hosgen -save): it
// carries no preprocessed state or index and restores into a plain
// dataset rather than a miner.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Magic identifies a snapshot file; Version guards the payload layout.
// Version bumps are compatibility breaks: readers reject newer
// versions rather than guessing (the format carries no migration
// metadata by design — snapshots are rebuildable caches, not archives).
const (
	Version = 1
)

var magic = [8]byte{'H', 'O', 'S', 'S', 'N', 'A', 'P', '1'}

// ErrSnapshot is the class every decode failure matches via errors.Is,
// whatever the specific cause below.
var ErrSnapshot = errors.New("snapshot: invalid snapshot")

// Typed decode failures. All wrap ErrSnapshot.
var (
	// ErrBadMagic: the file does not start with the snapshot magic —
	// not a snapshot at all.
	ErrBadMagic = fmt.Errorf("%w: bad magic (not a snapshot file)", ErrSnapshot)
	// ErrVersion: a snapshot from a newer (or unknown) format version.
	ErrVersion = fmt.Errorf("%w: unsupported format version", ErrSnapshot)
	// ErrTruncated: the stream ended before the declared payload did.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrSnapshot)
	// ErrChecksum: the payload bytes do not match their CRC.
	ErrChecksum = fmt.Errorf("%w: checksum mismatch (corrupt file)", ErrSnapshot)
	// ErrCorrupt: the checksum held but a field is structurally invalid
	// (also the verdict for a truncation the CRC happens to cover).
	ErrCorrupt = fmt.Errorf("%w: corrupt payload", ErrSnapshot)
)

// Provenance records where a snapshot's dataset came from, pinning
// experiments to exact bytes: a generator name + seed reproduces the
// raw data, Source names an external file, and Normalized records
// whether min-max rescaling ran before preprocessing.
type Provenance struct {
	// Generator is the datagen.ByName generator ("" when the dataset
	// was loaded from a file rather than generated).
	Generator string
	// Seed is the generation seed (meaningful with Generator).
	Seed int64
	// Source is the path the dataset was loaded from ("" when
	// generated).
	Source string
	// Normalized records that columns were min-max rescaled to [0,1]
	// before the snapshot was taken.
	Normalized bool
	// CreatedUnix is the capture time (Unix seconds).
	CreatedUnix int64
}

// ColumnRange is one dimension's raw-data [Min, Max] span from before
// min-max normalization. A snapshot of a normalized dataset carries
// one per column so a restored server can rebuild the point transform
// that maps raw-unit ad-hoc query vectors into the dataset's [0,1]
// coordinate space — without it, every client vector would look
// maximally distant from the normalized data after a restart.
type ColumnRange struct {
	Min, Max float64
}

// Snapshot is the in-memory form of one snapshot file.
type Snapshot struct {
	// Name is the dataset's registry name (also the conventional file
	// stem: <name>.snap).
	Name string
	// Provenance pins the dataset's origin.
	Provenance Provenance
	// Dataset is the (possibly normalized) data exactly as served.
	Dataset *vector.Dataset
	// Config is the full miner parameterisation, shard layout included.
	// Meaningful whenever State is present; for dataset-only snapshots
	// it is the zero Config.
	Config core.Config
	// State is the preprocessed outcome (resolved threshold + priors);
	// nil for dataset-only snapshots.
	State *core.State
	// Index is the serialized k-NN index; nil for dataset-only
	// snapshots (and empty for linear-scan configurations).
	Index *core.IndexSnapshot
	// NormStats is the per-column raw [Min, Max] behind a min-max
	// normalized dataset (len Dim), empty when the dataset is served
	// in raw units. Restorers use it to rebuild the ad-hoc-point
	// transform.
	NormStats []ColumnRange
}

// HasState reports whether the snapshot carries preprocessed state —
// i.e. whether Restore can produce a ready miner.
func (s *Snapshot) HasState() bool { return s != nil && s.State != nil }

// Capture snapshots a preprocessed miner together with its dataset.
// It fails if the miner has not run Preprocess (or ImportState): a
// snapshot exists to skip that work, so capturing before it happened
// would persist a lie.
func Capture(name string, prov Provenance, m *core.Miner) (*Snapshot, error) {
	if m == nil {
		return nil, fmt.Errorf("snapshot: nil miner")
	}
	state, err := m.ExportState()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	idx, err := m.ExportIndex()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &Snapshot{
		Name:       name,
		Provenance: prov,
		Dataset:    m.Dataset(),
		Config:     m.Config(),
		State:      state,
		Index:      idx,
	}, nil
}

// FromDataset builds a dataset-only snapshot (no preprocessed state,
// no index) — the hosgen form, loadable anywhere a CSV is.
func FromDataset(name string, prov Provenance, ds *vector.Dataset) (*Snapshot, error) {
	if ds == nil {
		return nil, fmt.Errorf("snapshot: nil dataset")
	}
	return &Snapshot{Name: name, Provenance: prov, Dataset: ds}, nil
}

// Restore reconstructs a ready-to-serve miner: the index is decoded
// rather than rebuilt and the state imported rather than relearned,
// so no OD evaluation or tree insertion runs. It fails on
// dataset-only snapshots — build a miner over s.Dataset directly for
// those.
func (s *Snapshot) Restore() (*core.Miner, error) {
	if !s.HasState() {
		return nil, fmt.Errorf("snapshot: %q is dataset-only (no preprocessed state); configure a miner over its dataset instead", s.Name)
	}
	m, err := core.NewMinerWithIndex(s.Dataset, s.Config, s.Index)
	if err != nil {
		return nil, fmt.Errorf("snapshot: restoring %q: %w", s.Name, err)
	}
	if err := m.ImportState(s.State); err != nil {
		return nil, fmt.Errorf("snapshot: restoring %q: %w", s.Name, err)
	}
	return m, nil
}

// Write serializes the snapshot: header, CRC, payload.
func Write(w io.Writer, s *Snapshot) error {
	if s == nil || s.Dataset == nil {
		return fmt.Errorf("snapshot: nothing to write (nil snapshot or dataset)")
	}
	if s.State != nil {
		// Guard invariants the reader will enforce, so a bad capture
		// fails at write time (attributable) rather than at some future
		// boot (not).
		if err := s.Config.Validate(s.Dataset); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	payload := encodePayload(s)
	var hdr [24]byte
	copy(hdr[:8], magic[:])
	putU32(hdr[8:12], Version)
	putU64(hdr[12:20], uint64(len(payload)))
	putU32(hdr[20:24], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read parses a snapshot stream, verifying magic, version, length and
// checksum before decoding a single payload field.
func Read(r io.Reader) (*Snapshot, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrBadMagic
	}
	if v := getU32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("%w: have %d, support %d", ErrVersion, v, Version)
	}
	length := getU64(hdr[12:20])
	want := getU32(hdr[20:24])
	// Grow-as-you-read: never pre-allocate the declared length, which
	// an adversarial header could set to anything.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, err
	}
	if uint64(len(payload)) != length {
		return nil, ErrTruncated
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrChecksum
	}
	return decodePayload(payload)
}

// SaveFile writes the snapshot to path atomically and durably:
// write(tmp) → fsync(tmp) → rename → fsync(directory). The rename
// keeps a crash mid-write from leaving a half-snapshot where a warm
// start would find it; the directory fsync makes the *name* durable —
// without it, power loss after the rename can resurrect the old file
// (or none), and a sibling WAL bound to the new file's CRC would be
// rejected as stale on restart (see internal/wal's ordering contract).
func SaveFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadFile reads a snapshot file.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ---- payload encoding ----

// Section presence flags.
const (
	flagState = 1 << 0
	flagIndex = 1 << 1
	flagNorm  = 1 << 2
)

func encodePayload(s *Snapshot) []byte {
	e := &encoder{}
	e.str(s.Name)
	// Provenance.
	e.str(s.Provenance.Generator)
	e.i64(s.Provenance.Seed)
	e.str(s.Provenance.Source)
	e.bool(s.Provenance.Normalized)
	e.i64(s.Provenance.CreatedUnix)
	// Dataset.
	ds := s.Dataset
	e.u32(uint32(ds.N()))
	e.u32(uint32(ds.Dim()))
	cols := ds.Columns()
	e.bool(cols != nil)
	for _, c := range cols {
		e.str(c)
	}
	for i := 0; i < ds.N(); i++ {
		for _, v := range ds.Point(i) {
			e.f64(v)
		}
	}
	// Sections.
	var flags uint8
	if s.State != nil {
		flags |= flagState
	}
	if s.Index != nil {
		flags |= flagIndex
	}
	if len(s.NormStats) > 0 {
		flags |= flagNorm
	}
	e.u8(flags)
	if s.State != nil {
		encodeConfig(e, s.Config)
		e.f64(s.State.Threshold)
		e.bool(s.State.Learned)
		e.f64s(s.State.PUp)
		e.f64s(s.State.PDown)
	}
	if s.Index != nil {
		e.bytes(s.Index.Tree)
		e.bool(s.Index.ShardTrees != nil)
		if s.Index.ShardTrees != nil {
			e.u32(uint32(len(s.Index.ShardTrees)))
			for _, b := range s.Index.ShardTrees {
				e.bytes(b)
			}
		}
	}
	if len(s.NormStats) > 0 {
		e.u32(uint32(len(s.NormStats)))
		for _, c := range s.NormStats {
			e.f64(c.Min)
			e.f64(c.Max)
		}
	}
	return e.buf
}

func encodeConfig(e *encoder, c core.Config) {
	e.u32(uint32(c.K))
	e.f64(c.T)
	e.f64(c.TQuantile)
	e.u8(uint8(c.Metric))
	e.u32(uint32(c.SampleSize))
	e.i64(c.Seed)
	e.u8(uint8(c.Policy))
	e.u8(uint8(c.Backend))
	e.u32(uint32(c.Shards))
	e.u8(uint8(c.Partitioner))
}

func decodePayload(payload []byte) (*Snapshot, error) {
	d := &decoder{buf: payload}
	s := &Snapshot{}
	s.Name = d.str()
	s.Provenance.Generator = d.str()
	s.Provenance.Seed = d.i64()
	s.Provenance.Source = d.str()
	s.Provenance.Normalized = d.bool()
	s.Provenance.CreatedUnix = d.i64()

	n := int(d.u32())
	dim := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if dim < 1 || dim > subspace.MaxDim {
		return nil, fmt.Errorf("%w: dimensionality %d out of [1,%d]", ErrCorrupt, dim, subspace.MaxDim)
	}
	var cols []string
	if d.bool() {
		cols = make([]string, dim)
		for i := range cols {
			cols[i] = d.str()
		}
	}
	// Bound the allocation by the bytes actually present: n*dim floats
	// need n*dim*8 payload bytes.
	if d.err == nil && d.remaining()/8 < n*dim {
		return nil, fmt.Errorf("%w: dataset claims %d×%d values, payload too short", ErrCorrupt, n, dim)
	}
	flat := make([]float64, n*dim)
	for i := range flat {
		flat[i] = d.f64()
	}
	if d.err != nil {
		return nil, d.err
	}
	// The same finiteness contract dataio enforces on CSV: mining over
	// NaN/±Inf is undefined (every distance comparison involving NaN
	// is false), and snapshots are operator-provided files — a crafted
	// or re-checksummed one must not smuggle poison into the serving
	// path.
	for i, v := range flat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite coordinate %v at row %d col %d", ErrCorrupt, v, i/dim, i%dim)
		}
	}
	ds, err := vector.NewDataset(flat, n, dim)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if cols != nil {
		if err := ds.SetColumns(cols); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	s.Dataset = ds

	flags := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	if flags&^(flagState|flagIndex|flagNorm) != 0 {
		return nil, fmt.Errorf("%w: unknown section flags %#x", ErrCorrupt, flags)
	}
	if flags&flagState != 0 {
		cfg, err := decodeConfig(d)
		if err != nil {
			return nil, err
		}
		s.Config = cfg
		st := &core.State{
			Version:   core.StateVersion,
			Dim:       dim,
			K:         cfg.K,
			Metric:    cfg.Metric.String(),
			Threshold: d.f64(),
			Learned:   d.bool(),
		}
		st.PUp = d.f64s()
		st.PDown = d.f64s()
		if d.err != nil {
			return nil, d.err
		}
		s.State = st
		if err := s.Config.Validate(ds); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if flags&flagIndex != 0 {
		idx := &core.IndexSnapshot{}
		idx.Tree = d.bytes()
		if d.bool() {
			count := int(d.u32())
			if d.err != nil {
				return nil, d.err
			}
			if count > d.remaining() {
				return nil, fmt.Errorf("%w: %d shard trees in %d remaining bytes", ErrCorrupt, count, d.remaining())
			}
			idx.ShardTrees = make([][]byte, count)
			for i := range idx.ShardTrees {
				idx.ShardTrees[i] = d.bytes()
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		s.Index = idx
	}
	if flags&flagNorm != 0 {
		count := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if count != dim {
			return nil, fmt.Errorf("%w: %d normalization ranges for %d dims", ErrCorrupt, count, dim)
		}
		s.NormStats = make([]ColumnRange, count)
		for i := range s.NormStats {
			s.NormStats[i] = ColumnRange{Min: d.f64(), Max: d.f64()}
		}
		if d.err != nil {
			return nil, d.err
		}
		for i, c := range s.NormStats {
			if math.IsNaN(c.Min) || math.IsInf(c.Min, 0) || math.IsNaN(c.Max) || math.IsInf(c.Max, 0) || c.Max < c.Min {
				return nil, fmt.Errorf("%w: invalid normalization range [%v,%v] for dim %d", ErrCorrupt, c.Min, c.Max, i)
			}
		}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return s, d.err
}

func decodeConfig(d *decoder) (core.Config, error) {
	cfg := core.Config{
		K:         int(d.u32()),
		T:         d.f64(),
		TQuantile: d.f64(),
		Metric:    vector.Metric(d.u8()),
	}
	cfg.SampleSize = int(d.u32())
	cfg.Seed = d.i64()
	cfg.Policy = core.Policy(d.u8())
	cfg.Backend = core.Backend(d.u8())
	cfg.Shards = int(d.u32())
	cfg.Partitioner = shard.Partitioner(d.u8())
	if d.err != nil {
		return cfg, d.err
	}
	// Enum sanity beyond what Config.Validate covers (it assumes values
	// produced by parsers, not by a file).
	if !cfg.Metric.Valid() || !cfg.Policy.Valid() || cfg.Backend > core.BackendXTree || !cfg.Partitioner.Valid() {
		return cfg, fmt.Errorf("%w: invalid enum in config", ErrCorrupt)
	}
	return cfg, nil
}
