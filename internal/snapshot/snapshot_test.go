package snapshot

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
)

func testMiner(t *testing.T, cfg core.Config) *core.Miner {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 140, D: 4, NumOutliers: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	return m
}

func captureTest(t *testing.T, cfg core.Config) *Snapshot {
	t.Helper()
	m := testMiner(t, cfg)
	s, err := Capture("unit", Provenance{Generator: "synthetic", Seed: 21, CreatedUnix: 1700000000}, m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWriteReadRoundTrip pins every field of the container format
// through a full write/read cycle, for unsharded and sharded capture.
func TestWriteReadRoundTrip(t *testing.T) {
	configs := map[string]core.Config{
		"xtree":   {K: 4, TQuantile: 0.9, Seed: 2, Backend: core.BackendXTree, SampleSize: 10},
		"linear":  {K: 4, T: 8, Seed: 2, Backend: core.BackendLinear},
		"sharded": {K: 4, TQuantile: 0.9, Seed: 2, Backend: core.BackendXTree, Shards: 3, Partitioner: shard.HashPoint},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			s := captureTest(t, cfg)
			var buf bytes.Buffer
			if err := Write(&buf, s); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if got.Name != s.Name || got.Provenance != s.Provenance {
				t.Fatalf("identity diverged: %+v vs %+v", got, s)
			}
			if got.Config != s.Config {
				t.Fatalf("config diverged: %+v vs %+v", got.Config, s.Config)
			}
			if !reflect.DeepEqual(got.State, s.State) {
				t.Fatalf("state diverged: %+v vs %+v", got.State, s.State)
			}
			if !reflect.DeepEqual(got.Index, s.Index) {
				t.Fatalf("index diverged")
			}
			if !reflect.DeepEqual(got.Dataset.Rows(), s.Dataset.Rows()) {
				t.Fatal("dataset bytes diverged")
			}
			if !reflect.DeepEqual(got.Dataset.Columns(), s.Dataset.Columns()) {
				t.Fatalf("columns diverged: %v vs %v", got.Dataset.Columns(), s.Dataset.Columns())
			}

			// And the restored miner answers like the original.
			fresh := testMiner(t, cfg)
			warm, err := got.Restore()
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if warm.Threshold() != fresh.Threshold() {
				t.Fatalf("threshold %v vs %v", warm.Threshold(), fresh.Threshold())
			}
			for i := 0; i < 25; i++ {
				a, err := fresh.OutlyingSubspacesOfPoint(i)
				if err != nil {
					t.Fatal(err)
				}
				b, err := warm.OutlyingSubspacesOfPoint(i)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Minimal, b.Minimal) {
					t.Fatalf("point %d: %v vs %v", i, a.Minimal, b.Minimal)
				}
			}
		})
	}
}

func TestDatasetOnlySnapshot(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 60, D: 3, NumOutliers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromDataset("gen-only", Provenance{Generator: "synthetic", Seed: 5}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasState() {
		t.Fatal("dataset-only snapshot claims state")
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasState() || got.Index != nil {
		t.Fatalf("dataset-only snapshot grew sections: %+v", got)
	}
	if !reflect.DeepEqual(got.Dataset.Rows(), ds.Rows()) {
		t.Fatal("dataset diverged")
	}
	if _, err := got.Restore(); err == nil {
		t.Fatal("Restore succeeded without state")
	}
}

func TestSaveLoadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unit.snap")
	s := captureTest(t, core.Config{K: 4, TQuantile: 0.9, Seed: 2})
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "unit" {
		t.Fatalf("name = %q", got.Name)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the snapshot", len(entries))
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestTypedDecodeErrors drives each failure class and checks the
// errors.Is taxonomy.
func TestTypedDecodeErrors(t *testing.T) {
	s := captureTest(t, core.Config{K: 4, TQuantile: 0.9, Seed: 2, Backend: core.BackendXTree})
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Bad magic.
	mut := append([]byte(nil), valid...)
	mut[0] = 'X'
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	// Future version.
	mut = append([]byte(nil), valid...)
	mut[8] = 99
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v", err)
	}
	// Truncations at every boundary class.
	for _, cut := range []int{0, 7, 23, 24, len(valid) / 2, len(valid) - 1} {
		if _, err := Read(bytes.NewReader(valid[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
	// Payload corruption: CRC catches any payload flip.
	mut = append([]byte(nil), valid...)
	mut[24+len(mut[24:])/2] ^= 0x01
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip: %v", err)
	}
	// Consistent CRC over a corrupt field: recompute the CRC after
	// mutating the declared name length to something absurd.
	mut = append([]byte(nil), valid...)
	putU32(mut[24:28], 1<<30) // name length field
	rehash(mut)
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("field overrun: %v", err)
	}
	// All of the above are ErrSnapshot.
	for _, err := range []error{ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt} {
		if !errors.Is(err, ErrSnapshot) {
			t.Fatalf("%v does not match ErrSnapshot", err)
		}
	}
	// Writing nothing fails.
	if err := Write(&buf, nil); err == nil {
		t.Fatal("Write(nil) succeeded")
	}
}

// rehash recomputes the header CRC over the (mutated) payload so the
// decoder gets past the checksum and into field validation.
func rehash(b []byte) {
	putU32(b[20:24], crc32.ChecksumIEEE(b[24:]))
}

// TestConstructorGuards covers the nil-argument and error arms of the
// public constructors.
func TestConstructorGuards(t *testing.T) {
	if _, err := Capture("x", Provenance{}, nil); err == nil {
		t.Fatal("Capture(nil miner) succeeded")
	}
	if _, err := FromDataset("x", Provenance{}, nil); err == nil {
		t.Fatal("FromDataset(nil) succeeded")
	}
	// Capturing an un-preprocessed miner must fail: the snapshot would
	// claim state that does not exist.
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 50, D: 3, NumOutliers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{K: 3, TQuantile: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Capture("raw", Provenance{}, m); err == nil {
		t.Fatal("Capture before Preprocess succeeded")
	}
	// SaveFile into a nonexistent directory fails cleanly.
	s := captureTest(t, core.Config{K: 4, TQuantile: 0.9, Seed: 2})
	if err := SaveFile(filepath.Join(t.TempDir(), "no", "dir", "x.snap"), s); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
}

// TestCorruptFieldsAfterRehash drives decodePayload's structural arms
// that only a CRC-consistent corruption can reach.
func TestCorruptFieldsAfterRehash(t *testing.T) {
	s := captureTest(t, core.Config{K: 4, TQuantile: 0.9, Seed: 2, Backend: core.BackendXTree})
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Locate the dataset dim field: payload starts at 24 with
	// name(4+len), generator(4+len), seed(8), source(4+len),
	// normalized(1), created(8), n(4), dim(4).
	off := 24
	off += 4 + len(s.Name)
	off += 4 + len(s.Provenance.Generator)
	off += 8
	off += 4 + len(s.Provenance.Source)
	off += 1 + 8
	nOff, dimOff := off, off+4

	mutate := func(f func(b []byte)) error {
		mut := append([]byte(nil), valid...)
		f(mut)
		rehash(mut)
		_, err := Read(bytes.NewReader(mut))
		return err
	}
	// Absurd dimensionality.
	if err := mutate(func(b []byte) { putU32(b[dimOff:], 9999) }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dim=9999: %v", err)
	}
	// Zero dimensionality.
	if err := mutate(func(b []byte) { putU32(b[dimOff:], 0) }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dim=0: %v", err)
	}
	// Dataset bigger than the payload can hold.
	if err := mutate(func(b []byte) { putU32(b[nOff:], 1<<30) }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("n=2^30: %v", err)
	}
	// Unknown section flags / trailing garbage: flip the final byte of
	// the payload tail after appending junk.
	mut := append([]byte(nil), valid...)
	mut = append(mut, 0xAB)
	putU64(mut[12:20], uint64(len(mut)-24))
	rehash(mut)
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v", err)
	}
}

// TestNormStatsRoundTripAndValidation: normalization ranges survive
// the byte format, and non-finite dataset coordinates or degenerate
// ranges are rejected as corrupt even under a consistent CRC.
func TestNormStatsRoundTripAndValidation(t *testing.T) {
	s := captureTest(t, core.Config{K: 4, TQuantile: 0.9, Seed: 2})
	s.NormStats = []ColumnRange{{0, 10}, {-5, 5}, {1, 1}, {0, 2}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	got, err := Read(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.NormStats, s.NormStats) {
		t.Fatalf("norm stats diverged: %v vs %v", got.NormStats, s.NormStats)
	}

	// NaN in a normalization range: corrupt.
	nanBits := math.Float64bits(math.NaN())
	mut := append([]byte(nil), valid...)
	putU64(mut[len(mut)-16:], nanBits) // Min of the final range
	rehash(mut)
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN norm range: %v", err)
	}
	// Inverted range: corrupt.
	mut = append([]byte(nil), valid...)
	putU64(mut[len(mut)-16:], math.Float64bits(99))
	rehash(mut)
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inverted norm range: %v", err)
	}

	// NaN dataset coordinate (the dataio finiteness contract holds on
	// the snapshot path too): first float of the data block.
	off := 24
	off += 4 + len(s.Name)
	off += 4 + len(s.Provenance.Generator)
	off += 8
	off += 4 + len(s.Provenance.Source)
	off += 1 + 8
	off += 4 + 4 + 1 // n, dim, has-columns (captureTest data has none)
	mut = append([]byte(nil), valid...)
	putU64(mut[off:], nanBits)
	rehash(mut)
	if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("NaN coordinate: %v", err)
	}
}
