package snapshot

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
)

// fuzzSeed builds one valid snapshot byte stream for the corpus.
func fuzzSeed(tb testing.TB, cfg core.Config) []byte {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 80, D: 3, NumOutliers: 2, Seed: 4})
	if err != nil {
		tb.Fatal(err)
	}
	m, err := core.NewMiner(ds, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		tb.Fatal(err)
	}
	s, err := Capture("fuzz", Provenance{Generator: "synthetic", Seed: 4}, m)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotRead is the decoder's no-panic guarantee: whatever bytes
// arrive — truncated, bit-flipped, adversarial — Read must return a
// snapshot or a typed error, never panic or runaway-allocate. Run in
// CI as a fuzz smoke (-fuzztime=10s) and forever expandable locally.
func FuzzSnapshotRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("HOSSNAP1"))
	f.Add(fuzzSeed(f, core.Config{K: 3, TQuantile: 0.9, Seed: 1, Backend: core.BackendXTree}))
	f.Add(fuzzSeed(f, core.Config{K: 3, T: 5, Seed: 1, Shards: 2, Partitioner: shard.HashPoint, Backend: core.BackendXTree}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrSnapshot) {
				t.Fatalf("decode error outside the typed taxonomy: %v", err)
			}
			return
		}
		// A successful parse must yield a structurally usable snapshot:
		// restoring it may fail (index/config shape), but never panic.
		if s.Dataset == nil {
			t.Fatal("nil dataset on successful read")
		}
		if s.HasState() {
			_, _ = s.Restore()
		}
	})
}
