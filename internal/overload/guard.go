package overload

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Reason says why a request was shed.
type Reason int

const (
	// ReasonBreakerOpen: the dataset's breaker is open (or its probe
	// budget is spent). Maps to 503 + Retry-After.
	ReasonBreakerOpen Reason = iota
	// ReasonCapacity: the class's share of the concurrency limit (or
	// its static cap) is full. Maps to 429 for fail-fast classes and
	// 503 for an interactive request that waited out its deadline.
	ReasonCapacity
	// ReasonCancelled: the client's context ended while the request
	// waited for a slot — counted as shed (it was never admitted) but
	// reported 408-family, the client's own doing.
	ReasonCancelled
)

// String names the reason (error messages and tests).
func (r Reason) String() string {
	switch r {
	case ReasonBreakerOpen:
		return "breaker_open"
	case ReasonCapacity:
		return "capacity"
	case ReasonCancelled:
		return "cancelled"
	default:
		return "reason(?)"
	}
}

// Rejection describes one shed request.
type Rejection struct {
	Reason     Reason
	RetryAfter time.Duration
	// Err is the context error for ReasonCancelled, nil otherwise.
	Err error
}

// Error renders the rejection for logs.
func (r *Rejection) Error() string {
	return fmt.Sprintf("overload: shed (%s, retry in %s)", r.Reason, r.RetryAfter)
}

// Permit is one admitted request. Exactly one Release must follow.
type Permit struct {
	g        *Guard
	pri      Priority
	probe    bool
	released bool
}

// Probe reports whether the permit is a half-open breaker probe.
func (p *Permit) Probe() bool { return p.probe }

// Release finishes the request: the slot frees, the breaker learns
// the outcome, and (for successful interactive requests) the latency
// feeds the AIMD signal. Releasing twice panics — a leaked or
// double-released permit is an accounting bug, not a runtime
// condition to tolerate.
func (p *Permit) Release(out Outcome, latency time.Duration) {
	if p.released {
		panic("overload: permit released twice")
	}
	p.released = true
	p.g.limiter.Release(p.pri, out, latency)
	p.g.breaker.Record(out, p.probe)
}

// Guard is one dataset's admission gate: breaker, then limiter, with
// every decision landing in the ledger. received == admitted + shed
// and shed == shedBreaker + shedCapacity hold in every snapshot
// because each decision commits its counters in one critical section.
type Guard struct {
	breaker *Breaker
	limiter *Limiter

	ctr struct {
		mu                        sync.Mutex
		received, admitted, shed  int64
		shedBreaker, shedCapacity int64
	}
}

// NewGuard builds a guard from one config (defaults applied).
func NewGuard(cfg Config) *Guard {
	cfg.setDefaults()
	return &Guard{
		breaker: NewBreaker(cfg),
		limiter: NewLimiter(cfg),
	}
}

// Breaker exposes the guard's breaker (tests, detached recording).
func (g *Guard) Breaker() *Breaker { return g.breaker }

// Limiter exposes the guard's limiter (tests).
func (g *Guard) Limiter() *Limiter { return g.limiter }

// countAdmitted / countShed commit one decision to the ledger.
func (g *Guard) countAdmitted() {
	g.ctr.mu.Lock()
	g.ctr.received++
	g.ctr.admitted++
	g.ctr.mu.Unlock()
}

func (g *Guard) countShed(r Reason) {
	g.ctr.mu.Lock()
	g.ctr.received++
	g.ctr.shed++
	if r == ReasonBreakerOpen {
		g.ctr.shedBreaker++
	} else {
		g.ctr.shedCapacity++
	}
	g.ctr.mu.Unlock()
}

// Admit runs the full admission sequence for class pri: breaker
// first (a rejection carries the remaining cool-down as RetryAfter),
// then the limiter. wait=true lets the request queue for a slot
// until ctx ends — the interactive contract; fail-fast classes pass
// false and are shed immediately with a Retry-After derived from the
// limiter's recent latency.
func (g *Guard) Admit(ctx context.Context, pri Priority, wait bool) (*Permit, *Rejection) {
	ok, probe, retry := g.breaker.Allow()
	if !ok {
		g.countShed(ReasonBreakerOpen)
		return nil, &Rejection{Reason: ReasonBreakerOpen, RetryAfter: retry}
	}
	if err := g.limiter.Acquire(ctx, pri, wait); err != nil {
		if probe {
			g.breaker.CancelProbe()
		}
		rej := &Rejection{Reason: ReasonCapacity, RetryAfter: g.capacityRetry()}
		if err != ErrAtLimit {
			rej.Reason = ReasonCancelled
			rej.Err = err
		}
		g.countShed(rej.Reason)
		return nil, rej
	}
	g.countAdmitted()
	return &Permit{g: g, pri: pri, probe: probe}, nil
}

// AdmitDetached admits work whose execution the limiter does not
// track — async job submissions, bounded by their own worker pool.
// The breaker still gates it, and the priority ladder still applies
// at the instant of submission; in the half-open phase detached work
// is shed outright (probes need a tracked in-flight slot to be
// meaningful). The outcome comes back through RecordDetached.
func (g *Guard) AdmitDetached(pri Priority) *Rejection {
	ok, probe, retry := g.breaker.Allow()
	if !ok {
		g.countShed(ReasonBreakerOpen)
		return &Rejection{Reason: ReasonBreakerOpen, RetryAfter: retry}
	}
	if probe {
		g.breaker.CancelProbe()
		g.countShed(ReasonBreakerOpen)
		return &Rejection{Reason: ReasonBreakerOpen, RetryAfter: retry}
	}
	ls := g.limiter.Snapshot()
	if ls.Total >= g.limiter.effCap(pri) {
		g.countShed(ReasonCapacity)
		return &Rejection{Reason: ReasonCapacity, RetryAfter: g.capacityRetry()}
	}
	g.countAdmitted()
	return nil
}

// RecordDetached feeds a detached admission's outcome to the breaker.
func (g *Guard) RecordDetached(out Outcome) {
	g.breaker.Record(out, false)
}

// capacityRetry estimates how long a capacity-shed caller should
// wait: roughly one request's worth of current latency, floored at
// one second by the shared header helper downstream.
func (g *Guard) capacityRetry() time.Duration {
	if p99 := g.limiter.P99(); p99 > 0 {
		return p99
	}
	return time.Second
}

// effCap exposes the limiter's per-class ceiling for detached
// admission checks.
func (l *Limiter) effCap(p Priority) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.effCapLocked(p)
}

// GuardSnapshot is the /stats rendering of one guard.
type GuardSnapshot struct {
	Breaker BreakerSnapshot
	Limiter LimiterSnapshot
	// The ledger: Received == Admitted + Shed and Shed ==
	// ShedBreakerOpen + ShedCapacity in every snapshot.
	Received        int64
	Admitted        int64
	Shed            int64
	ShedBreakerOpen int64
	ShedCapacity    int64
}

// Snapshot reads the guard. The ledger comes from one critical
// section, so its invariants hold even under concurrent admission.
func (g *Guard) Snapshot() GuardSnapshot {
	g.ctr.mu.Lock()
	snap := GuardSnapshot{
		Received:        g.ctr.received,
		Admitted:        g.ctr.admitted,
		Shed:            g.ctr.shed,
		ShedBreakerOpen: g.ctr.shedBreaker,
		ShedCapacity:    g.ctr.shedCapacity,
	}
	g.ctr.mu.Unlock()
	snap.Breaker = g.breaker.Snapshot()
	snap.Limiter = g.limiter.Snapshot()
	return snap
}
