// Package overload is the adaptive overload-protection layer of the
// query service: a per-dataset circuit breaker plus an AIMD
// concurrency limiter, combined behind one admission Guard.
//
// The motivating workload is HOS-Miner's lattice scan — exponential
// in dimension, so a single huge or adversarially-shaped dataset can
// produce requests whose latency is pathological by construction.
// Static semaphores bound such a dataset's concurrency but not its
// blast radius: its slow requests pile up against the shared limits
// and starve every other dataset on the process. This package makes
// the limits per dataset and reactive:
//
//   - The Breaker is a closed/open/half-open state machine driven by
//     a sliding bucketed window of request outcomes. A dataset whose
//     error+timeout ratio crosses the threshold stops being asked at
//     all for a cool-down, then earns its traffic back through a
//     bounded number of half-open probes.
//
//   - The Limiter owns a concurrency limit that adapts by
//     additive-increase/multiplicative-decrease on the observed p99
//     latency of interactive queries: when the dataset answers
//     comfortably under the target the limit creeps up toward its
//     maximum, and when p99 blows through the target (or requests
//     time out outright) the limit halves. Admission is
//     priority-aware: every class shares the same limit, but a class
//     may only fill its fraction of it — interactive queries get all
//     of it, batches 3/4, bulk scans 1/2 — so as the limit shrinks
//     under pressure, the cheapest-to-retry traffic is shed first.
//
//   - The Guard wires the two together and keeps the admission
//     ledger: every decision lands in exactly one of admitted or
//     shed, in the same critical section that made it, so the
//     invariant received == admitted + shed holds in every concurrent
//     snapshot (the same discipline the server's hits+misses==queries
//     accounting follows).
//
// Nothing in the package reads the wall clock directly: every
// time-driven transition (window expiry, cool-down, decrease
// rate-limiting) goes through an injected clock, which is what lets
// the fault-injection suite prove every state transition without a
// single time.Sleep.
package overload

import (
	"math"
	"time"
)

// Priority is a request's admission class. Lower values outrank
// higher ones: under pressure the highest-numbered (cheapest to
// retry) classes are shed first.
type Priority int

const (
	// Interactive is /query traffic — a human or a latency-sensitive
	// caller is waiting; it is shed last and may briefly wait for a
	// slot.
	Interactive Priority = iota
	// Batch is /batch traffic — programmatic, amortised, retryable;
	// it is shed before interactive queries.
	Batch
	// Bulk is /scan and /jobs/scan traffic — whole-dataset sweeps
	// with no request deadline to miss; it is shed first.
	Bulk

	numPriorities
)

// Share is the fraction of the adaptive concurrency limit the class
// may fill. Admission requires total in-flight < ceil(limit×Share),
// so as the limit shrinks, Bulk hits its ceiling first, then Batch,
// and Interactive keeps the full limit to itself.
func (p Priority) Share() float64 {
	switch p {
	case Interactive:
		return 1.0
	case Batch:
		return 0.75
	default:
		return 0.5
	}
}

// String names the class (the spelling /stats and errors use).
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Bulk:
		return "bulk"
	default:
		return "priority(?)"
	}
}

// Outcome classifies one finished admitted request for the breaker
// window and the limiter's latency signal.
type Outcome int

const (
	// Success: the request computed an answer.
	Success Outcome = iota
	// Timeout: the request exceeded its deadline — the breaker's
	// primary trip signal (a pathological-latency dataset produces
	// these, not Errored).
	Timeout
	// Errored: the engine failed the request.
	Errored
	// Cancelled: the client walked away mid-computation. Not the
	// dataset's fault, so it feeds neither the breaker window nor the
	// latency signal; it only releases the admission slot.
	Cancelled
)

// Config tunes one Guard (breaker + limiter). The zero value selects
// the defaults noted on each field.
type Config struct {
	// ---- breaker ----

	// Window is the sliding outcome window the failure ratio is
	// computed over (default 10s).
	Window time.Duration
	// Buckets subdivides Window; outcomes expire one bucket at a time
	// (default 10).
	Buckets int
	// MinSamples is the volume floor: the breaker never trips on
	// fewer outcomes in the window (default 10).
	MinSamples int
	// FailureRatio trips the breaker when (timeouts+errors)/total in
	// the window reaches it (default 0.5).
	FailureRatio float64
	// CoolDown is how long an open breaker rejects everything before
	// admitting half-open probes (default 5s). It is also the
	// Retry-After hint rejected requests carry.
	CoolDown time.Duration
	// ProbeBudget bounds concurrently in-flight half-open probes
	// (default 1).
	ProbeBudget int
	// ProbeSuccesses is how many consecutive probe successes close
	// the breaker again (default 3).
	ProbeSuccesses int

	// ---- limiter ----

	// MinLimit / MaxLimit bound the adaptive concurrency limit
	// (defaults 1 and 16). The limit starts at MaxLimit: the service
	// assumes health and reacts to evidence, rather than slow-starting
	// every fresh dataset.
	MinLimit int
	MaxLimit int
	// TargetP99 is the latency the limiter defends: a windowed p99
	// above it triggers a multiplicative decrease, below it an
	// additive increase (default 1s — the server derives a better
	// default from its query deadline).
	TargetP99 time.Duration
	// LatencyWindow is how many recent interactive latencies feed the
	// p99 (default 128).
	LatencyWindow int
	// AdjustEvery is the AIMD cadence in completed samples: every
	// AdjustEvery-th latency observation compares p99 to TargetP99
	// and moves the limit (default 16).
	AdjustEvery int
	// DecreaseFactor is the multiplicative-decrease multiplier
	// (default 0.5).
	DecreaseFactor float64
	// DecreaseInterval rate-limits multiplicative decreases so one
	// burst of timeouts collapses the limit once, not once per
	// timeout (default 1s).
	DecreaseInterval time.Duration
	// ClassCaps are optional static per-class in-flight ceilings
	// layered under the adaptive limit (0 = none). The server maps
	// its MaxConcurrentQueries/Batches/Scans options here, so the
	// operator's hard resource bounds survive the adaptive layer.
	ClassCaps [3]int

	// Clock substitutes the time source (tests); nil = time.Now.
	Clock func() time.Time
}

func (c *Config) setDefaults() {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 5 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 1
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 3
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 16
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.TargetP99 <= 0 {
		c.TargetP99 = time.Second
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 128
	}
	if c.AdjustEvery <= 0 {
		c.AdjustEvery = 16
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.5
	}
	if c.DecreaseInterval <= 0 {
		c.DecreaseInterval = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// RetryAfterSeconds renders a wait estimate as a Retry-After header
// value: whole seconds, rounded up, floored at 1 — "Retry-After: 0"
// invites a literal client into a zero-delay hammer loop, so no
// rejection path (breaker cool-down, limiter shed, job-queue-full)
// may ever emit it. This is the single helper every such path shares.
func RetryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
