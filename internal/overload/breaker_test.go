package overload

import (
	"testing"
	"time"

	"repro/internal/overload/faultinject"
)

// The breaker's every transition is time-driven through the injected
// clock, so these tables advance a faultinject.Clock explicitly and
// never sleep: a scenario that needs the cool-down to lapse advances
// the clock by the cool-down, and the whole file runs in microseconds.

// breakerTestConfig is the shared parameterisation: 1s buckets, a
// 10-outcome volume floor, a 50% trip ratio, a 5s cool-down and (by
// default) a single probe needing 3 consecutive successes.
func breakerTestConfig(clk *faultinject.Clock) Config {
	return Config{
		Window:         10 * time.Second,
		Buckets:        10,
		MinSamples:     10,
		FailureRatio:   0.5,
		CoolDown:       5 * time.Second,
		ProbeBudget:    1,
		ProbeSuccesses: 3,
		Clock:          clk.Now,
	}
}

// bstep is one action-or-assertion in a breaker scenario. Fields
// compose: the clock advances first, then records, then probes, then
// the explicit Allow check, then the snapshot assertions.
type bstep struct {
	advance time.Duration
	// record feeds outcomes as non-probe completions.
	record []Outcome
	// probe runs Allow — which must grant a probe — then records each
	// outcome against that probe slot.
	probe []Outcome
	// checkAllow asserts Allow's verdict without recording an outcome.
	// A granted probe slot is handed back via CancelProbe unless
	// keepProbe is set (budget-exhaustion scenarios hold theirs).
	checkAllow bool
	wantOK     bool
	wantProbe  bool
	wantRetry  time.Duration // asserted only when > 0
	keepProbe  bool
	cancel     bool // call CancelProbe

	wantState *BreakerState
	wantOpens int64 // asserted only when > 0
}

func st(s BreakerState) *BreakerState { return &s }

// repeat builds n copies of one outcome.
func repeat(o Outcome, n int) []Outcome {
	out := make([]Outcome, n)
	for i := range out {
		out[i] = o
	}
	return out
}

func TestBreakerStateMachine(t *testing.T) {
	trip := bstep{record: repeat(Timeout, 10), wantState: st(StateOpen), wantOpens: 1}

	tests := []struct {
		name  string
		steps []bstep
	}{
		{
			name: "volume floor holds below min samples",
			steps: []bstep{
				{record: repeat(Timeout, 9), wantState: st(StateClosed)},
				{checkAllow: true, wantOK: true, wantProbe: false},
			},
		},
		{
			name: "trips at the failure ratio once the floor is met",
			steps: []bstep{
				{record: append(repeat(Success, 5), repeat(Timeout, 5)...),
					wantState: st(StateOpen), wantOpens: 1},
				{checkAllow: true, wantOK: false, wantRetry: 5 * time.Second},
			},
		},
		{
			name: "errors and timeouts both count against, cancels count for neither",
			steps: []bstep{
				{record: append(repeat(Cancelled, 30), append(repeat(Success, 4), repeat(Errored, 4)...)...),
					wantState: st(StateClosed)}, // 8 counted samples: under the floor
				{record: []Outcome{Success, Errored},
					wantState: st(StateOpen), wantOpens: 1}, // 10 samples, 5 failures
			},
		},
		{
			name: "window expiry forgets old outcomes",
			steps: []bstep{
				{record: repeat(Timeout, 5), wantState: st(StateClosed)},
				// A full window later those five failures have expired:
				// the new traffic alone is under the volume floor, where
				// the combined ten (ratio 0.9) would have tripped.
				{advance: 10 * time.Second,
					record:    append(repeat(Timeout, 4), Success),
					wantState: st(StateClosed)},
				// Another five failures inside the live window do trip.
				{record: repeat(Timeout, 5), wantState: st(StateOpen), wantOpens: 1},
			},
		},
		{
			name: "open rejects with the remaining cool-down",
			steps: []bstep{
				trip,
				{checkAllow: true, wantOK: false, wantRetry: 5 * time.Second},
				{advance: 2 * time.Second, checkAllow: true, wantOK: false, wantRetry: 3 * time.Second},
				{advance: 3 * time.Second, checkAllow: true, wantOK: true, wantProbe: true,
					wantState: st(StateHalfOpen)},
			},
		},
		{
			name: "half-open grants probes only up to the budget",
			steps: []bstep{
				trip,
				{advance: 5 * time.Second, checkAllow: true, wantOK: true, wantProbe: true, keepProbe: true},
				// Budget (1) spent: rejected with one bucket's wait.
				{checkAllow: true, wantOK: false, wantRetry: time.Second,
					wantState: st(StateHalfOpen)},
			},
		},
		{
			name: "consecutive probe successes close with a fresh window",
			steps: []bstep{
				trip,
				{advance: 5 * time.Second, probe: repeat(Success, 2), wantState: st(StateHalfOpen)},
				{probe: []Outcome{Success}, wantState: st(StateClosed)},
				// The re-closed window starts empty: nine failures sit
				// under the volume floor again, the tenth re-trips.
				{record: repeat(Timeout, 9), wantState: st(StateClosed), wantOpens: 1},
				{record: []Outcome{Timeout}, wantState: st(StateOpen), wantOpens: 2},
			},
		},
		{
			name: "probe failure re-opens immediately",
			steps: []bstep{
				trip,
				{advance: 5 * time.Second, probe: []Outcome{Timeout},
					wantState: st(StateOpen), wantOpens: 2},
				{checkAllow: true, wantOK: false, wantRetry: 5 * time.Second},
			},
		},
		{
			name: "cancelled probe is neutral and frees its slot",
			steps: []bstep{
				trip,
				{advance: 5 * time.Second, probe: []Outcome{Cancelled}, wantState: st(StateHalfOpen)},
				// The slot came back, and the cancel did not count toward
				// (or reset) the consecutive-success run.
				{probe: repeat(Success, 3), wantState: st(StateClosed)},
			},
		},
		{
			name: "straggler outcomes cannot re-trip an open or probing breaker",
			steps: []bstep{
				trip,
				// Stragglers landing while open are ignored outright.
				{record: repeat(Timeout, 20), wantState: st(StateOpen), wantOpens: 1},
				{advance: 5 * time.Second, checkAllow: true, wantOK: true, wantProbe: true,
					wantState: st(StateHalfOpen)},
				// And while half-open: only probes speak for the dataset.
				{record: repeat(Timeout, 20), wantState: st(StateHalfOpen), wantOpens: 1},
				{probe: repeat(Success, 3), wantState: st(StateClosed), wantOpens: 1},
			},
		},
		{
			name: "CancelProbe returns the probe slot",
			steps: []bstep{
				trip,
				{advance: 5 * time.Second, checkAllow: true, wantOK: true, wantProbe: true, keepProbe: true},
				{checkAllow: true, wantOK: false},
				{cancel: true},
				{checkAllow: true, wantOK: true, wantProbe: true, wantState: st(StateHalfOpen)},
			},
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
			b := NewBreaker(breakerTestConfig(clk))
			for i, step := range tc.steps {
				if step.advance > 0 {
					clk.Advance(step.advance)
				}
				for _, out := range step.record {
					b.Record(out, false)
				}
				for _, out := range step.probe {
					ok, probe, _ := b.Allow()
					if !ok || !probe {
						t.Fatalf("step %d: Allow() = (%v, %v), want a probe grant", i, ok, probe)
					}
					b.Record(out, true)
				}
				if step.checkAllow {
					ok, probe, retry := b.Allow()
					if ok != step.wantOK || probe != step.wantProbe {
						t.Fatalf("step %d: Allow() = (%v, %v), want (%v, %v)",
							i, ok, probe, step.wantOK, step.wantProbe)
					}
					if !ok && step.wantRetry > 0 && retry != step.wantRetry {
						t.Fatalf("step %d: retryAfter = %s, want %s", i, retry, step.wantRetry)
					}
					if ok && probe && !step.keepProbe {
						b.CancelProbe()
					}
				}
				if step.cancel {
					b.CancelProbe()
				}
				snap := b.Snapshot()
				if step.wantState != nil && snap.State != *step.wantState {
					t.Fatalf("step %d: state = %s, want %s", i, snap.State, *step.wantState)
				}
				if step.wantOpens > 0 && snap.Opens != step.wantOpens {
					t.Fatalf("step %d: opens = %d, want %d", i, snap.Opens, step.wantOpens)
				}
			}
		})
	}
}

// A multi-probe budget admits that many concurrent probes, closes only
// on the configured run of successes, and one failure among them
// re-opens regardless of how the others fared.
func TestBreakerProbeBudgetAboveOne(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	cfg := breakerTestConfig(clk)
	cfg.ProbeBudget = 2
	b := NewBreaker(cfg)
	for i := 0; i < 10; i++ {
		b.Record(Timeout, false)
	}
	clk.Advance(cfg.CoolDown)

	for i := 0; i < 2; i++ {
		if ok, probe, _ := b.Allow(); !ok || !probe {
			t.Fatalf("probe %d: Allow() = (%v, %v), want grant", i, ok, probe)
		}
	}
	if ok, _, _ := b.Allow(); ok {
		t.Fatal("third probe admitted past a budget of 2")
	}
	if got := b.Snapshot().ProbesInFlight; got != 2 {
		t.Fatalf("ProbesInFlight = %d, want 2", got)
	}
	// One success, one failure: the failure wins and re-opens.
	b.Record(Success, true)
	b.Record(Errored, true)
	if snap := b.Snapshot(); snap.State != StateOpen || snap.Opens != 2 {
		t.Fatalf("after split probe verdicts: state %s opens %d, want open/2", snap.State, snap.Opens)
	}
}

// The window totals surfaced in snapshots follow records and expiry.
func TestBreakerSnapshotWindowTotals(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	b := NewBreaker(breakerTestConfig(clk))
	b.Record(Success, false)
	b.Record(Success, false)
	b.Record(Timeout, false)
	if snap := b.Snapshot(); snap.WindowSuccesses != 2 || snap.WindowFailures != 1 {
		t.Fatalf("window = %d/%d, want 2 successes / 1 failure", snap.WindowSuccesses, snap.WindowFailures)
	}
	clk.Advance(10 * time.Second)
	if snap := b.Snapshot(); snap.WindowSuccesses != 0 || snap.WindowFailures != 0 {
		t.Fatalf("expired window = %d/%d, want empty", snap.WindowSuccesses, snap.WindowFailures)
	}
}
