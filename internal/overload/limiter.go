package overload

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"time"
)

// ErrAtLimit rejects a non-waiting acquire when the class's share of
// the adaptive limit (or its static cap) is full — the signal the
// HTTP layer turns into 429.
var ErrAtLimit = errors.New("overload: concurrency limit reached")

// Limiter is an AIMD concurrency limiter with priority-aware
// admission. One adaptive limit L ∈ [MinLimit, MaxLimit] is shared by
// all classes; class p may only be admitted while total in-flight <
// ceil(L × p.Share()), and optionally while its own in-flight count
// is under its static cap. L moves by additive increase (+1) when the
// windowed p99 of interactive latencies sits at or under TargetP99,
// and by multiplicative decrease (×DecreaseFactor, rate-limited to
// one per DecreaseInterval) when p99 overshoots or a request times
// out outright.
type Limiter struct {
	cfg Config

	mu       sync.Mutex
	limit    float64 // continuous so repeated MD/AI compose smoothly
	inflight [numPriorities]int
	total    int
	waiters  []chan struct{} // FIFO of blocked interactive acquires

	lat     []time.Duration // interactive latency ring feeding p99
	latNext int
	latFull bool
	samples int // observations since the last AIMD adjustment

	lastDecrease time.Time
}

// NewLimiter builds a limiter over the config's limiter fields
// (defaults applied). The limit starts at MaxLimit.
func NewLimiter(cfg Config) *Limiter {
	cfg.setDefaults()
	return &Limiter{
		cfg:   cfg,
		limit: float64(cfg.MaxLimit),
		lat:   make([]time.Duration, cfg.LatencyWindow),
	}
}

// effCapLocked is the total-in-flight ceiling class p admits under.
func (l *Limiter) effCapLocked(p Priority) int {
	return int(math.Ceil(l.limit * p.Share()))
}

// tryLocked admits class p if both its static cap and its share of
// the adaptive limit have room.
func (l *Limiter) tryLocked(p Priority) bool {
	if c := l.cfg.ClassCaps[p]; c > 0 && l.inflight[p] >= c {
		return false
	}
	if l.total >= l.effCapLocked(p) {
		return false
	}
	l.inflight[p]++
	l.total++
	return true
}

// Acquire takes an admission slot for class p. When wait is false a
// full class fails immediately with ErrAtLimit; when true (the
// interactive path) the caller queues FIFO until a slot frees or ctx
// ends, in which case ctx.Err() is returned.
func (l *Limiter) Acquire(ctx context.Context, p Priority, wait bool) error {
	l.mu.Lock()
	for {
		if l.tryLocked(p) {
			l.mu.Unlock()
			return nil
		}
		if !wait {
			l.mu.Unlock()
			return ErrAtLimit
		}
		w := make(chan struct{}, 1)
		l.waiters = append(l.waiters, w)
		l.mu.Unlock()
		select {
		case <-w:
			l.mu.Lock() // woken: retry under the lock
		case <-ctx.Done():
			l.mu.Lock()
			for i, cand := range l.waiters {
				if cand == w {
					l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
					break
				}
			}
			// A wake-up may have raced the cancellation; it must not
			// die with this waiter, or a freed slot goes unused while
			// other waiters starve.
			select {
			case <-w:
				l.wakeLocked()
			default:
			}
			l.mu.Unlock()
			return ctx.Err()
		}
	}
}

// wakeLocked signals the oldest waiter to retry.
func (l *Limiter) wakeLocked() {
	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		w <- struct{}{}
	}
}

// Release returns class p's slot and feeds the AIMD signal: the
// latency of successful interactive requests goes into the p99 ring,
// and a Timeout outcome (any class) triggers an immediate — but
// rate-limited — multiplicative decrease.
func (l *Limiter) Release(p Priority, out Outcome, latency time.Duration) {
	now := l.cfg.Clock()
	l.mu.Lock()
	if l.inflight[p] > 0 {
		l.inflight[p]--
		l.total--
	}
	switch {
	case out == Timeout:
		l.decreaseLocked(now)
	case out == Success && p == Interactive:
		l.lat[l.latNext] = latency
		l.latNext++
		if l.latNext == len(l.lat) {
			l.latNext = 0
			l.latFull = true
		}
		l.samples++
		if l.samples >= l.cfg.AdjustEvery {
			l.samples = 0
			if l.p99Locked() > l.cfg.TargetP99 {
				l.decreaseLocked(now)
			} else if l.limit < float64(l.cfg.MaxLimit) {
				l.limit = math.Min(float64(l.cfg.MaxLimit), l.limit+1)
			}
		}
	}
	l.wakeLocked()
	l.mu.Unlock()
}

// decreaseLocked is the multiplicative decrease, at most once per
// DecreaseInterval so a burst of timeouts collapses the limit once.
func (l *Limiter) decreaseLocked(now time.Time) {
	if !l.lastDecrease.IsZero() && now.Sub(l.lastDecrease) < l.cfg.DecreaseInterval {
		return
	}
	l.lastDecrease = now
	l.limit = math.Max(float64(l.cfg.MinLimit), l.limit*l.cfg.DecreaseFactor)
}

// p99Locked reads the ring's 99th-percentile latency (0 when empty).
func (l *Limiter) p99Locked() time.Duration {
	n := l.latNext
	if l.latFull {
		n = len(l.lat)
	}
	if n == 0 {
		return 0
	}
	cp := make([]time.Duration, n)
	copy(cp, l.lat[:n])
	sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	rank := int(math.Ceil(0.99*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// P99 reads the current windowed interactive p99.
func (l *Limiter) P99() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p99Locked()
}

// LimiterSnapshot is a point-in-time view for /stats and tests.
type LimiterSnapshot struct {
	// Limit is the adaptive limit, rounded down to what admission
	// actually grants interactive traffic.
	Limit    int
	Total    int
	InFlight [3]int
	P99      time.Duration
}

// Snapshot reads the limiter's current state.
func (l *Limiter) Snapshot() LimiterSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LimiterSnapshot{
		Limit:    int(math.Ceil(l.limit)),
		Total:    l.total,
		InFlight: l.inflight,
		P99:      l.p99Locked(),
	}
}
