// Package faultinject is the deterministic fault-injection toolkit
// the overload suite is proven with: a manually-advanced clock that
// stands in for time.Now across every time-driven transition, and an
// injector that makes chosen datasets fail or slow down on demand.
// Nothing here sleeps; tests advance time and flip faults explicitly,
// which is what keeps the whole suite sub-second and flake-free.
package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a manually-advanced time source. Its Now method satisfies
// the overload.Config.Clock / jobs.Options.Clock injection points.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts a clock at start. The zero time is permitted but a
// fixed non-zero epoch keeps test output readable.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now reads the current fake time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative advances panic: a clock that runs backwards would silently
// invalidate every window computation built on it.
func (c *Clock) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic(fmt.Sprintf("faultinject: clock advanced by negative %s", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Fault is one dataset's injected behaviour.
type Fault struct {
	// Err, when non-nil, is returned from the hook — the compute path
	// surfaces it as the request's failure.
	Err error
	// Delay is added to the request's *reported* latency without
	// sleeping: the server's hook contract treats it as observed
	// compute time, so tests can inject a "latency spike" that the
	// AIMD limiter sees while the suite still runs in microseconds.
	Delay time.Duration
}

// Injector decides, per (op, dataset), whether a request fails or
// slows. Install its Hook on the server under test; program faults
// with Set/Clear while the test runs. All methods are safe for
// concurrent use — the race hammer flips faults mid-flight.
type Injector struct {
	mu     sync.Mutex
	faults map[string]Fault // key: dataset, or "op:dataset" for op-scoped faults
	calls  map[string]int   // per-dataset hook invocations, faulted or not
}

// NewInjector builds an empty (transparent) injector.
func NewInjector() *Injector {
	return &Injector{
		faults: make(map[string]Fault),
		calls:  make(map[string]int),
	}
}

// Set injects f for every operation against dataset.
func (i *Injector) Set(dataset string, f Fault) {
	i.mu.Lock()
	i.faults[dataset] = f
	i.mu.Unlock()
}

// SetOp injects f only for op (e.g. "query", "batch", "scan")
// against dataset — op-scoped faults take precedence over Set.
func (i *Injector) SetOp(op, dataset string, f Fault) {
	i.mu.Lock()
	i.faults[op+":"+dataset] = f
	i.mu.Unlock()
}

// Clear removes every fault against dataset (op-scoped included) —
// the "the dataset recovered" switch.
func (i *Injector) Clear(dataset string) {
	i.mu.Lock()
	delete(i.faults, dataset)
	for k := range i.faults {
		if len(k) > len(dataset) && k[len(k)-len(dataset):] == dataset &&
			k[len(k)-len(dataset)-1] == ':' {
			delete(i.faults, k)
		}
	}
	i.mu.Unlock()
}

// Calls reports how many hook invocations dataset has seen — the
// test's proof that traffic did (or, breaker open, did not) reach
// the compute path.
func (i *Injector) Calls(dataset string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.calls[dataset]
}

// Hook is the function to install as the server's fault hook. It
// returns the injected error (nil when healthy) and the injected
// extra latency for the (op, dataset) pair.
func (i *Injector) Hook() func(op, dataset string) (time.Duration, error) {
	return func(op, dataset string) (time.Duration, error) {
		i.mu.Lock()
		i.calls[dataset]++
		f, ok := i.faults[op+":"+dataset]
		if !ok {
			f, ok = i.faults[dataset]
		}
		i.mu.Unlock()
		if !ok {
			return 0, nil
		}
		return f.Delay, f.Err
	}
}
