package overload

import (
	"sync"
	"time"
)

// BreakerState is one phase of the breaker's lifecycle.
type BreakerState uint8

const (
	// StateClosed: traffic flows; outcomes feed the sliding window.
	StateClosed BreakerState = iota
	// StateOpen: everything is rejected until the cool-down lapses.
	StateOpen
	// StateHalfOpen: up to ProbeBudget requests are admitted as
	// probes; their outcomes decide between closing and re-opening.
	StateHalfOpen
)

// String names the state (the spelling /stats serves).
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half_open"
	default:
		return "state(?)"
	}
}

// Breaker is a per-dataset circuit breaker: a sliding bucketed
// window of outcomes drives closed→open, a cool-down drives
// open→half-open, and a budgeted run of probe successes drives
// half-open→closed. All methods are safe for concurrent use; all
// time-driven transitions read the injected clock, never the wall
// clock.
type Breaker struct {
	cfg Config

	mu        sync.Mutex
	state     BreakerState
	openedAt  time.Time
	opens     int64 // cumulative closed/half-open → open transitions
	probes    int   // half-open probes currently in flight
	probeSucc int   // consecutive probe successes this half-open phase

	// The sliding window: Buckets counters of bucketDur each. A
	// record lands in the bucket whose interval covers now; reading
	// first expires buckets older than Window. The window only
	// accumulates while closed — open and half-open phases are judged
	// by cool-down and probes, not ratios.
	bucketDur time.Duration
	starts    []time.Time
	succ      []int64
	fail      []int64
}

// NewBreaker builds a breaker over the config's breaker fields
// (defaults applied).
func NewBreaker(cfg Config) *Breaker {
	cfg.setDefaults()
	b := &Breaker{
		cfg:       cfg,
		bucketDur: cfg.Window / time.Duration(cfg.Buckets),
		starts:    make([]time.Time, cfg.Buckets),
		succ:      make([]int64, cfg.Buckets),
		fail:      make([]int64, cfg.Buckets),
	}
	return b
}

// bucketFor returns the index of the live bucket for now, resetting
// any bucket whose recorded interval has lapsed out of the window.
// Bucket i holds the interval starting at starts[i]; a bucket is
// reused once now has moved past starts[i]+Window.
func (b *Breaker) bucketFor(now time.Time) int {
	idx := int((now.UnixNano() / int64(b.bucketDur)) % int64(len(b.starts)))
	if idx < 0 {
		idx += len(b.starts)
	}
	start := now.Truncate(b.bucketDur)
	if !b.starts[idx].Equal(start) {
		b.starts[idx] = start
		b.succ[idx] = 0
		b.fail[idx] = 0
	}
	return idx
}

// totalsLocked sums the window's outcomes, skipping expired buckets.
func (b *Breaker) totalsLocked(now time.Time) (succ, fail int64) {
	for i := range b.starts {
		if b.starts[i].IsZero() || now.Sub(b.starts[i]) >= b.cfg.Window {
			continue
		}
		succ += b.succ[i]
		fail += b.fail[i]
	}
	return succ, fail
}

// resetWindowLocked drops every recorded outcome — the clean slate a
// re-closed breaker starts from.
func (b *Breaker) resetWindowLocked() {
	for i := range b.starts {
		b.starts[i] = time.Time{}
		b.succ[i] = 0
		b.fail[i] = 0
	}
}

// Allow decides admission. ok=false rejects with retryAfter (the
// remaining cool-down, or the bucket duration for a half-open phase
// whose probe budget is spent). ok=true with probe=true admits the
// request as a half-open probe: its Record (or CancelProbe) decides
// the breaker's fate.
func (b *Breaker) Allow() (ok, probe bool, retryAfter time.Duration) {
	now := b.cfg.Clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true, false, 0
	case StateOpen:
		if wait := b.cfg.CoolDown - now.Sub(b.openedAt); wait > 0 {
			return false, false, wait
		}
		// Cool-down served: move to half-open and fall through to its
		// probe admission.
		b.state = StateHalfOpen
		b.probes = 0
		b.probeSucc = 0
		fallthrough
	default: // StateHalfOpen
		if b.probes < b.cfg.ProbeBudget {
			b.probes++
			return true, true, 0
		}
		// Budget spent: the in-flight probes will answer soon — one
		// bucket interval is an honest "come back shortly".
		return false, false, b.bucketDur
	}
}

// Record feeds one finished request back. probe must be the flag
// Allow returned for it. Cancelled outcomes release probe slots but
// never count for or against the dataset.
func (b *Breaker) Record(out Outcome, probe bool) {
	now := b.cfg.Clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.recordProbeLocked(out, now)
		return
	}
	// Non-probe outcomes only matter while closed: stragglers that
	// were admitted before a trip must not re-open a breaker that is
	// already probing its way back, nor pollute the fresh window.
	if b.state != StateClosed {
		return
	}
	if out == Cancelled {
		return
	}
	idx := b.bucketFor(now)
	if out == Success {
		b.succ[idx]++
	} else {
		b.fail[idx]++
	}
	succ, fail := b.totalsLocked(now)
	total := succ + fail
	if total >= int64(b.cfg.MinSamples) &&
		float64(fail) >= b.cfg.FailureRatio*float64(total) {
		b.tripLocked(now)
	}
}

func (b *Breaker) recordProbeLocked(out Outcome, now time.Time) {
	if b.probes > 0 {
		b.probes--
	}
	if b.state != StateHalfOpen {
		// A probe admitted just before a concurrent probe's failure
		// re-opened the breaker: its verdict is stale.
		return
	}
	switch out {
	case Success:
		b.probeSucc++
		if b.probeSucc >= b.cfg.ProbeSuccesses {
			b.state = StateClosed
			b.resetWindowLocked()
		}
	case Cancelled:
		// The client gave up; the dataset proved nothing either way.
	default: // Timeout, Errored
		b.tripLocked(now)
	}
}

// CancelProbe returns an unused probe slot — the Guard calls it when
// the breaker admitted a probe but the limiter then shed the request,
// so no outcome will ever be recorded for it.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	if b.probes > 0 {
		b.probes--
	}
	b.mu.Unlock()
}

// tripLocked opens the breaker (from closed or half-open).
func (b *Breaker) tripLocked(now time.Time) {
	b.state = StateOpen
	b.openedAt = now
	b.opens++
	b.probeSucc = 0
	b.resetWindowLocked()
}

// BreakerSnapshot is a point-in-time view for /stats and tests.
type BreakerSnapshot struct {
	State BreakerState
	// Opens counts cumulative trips (closed/half-open → open).
	Opens int64
	// WindowSuccesses/WindowFailures are the live window totals.
	WindowSuccesses int64
	WindowFailures  int64
	// ProbesInFlight is the current half-open probe occupancy.
	ProbesInFlight int
}

// Snapshot reads the breaker's current state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	now := b.cfg.Clock()
	b.mu.Lock()
	defer b.mu.Unlock()
	succ, fail := b.totalsLocked(now)
	return BreakerSnapshot{
		State:           b.state,
		Opens:           b.opens,
		WindowSuccesses: succ,
		WindowFailures:  fail,
		ProbesInFlight:  b.probes,
	}
}
