package overload

import (
	"context"
	"testing"
	"time"

	"repro/internal/overload/faultinject"
)

// guardTestConfig: a small guard — two slots, a 4-outcome volume
// floor — so tests can reach every admission verdict in a handful of
// requests. Probes close after a single success to keep recovery
// scenarios short.
func guardTestConfig(clk *faultinject.Clock) Config {
	return Config{
		Window:         10 * time.Second,
		Buckets:        10,
		MinSamples:     4,
		FailureRatio:   0.5,
		CoolDown:       5 * time.Second,
		ProbeBudget:    1,
		ProbeSuccesses: 1,
		MinLimit:       1,
		MaxLimit:       2,
		TargetP99:      100 * time.Millisecond,
		AdjustEvery:    4,
		Clock:          clk.Now,
	}
}

// tripGuard drives the guard's breaker open through admitted permits
// released as timeouts.
func tripGuard(t *testing.T, g *Guard) {
	t.Helper()
	for i := 0; i < 4; i++ {
		permit, rej := g.Admit(context.Background(), Interactive, false)
		if rej != nil {
			t.Fatalf("admission %d while tripping: %v", i, rej)
		}
		permit.Release(Timeout, time.Second)
	}
	if got := g.Breaker().Snapshot().State; got != StateOpen {
		t.Fatalf("breaker = %s after 4 timeouts, want open", got)
	}
}

// checkLedger asserts the two accounting invariants on a snapshot.
func checkLedger(t *testing.T, snap GuardSnapshot) {
	t.Helper()
	if snap.Received != snap.Admitted+snap.Shed {
		t.Fatalf("ledger torn: received %d != admitted %d + shed %d",
			snap.Received, snap.Admitted, snap.Shed)
	}
	if snap.Shed != snap.ShedBreakerOpen+snap.ShedCapacity {
		t.Fatalf("ledger torn: shed %d != breaker %d + capacity %d",
			snap.Shed, snap.ShedBreakerOpen, snap.ShedCapacity)
	}
}

func TestGuardLedgerCoversEveryVerdict(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	g := NewGuard(guardTestConfig(clk))

	// Two admissions fill the limit; the third is a capacity shed.
	p1, rej := g.Admit(context.Background(), Interactive, false)
	if rej != nil {
		t.Fatal(rej)
	}
	p2, rej := g.Admit(context.Background(), Interactive, false)
	if rej != nil {
		t.Fatal(rej)
	}
	if _, rej = g.Admit(context.Background(), Interactive, false); rej == nil || rej.Reason != ReasonCapacity {
		t.Fatalf("third admission = %v, want a capacity rejection", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("capacity rejection carries RetryAfter %s, want > 0", rej.RetryAfter)
	}

	// A waiting admission whose context ends is a cancelled shed
	// carrying the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, rej = g.Admit(ctx, Interactive, true); rej == nil || rej.Reason != ReasonCancelled || rej.Err != context.Canceled {
		t.Fatalf("cancelled admission = %+v, want ReasonCancelled with context.Canceled", rej)
	}

	p1.Release(Success, time.Millisecond)
	p2.Release(Timeout, time.Second)
	snap := g.Snapshot()
	checkLedger(t, snap)
	if snap.Received != 4 || snap.Admitted != 2 || snap.ShedCapacity != 2 {
		t.Fatalf("ledger = %+v, want received 4, admitted 2, capacity sheds 2", snap)
	}
	if snap.Limiter.Total != 0 {
		t.Fatalf("in-flight = %d after all releases, want 0", snap.Limiter.Total)
	}
}

func TestGuardBreakerOpenSheds(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	g := NewGuard(guardTestConfig(clk))
	tripGuard(t, g)

	_, rej := g.Admit(context.Background(), Interactive, true)
	if rej == nil || rej.Reason != ReasonBreakerOpen {
		t.Fatalf("admission under an open breaker = %v, want ReasonBreakerOpen", rej)
	}
	if rej.RetryAfter != 5*time.Second {
		t.Fatalf("RetryAfter = %s, want the full 5s cool-down", rej.RetryAfter)
	}
	snap := g.Snapshot()
	checkLedger(t, snap)
	if snap.ShedBreakerOpen != 1 {
		t.Fatalf("breaker-open sheds = %d, want 1", snap.ShedBreakerOpen)
	}

	// Cool-down over: one probe is admitted, its success closes the
	// breaker, and traffic flows again.
	clk.Advance(5 * time.Second)
	permit, rej := g.Admit(context.Background(), Interactive, false)
	if rej != nil {
		t.Fatalf("probe admission: %v", rej)
	}
	if !permit.Probe() {
		t.Fatal("post-cool-down admission was not marked as a probe")
	}
	permit.Release(Success, time.Millisecond)
	if got := g.Breaker().Snapshot().State; got != StateClosed {
		t.Fatalf("breaker = %s after a successful probe, want closed", got)
	}
	checkLedger(t, g.Snapshot())
}

// When the breaker grants a probe but the limiter then sheds the
// request, the probe slot must be handed back — otherwise the
// half-open phase wedges with a phantom probe in flight forever.
func TestGuardReturnsProbeOnLimiterShed(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	g := NewGuard(guardTestConfig(clk))
	tripGuard(t, g)

	// Fill the limiter out-of-band so the probe admission has no slot.
	// (The timeouts above already halved the adaptive limit, so the
	// fill count is whatever the limiter currently grants.)
	fills := 0
	for g.Limiter().Acquire(context.Background(), Interactive, false) == nil {
		fills++
	}
	if fills == 0 {
		t.Fatal("limiter granted nothing while idle")
	}
	clk.Advance(5 * time.Second)
	if _, rej := g.Admit(context.Background(), Interactive, false); rej == nil || rej.Reason != ReasonCapacity {
		t.Fatalf("probe admission with a full limiter = %v, want ReasonCapacity", rej)
	}
	if got := g.Breaker().Snapshot().ProbesInFlight; got != 0 {
		t.Fatalf("probes in flight = %d after a limiter shed, want the slot returned", got)
	}
	// The returned slot still admits the next probe.
	for ; fills > 0; fills-- {
		g.Limiter().Release(Interactive, Cancelled, 0)
	}
	permit, rej := g.Admit(context.Background(), Interactive, false)
	if rej != nil || !permit.Probe() {
		t.Fatalf("follow-up probe admission = (%v, %v), want a probe grant", permit, rej)
	}
	permit.Release(Success, time.Millisecond)
	checkLedger(t, g.Snapshot())
}

func TestGuardDetachedAdmission(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	g := NewGuard(guardTestConfig(clk))

	// Healthy: admitted, counted, no permit to hold.
	if rej := g.AdmitDetached(Bulk); rej != nil {
		t.Fatalf("healthy detached admission: %v", rej)
	}

	// Bulk's share of a limit of 2 is ceil(2×0.5) = 1: one tracked
	// in-flight request closes the detached bulk door.
	if err := g.Limiter().Acquire(context.Background(), Interactive, false); err != nil {
		t.Fatal(err)
	}
	if rej := g.AdmitDetached(Bulk); rej == nil || rej.Reason != ReasonCapacity {
		t.Fatalf("detached admission at bulk's share = %v, want ReasonCapacity", rej)
	}
	g.Limiter().Release(Interactive, Cancelled, 0)

	// Detached outcomes feed the breaker: four timeouts trip it and
	// detached work is then shed as breaker-open.
	for i := 0; i < 4; i++ {
		if rej := g.AdmitDetached(Bulk); rej != nil {
			t.Fatalf("detached admission %d: %v", i, rej)
		}
		g.RecordDetached(Timeout)
	}
	if got := g.Breaker().Snapshot().State; got != StateOpen {
		t.Fatalf("breaker = %s after detached timeouts, want open", got)
	}
	if rej := g.AdmitDetached(Bulk); rej == nil || rej.Reason != ReasonBreakerOpen {
		t.Fatalf("detached admission under an open breaker = %v, want ReasonBreakerOpen", rej)
	}

	// Half-open sheds detached work too — probes need a tracked slot
	// to mean anything — and hands the probe grant straight back.
	clk.Advance(5 * time.Second)
	if rej := g.AdmitDetached(Bulk); rej == nil || rej.Reason != ReasonBreakerOpen {
		t.Fatalf("detached admission while half-open = %v, want ReasonBreakerOpen", rej)
	}
	if got := g.Breaker().Snapshot().ProbesInFlight; got != 0 {
		t.Fatalf("probes in flight = %d after detached half-open shed, want 0", got)
	}
	snap := g.Snapshot()
	checkLedger(t, snap)
	if snap.Received != 8 || snap.Admitted != 5 || snap.ShedBreakerOpen != 2 || snap.ShedCapacity != 1 {
		t.Fatalf("ledger = %+v, want received 8 = admitted 5 + breaker 2 + capacity 1", snap)
	}
}

func TestGuardDoubleReleasePanics(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	g := NewGuard(guardTestConfig(clk))
	permit, rej := g.Admit(context.Background(), Interactive, false)
	if rej != nil {
		t.Fatal(rej)
	}
	permit.Release(Success, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	permit.Release(Success, time.Millisecond)
}

// RetryAfterSeconds is the single Retry-After spelling every rejection
// path shares (breaker-open 503s, capacity 429s, the jobs queue-full
// 429 — see the server tests for the header-level assertions). The
// floor is 1: a zero tells a literal client to hammer the server in a
// zero-delay loop.
func TestRetryAfterSecondsBoundaries(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want int
	}{
		{-time.Second, 1},
		{0, 1},
		{time.Nanosecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{90 * time.Second, 90},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.in); got != c.want {
			t.Errorf("RetryAfterSeconds(%s) = %d, want %d", c.in, got, c.want)
		}
	}
}
