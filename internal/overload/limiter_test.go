package overload

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/overload/faultinject"
)

// limiterTestConfig: limit range [1, 8], AIMD verdict every 4 samples
// against a 100ms target, halving rate-limited to one per second. No
// class caps unless a test sets them.
func limiterTestConfig(clk *faultinject.Clock) Config {
	return Config{
		MinLimit:         1,
		MaxLimit:         8,
		TargetP99:        100 * time.Millisecond,
		LatencyWindow:    64,
		AdjustEvery:      4,
		DecreaseFactor:   0.5,
		DecreaseInterval: time.Second,
		Clock:            clk.Now,
	}
}

// mustAcquire fails the test on a rejected non-waiting acquire.
func mustAcquire(t *testing.T, l *Limiter, p Priority) {
	t.Helper()
	if err := l.Acquire(context.Background(), p, false); err != nil {
		t.Fatalf("Acquire(%s): %v", p, err)
	}
}

// feedSuccesses cycles acquire→release(Success, lat) n times on the
// interactive class — the AIMD limiter's additive-increase diet.
func feedSuccesses(t *testing.T, l *Limiter, n int, lat time.Duration) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustAcquire(t, l, Interactive)
		l.Release(Interactive, Success, lat)
	}
}

func TestLimiterSharesLayerUnderTheLimit(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	l := NewLimiter(limiterTestConfig(clk)) // limit starts at MaxLimit = 8

	// Bulk fills only half the limit: ceil(8 × 0.5) = 4.
	for i := 0; i < 4; i++ {
		mustAcquire(t, l, Bulk)
	}
	if err := l.Acquire(context.Background(), Bulk, false); err != ErrAtLimit {
		t.Fatalf("fifth bulk acquire: %v, want ErrAtLimit", err)
	}
	// Batch sees ceil(8 × 0.75) = 6 total; four slots are taken.
	mustAcquire(t, l, Batch)
	mustAcquire(t, l, Batch)
	if err := l.Acquire(context.Background(), Batch, false); err != ErrAtLimit {
		t.Fatalf("batch acquire at its share: %v, want ErrAtLimit", err)
	}
	// Interactive alone reaches the full limit.
	mustAcquire(t, l, Interactive)
	mustAcquire(t, l, Interactive)
	if err := l.Acquire(context.Background(), Interactive, false); err != ErrAtLimit {
		t.Fatalf("interactive acquire past the limit: %v, want ErrAtLimit", err)
	}
	snap := l.Snapshot()
	if snap.Total != 8 || snap.InFlight != [3]int{Interactive: 2, Batch: 2, Bulk: 4} {
		t.Fatalf("snapshot = %+v, want 2/2/4 in flight", snap)
	}
}

func TestLimiterStaticClassCaps(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	cfg := limiterTestConfig(clk)
	cfg.ClassCaps = [3]int{Interactive: 8, Batch: 2, Bulk: 1}
	l := NewLimiter(cfg)

	// Bulk's share of the limit is 4, but its static cap is 1.
	mustAcquire(t, l, Bulk)
	if err := l.Acquire(context.Background(), Bulk, false); err != ErrAtLimit {
		t.Fatalf("bulk past its static cap: %v, want ErrAtLimit", err)
	}
	mustAcquire(t, l, Batch)
	mustAcquire(t, l, Batch)
	if err := l.Acquire(context.Background(), Batch, false); err != ErrAtLimit {
		t.Fatalf("batch past its static cap: %v, want ErrAtLimit", err)
	}
}

func TestLimiterAIMD(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	l := NewLimiter(limiterTestConfig(clk))

	// The limit starts at the ceiling, so comfortable traffic cannot
	// raise it further.
	feedSuccesses(t, l, 8, 10*time.Millisecond)
	if got := l.Snapshot().Limit; got != 8 {
		t.Fatalf("limit after comfortable traffic at max = %d, want 8", got)
	}

	// One timeout halves it — and a burst of timeouts in the same
	// rate-limit interval halves it exactly once.
	for i := 0; i < 5; i++ {
		mustAcquire(t, l, Interactive)
		l.Release(Interactive, Timeout, 200*time.Millisecond)
	}
	if got := l.Snapshot().Limit; got != 4 {
		t.Fatalf("limit after a timeout burst = %d, want one halving to 4", got)
	}

	// Past the rate-limit interval the next timeout halves again.
	clk.Advance(time.Second)
	mustAcquire(t, l, Interactive)
	l.Release(Interactive, Timeout, 200*time.Millisecond)
	if got := l.Snapshot().Limit; got != 2 {
		t.Fatalf("limit after a second halving = %d, want 2", got)
	}

	// An overshooting p99 decreases too: fill the window with slow
	// successes. (Advance past the rate limit first.)
	clk.Advance(time.Second)
	feedSuccesses(t, l, 4, 300*time.Millisecond)
	if got := l.Snapshot().Limit; got != 1 {
		t.Fatalf("limit after p99 overshoot = %d, want the floor 1", got)
	}

	// The floor holds against further bad news.
	clk.Advance(time.Second)
	mustAcquire(t, l, Interactive)
	l.Release(Interactive, Timeout, time.Second)
	if got := l.Snapshot().Limit; got != 1 {
		t.Fatalf("limit dropped below MinLimit: %d", got)
	}

	// Recovery: healthy latencies grow the limit back one unit per
	// AdjustEvery samples. The slow outcomes above still sit in the
	// p99 ring, so flush it with enough fast samples first.
	feedSuccesses(t, l, 128, time.Millisecond)
	if got := l.Snapshot().Limit; got != 8 {
		t.Fatalf("limit after sustained recovery = %d, want back at 8", got)
	}
}

// Only successful interactive latencies feed the p99 signal: bulk and
// batch traffic, and failed requests, must not steer the limit.
func TestLimiterP99IgnoresNonInteractive(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	l := NewLimiter(limiterTestConfig(clk))
	for i := 0; i < 8; i++ {
		mustAcquire(t, l, Bulk)
		l.Release(Bulk, Success, 10*time.Second)
		mustAcquire(t, l, Interactive)
		l.Release(Interactive, Errored, 10*time.Second)
	}
	if got := l.P99(); got != 0 {
		t.Fatalf("p99 = %s after only bulk/errored traffic, want empty (0)", got)
	}
	if got := l.Snapshot().Limit; got != 8 {
		t.Fatalf("limit = %d, want untouched 8", got)
	}
}

// A waiting interactive acquire blocks until a release frees a slot;
// every waiter eventually gets one and the in-flight count never
// exceeds the limit. Synchronisation is by channels, not sleeps.
func TestLimiterWaitersDrainFIFO(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	cfg := limiterTestConfig(clk)
	cfg.MinLimit, cfg.MaxLimit = 1, 1
	l := NewLimiter(cfg)

	mustAcquire(t, l, Interactive) // the single slot is taken

	const waiters = 6
	acquired := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := l.Acquire(context.Background(), Interactive, true); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			acquired <- id
		}(i)
	}

	// Hand the slot along the chain: each release admits exactly one
	// waiter.
	l.Release(Interactive, Success, time.Millisecond)
	for i := 0; i < waiters; i++ {
		select {
		case <-acquired:
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d never admitted: a wake-up was lost", i)
		}
		if got := l.Snapshot().Total; got != 1 {
			t.Fatalf("in-flight = %d with a limit of 1", got)
		}
		l.Release(Interactive, Success, time.Millisecond)
	}
	wg.Wait()
	if got := l.Snapshot().Total; got != 0 {
		t.Fatalf("in-flight = %d after all releases, want 0", got)
	}
}

// Cancelling a waiting acquire returns the context error, removes the
// waiter, and never swallows a wake-up another waiter needed.
func TestLimiterWaiterCancel(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	cfg := limiterTestConfig(clk)
	cfg.MinLimit, cfg.MaxLimit = 1, 1
	l := NewLimiter(cfg)

	mustAcquire(t, l, Interactive)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- l.Acquire(ctx, Interactive, true) }()

	// Cancel the waiter. Whether it had enqueued yet or not, Acquire
	// must return the context's error promptly.
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}

	// The slot is still held exactly once and still works: release it
	// and re-acquire without waiting.
	l.Release(Interactive, Success, time.Millisecond)
	if err := l.Acquire(context.Background(), Interactive, false); err != nil {
		t.Fatalf("acquire after cancelled waiter: %v — the cancel leaked a slot or a wake-up", err)
	}
	l.Release(Interactive, Success, time.Millisecond)
}
