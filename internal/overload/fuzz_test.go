package overload

import (
	"context"
	"testing"
	"time"

	"repro/internal/overload/faultinject"
)

// FuzzBreaker drives a full Guard — breaker, limiter, ledger — with an
// arbitrary event sequence decoded from the fuzz input: non-waiting
// admissions across all three classes, releases with every outcome,
// detached admissions and recordings, and clock advances. Whatever the
// sequence, the structural invariants must hold at every step and
// nothing may leak: after releasing every outstanding permit the
// limiter must read idle and the breaker must hold no phantom probes.
// Everything is single-goroutine and fake-clocked, so a hang is a
// deadlock and the target is deterministic per input.
func FuzzBreaker(f *testing.F) {
	f.Add([]byte{0, 4, 0, 4})                            // admit/release churn
	f.Add([]byte{0, 1, 2, 5, 5, 5, 5, 9, 0, 4})          // trip via timeouts, wait out the cool-down, probe
	f.Add([]byte{3, 8, 3, 8, 3, 8, 3, 8, 9, 3})          // detached trips
	f.Add([]byte{0, 0, 0, 1, 2, 4, 4, 5, 6, 7, 9, 0, 4}) // mixed classes and outcomes
	f.Fuzz(func(t *testing.T, events []byte) {
		clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
		g := NewGuard(Config{
			Window:         4 * time.Second,
			Buckets:        4,
			MinSamples:     3,
			FailureRatio:   0.5,
			CoolDown:       2 * time.Second,
			ProbeBudget:    2,
			ProbeSuccesses: 2,
			MinLimit:       1,
			MaxLimit:       4,
			TargetP99:      50 * time.Millisecond,
			AdjustEvery:    2,
			Clock:          clk.Now,
		})

		check := func(held int) {
			snap := g.Snapshot()
			if snap.Received != snap.Admitted+snap.Shed {
				t.Fatalf("ledger torn: received %d != admitted %d + shed %d",
					snap.Received, snap.Admitted, snap.Shed)
			}
			if snap.Shed != snap.ShedBreakerOpen+snap.ShedCapacity {
				t.Fatalf("ledger torn: shed %d != breaker %d + capacity %d",
					snap.Shed, snap.ShedBreakerOpen, snap.ShedCapacity)
			}
			if snap.Limiter.Total != held {
				t.Fatalf("limiter tracks %d in flight, test holds %d permits", snap.Limiter.Total, held)
			}
			if snap.Breaker.ProbesInFlight < 0 || snap.Breaker.ProbesInFlight > 2 {
				t.Fatalf("probes in flight = %d, want within [0, budget 2]", snap.Breaker.ProbesInFlight)
			}
			if s := snap.Breaker.State; s != StateClosed && s != StateOpen && s != StateHalfOpen {
				t.Fatalf("breaker in impossible state %d", s)
			}
			if snap.Limiter.Limit < 1 || snap.Limiter.Limit > 4 {
				t.Fatalf("limit = %d, want within [1, 4]", snap.Limiter.Limit)
			}
		}

		var held []*Permit
		outcomes := [4]Outcome{Success, Timeout, Errored, Cancelled}
		for _, ev := range events {
			switch ev % 10 {
			case 0, 1, 2: // admit one class, never blocking
				pri := Priority(ev % 10)
				if permit, rej := g.Admit(context.Background(), pri, false); rej == nil {
					held = append(held, permit)
				}
			case 3: // detached admission
				g.AdmitDetached(Bulk)
			case 4, 5, 6, 7: // release the oldest held permit
				if len(held) > 0 {
					held[0].Release(outcomes[ev%4], time.Duration(ev)*10*time.Millisecond)
					held = held[1:]
				}
			case 8: // detached outcome
				g.RecordDetached(outcomes[ev%4])
			case 9: // let windows, cool-downs and rate limits lapse
				clk.Advance(time.Duration(ev%4+1) * time.Second)
			}
			check(len(held))
		}

		// Drain: every permit released exactly once leaves nothing
		// behind.
		for _, p := range held {
			p.Release(Success, time.Millisecond)
		}
		check(0)
		snap := g.Snapshot()
		if snap.Limiter.InFlight != [3]int{} {
			t.Fatalf("per-class in-flight = %v after draining, want zeros", snap.Limiter.InFlight)
		}
		if snap.Breaker.ProbesInFlight != 0 {
			t.Fatalf("probes in flight = %d after draining, want 0", snap.Breaker.ProbesInFlight)
		}
	})
}
