package xtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// TestBuildConfigFuzz (property): for random shapes, capacities, fill
// fractions and overlap thresholds, the built tree always validates
// and its k-NN answers always match the linear oracle. This is the
// broad-spectrum safety net over the split machinery.
func TestBuildConfigFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(400)
		d := 1 + rng.Intn(10)
		cfg := Config{
			MaxEntries:         4 + rng.Intn(36),
			MinFillFraction:    0.1 + rng.Float64()*0.4,
			MaxOverlapFraction: 0.05 + rng.Float64()*0.95,
		}
		metric := []vector.Metric{vector.L2, vector.L1, vector.LInf}[rng.Intn(3)]

		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				switch rng.Intn(3) {
				case 0:
					rows[i][j] = rng.NormFloat64()
				case 1:
					rows[i][j] = math.Floor(rng.Float64() * 4) // heavy ties
				default:
					rows[i][j] = rng.Float64() * 100
				}
			}
		}
		ds, err := vector.FromRows(rows)
		if err != nil {
			return false
		}
		tree, err := Build(ds, metric, cfg)
		if err != nil {
			return false
		}
		if err := tree.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		xs := NewSearcher(tree)
		ls, err := knn.NewLinear(ds, metric)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			s := subspace.Mask(rng.Uint32()) & subspace.Full(d)
			if s.IsEmpty() {
				s = subspace.Full(d)
			}
			k := 1 + rng.Intn(7)
			qi := rng.Intn(n)
			got := xs.KNN(ds.Point(qi), s, k, qi)
			want := ls.KNN(ds.Point(qi), s, k, qi)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalValidity: the tree stays valid after every single
// insert on an adversarial (sorted) insertion order, which stresses
// unbalanced splits.
func TestIncrementalValidity(t *testing.T) {
	n, d := 300, 6
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = float64(i) + float64(j)*0.1 // monotone: worst case for splits
		}
	}
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(ds, vector.L2, Config{MaxEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Height() < 3 {
		t.Fatalf("sorted insert should deepen the tree, height = %d", tree.Height())
	}
}
