package xtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// This file is the on-disk codec of a built X-tree: Encode flattens
// the node structure (shape, point indices, split histories, supernode
// flags) and Decode rebuilds an identical tree over the same dataset,
// so a serving process can warm-start without paying the insertion
// cost of Build. Coordinates and MBRs are deliberately NOT stored:
// points live in the dataset the caller supplies to Decode, and every
// MBR in a valid tree is exactly the min/max bound of its entries —
// recomputing them bottom-up from the same float64 values reproduces
// the same bytes, and keeps the format free of redundant data that
// could disagree with itself.
//
// Decode trusts nothing: every read is bounds-checked, structural
// budgets cap allocation before it happens, and the rebuilt tree must
// pass the full Validate() sweep before it is returned. Corrupt or
// truncated input yields an error wrapping ErrDecode, never a panic.

// codecMagic identifies an encoded X-tree stream; codecVersion guards
// the structure layout.
const (
	codecMagic   uint32 = 0x58545231 // "XTR1"
	codecVersion uint32 = 1
)

// ErrDecode is wrapped by every Decode failure, whatever the cause
// (bad magic, truncation, structural corruption, validation failure),
// so callers can classify "this is not a usable tree" with errors.Is.
var ErrDecode = errors.New("xtree: invalid encoded tree")

// maxDecodeDepth bounds recursion while decoding: a valid X-tree over
// a bounded dataset is far shallower, and unbounded nesting in a
// hostile stream must not exhaust the stack.
const maxDecodeDepth = 512

// Encode writes the tree in the binary codec format. The dataset
// itself is not written; Decode must be given the same dataset (same
// point order and values) to rebuild an equivalent tree.
func (t *Tree) Encode(w io.Writer) error {
	e := &treeEncoder{w: w}
	e.u32(codecMagic)
	e.u32(codecVersion)
	e.u32(uint32(t.cfg.MaxEntries))
	e.f64(t.cfg.MinFillFraction)
	e.f64(t.cfg.MaxOverlapFraction)
	e.u8(uint8(t.metric))
	e.u32(uint32(t.size))
	e.u32(uint32(t.supernodes))
	e.anode(&t.ar, 0)
	return e.err
}

// Decode reads a tree previously written by Encode, binds it to ds,
// recomputes all MBRs and validates the result. The metric the tree
// was built with is restored from the stream; callers that require a
// particular metric should check Metric() afterwards.
func Decode(r io.Reader, ds *vector.Dataset) (*Tree, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrDecode)
	}
	d := &treeDecoder{r: r}
	if magic := d.u32(); d.err == nil && magic != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrDecode, magic)
	}
	if version := d.u32(); d.err == nil && version != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrDecode, version)
	}
	cfg := Config{
		MaxEntries:         int(d.u32()),
		MinFillFraction:    d.f64(),
		MaxOverlapFraction: d.f64(),
	}
	metric := vector.Metric(d.u8())
	size := int(d.u32())
	supernodes := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if err := cfg.normalize(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("%w: invalid metric %d", ErrDecode, uint8(metric))
	}
	if size != ds.N() {
		return nil, fmt.Errorf("%w: tree indexes %d points, dataset has %d", ErrDecode, size, ds.N())
	}
	// Budgets: a tree over n points has at most n leaf entries, and
	// its node count is bounded by the entry count (every non-root
	// node holds ≥ 1 entry). The +8 keeps tiny/empty trees legal.
	d.pointBudget = size
	d.maxIndex = size
	d.nodeBudget = 2*size + 8
	t := &Tree{ds: ds, metric: metric, cfg: cfg, size: size, supernodes: supernodes}
	root, err := d.node(0, subspace.Full(ds.Dim()))
	if err != nil {
		return nil, err
	}
	t.pack(root)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return t, nil
}

// Metric returns the distance metric the tree was built with.
func (t *Tree) Metric() vector.Metric { return t.metric }

// Config returns the construction parameters of the tree.
func (t *Tree) Config() Config { return t.cfg }

// node flags in the encoded stream.
const (
	flagLeaf  = 1 << 0
	flagSuper = 1 << 1
)

// treeEncoder writes fixed-width little-endian values with a sticky
// error, so Encode reads as straight-line code.
type treeEncoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *treeEncoder) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *treeEncoder) u8(v uint8) { e.write([]byte{v}) }

func (e *treeEncoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

func (e *treeEncoder) f64(v float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(v))
	e.write(e.buf[:8])
}

// anode writes arena node id and its subtree. Arena order is DFS
// preorder, exactly the recursion order here, so the stream is
// byte-for-byte the one the original pointer walk produced.
func (e *treeEncoder) anode(a *arena, id int32) {
	if e.err != nil {
		return
	}
	n := &a.nodes[id]
	var flags uint8
	if n.isLeaf() {
		flags |= flagLeaf
	}
	if n.isSuper() {
		flags |= flagSuper
	}
	e.u8(flags)
	e.u32(uint32(n.history))
	if n.isLeaf() {
		e.u32(uint32(n.pointCount))
		for _, idx := range a.rows(id) {
			e.u32(uint32(idx))
		}
		return
	}
	e.u32(uint32(n.childCount))
	for _, c := range a.kids(id) {
		e.anode(a, c)
	}
}

// treeDecoder reads the same stream back with bounds checks and
// allocation budgets.
type treeDecoder struct {
	r           io.Reader
	err         error
	buf         [8]byte
	pointBudget int
	maxIndex    int
	nodeBudget  int
}

func (d *treeDecoder) read(n int) []byte {
	if d.err != nil {
		return d.buf[:n]
	}
	if _, err := io.ReadFull(d.r, d.buf[:n]); err != nil {
		d.err = fmt.Errorf("%w: truncated stream: %v", ErrDecode, err)
	}
	return d.buf[:n]
}

func (d *treeDecoder) u8() uint8   { return d.read(1)[0] }
func (d *treeDecoder) u32() uint32 { return binary.LittleEndian.Uint32(d.read(4)) }
func (d *treeDecoder) f64() float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(d.read(8)))
}

func (d *treeDecoder) node(depth int, full subspace.Mask) (*node, error) {
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("%w: nesting deeper than %d", ErrDecode, maxDecodeDepth)
	}
	if d.nodeBudget--; d.nodeBudget < 0 {
		return nil, fmt.Errorf("%w: more nodes than the dataset can populate", ErrDecode)
	}
	flags := d.u8()
	history := subspace.Mask(d.u32())
	count := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if flags&^(flagLeaf|flagSuper) != 0 {
		return nil, fmt.Errorf("%w: unknown node flags %#x", ErrDecode, flags)
	}
	if !history.SubsetOf(full) {
		return nil, fmt.Errorf("%w: split history %v outside dimensionality", ErrDecode, history)
	}
	n := &node{leaf: flags&flagLeaf != 0, super: flags&flagSuper != 0, splitHistory: history}
	if n.leaf {
		if count > d.pointBudget {
			return nil, fmt.Errorf("%w: leaf claims %d points, only %d remain", ErrDecode, count, d.pointBudget)
		}
		d.pointBudget -= count
		n.points = make([]int, count)
		for i := range n.points {
			idx := d.u32()
			if d.err != nil {
				return nil, d.err
			}
			// Guard before anything dereferences the dataset: an
			// out-of-range index would panic in recomputeMBR.
			if int(idx) >= d.maxIndex {
				return nil, fmt.Errorf("%w: point index %d out of range [0,%d)", ErrDecode, idx, d.maxIndex)
			}
			n.points[i] = int(idx)
		}
		return n, nil
	}
	if count > d.nodeBudget {
		return nil, fmt.Errorf("%w: directory claims %d children, budget %d", ErrDecode, count, d.nodeBudget)
	}
	n.children = make([]*node, count)
	for i := range n.children {
		c, err := d.node(depth+1, full)
		if err != nil {
			return nil, err
		}
		n.children[i] = c
	}
	return n, nil
}
