package xtree

import "repro/internal/subspace"

// node is the linked scaffolding Build and Decode assemble the tree
// with; pack() flattens the finished graph into the pointer-free
// arena that the tree keeps (see arena.go). Leaf nodes hold dataset
// point indices; directory nodes hold child nodes. A node whose entry
// count exceeds the configured capacity is a supernode: the X-tree
// keeps it as a single enlarged node because every available split
// would have produced highly overlapping or unbalanced halves.
type node struct {
	mbr      MBR
	parent   *node
	children []*node // directory nodes
	points   []int   // leaf nodes: dataset indices
	leaf     bool

	// splitHistory records the dimensions along which this node's
	// subtree has been split (the X-tree split history, flattened to a
	// dimension set). The overlap-minimal split may only use a
	// dimension contained in the split history of *every* child, which
	// guarantees the children can be partitioned without overlap along
	// it.
	splitHistory subspace.Mask

	// super marks nodes allowed to exceed capacity.
	super bool
}

// entryCount returns the number of entries (points for leaves,
// children for directories).
func (n *node) entryCount() int {
	if n.leaf {
		return len(n.points)
	}
	return len(n.children)
}

// recomputeMBR rebuilds the node's MBR from its entries. pointOf maps
// a dataset index to coordinates.
func (n *node) recomputeMBR(dim int, pointOf func(int) []float64) {
	m := EmptyMBR(dim)
	if n.leaf {
		for _, idx := range n.points {
			m.ExtendPoint(pointOf(idx))
		}
	} else {
		for _, c := range n.children {
			m.Extend(c.mbr)
		}
	}
	n.mbr = m
}
