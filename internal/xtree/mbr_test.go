package xtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/subspace"
	"repro/internal/vector"
)

func TestNewMBRAndContains(t *testing.T) {
	p := []float64{1, 2, 3}
	m := NewMBR(p)
	if !m.ContainsPoint(p) {
		t.Fatal("degenerate MBR must contain its point")
	}
	if m.Area() != 0 || m.Margin() != 0 {
		t.Fatal("degenerate MBR area/margin must be 0")
	}
	if m.Dim() != 3 {
		t.Fatalf("dim = %d", m.Dim())
	}
}

func TestEmptyMBR(t *testing.T) {
	e := EmptyMBR(2)
	if !e.IsEmpty() {
		t.Fatal("EmptyMBR not empty")
	}
	e.ExtendPoint([]float64{1, 1})
	if e.IsEmpty() || !e.ContainsPoint([]float64{1, 1}) {
		t.Fatal("extend of empty MBR")
	}
}

func TestExtendAndUnion(t *testing.T) {
	a := NewMBR([]float64{0, 0})
	a.ExtendPoint([]float64{2, 3})
	if !a.ContainsPoint([]float64{1, 1.5}) {
		t.Fatal("extended MBR should contain interior point")
	}
	b := NewMBR([]float64{-1, 5})
	u := Union(a, b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatal("union must contain both")
	}
	// Union must not mutate inputs.
	if a.ContainsPoint([]float64{-1, 5}) {
		t.Fatal("Union mutated input")
	}
}

func TestAreaMarginOverlap(t *testing.T) {
	a := MBR{Min: []float64{0, 0}, Max: []float64{2, 3}}
	if a.Area() != 6 || a.Margin() != 5 {
		t.Fatalf("area=%v margin=%v", a.Area(), a.Margin())
	}
	b := MBR{Min: []float64{1, 1}, Max: []float64{3, 2}}
	if got := Overlap(a, b); got != 1 {
		t.Fatalf("overlap = %v, want 1", got)
	}
	c := MBR{Min: []float64{5, 5}, Max: []float64{6, 6}}
	if Overlap(a, c) != 0 {
		t.Fatal("disjoint overlap must be 0")
	}
	// Touching rectangles: zero overlap.
	d := MBR{Min: []float64{2, 0}, Max: []float64{4, 3}}
	if Overlap(a, d) != 0 {
		t.Fatal("touching overlap must be 0")
	}
}

func TestEnlargement(t *testing.T) {
	a := MBR{Min: []float64{0, 0}, Max: []float64{1, 1}}
	b := MBR{Min: []float64{2, 0}, Max: []float64{3, 1}}
	// Union is [0,3]x[0,1], area 3, so enlargement is 2.
	if got := Enlargement(a, b); got != 2 {
		t.Fatalf("enlargement = %v", got)
	}
	if Enlargement(a, a) != 0 {
		t.Fatal("self enlargement must be 0")
	}
}

func TestMinDistInsideIsZero(t *testing.T) {
	r := MBR{Min: []float64{0, 0, 0}, Max: []float64{1, 1, 1}}
	q := []float64{0.5, 0.5, 0.5}
	for _, m := range []vector.Metric{vector.L2, vector.L1, vector.LInf} {
		if d := r.MinDist(m, subspace.Full(3), q); d != 0 {
			t.Fatalf("%v: inside mindist = %v", m, d)
		}
	}
}

func TestMinDistKnown(t *testing.T) {
	r := MBR{Min: []float64{0, 0}, Max: []float64{1, 1}}
	q := []float64{4, 5}
	if d := r.MinDist(vector.L2, subspace.Full(2), q); math.Abs(d-5) > 1e-12 {
		t.Fatalf("L2 mindist = %v, want 5", d)
	}
	if d := r.MinDist(vector.L1, subspace.Full(2), q); math.Abs(d-7) > 1e-12 {
		t.Fatalf("L1 mindist = %v, want 7", d)
	}
	if d := r.MinDist(vector.LInf, subspace.Full(2), q); math.Abs(d-4) > 1e-12 {
		t.Fatalf("LInf mindist = %v, want 4", d)
	}
	// Restricted to dim 0 only.
	if d := r.MinDist(vector.L2, subspace.New(0), q); math.Abs(d-3) > 1e-12 {
		t.Fatalf("subspace mindist = %v, want 3", d)
	}
}

// TestMinDistLowerBound (property): for any point p inside the MBR,
// MinDist(q, MBR) ≤ Dist(q, p) in every subspace and metric. This is
// the contract the best-first search relies on.
func TestMinDistLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i := 0; i < d; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			lo[i], hi[i] = math.Min(a, b), math.Max(a, b)
		}
		r := MBR{Min: lo, Max: hi}
		// p inside the box
		p := make([]float64, d)
		for i := 0; i < d; i++ {
			p[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		q := make([]float64, d)
		for i := 0; i < d; i++ {
			q[i] = rng.NormFloat64() * 3
		}
		s := subspace.Mask(rng.Uint32()) & subspace.Full(d)
		if s.IsEmpty() {
			s = subspace.Full(d)
		}
		for _, m := range []vector.Metric{vector.L2, vector.L1, vector.LInf} {
			if r.MinDist(m, s, q) > vector.Dist(m, s, q, p)+1e-9 {
				return false
			}
		}
		// Squared variant consistent.
		md := r.MinDist(vector.L2, s, q)
		if math.Abs(md*md-r.MinDistSqL2(s, q)) > 1e-9*(1+md*md) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapCommutativeAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() MBR {
			lo := []float64{rng.NormFloat64(), rng.NormFloat64()}
			hi := []float64{lo[0] + rng.Float64(), lo[1] + rng.Float64()}
			return MBR{Min: lo, Max: hi}
		}
		a, b := mk(), mk()
		ov1, ov2 := Overlap(a, b), Overlap(b, a)
		if ov1 != ov2 {
			return false
		}
		return ov1 <= math.Min(a.Area(), b.Area())+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
