package xtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// randomDataset builds n points in d dims: a mix of Gaussian clusters
// (which exercise splits) and uniform noise.
func randomDataset(t testing.TB, seed int64, n, d int) *vector.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	centers := [][]float64{}
	for c := 0; c < 4; c++ {
		ctr := make([]float64, d)
		for j := range ctr {
			ctr[j] = rng.Float64() * 10
		}
		centers = append(centers, ctr)
	}
	for i := range rows {
		rows[i] = make([]float64, d)
		if rng.Float64() < 0.8 {
			ctr := centers[rng.Intn(len(centers))]
			for j := range rows[i] {
				rows[i][j] = ctr[j] + rng.NormFloat64()*0.5
			}
		} else {
			for j := range rows[i] {
				rows[i][j] = rng.Float64() * 10
			}
		}
	}
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, vector.L2, DefaultConfig()); err == nil {
		t.Fatal("nil dataset accepted")
	}
	ds := randomDataset(t, 1, 10, 2)
	if _, err := Build(ds, vector.Metric(99), DefaultConfig()); err == nil {
		t.Fatal("bad metric accepted")
	}
	if _, err := Build(ds, vector.L2, Config{MaxEntries: 2}); err == nil {
		t.Fatal("tiny capacity accepted")
	}
	if _, err := Build(ds, vector.L2, Config{MinFillFraction: 0.9}); err == nil {
		t.Fatal("over-half fill accepted")
	}
	if _, err := Build(ds, vector.L2, Config{MaxOverlapFraction: 2}); err == nil {
		t.Fatal("overlap > 1 accepted")
	}
}

func TestBuildSmallAndEmpty(t *testing.T) {
	ds, _ := vector.FromRows([][]float64{{1, 2}})
	tr, err := Build(ds, vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1 || tr.Height() != 1 {
		t.Fatalf("size=%d height=%d", tr.Size(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInvariantsAcrossShapes(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{10, 2}, {100, 2}, {300, 4}, {500, 8}, {1000, 12}, {64, 16},
	} {
		ds := randomDataset(t, int64(tc.n+tc.d), tc.n, tc.d)
		tr, err := Build(ds, vector.L2, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if tr.Size() != tc.n {
			t.Fatalf("n=%d d=%d: size = %d", tc.n, tc.d, tr.Size())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if tc.n > 100 && tr.Height() < 2 {
			t.Fatalf("n=%d: tree did not grow (height %d)", tc.n, tr.Height())
		}
	}
}

func TestDuplicatePointsSupported(t *testing.T) {
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{1, 2, 3} // all identical
	}
	ds, _ := vector.FromRows(rows)
	tr, err := Build(ds, vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 200 {
		t.Fatalf("size = %d", tr.Size())
	}
	s := NewSearcher(tr)
	nbs := s.KNN([]float64{1, 2, 3}, subspace.Full(3), 5, -1)
	if len(nbs) != 5 {
		t.Fatalf("got %d neighbours", len(nbs))
	}
	for _, nb := range nbs {
		if nb.Dist != 0 {
			t.Fatalf("distance to duplicate = %v", nb.Dist)
		}
	}
}

func TestHighDimBuildsSupernodes(t *testing.T) {
	// Uniform high-dim data is the X-tree's supernode-inducing case;
	// we only require validity, and record that the mechanism engages
	// for at least one of the tested shapes.
	engaged := false
	for _, d := range []int{12, 16, 20} {
		rng := rand.New(rand.NewSource(int64(d)))
		rows := make([][]float64, 400)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.Float64()
			}
		}
		ds, _ := vector.FromRows(rows)
		tr, err := Build(ds, vector.L2, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if tr.SupernodeCount() > 0 {
			engaged = true
		}
	}
	_ = engaged // supernodes are workload-dependent; validity is the hard requirement
}

func knnEqual(a, b []knn.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

// TestKNNMatchesLinear is the central correctness test: X-tree k-NN
// must agree exactly with the linear-scan oracle on random data, for
// random subspaces, all metrics, with and without self-exclusion.
func TestKNNMatchesLinear(t *testing.T) {
	for _, metric := range []vector.Metric{vector.L2, vector.L1, vector.LInf} {
		for _, shape := range []struct{ n, d int }{{50, 3}, {300, 6}, {500, 10}} {
			ds := randomDataset(t, int64(shape.n)*7+int64(metric), shape.n, shape.d)
			tr, err := Build(ds, metric, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			xs := NewSearcher(tr)
			ls, _ := knn.NewLinear(ds, metric)
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 30; trial++ {
				s := subspace.Mask(rng.Uint32()) & subspace.Full(shape.d)
				if s.IsEmpty() {
					s = subspace.Full(shape.d)
				}
				k := 1 + rng.Intn(10)
				qi := rng.Intn(shape.n)
				exclude := -1
				if trial%2 == 0 {
					exclude = qi
				}
				got := xs.KNN(ds.Point(qi), s, k, exclude)
				want := ls.KNN(ds.Point(qi), s, k, exclude)
				if !knnEqual(got, want) {
					t.Fatalf("metric=%v shape=%+v s=%v k=%d exclude=%d:\n got %+v\nwant %+v",
						metric, shape, s, k, exclude, got, want)
				}
			}
		}
	}
}

func TestKNNExternalQueryPoint(t *testing.T) {
	ds := randomDataset(t, 5, 200, 4)
	tr, _ := Build(ds, vector.L2, DefaultConfig())
	xs := NewSearcher(tr)
	ls, _ := knn.NewLinear(ds, vector.L2)
	q := []float64{100, -50, 3, 0} // far outside the data
	got := xs.KNN(q, subspace.Full(4), 3, -1)
	want := ls.KNN(q, subspace.Full(4), 3, -1)
	if !knnEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestKNNDegenerate(t *testing.T) {
	ds := randomDataset(t, 5, 50, 3)
	tr, _ := Build(ds, vector.L2, DefaultConfig())
	xs := NewSearcher(tr)
	if xs.KNN(ds.Point(0), subspace.Full(3), 0, -1) != nil {
		t.Fatal("k=0 should return nil")
	}
	if xs.KNN(ds.Point(0), subspace.Empty, 3, -1) != nil {
		t.Fatal("empty subspace should return nil")
	}
	// k larger than dataset
	nbs := xs.KNN(ds.Point(0), subspace.Full(3), 500, 0)
	if len(nbs) != 49 {
		t.Fatalf("len = %d, want 49", len(nbs))
	}
}

func TestKNNPrunesWork(t *testing.T) {
	// On clustered data the X-tree should examine fewer points than a
	// full scan for small k.
	ds := randomDataset(t, 42, 2000, 4)
	tr, _ := Build(ds, vector.L2, DefaultConfig())
	xs := NewSearcher(tr)
	xs.ResetStats()
	const queries = 20
	for i := 0; i < queries; i++ {
		xs.KNN(ds.Point(i), subspace.Full(4), 5, i)
	}
	st := xs.Stats()
	if st.Queries != queries {
		t.Fatalf("queries = %d", st.Queries)
	}
	scanned := float64(st.PointsExamined) / queries
	if scanned >= 2000 {
		t.Fatalf("X-tree examined %.0f points per query on average; no pruning at all", scanned)
	}
	t.Logf("avg points examined per query: %.0f / 2000", scanned)
}

func TestRangeMatchesLinear(t *testing.T) {
	ds := randomDataset(t, 11, 300, 5)
	tr, _ := Build(ds, vector.L2, DefaultConfig())
	xs := NewSearcher(tr)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		s := subspace.Mask(rng.Uint32()) & subspace.Full(5)
		if s.IsEmpty() {
			s = subspace.Full(5)
		}
		qi := rng.Intn(300)
		r := rng.Float64() * 3
		got := xs.Range(ds.Point(qi), s, r, qi)
		// linear oracle
		var want []int
		for i := 0; i < 300; i++ {
			if i == qi {
				continue
			}
			if vector.Dist(vector.L2, s, ds.Point(qi), ds.Point(i)) <= r {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d in range, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestRangeDegenerate(t *testing.T) {
	ds := randomDataset(t, 11, 50, 3)
	tr, _ := Build(ds, vector.L2, DefaultConfig())
	xs := NewSearcher(tr)
	if xs.Range(ds.Point(0), subspace.Empty, 1, -1) != nil {
		t.Fatal("empty subspace range should be nil")
	}
	if xs.Range(ds.Point(0), subspace.Full(3), -1, -1) != nil {
		t.Fatal("negative radius range should be nil")
	}
}

func TestNodeCountAndStats(t *testing.T) {
	ds := randomDataset(t, 13, 800, 4)
	tr, _ := Build(ds, vector.L2, DefaultConfig())
	if tr.NodeCount() < 2 {
		t.Fatalf("node count = %d", tr.NodeCount())
	}
	xs := NewSearcher(tr)
	xs.KNN(ds.Point(0), subspace.Full(4), 3, 0)
	if xs.Stats().NodesVisited == 0 {
		t.Fatal("no nodes visited?")
	}
	xs.ResetStats()
	if xs.Stats() != (knn.SearchStats{}) {
		t.Fatal("reset failed")
	}
}

func TestSearcherImplementsInterface(t *testing.T) {
	var _ knn.Searcher = (*Searcher)(nil)
	var _ knn.Searcher = (*knn.LinearSearcher)(nil)
}
