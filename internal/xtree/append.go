package xtree

import (
	"fmt"

	"repro/internal/vector"
)

// appendRebuildFactor is the repack/rebuild trigger for Append: when a
// batch at least doubles the indexed row count, continuing the old
// insertion sequence costs as much as starting over, so Append builds
// from scratch instead of unpacking. Both paths produce byte-identical
// trees (Append's contract), so the trigger is purely a cost policy.
const appendRebuildFactor = 2.0

// Append returns a new Tree over newDS that indexes every row of
// newDS, sharing nothing mutable with t (t remains valid and
// unchanged — in-flight searches against it are unaffected).
//
// newDS must extend the dataset t was built over: same dimensionality,
// and rows [0, t.Size()) byte-identical to the indexed rows. The new
// rows [t.Size(), newDS.N()) are inserted by continuing t's insertion
// sequence: the packed arena is unpacked into the linked scaffolding
// Build uses, the rows are inserted, and the result is repacked. The
// insertion algorithm is deterministic in (prefix rows, insertion
// order), so the appended tree is byte-identical — arena layout, split
// history, supernode set, encoded stream — to Build over all of newDS.
// Large batches (≥ appendRebuildFactor × current size) take the
// from-scratch path directly; the result is the same.
func (t *Tree) Append(newDS *vector.Dataset) (*Tree, error) {
	if newDS == nil {
		return nil, fmt.Errorf("xtree: append: nil dataset")
	}
	if newDS.Dim() != t.ds.Dim() {
		return nil, fmt.Errorf("xtree: append: dim %d != indexed dim %d", newDS.Dim(), t.ds.Dim())
	}
	if newDS.N() < t.size {
		return nil, fmt.Errorf("xtree: append: dataset has %d rows, tree indexes %d", newDS.N(), t.size)
	}
	d := t.ds.Dim()
	oldSlab, newSlab := t.ds.Slab(), newDS.Slab()
	for i := 0; i < t.size*d; i++ {
		if oldSlab[i] != newSlab[i] {
			return nil, fmt.Errorf("xtree: append: row %d differs from the indexed dataset", i/d)
		}
	}
	if float64(newDS.N()-t.size) >= appendRebuildFactor*float64(t.size) {
		return Build(newDS, t.metric, t.cfg)
	}
	nt := &Tree{
		ds:         newDS,
		metric:     t.metric,
		cfg:        t.cfg,
		root:       t.unpack(),
		size:       t.size,
		supernodes: t.supernodes,
	}
	for i := t.size; i < newDS.N(); i++ {
		nt.insert(i)
	}
	nt.pack(nt.root)
	nt.root = nil
	if err := nt.Validate(); err != nil {
		return nil, fmt.Errorf("xtree: append: %w", err)
	}
	return nt, nil
}

// AppendBatch is the group-commit entry point: it grows the indexed
// dataset by every batch of rows at once and returns the appended
// tree. The whole drained batch pays the unpack→insert→repack cycle
// once — the arena is unpacked to linked scaffolding a single time,
// all rows insert in order, and one pack finishes — instead of once
// per batch the way chained Append calls would. The existing
// growth-factor trigger still applies, now to the combined batch: a
// drain that at least doubles the tree takes the from-scratch build.
// Exactness is Append's: byte-identical to Build over the full data.
func (t *Tree) AppendBatch(batches ...[][]float64) (*Tree, error) {
	total := 0
	for _, rows := range batches {
		total += len(rows)
	}
	all := make([][]float64, 0, total)
	for _, rows := range batches {
		all = append(all, rows...)
	}
	newDS, err := t.ds.Append(all...)
	if err != nil {
		return nil, fmt.Errorf("xtree: append batch: %w", err)
	}
	return t.Append(newDS)
}

// unpack reconstructs the linked scaffolding from the packed arena —
// the exact inverse of pack. MBR bounds are copied out of the slabs
// (pack recomputes them with the same pure min/max the incremental
// maintenance uses, so the restored scaffolding is byte-identical to
// the graph that existed just before pack ran).
func (t *Tree) unpack() *node {
	a := &t.ar
	d := a.dim
	var build func(id int32, parent *node) *node
	build = func(id int32, parent *node) *node {
		an := &a.nodes[id]
		n := &node{
			parent:       parent,
			leaf:         an.isLeaf(),
			super:        an.isSuper(),
			splitHistory: an.history,
		}
		base := int(id) * d
		n.mbr = MBR{
			Min: append([]float64(nil), a.mbrMin[base:base+d]...),
			Max: append([]float64(nil), a.mbrMax[base:base+d]...),
		}
		if an.isLeaf() {
			n.points = make([]int, 0, an.pointCount)
			for _, p := range a.rows(id) {
				n.points = append(n.points, int(p))
			}
		} else {
			n.children = make([]*node, 0, an.childCount)
			for _, c := range a.kids(id) {
				n.children = append(n.children, build(c, n))
			}
		}
		return n
	}
	return build(0, nil)
}
