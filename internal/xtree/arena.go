package xtree

import (
	"math"

	"repro/internal/subspace"
)

// This file is the pointer-free resident layout of a built X-tree.
// Build and Decode assemble a temporary pointer graph (splits are far
// easier to express on linked nodes), then pack() flattens it into a
// struct-of-arrays arena and the pointer graph is dropped. Everything
// that runs after construction — search, validation, encoding, the
// structural accessors — walks the arena.
//
// Layout: nodes are stored in DFS preorder (root at index 0, every
// child after its parent), so the encoder's recursive walk over the
// arena emits the same byte stream the pointer walk did. A node's
// children and points are contiguous runs in the shared children /
// points arrays, and its MBR lives at rows [id*d, (id+1)*d) of two
// flat float64 slabs — one cache line of bounds per node for the
// dimensionalities HOS-Miner targets, with no per-node allocations
// and nothing for the garbage collector to trace.

// anodeFlags mirror the codec node flags.
const (
	anodeLeaf  = 1 << 0
	anodeSuper = 1 << 1
)

// anode is one arena node. Children are node IDs (indices into
// arena.nodes), points are dataset row indices; both live in the
// arena's shared backing arrays.
type anode struct {
	childOff   int32
	childCount int32
	pointOff   int32
	pointCount int32
	history    subspace.Mask
	flags      uint8
}

func (n *anode) isLeaf() bool  { return n.flags&anodeLeaf != 0 }
func (n *anode) isSuper() bool { return n.flags&anodeSuper != 0 }

func (n *anode) entryCount() int {
	if n.isLeaf() {
		return int(n.pointCount)
	}
	return int(n.childCount)
}

// arena is the packed tree: all nodes, all child links, all point
// indices and all MBR bounds in six flat slices.
type arena struct {
	nodes    []anode
	children []int32
	points   []int32
	dim      int
	// mbrMin/mbrMax hold node i's bounds at [i*dim, (i+1)*dim).
	mbrMin []float64
	mbrMax []float64
}

// kids returns the child node IDs of node id.
func (a *arena) kids(id int32) []int32 {
	n := &a.nodes[id]
	return a.children[n.childOff : n.childOff+n.childCount]
}

// rows returns the dataset row indices held by leaf id.
func (a *arena) rows(id int32) []int32 {
	n := &a.nodes[id]
	return a.points[n.pointOff : n.pointOff+n.pointCount]
}

// pack flattens the pointer graph rooted at root into t.ar and
// recomputes every MBR bottom-up from the dataset. Extending by points
// is pure min/max — exact and order-independent — so the recomputed
// bounds are byte-identical to the incrementally maintained ones, and
// a decoded tree traverses exactly like the tree that was encoded.
func (t *Tree) pack(root *node) {
	d := t.ds.Dim()
	a := &t.ar
	a.dim = d
	a.nodes = a.nodes[:0]
	a.children = a.children[:0]
	a.points = a.points[:0]

	var flatten func(n *node) int32
	flatten = func(n *node) int32 {
		id := int32(len(a.nodes))
		an := anode{history: n.splitHistory}
		if n.leaf {
			an.flags |= anodeLeaf
		}
		if n.super {
			an.flags |= anodeSuper
		}
		an.pointOff = int32(len(a.points))
		for _, p := range n.points {
			a.points = append(a.points, int32(p))
		}
		an.pointCount = int32(len(n.points))
		a.nodes = append(a.nodes, an)
		if !n.leaf {
			// Children pack after the whole subtree of each earlier
			// sibling; collect the IDs first, then write the run.
			ids := make([]int32, len(n.children))
			for i, c := range n.children {
				ids[i] = flatten(c)
			}
			off := int32(len(a.children))
			a.children = append(a.children, ids...)
			a.nodes[id].childOff = off
			a.nodes[id].childCount = int32(len(ids))
		}
		return id
	}
	flatten(root)

	need := len(a.nodes) * d
	if cap(a.mbrMin) < need {
		a.mbrMin = make([]float64, need)
		a.mbrMax = make([]float64, need)
	}
	a.mbrMin = a.mbrMin[:need]
	a.mbrMax = a.mbrMax[:need]
	slab := t.ds.Slab()
	// Preorder guarantees children have larger IDs than their parent,
	// so one reverse sweep computes all bounds bottom-up.
	for id := len(a.nodes) - 1; id >= 0; id-- {
		base := id * d
		lo := a.mbrMin[base : base+d]
		hi := a.mbrMax[base : base+d]
		for j := 0; j < d; j++ {
			lo[j] = math.Inf(1)
			hi[j] = math.Inf(-1)
		}
		n := &a.nodes[id]
		if n.isLeaf() {
			for _, p := range a.rows(int32(id)) {
				row := slab[int(p)*d : int(p)*d+d]
				for j, v := range row {
					if v < lo[j] {
						lo[j] = v
					}
					if v > hi[j] {
						hi[j] = v
					}
				}
			}
		} else {
			for _, c := range a.kids(int32(id)) {
				cb := int(c) * d
				for j := 0; j < d; j++ {
					if a.mbrMin[cb+j] < lo[j] {
						lo[j] = a.mbrMin[cb+j]
					}
					if a.mbrMax[cb+j] > hi[j] {
						hi[j] = a.mbrMax[cb+j]
					}
				}
			}
		}
	}
}

// nodeMBR materialises node id's bounds as an MBR (testing/validation
// convenience; the hot path reads the slabs directly).
func (a *arena) nodeMBR(id int32) MBR {
	base := int(id) * a.dim
	return MBR{
		Min: a.mbrMin[base : base+a.dim],
		Max: a.mbrMax[base : base+a.dim],
	}
}
