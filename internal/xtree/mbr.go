// Package xtree implements the X-tree of Berchtold, Keim and Kriegel
// (VLDB 1996), the index HOS-Miner uses to "facilitate k-NN search in
// every subspace" (§3). The X-tree extends the R*-tree with an
// overlap-minimal split derived from the split history and with
// supernodes — directory nodes of unbounded capacity created when no
// good split exists — which keeps the directory overlap low in high
// dimensions.
//
// Subspace queries need no per-subspace index: the minimum distance
// between a query and a bounding rectangle restricted to a dimension
// subset is still a lower bound of the true point distance in that
// subset, so one full-dimensional X-tree serves best-first k-NN in
// every subspace.
package xtree

import (
	"fmt"
	"math"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// MBR is a minimum bounding rectangle in d dimensions.
type MBR struct {
	Min []float64
	Max []float64
}

// NewMBR returns a degenerate MBR covering exactly the given point.
func NewMBR(p []float64) MBR {
	lo := append([]float64(nil), p...)
	hi := append([]float64(nil), p...)
	return MBR{Min: lo, Max: hi}
}

// EmptyMBR returns an inverted MBR that acts as the identity for
// Extend/Union.
func EmptyMBR(d int) MBR {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	return MBR{Min: lo, Max: hi}
}

// Dim returns the dimensionality of the rectangle.
func (r MBR) Dim() int { return len(r.Min) }

// IsEmpty reports whether the MBR is inverted (covers nothing).
func (r MBR) IsEmpty() bool { return len(r.Min) == 0 || r.Min[0] > r.Max[0] }

// Clone returns a deep copy.
func (r MBR) Clone() MBR {
	return MBR{
		Min: append([]float64(nil), r.Min...),
		Max: append([]float64(nil), r.Max...),
	}
}

// ExtendPoint grows the MBR in place to cover p.
func (r *MBR) ExtendPoint(p []float64) {
	for i, v := range p {
		if v < r.Min[i] {
			r.Min[i] = v
		}
		if v > r.Max[i] {
			r.Max[i] = v
		}
	}
}

// Extend grows the MBR in place to cover other.
func (r *MBR) Extend(other MBR) {
	for i := range r.Min {
		if other.Min[i] < r.Min[i] {
			r.Min[i] = other.Min[i]
		}
		if other.Max[i] > r.Max[i] {
			r.Max[i] = other.Max[i]
		}
	}
}

// Union returns the smallest MBR covering both inputs.
func Union(a, b MBR) MBR {
	u := a.Clone()
	u.Extend(b)
	return u
}

// ContainsPoint reports whether p lies inside the rectangle
// (inclusive).
func (r MBR) ContainsPoint(p []float64) bool {
	for i, v := range p {
		if v < r.Min[i] || v > r.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether other lies entirely inside r.
func (r MBR) Contains(other MBR) bool {
	for i := range r.Min {
		if other.Min[i] < r.Min[i] || other.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Area returns the d-dimensional volume. Degenerate extents contribute
// factor 0.
func (r MBR) Area() float64 {
	area := 1.0
	for i := range r.Min {
		area *= r.Max[i] - r.Min[i]
	}
	return area
}

// Margin returns the sum of edge lengths (the R*-tree margin
// criterion, up to the constant 2^(d-1) factor).
func (r MBR) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Overlap returns the volume of the intersection of a and b (0 when
// disjoint).
func Overlap(a, b MBR) float64 {
	v := 1.0
	for i := range a.Min {
		lo := math.Max(a.Min[i], b.Min[i])
		hi := math.Min(a.Max[i], b.Max[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Enlargement returns how much r's area grows when extended to cover
// other.
func Enlargement(r, other MBR) float64 {
	return Union(r, other).Area() - r.Area()
}

// MinDist returns the minimum distance from point q to any point of
// the rectangle, restricted to the dimensions of s, under metric m.
// It is the classical MINDIST lower bound used to order best-first
// traversal.
func (r MBR) MinDist(m vector.Metric, s subspace.Mask, q []float64) float64 {
	switch m {
	case vector.L2:
		var sum float64
		s.EachDim(func(d int) {
			diff := axisGap(q[d], r.Min[d], r.Max[d])
			sum += diff * diff
		})
		return math.Sqrt(sum)
	case vector.L1:
		var sum float64
		s.EachDim(func(d int) {
			sum += axisGap(q[d], r.Min[d], r.Max[d])
		})
		return sum
	case vector.LInf:
		var max float64
		s.EachDim(func(d int) {
			if diff := axisGap(q[d], r.Min[d], r.Max[d]); diff > max {
				max = diff
			}
		})
		return max
	default:
		panic(fmt.Sprintf("xtree: unknown metric %v", m))
	}
}

// MinDistSqL2 is MinDist for L2 without the final square root
// (order-equivalent, cheaper).
func (r MBR) MinDistSqL2(s subspace.Mask, q []float64) float64 {
	var sum float64
	s.EachDim(func(d int) {
		diff := axisGap(q[d], r.Min[d], r.Max[d])
		sum += diff * diff
	})
	return sum
}

func axisGap(v, lo, hi float64) float64 {
	if v < lo {
		return lo - v
	}
	if v > hi {
		return v - hi
	}
	return 0
}
