package xtree

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/vector"
)

func randomRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		rows[i] = row
	}
	return rows
}

func datasetOf(t *testing.T, rows [][]float64, d int) *vector.Dataset {
	t.Helper()
	_ = d
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func encodeTree(t *testing.T, tr *Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAppendEqualsBuild is the core exactness property: inserting rows
// into an already-packed tree continues the original insertion
// sequence, so the appended tree's encoded stream is byte-identical to
// Build over the full dataset. Covered across batch sizes that land
// on both sides of the rebuild trigger, and with chained appends.
func TestAppendEqualsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const d = 4
	all := randomRows(rng, 600, d)
	for _, tc := range []struct {
		name    string
		base    int
		batches []int
	}{
		{"single_row", 300, []int{1}},
		{"small_batches", 200, []int{7, 13, 50}},
		{"rebuild_trigger", 100, []int{400}}, // ≥2x growth: from-scratch path
		{"grow_from_tiny", 5, []int{20, 100, 300}},
		{"many_singles", 550, []int{1, 1, 1, 1, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.base
			tr, err := Build(datasetOf(t, all[:n], d), vector.L2, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range tc.batches {
				ds := datasetOf(t, all[:n+b], d)
				tr, err = tr.Append(ds)
				if err != nil {
					t.Fatal(err)
				}
				n += b
				if tr.Size() != n {
					t.Fatalf("appended tree size %d, want %d", tr.Size(), n)
				}
				if err := tr.Validate(); err != nil {
					t.Fatal(err)
				}
			}
			fresh, err := Build(datasetOf(t, all[:n], d), vector.L2, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			got, want := encodeTree(t, tr), encodeTree(t, fresh)
			if !bytes.Equal(got, want) {
				t.Fatalf("appended tree encodes differently from fresh build (%d vs %d bytes)", len(got), len(want))
			}
			if tr.SupernodeCount() != fresh.SupernodeCount() {
				t.Fatalf("supernodes: appended %d, fresh %d", tr.SupernodeCount(), fresh.SupernodeCount())
			}
		})
	}
}

// TestAppendBatchEqualsChainedAppend: the group-commit entry point —
// many queued row batches applied in one unpack/insert/repack cycle —
// encodes byte-identically to both the chained per-batch appends and
// a fresh build, on either side of the rebuild trigger.
func TestAppendBatchEqualsChainedAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const d = 4
	all := randomRows(rng, 500, d)
	for _, tc := range []struct {
		name    string
		base    int
		batches []int
	}{
		{"coalesced_singles", 300, []int{1, 1, 1, 1}},
		{"mixed_sizes", 200, []int{3, 40, 7}},
		{"rebuild_trigger", 100, []int{150, 250}}, // combined ≥2x: from-scratch path
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := datasetOf(t, all[:tc.base], d)
			tr, err := Build(base, vector.L2, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			var batches [][][]float64
			n := tc.base
			for _, b := range tc.batches {
				batches = append(batches, all[n:n+b])
				n += b
			}
			batched, err := tr.AppendBatch(batches...)
			if err != nil {
				t.Fatal(err)
			}
			if batched.Size() != n {
				t.Fatalf("batched size %d, want %d", batched.Size(), n)
			}
			chained := tr
			m := tc.base
			for _, b := range tc.batches {
				m += b
				chained, err = chained.Append(datasetOf(t, all[:m], d))
				if err != nil {
					t.Fatal(err)
				}
			}
			fresh, err := Build(datasetOf(t, all[:n], d), vector.L2, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			bb, cb, fb := encodeTree(t, batched), encodeTree(t, chained), encodeTree(t, fresh)
			if !bytes.Equal(bb, cb) {
				t.Fatal("batched append diverges from chained appends")
			}
			if !bytes.Equal(bb, fb) {
				t.Fatal("batched append diverges from fresh build")
			}
		})
	}
	// Bad rows surface as errors, not a corrupted tree.
	tr, err := Build(datasetOf(t, all[:50], d), vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AppendBatch([][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong-width batch row accepted")
	}
}

// TestAppendLeavesOriginalIntact: Append is copy-on-write — the source
// tree still validates and encodes identically afterwards.
func TestAppendLeavesOriginalIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d = 3
	all := randomRows(rng, 260, d)
	base := datasetOf(t, all[:200], d)
	tr, err := Build(base, vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := encodeTree(t, tr)
	if _, err := tr.Append(datasetOf(t, all, d)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("original tree no longer validates after Append: %v", err)
	}
	if !bytes.Equal(before, encodeTree(t, tr)) {
		t.Fatal("Append mutated the source tree's encoding")
	}
}

// TestAppendAfterDecode: a tree restored from its encoded stream (the
// warm-start path) accepts appends and still matches a fresh build.
func TestAppendAfterDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const d = 5
	all := randomRows(rng, 400, d)
	base := datasetOf(t, all[:350], d)
	built, err := Build(base, vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(bytes.NewReader(encodeTree(t, built)), base)
	if err != nil {
		t.Fatal(err)
	}
	full := datasetOf(t, all, d)
	appended, err := decoded.Append(full)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(full, vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeTree(t, appended), encodeTree(t, fresh)) {
		t.Fatal("append after decode diverges from fresh build")
	}
}

// TestAppendRejectsBadDatasets pins the contract errors: nil dataset,
// wrong dimensionality, shrunk dataset, and a mutated prefix.
func TestAppendRejectsBadDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d = 3
	all := randomRows(rng, 60, d)
	tr, err := Build(datasetOf(t, all[:50], d), vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Append(nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	wrongDim := randomRows(rng, 60, d+1)
	if _, err := tr.Append(datasetOf(t, wrongDim, d+1)); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	if _, err := tr.Append(datasetOf(t, all[:40], d)); err == nil {
		t.Fatal("shrunk dataset accepted")
	}
	mutated := make([][]float64, len(all))
	for i, row := range all {
		mutated[i] = append([]float64(nil), row...)
	}
	mutated[10][1] += 0.5
	if _, err := tr.Append(datasetOf(t, mutated, d)); err == nil {
		t.Fatal("mutated prefix accepted")
	}
}

// TestAppendNoNewRows: appending a dataset with no additional rows
// returns an equivalent tree (a no-op epoch bump).
func TestAppendNoNewRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const d = 4
	all := randomRows(rng, 120, d)
	ds := datasetOf(t, all, d)
	tr, err := Build(ds, vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	again, err := tr.Append(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeTree(t, tr), encodeTree(t, again)) {
		t.Fatal("no-op append changed the tree")
	}
}
