package xtree

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/subspace"
	"repro/internal/vector"
)

func buildRandomTree(t *testing.T, n, d int, seed int64) (*Tree, *vector.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*d)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	ds, err := vector.NewDataset(data, n, d)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(ds, vector.L2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tree, ds
}

// TestCodecRoundTrip: decode(encode(tree)) must validate, preserve
// every structural statistic, and answer k-NN queries identically.
func TestCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		n, d int
	}{
		{"tiny", 5, 2},
		{"one-leaf", 16, 3},
		{"mid", 300, 4},
		{"large-with-supernodes", 900, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tree, ds := buildRandomTree(t, c.n, c.d, int64(c.n))
			var buf bytes.Buffer
			if err := tree.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()), ds)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("decoded tree invalid: %v", err)
			}
			if got.Size() != tree.Size() || got.Height() != tree.Height() ||
				got.NodeCount() != tree.NodeCount() || got.SupernodeCount() != tree.SupernodeCount() {
				t.Fatalf("structure diverged: size %d/%d height %d/%d nodes %d/%d supernodes %d/%d",
					got.Size(), tree.Size(), got.Height(), tree.Height(),
					got.NodeCount(), tree.NodeCount(), got.SupernodeCount(), tree.SupernodeCount())
			}
			if got.Metric() != tree.Metric() || got.Config() != tree.Config() {
				t.Fatalf("metric/config diverged: %v/%v vs %v/%v",
					got.Metric(), got.Config(), tree.Metric(), tree.Config())
			}
			// Identical answers, including distance bytes and node visit
			// order side effects.
			rng := rand.New(rand.NewSource(7))
			sa, sb := NewSearcher(tree), NewSearcher(got)
			for q := 0; q < 25; q++ {
				query := make([]float64, c.d)
				for j := range query {
					query[j] = rng.NormFloat64() * 10
				}
				sub := subspace.Mask(rng.Intn(1<<c.d-1) + 1)
				k := 1 + rng.Intn(6)
				want := sa.KNN(query, sub, k, -1)
				have := sb.KNN(query, sub, k, -1)
				if !reflect.DeepEqual(want, have) {
					t.Fatalf("query %d: decoded tree answered differently:\n want %v\n have %v", q, want, have)
				}
			}
			if sa.Stats() != sb.Stats() {
				t.Fatalf("work counters diverged: %+v vs %+v", sa.Stats(), sb.Stats())
			}
		})
	}
}

// TestDecodeRejectsCorruptStreams: no mutation of a valid stream may
// panic, and structural corruptions must surface ErrDecode.
func TestDecodeRejectsCorruptStreams(t *testing.T) {
	tree, ds := buildRandomTree(t, 200, 3, 42)
	var buf bytes.Buffer
	if err := tree.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Every truncation must error, never panic.
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := Decode(bytes.NewReader(valid[:cut]), ds); !errors.Is(err, ErrDecode) {
			t.Fatalf("truncation at %d: err = %v, want ErrDecode", cut, err)
		}
	}

	// Single-byte corruptions: either the structure still validates
	// (rare float-only flips) or the decoder reports ErrDecode.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), valid...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 << rng.Intn(8))
		if _, err := Decode(bytes.NewReader(mut), ds); err != nil && !errors.Is(err, ErrDecode) {
			t.Fatalf("corruption at %d: err = %v, want nil or ErrDecode", pos, err)
		}
	}

	// Wrong dataset size.
	small, err := vector.NewDataset(make([]float64, 3*10), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(valid), small); !errors.Is(err, ErrDecode) {
		t.Fatalf("dataset mismatch: err = %v, want ErrDecode", err)
	}
	// Nil dataset.
	if _, err := Decode(bytes.NewReader(valid), nil); !errors.Is(err, ErrDecode) {
		t.Fatalf("nil dataset: err = %v, want ErrDecode", err)
	}
	// Garbage magic.
	if _, err := Decode(bytes.NewReader([]byte("not a tree at all")), ds); !errors.Is(err, ErrDecode) {
		t.Fatalf("bad magic: err = %v, want ErrDecode", err)
	}
}
