package xtree

import (
	"fmt"
	"math"
)

// Validate checks the structural invariants of the tree and returns
// the first violation found, or nil. It is exercised heavily by tests
// and usable as a debugging aid:
//
//   - every point index appears exactly once across all leaves;
//   - every node's MBR is exactly the tight bound of its entries;
//   - all leaves sit at the same depth;
//   - non-root nodes respect the minimum fill unless they are
//     supernodes or the root path required otherwise;
//   - node capacity is respected except for supernodes.
func (t *Tree) Validate() error {
	seen := make(map[int]int)
	leafDepth := -1
	var walk func(n *node, depth int, isRoot bool) error
	walk = func(n *node, depth int, isRoot bool) error {
		// Capacity.
		if n.entryCount() > t.cfg.MaxEntries && !n.super {
			return fmt.Errorf("node at depth %d has %d entries > capacity %d and is not a supernode",
				depth, n.entryCount(), t.cfg.MaxEntries)
		}
		if !isRoot && n.entryCount() == 0 {
			return fmt.Errorf("empty non-root node at depth %d", depth)
		}
		// MBR tightness.
		want := EmptyMBR(t.ds.Dim())
		if n.leaf {
			for _, idx := range n.points {
				seen[idx]++
				want.ExtendPoint(t.pointOf(idx))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaf depth mismatch: %d vs %d", leafDepth, depth)
			}
		} else {
			if len(n.points) != 0 {
				return fmt.Errorf("directory node holds points")
			}
			for _, c := range n.children {
				if c.parent != n {
					return fmt.Errorf("broken parent pointer at depth %d", depth)
				}
				want.Extend(c.mbr)
			}
		}
		if t.size > 0 && n.entryCount() > 0 {
			for i := range want.Min {
				if !almostEq(want.Min[i], n.mbr.Min[i]) || !almostEq(want.Max[i], n.mbr.Max[i]) {
					return fmt.Errorf("loose MBR at depth %d dim %d: have [%v,%v], want [%v,%v]",
						depth, i, n.mbr.Min[i], n.mbr.Max[i], want.Min[i], want.Max[i])
				}
			}
		}
		for _, c := range n.children {
			if err := walk(c, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true); err != nil {
		return err
	}
	if len(seen) != t.size {
		return fmt.Errorf("tree holds %d distinct points, size says %d", len(seen), t.size)
	}
	for idx, count := range seen {
		if count != 1 {
			return fmt.Errorf("point %d appears %d times", idx, count)
		}
	}
	return nil
}

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
