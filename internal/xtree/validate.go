package xtree

import (
	"fmt"
	"math"
)

// Validate checks the structural invariants of the packed tree and
// returns the first violation found, or nil. It is exercised heavily
// by tests and usable as a debugging aid:
//
//   - every point index appears exactly once across all leaves;
//   - every node's MBR is exactly the tight bound of its entries;
//   - all leaves sit at the same depth;
//   - node capacity is respected except for supernodes.
func (t *Tree) Validate() error {
	seen := make(map[int]int)
	leafDepth := -1
	a := &t.ar
	d := t.ds.Dim()
	var walk func(id int32, depth int, isRoot bool) error
	walk = func(id int32, depth int, isRoot bool) error {
		n := &a.nodes[id]
		// Capacity.
		if n.entryCount() > t.cfg.MaxEntries && !n.isSuper() {
			return fmt.Errorf("node at depth %d has %d entries > capacity %d and is not a supernode",
				depth, n.entryCount(), t.cfg.MaxEntries)
		}
		if !isRoot && n.entryCount() == 0 {
			return fmt.Errorf("empty non-root node at depth %d", depth)
		}
		// MBR tightness.
		want := EmptyMBR(d)
		if n.isLeaf() {
			for _, idx := range a.rows(id) {
				seen[int(idx)]++
				want.ExtendPoint(t.pointOf(int(idx)))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaf depth mismatch: %d vs %d", leafDepth, depth)
			}
		} else {
			if n.pointCount != 0 {
				return fmt.Errorf("directory node holds points")
			}
			for _, c := range a.kids(id) {
				want.Extend(a.nodeMBR(c))
			}
		}
		if t.size > 0 && n.entryCount() > 0 {
			have := a.nodeMBR(id)
			for i := range want.Min {
				if !almostEq(want.Min[i], have.Min[i]) || !almostEq(want.Max[i], have.Max[i]) {
					return fmt.Errorf("loose MBR at depth %d dim %d: have [%v,%v], want [%v,%v]",
						depth, i, have.Min[i], have.Max[i], want.Min[i], want.Max[i])
				}
			}
		}
		for _, c := range a.kids(id) {
			if err := walk(c, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0, 0, true); err != nil {
		return err
	}
	if len(seen) != t.size {
		return fmt.Errorf("tree holds %d distinct points, size says %d", len(seen), t.size)
	}
	for idx, count := range seen {
		if count != 1 {
			return fmt.Errorf("point %d appears %d times", idx, count)
		}
	}
	return nil
}

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
