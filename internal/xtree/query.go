package xtree

import (
	"math"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Searcher adapts a Tree to the knn.Searcher interface with best-first
// (Hjaltason–Samet) traversal: nodes are expanded in order of MINDIST
// to the query within the search subspace, and traversal stops as soon
// as the k-th nearest candidate is closer than the nearest unexpanded
// node. See knn.Searcher for the scratch-ownership and concurrency
// contract: one goroutine per Searcher, results valid until the next
// KNN call, Stats/ResetStats safe concurrently.
type Searcher struct {
	tree    *Tree
	stats   knn.AtomicStats
	scratch knn.Scratch
	pq      []queueItem // frontier heap storage, reused across queries
}

// NewSearcher wraps t in a knn.Searcher.
func NewSearcher(t *Tree) *Searcher { return &Searcher{tree: t} }

// queueItem is a pending tree node in the best-first frontier.
type queueItem struct {
	id      int32
	minDist float64
}

// pqPush adds an item to the min-heap in pq.
func pqPush(pq []queueItem, it queueItem) []queueItem {
	pq = append(pq, it)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if pq[parent].minDist <= pq[i].minDist {
			break
		}
		pq[parent], pq[i] = pq[i], pq[parent]
		i = parent
	}
	return pq
}

// pqPop removes and returns the minimum item.
func pqPop(pq []queueItem) (queueItem, []queueItem) {
	top := pq[0]
	last := len(pq) - 1
	pq[0] = pq[last]
	pq = pq[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(pq) && pq[l].minDist < pq[small].minDist {
			small = l
		}
		if r < len(pq) && pq[r].minDist < pq[small].minDist {
			small = r
		}
		if small == i {
			break
		}
		pq[i], pq[small] = pq[small], pq[i]
		i = small
	}
	return top, pq
}

// minDistSqL2Dims is MBR.MinDistSqL2 over precomputed dimension
// indices and the arena's flat bound rows. One accumulator, ascending
// dimension order — bit-identical to the closure form it replaces.
func minDistSqL2Dims(dims []int, q, lo, hi []float64) float64 {
	var sum float64
	for _, d := range dims {
		diff := axisGap(q[d], lo[d], hi[d])
		sum += diff * diff
	}
	return sum
}

// minDistDims is MBR.MinDist over precomputed dimension indices.
func minDistDims(m vector.Metric, dims []int, q, lo, hi []float64) float64 {
	switch m {
	case vector.L2:
		return math.Sqrt(minDistSqL2Dims(dims, q, lo, hi))
	case vector.L1:
		var sum float64
		for _, d := range dims {
			sum += axisGap(q[d], lo[d], hi[d])
		}
		return sum
	case vector.LInf:
		var max float64
		for _, d := range dims {
			if diff := axisGap(q[d], lo[d], hi[d]); diff > max {
				max = diff
			}
		}
		return max
	default:
		panic("xtree: unknown metric")
	}
}

// KNN implements knn.Searcher.
//
//hos:hotpath
func (s *Searcher) KNN(query []float64, sub subspace.Mask, k int, exclude int) []knn.Neighbor {
	s.stats.Queries.Add(1)
	t := s.tree
	if k <= 0 || sub.IsEmpty() || t.size == 0 {
		return nil
	}
	dims := s.scratch.Begin(sub, k)
	best := &s.scratch.Heap
	a := &t.ar
	d := a.dim
	slab := t.ds.Slab()
	useSq := t.metric == vector.L2

	nodeDist := func(id int32) float64 {
		base := int(id) * d
		lo := a.mbrMin[base : base+d]
		hi := a.mbrMax[base : base+d]
		if useSq {
			return minDistSqL2Dims(dims, query, lo, hi)
		}
		return minDistDims(t.metric, dims, query, lo, hi)
	}

	var nodesVisited, pointsExamined int64
	pq := s.pq[:0]
	pq = pqPush(pq, queueItem{id: 0, minDist: nodeDist(0)})
	for len(pq) > 0 {
		var item queueItem
		item, pq = pqPop(pq)
		if w, full := best.WorstDist(); full && item.minDist > w {
			break // nothing closer remains
		}
		nodesVisited++
		n := &a.nodes[item.id]
		if n.isLeaf() {
			for _, idx := range a.rows(item.id) {
				i := int(idx)
				if i == exclude {
					continue
				}
				pointsExamined++
				row := slab[i*d : i*d+d]
				var dist float64
				if useSq {
					dist = vector.SqDistL2Dims(dims, query, row)
				} else {
					dist = vector.DistDims(t.metric, dims, query, row)
				}
				best.Push(i, dist)
			}
			continue
		}
		for _, c := range a.kids(item.id) {
			md := nodeDist(c)
			if w, full := best.WorstDist(); full && md > w {
				continue
			}
			pq = pqPush(pq, queueItem{id: c, minDist: md})
		}
	}
	s.pq = pq[:0]
	s.stats.NodesVisited.Add(nodesVisited)
	s.stats.PointsExamined.Add(pointsExamined)

	res := best.Sorted()
	if useSq {
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist)
		}
	}
	return res
}

// Range returns the indices of all points within radius r of the
// query in subspace sub (excluding index exclude), in ascending index
// order. Unlike KNN, the returned slice is freshly allocated (Range is
// not on the OD hot path).
func (s *Searcher) Range(query []float64, sub subspace.Mask, r float64, exclude int) []int {
	s.stats.Queries.Add(1)
	if sub.IsEmpty() || r < 0 {
		return nil
	}
	t := s.tree
	a := &t.ar
	d := a.dim
	s.scratch.Dims = sub.AppendDims(s.scratch.Dims[:0])
	dims := s.scratch.Dims
	var nodesVisited, pointsExamined int64
	var out []int
	var walk func(id int32)
	walk = func(id int32) {
		nodesVisited++
		n := &a.nodes[id]
		if n.isLeaf() {
			for _, idx := range a.rows(id) {
				i := int(idx)
				if i == exclude {
					continue
				}
				pointsExamined++
				if vector.DistDims(t.metric, dims, query, t.ds.Point(i)) <= r {
					out = append(out, i)
				}
			}
			return
		}
		for _, c := range a.kids(id) {
			base := int(c) * d
			if minDistDims(t.metric, dims, query, a.mbrMin[base:base+d], a.mbrMax[base:base+d]) <= r {
				walk(c)
			}
		}
	}
	walk(0)
	s.stats.NodesVisited.Add(nodesVisited)
	s.stats.PointsExamined.Add(pointsExamined)
	// Indices accumulate in leaf order; normalise to ascending.
	insertionSortInts(out)
	return out
}

// Stats implements knn.Searcher.
func (s *Searcher) Stats() knn.SearchStats { return s.stats.Snapshot() }

// ResetStats implements knn.Searcher.
func (s *Searcher) ResetStats() { s.stats.Reset() }

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
