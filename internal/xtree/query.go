package xtree

import (
	"container/heap"
	"math"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Searcher adapts a Tree to the knn.Searcher interface with best-first
// (Hjaltason–Samet) traversal: nodes are expanded in order of MINDIST
// to the query within the search subspace, and traversal stops as soon
// as the k-th nearest candidate is closer than the nearest unexpanded
// node.
type Searcher struct {
	tree  *Tree
	stats knn.SearchStats
}

// NewSearcher wraps t in a knn.Searcher.
func NewSearcher(t *Tree) *Searcher { return &Searcher{tree: t} }

// queueItem is a pending tree node in the best-first frontier.
type queueItem struct {
	node    *node
	minDist float64
}

type nodeQueue []queueItem

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].minDist < q[j].minDist }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(queueItem)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// KNN implements knn.Searcher.
func (s *Searcher) KNN(query []float64, sub subspace.Mask, k int, exclude int) []knn.Neighbor {
	s.stats.Queries++
	if k <= 0 || sub.IsEmpty() || s.tree.size == 0 {
		return nil
	}
	t := s.tree
	useSq := t.metric == vector.L2
	nodeDist := func(n *node) float64 {
		if useSq {
			return n.mbr.MinDistSqL2(sub, query)
		}
		return n.mbr.MinDist(t.metric, sub, query)
	}
	pointDist := func(i int) float64 {
		if useSq {
			return vector.SqDistL2(sub, query, t.ds.Point(i))
		}
		return vector.Dist(t.metric, sub, query, t.ds.Point(i))
	}

	best := knn.NewBoundedHeap(k)
	pq := &nodeQueue{{node: t.root, minDist: nodeDist(t.root)}}
	heap.Init(pq)

	for pq.Len() > 0 {
		item := heap.Pop(pq).(queueItem)
		if w, full := best.WorstDist(); full && item.minDist > w {
			break // nothing closer remains
		}
		n := item.node
		s.stats.NodesVisited++
		if n.leaf {
			for _, idx := range n.points {
				if idx == exclude {
					continue
				}
				s.stats.PointsExamined++
				d := pointDist(idx)
				best.Push(idx, d)
			}
			continue
		}
		for _, c := range n.children {
			md := nodeDist(c)
			if w, full := best.WorstDist(); full && md > w {
				continue
			}
			heap.Push(pq, queueItem{node: c, minDist: md})
		}
	}

	res := best.Sorted()
	if useSq {
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist)
		}
	}
	return res
}

// Range returns the indices of all points within radius r of the
// query in subspace sub (excluding index exclude), in ascending index
// order.
func (s *Searcher) Range(query []float64, sub subspace.Mask, r float64, exclude int) []int {
	s.stats.Queries++
	if sub.IsEmpty() || r < 0 {
		return nil
	}
	t := s.tree
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		s.stats.NodesVisited++
		if n.leaf {
			for _, idx := range n.points {
				if idx == exclude {
					continue
				}
				s.stats.PointsExamined++
				if vector.Dist(t.metric, sub, query, t.ds.Point(idx)) <= r {
					out = append(out, idx)
				}
			}
			return
		}
		for _, c := range n.children {
			if c.mbr.MinDist(t.metric, sub, query) <= r {
				walk(c)
			}
		}
	}
	walk(t.root)
	// Indices accumulate in leaf order; normalise to ascending.
	insertionSortInts(out)
	return out
}

// Stats implements knn.Searcher.
func (s *Searcher) Stats() knn.SearchStats { return s.stats }

// ResetStats implements knn.Searcher.
func (s *Searcher) ResetStats() { s.stats = knn.SearchStats{} }

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
