package xtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// Config tunes X-tree construction.
type Config struct {
	// MaxEntries is the normal node capacity M (entries per node
	// before a split is attempted). Default 16.
	MaxEntries int
	// MinFillFraction is the R*-tree minimum fill ratio for
	// topological splits and the X-tree MIN_FANOUT balance bound for
	// overlap-minimal splits. Default 0.35.
	MinFillFraction float64
	// MaxOverlapFraction is the X-tree MAX_OVERLAP threshold: a
	// directory split whose halves overlap (intersection volume over
	// union volume) more than this is rejected in favour of the
	// overlap-minimal split or a supernode. Default 0.2.
	MaxOverlapFraction float64
}

// DefaultConfig returns the parameters recommended by the X-tree
// paper (MAX_OVERLAP = 20%, MIN_FANOUT = 35%).
func DefaultConfig() Config {
	return Config{MaxEntries: 16, MinFillFraction: 0.35, MaxOverlapFraction: 0.2}
}

func (c *Config) normalize() error {
	if c.MaxEntries == 0 {
		c.MaxEntries = 16
	}
	if c.MaxEntries < 4 {
		return fmt.Errorf("xtree: MaxEntries %d too small (min 4)", c.MaxEntries)
	}
	if c.MinFillFraction == 0 {
		c.MinFillFraction = 0.35
	}
	if c.MinFillFraction < 0 || c.MinFillFraction > 0.5 {
		return fmt.Errorf("xtree: MinFillFraction %v out of (0,0.5]", c.MinFillFraction)
	}
	if c.MaxOverlapFraction == 0 {
		c.MaxOverlapFraction = 0.2
	}
	if c.MaxOverlapFraction < 0 || c.MaxOverlapFraction > 1 {
		return fmt.Errorf("xtree: MaxOverlapFraction %v out of (0,1]", c.MaxOverlapFraction)
	}
	return nil
}

func (c Config) minFill() int {
	m := int(math.Floor(c.MinFillFraction * float64(c.MaxEntries)))
	if m < 1 {
		m = 1
	}
	return m
}

// Tree is an X-tree over the points of a Dataset. The tree stores
// point indices; coordinates stay in the dataset. After construction
// the tree lives entirely in a pointer-free node arena (see arena.go);
// the linked nodes exist only while Build or Decode assembles the
// structure.
type Tree struct {
	ds     *vector.Dataset
	metric vector.Metric
	cfg    Config
	root   *node // build/decode scaffolding; nil once packed
	ar     arena
	size   int

	supernodes int // number of supernode creations
	stats      treeStats
}

type treeStats struct {
	topologicalSplits int64
	overlapFreeSplits int64
	supernodeGrowths  int64
}

// Build constructs an X-tree by inserting every point of ds.
func Build(ds *vector.Dataset, metric vector.Metric, cfg Config) (*Tree, error) {
	if ds == nil {
		return nil, fmt.Errorf("xtree: nil dataset")
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("xtree: invalid metric %v", metric)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := &Tree{
		ds:     ds,
		metric: metric,
		cfg:    cfg,
		root:   &node{leaf: true, mbr: EmptyMBR(ds.Dim())},
	}
	for i := 0; i < ds.N(); i++ {
		t.insert(i)
	}
	t.pack(t.root)
	t.root = nil
	return t, nil
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Height returns the height of the tree (a single leaf root has
// height 1). All leaves share one depth, so following first children
// from the root measures it.
func (t *Tree) Height() int {
	h := 1
	for id := int32(0); !t.ar.nodes[id].isLeaf(); id = t.ar.kids(id)[0] {
		h++
	}
	return h
}

// SupernodeCount returns how many supernodes exist in the tree.
func (t *Tree) SupernodeCount() int {
	count := 0
	for i := range t.ar.nodes {
		n := &t.ar.nodes[i]
		if n.isSuper() && n.entryCount() > t.cfg.MaxEntries {
			count++
		}
	}
	return count
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return len(t.ar.nodes) }

func (t *Tree) pointOf(i int) []float64 { return t.ds.Point(i) }

// insert adds dataset point idx to the tree.
func (t *Tree) insert(idx int) {
	p := t.pointOf(idx)
	leaf := t.chooseLeaf(t.root, p)
	leaf.points = append(leaf.points, idx)
	if leaf.mbr.IsEmpty() {
		leaf.mbr = NewMBR(p)
	} else {
		leaf.mbr.ExtendPoint(p)
	}
	t.size++
	t.handleOverflow(leaf)
	// Propagate MBR growth to the root.
	for n := leaf.parent; n != nil; n = n.parent {
		n.mbr.ExtendPoint(p)
	}
}

// chooseLeaf descends from n to the leaf best suited for p using the
// R*-tree criterion: minimal overlap enlargement at the level above
// leaves, minimal area enlargement elsewhere; ties by area then by
// child order (determinism).
func (t *Tree) chooseLeaf(n *node, p []float64) *node {
	for !n.leaf {
		childrenAreLeaves := n.children[0].leaf
		best := -1
		bestOverlapInc := math.Inf(1)
		bestAreaInc := math.Inf(1)
		bestArea := math.Inf(1)
		pr := NewMBR(p)
		for i, c := range n.children {
			areaInc := Enlargement(c.mbr, pr)
			area := c.mbr.Area()
			overlapInc := 0.0
			if childrenAreLeaves {
				grown := Union(c.mbr, pr)
				for j, o := range n.children {
					if j == i {
						continue
					}
					overlapInc += Overlap(grown, o.mbr) - Overlap(c.mbr, o.mbr)
				}
			}
			if better(overlapInc, areaInc, area, bestOverlapInc, bestAreaInc, bestArea) {
				best, bestOverlapInc, bestAreaInc, bestArea = i, overlapInc, areaInc, area
			}
		}
		n = n.children[best]
	}
	return n
}

func better(ov, ai, a, bestOv, bestAi, bestA float64) bool {
	if ov != bestOv {
		return ov < bestOv
	}
	if ai != bestAi {
		return ai < bestAi
	}
	return a < bestA
}

// handleOverflow splits n if it exceeds capacity (unless it is a
// supernode, which simply grows), propagating splits upward.
func (t *Tree) handleOverflow(n *node) {
	for n != nil && n.entryCount() > t.cfg.MaxEntries {
		if n.super {
			t.stats.supernodeGrowths++
			return // supernodes absorb overflow
		}
		left, right, splitDim, ok := t.splitNode(n)
		if !ok {
			// No acceptable split: convert to supernode.
			n.super = true
			t.supernodes++
			t.stats.supernodeGrowths++
			return
		}
		// Adopt grandchildren only now that the split is accepted;
		// candidate splits must not mutate the live tree.
		for _, c := range left.children {
			c.parent = left
		}
		for _, c := range right.children {
			c.parent = right
		}
		parent := n.parent
		if parent == nil {
			// Root split: the tree grows one level.
			newRoot := &node{
				leaf:         false,
				children:     []*node{left, right},
				splitHistory: subspace.New(splitDim),
			}
			left.parent, right.parent = newRoot, newRoot
			newRoot.recomputeMBR(t.ds.Dim(), t.pointOf)
			t.root = newRoot
			return
		}
		// Replace n by left and right in the parent.
		for i, c := range parent.children {
			if c == n {
				parent.children[i] = left
				break
			}
		}
		parent.children = append(parent.children, right)
		left.parent, right.parent = parent, parent
		parent.splitHistory = parent.splitHistory.With(splitDim)
		parent.recomputeMBR(t.ds.Dim(), t.pointOf)
		n = parent
	}
}

// splitNode splits an overfull node into two. It returns ok=false when
// the X-tree policy rejects every candidate split (directory nodes
// only), in which case the caller creates a supernode.
func (t *Tree) splitNode(n *node) (left, right *node, splitDim int, ok bool) {
	if n.leaf {
		l, r, dim := t.topologicalSplitLeaf(n)
		t.stats.topologicalSplits++
		return l, r, dim, true
	}
	// Directory node: try the topological (R*) split first.
	l, r, dim := t.topologicalSplitDir(n)
	if overlapFraction(l.mbr, r.mbr) <= t.cfg.MaxOverlapFraction {
		t.stats.topologicalSplits++
		return l, r, dim, true
	}
	// Overlap too high: try the overlap-minimal split along a split-
	// history dimension.
	if l2, r2, dim2, found := t.overlapMinimalSplit(n); found {
		t.stats.overlapFreeSplits++
		return l2, r2, dim2, true
	}
	return nil, nil, 0, false
}

// overlapFraction measures split quality: intersection volume over
// union volume. Degenerate (zero-volume) unions fall back to a margin
// ratio so flat MBRs still compare meaningfully.
func overlapFraction(a, b MBR) float64 {
	u := Union(a, b)
	uv := u.Area()
	if uv > 0 {
		return Overlap(a, b) / uv
	}
	// Degenerate: compare overlap of margins instead.
	um := u.Margin()
	if um == 0 {
		return 0
	}
	var inter float64
	for i := range a.Min {
		lo := math.Max(a.Min[i], b.Min[i])
		hi := math.Min(a.Max[i], b.Max[i])
		if hi > lo {
			inter += hi - lo
		}
	}
	return inter / um
}

// topologicalSplitLeaf performs the R*-tree split on a leaf's points:
// choose the axis with minimal total margin over all legal
// distributions, then the distribution with minimal overlap (ties:
// minimal total area).
func (t *Tree) topologicalSplitLeaf(n *node) (left, right *node, splitDim int) {
	d := t.ds.Dim()
	minFill := t.cfg.minFill()
	total := len(n.points)

	bestAxis, bestSplit := -1, -1
	bestMargin := math.Inf(1)
	var axisOrder [][]int

	orders := make([][]int, d)
	for axis := 0; axis < d; axis++ {
		order := append([]int(nil), n.points...)
		sort.Slice(order, func(a, b int) bool {
			va, vb := t.pointOf(order[a])[axis], t.pointOf(order[b])[axis]
			if va != vb {
				return va < vb
			}
			return order[a] < order[b]
		})
		orders[axis] = order
		var marginSum float64
		for split := minFill; split <= total-minFill; split++ {
			lm, rm := t.pointsMBR(order[:split]), t.pointsMBR(order[split:])
			marginSum += lm.Margin() + rm.Margin()
		}
		if marginSum < bestMargin {
			bestMargin = marginSum
			bestAxis = axis
		}
	}
	axisOrder = orders

	order := axisOrder[bestAxis]
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for split := minFill; split <= total-minFill; split++ {
		lm, rm := t.pointsMBR(order[:split]), t.pointsMBR(order[split:])
		ov := Overlap(lm, rm)
		area := lm.Area() + rm.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestSplit = ov, area, split
		}
	}

	left = &node{leaf: true, points: append([]int(nil), order[:bestSplit]...), splitHistory: n.splitHistory.With(bestAxis)}
	right = &node{leaf: true, points: append([]int(nil), order[bestSplit:]...), splitHistory: n.splitHistory.With(bestAxis)}
	left.recomputeMBR(d, t.pointOf)
	right.recomputeMBR(d, t.pointOf)
	return left, right, bestAxis
}

// topologicalSplitDir performs the R*-tree split on a directory
// node's children, sorting by MBR low then high value per axis.
func (t *Tree) topologicalSplitDir(n *node) (left, right *node, splitDim int) {
	d := t.ds.Dim()
	minFill := t.cfg.minFill()
	total := len(n.children)

	bestAxis, bestSplit := -1, -1
	bestMargin := math.Inf(1)
	var keptOrder []*node

	for axis := 0; axis < d; axis++ {
		order := append([]*node(nil), n.children...)
		sort.SliceStable(order, func(a, b int) bool {
			if order[a].mbr.Min[axis] != order[b].mbr.Min[axis] {
				return order[a].mbr.Min[axis] < order[b].mbr.Min[axis]
			}
			return order[a].mbr.Max[axis] < order[b].mbr.Max[axis]
		})
		var marginSum float64
		for split := minFill; split <= total-minFill; split++ {
			lm, rm := childrenMBR(order[:split], d), childrenMBR(order[split:], d)
			marginSum += lm.Margin() + rm.Margin()
		}
		if marginSum < bestMargin {
			bestMargin = marginSum
			bestAxis = axis
			keptOrder = order
		}
	}

	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for split := minFill; split <= total-minFill; split++ {
		lm, rm := childrenMBR(keptOrder[:split], d), childrenMBR(keptOrder[split:], d)
		ov := Overlap(lm, rm)
		area := lm.Area() + rm.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestSplit = ov, area, split
		}
	}

	return t.makeDirPair(n, keptOrder, bestSplit, bestAxis)
}

// overlapMinimalSplit attempts the X-tree split that uses the split
// history: only dimensions along which every child has already been
// split can partition the children with little or no overlap. It
// returns found=false when no candidate dimension yields an
// acceptably balanced split with overlap under the threshold.
func (t *Tree) overlapMinimalSplit(n *node) (left, right *node, splitDim int, found bool) {
	d := t.ds.Dim()
	// Candidate dims: intersection of all children's split histories,
	// plus the node's own recorded split dims.
	candidates := subspace.Full(d)
	for _, c := range n.children {
		candidates = candidates.Intersect(c.splitHistory)
	}
	candidates = candidates.Union(n.splitHistory)
	if candidates.IsEmpty() {
		return nil, nil, 0, false
	}

	minFanout := t.cfg.minFill()
	total := len(n.children)
	bestOverlap := math.Inf(1)
	bestDim, bestSplit := -1, -1
	var bestOrder []*node

	candidates.EachDim(func(dim int) {
		order := append([]*node(nil), n.children...)
		sort.SliceStable(order, func(a, b int) bool {
			if order[a].mbr.Min[dim] != order[b].mbr.Min[dim] {
				return order[a].mbr.Min[dim] < order[b].mbr.Min[dim]
			}
			return order[a].mbr.Max[dim] < order[b].mbr.Max[dim]
		})
		for split := minFanout; split <= total-minFanout; split++ {
			lm, rm := childrenMBR(order[:split], d), childrenMBR(order[split:], d)
			ov := overlapFraction(lm, rm)
			if ov < bestOverlap {
				bestOverlap, bestDim, bestSplit = ov, dim, split
				bestOrder = order
			}
		}
	})

	if bestDim < 0 || bestOverlap > t.cfg.MaxOverlapFraction {
		return nil, nil, 0, false
	}
	l, r, dim := t.makeDirPair(n, bestOrder, bestSplit, bestDim)
	return l, r, dim, true
}

// makeDirPair materialises the two directory nodes of a split.
func (t *Tree) makeDirPair(n *node, order []*node, split, axis int) (left, right *node, splitDim int) {
	d := t.ds.Dim()
	left = &node{
		leaf:         false,
		children:     append([]*node(nil), order[:split]...),
		splitHistory: n.splitHistory.With(axis),
	}
	right = &node{
		leaf:         false,
		children:     append([]*node(nil), order[split:]...),
		splitHistory: n.splitHistory.With(axis),
	}
	left.recomputeMBR(d, t.pointOf)
	right.recomputeMBR(d, t.pointOf)
	return left, right, axis
}

func (t *Tree) pointsMBR(idxs []int) MBR {
	m := EmptyMBR(t.ds.Dim())
	for _, i := range idxs {
		m.ExtendPoint(t.pointOf(i))
	}
	return m
}

func childrenMBR(cs []*node, d int) MBR {
	m := EmptyMBR(d)
	for _, c := range cs {
		m.Extend(c.mbr)
	}
	return m
}
