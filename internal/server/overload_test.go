package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/overload"
	"repro/internal/overload/faultinject"
)

// This file is the fault-injection suite the overload layer is proven
// with: every breaker transition and shedding decision demonstrated
// against the real HTTP handlers, with time driven by a
// faultinject.Clock and failures by a faultinject.Injector — no
// wall-clock sleeps anywhere on the state-machine paths.

// newFaultServer builds a server whose default dataset trips after 5
// failed outcomes, cools down for 5 (fake) seconds, and recovers on a
// single successful probe.
func newFaultServer(t *testing.T, clk *faultinject.Clock, inj *faultinject.Injector) *Server {
	t.Helper()
	return newTestServer(t, Options{
		Overload: overload.Config{
			MinSamples:     5,
			FailureRatio:   0.5,
			CoolDown:       5 * time.Second,
			ProbeBudget:    1,
			ProbeSuccesses: 1,
			Clock:          clk.Now,
		},
		FaultHook: inj.Hook(),
	})
}

// overloadStats fetches one dataset's overload section from Stats.
func overloadStats(t *testing.T, s *Server, name string) OverloadStats {
	t.Helper()
	for _, d := range s.Stats().Datasets {
		if d.Name == name {
			return d.Overload
		}
	}
	t.Fatalf("dataset %q not in stats", name)
	return OverloadStats{}
}

// checkOverloadLedger asserts the admission-accounting invariants.
func checkOverloadLedger(t *testing.T, o OverloadStats) {
	t.Helper()
	if o.Received != o.Admitted+o.Shed {
		t.Fatalf("ledger torn: received %d != admitted %d + shed %d", o.Received, o.Admitted, o.Shed)
	}
	if o.Shed != o.ShedBreakerOpen+o.ShedCapacity {
		t.Fatalf("ledger torn: shed %d != breaker %d + capacity %d", o.Shed, o.ShedBreakerOpen, o.ShedCapacity)
	}
}

// A dataset driven to 100% timeouts opens its breaker within one
// window — here within MinSamples outcomes at a single fake instant —
// and traffic then stops reaching the compute path entirely until the
// cool-down has lapsed.
func TestBreakerOpensWithinOneWindowAt100PercentTimeouts(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	inj := faultinject.NewInjector()
	s := newFaultServer(t, clk, inj)
	h := s.Handler()

	inj.Set("default", faultinject.Fault{Err: context.DeadlineExceeded})
	for i := 0; i < 5; i++ {
		rec := do(t, h, "POST", "/query", fmt.Sprintf(`{"index": %d}`, i), nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("faulted query %d: status %d, want 503", i, rec.Code)
		}
	}
	o := overloadStats(t, s, "default")
	checkOverloadLedger(t, o)
	if o.BreakerState != "open" || o.BreakerOpens != 1 {
		t.Fatalf("after 5 injected timeouts (one window): breaker %s opens %d, want open/1", o.BreakerState, o.BreakerOpens)
	}

	// Shed, not computed: the injector's call count freezes while the
	// breaker answers for the dataset.
	calls := inj.Calls("default")
	for i := 0; i < 3; i++ {
		rec := do(t, h, "POST", "/query", fmt.Sprintf(`{"index": %d}`, 10+i), nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("shed query %d: status %d, want 503", i, rec.Code)
		}
		retry := rec.Header().Get("Retry-After")
		if retry != "5" {
			t.Fatalf("breaker-open Retry-After = %q, want the full 5s cool-down", retry)
		}
	}
	if got := inj.Calls("default"); got != calls {
		t.Fatalf("compute path saw %d calls while open, want frozen at %d", got, calls)
	}
	o = overloadStats(t, s, "default")
	checkOverloadLedger(t, o)
	if o.ShedBreakerOpen != 3 {
		t.Fatalf("breaker-open sheds = %d, want 3", o.ShedBreakerOpen)
	}

	// Batch, sync scan and job submission are all behind the same
	// breaker, each with the ≥1s Retry-After floor.
	for _, rq := range []struct{ path, body string }{
		{"/batch", `{"items": [{"index": 1}, {"index": 2}]}`},
		{"/scan", `{}`},
		{"/jobs/scan", `{}`},
	} {
		rec := do(t, h, "POST", rq.path, rq.body, nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("POST %s under open breaker: status %d, want 503", rq.path, rec.Code)
		}
		if retry := rec.Header().Get("Retry-After"); retry != "5" {
			t.Fatalf("POST %s Retry-After = %q, want \"5\"", rq.path, retry)
		}
	}
}

// After the cool-down, half-open probing restores service once the
// fault clears — and re-opens the breaker when it has not.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	inj := faultinject.NewInjector()
	s := newFaultServer(t, clk, inj)
	h := s.Handler()

	inj.Set("default", faultinject.Fault{Err: context.DeadlineExceeded})
	for i := 0; i < 5; i++ {
		do(t, h, "POST", "/query", fmt.Sprintf(`{"index": %d}`, i), nil)
	}
	if o := overloadStats(t, s, "default"); o.BreakerState != "open" {
		t.Fatalf("breaker = %s, want open", o.BreakerState)
	}

	// Still faulted at the end of the cool-down: the probe fails and
	// the breaker re-opens for another full cool-down.
	clk.Advance(5 * time.Second)
	if rec := do(t, h, "POST", "/query", `{"index": 20}`, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed probe: status %d, want 503", rec.Code)
	}
	o := overloadStats(t, s, "default")
	if o.BreakerState != "open" || o.BreakerOpens != 2 {
		t.Fatalf("after failed probe: breaker %s opens %d, want open/2", o.BreakerState, o.BreakerOpens)
	}

	// Recovered at the end of the next cool-down: the probe succeeds,
	// the breaker closes, and ordinary traffic flows again.
	clk.Advance(5 * time.Second)
	inj.Clear("default")
	if rec := do(t, h, "POST", "/query", `{"index": 21}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("successful probe: status %d (body %s), want 200", rec.Code, rec.Body.String())
	}
	o = overloadStats(t, s, "default")
	checkOverloadLedger(t, o)
	if o.BreakerState != "closed" {
		t.Fatalf("after successful probe: breaker %s, want closed", o.BreakerState)
	}
	if rec := do(t, h, "POST", "/query", `{"index": 22}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery query: status %d, want 200", rec.Code)
	}
	waitIdle(t, s)
}

// One degraded dataset must not starve its siblings: while the default
// dataset's breaker is open under 100% injected timeouts, a sibling
// dataset keeps answering with a p99 within 2× its own baseline.
func TestSiblingDatasetUnaffectedByOpenBreaker(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	inj := faultinject.NewInjector()
	s := newFaultServer(t, clk, inj)
	h := s.Handler()

	rec := do(t, h, "POST", "/datasets/load",
		`{"name": "sibling", "gen": "synthetic", "n": 80, "d": 4, "k": 4, "tq": 0.9, "seed": 7}`, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("loading sibling: status %d (body %s)", rec.Code, rec.Body.String())
	}

	querySibling := func(idx int) time.Duration {
		start := time.Now()
		rec := do(t, h, "POST", "/query", fmt.Sprintf(`{"dataset": "sibling", "index": %d}`, idx), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("sibling query %d: status %d (body %s)", idx, rec.Code, rec.Body.String())
		}
		return time.Since(start)
	}
	p99 := func(lat []time.Duration) time.Duration {
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return percentile(lat, 0.99)
	}

	// Baseline: the sibling on an unloaded server. Distinct indexes per
	// phase keep the result cache out of the measurement.
	base := make([]time.Duration, 0, 40)
	for i := 0; i < 40; i++ {
		base = append(base, querySibling(i))
	}

	inj.Set("default", faultinject.Fault{Err: context.DeadlineExceeded})
	for i := 0; i < 5; i++ {
		do(t, h, "POST", "/query", fmt.Sprintf(`{"index": %d}`, i), nil)
	}
	if o := overloadStats(t, s, "default"); o.BreakerState != "open" {
		t.Fatalf("default breaker = %s, want open", o.BreakerState)
	}

	during := make([]time.Duration, 0, 40)
	for i := 40; i < 80; i++ {
		during = append(during, querySibling(i))
	}

	// The 2× bound is the acceptance bar; the small absolute slack
	// covers scheduler noise on sub-millisecond baselines — the failure
	// this guards against (queuing behind the degraded dataset's
	// permits) shows up as whole seconds, not microseconds.
	baseP99, duringP99 := p99(base), p99(during)
	if duringP99 > 2*baseP99+25*time.Millisecond {
		t.Fatalf("sibling p99 %s vs baseline %s: degraded neighbour leaked into sibling latency", duringP99, baseP99)
	}
	sib := overloadStats(t, s, "sibling")
	checkOverloadLedger(t, sib)
	if sib.BreakerState != "closed" || sib.Shed != 0 {
		t.Fatalf("sibling overload = %+v, want closed breaker and no sheds", sib)
	}
}

// The /stats JSON surface: the overload section rides under each
// dataset with the documented field names, and its ledger holds in a
// served snapshot.
func TestStatsServesOverloadSection(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	inj := faultinject.NewInjector()
	s := newFaultServer(t, clk, inj)
	h := s.Handler()

	do(t, h, "POST", "/query", `{"index": 1}`, nil)
	rec := do(t, h, "GET", "/stats", "", nil)
	var typed StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &typed); err != nil {
		t.Fatal(err)
	}
	if len(typed.Datasets) != 1 {
		t.Fatalf("datasets = %d, want 1", len(typed.Datasets))
	}
	o := typed.Datasets[0].Overload
	checkOverloadLedger(t, o)
	if o.BreakerState != "closed" || o.Received != 1 || o.Admitted != 1 || o.ConcurrencyLimit <= 0 {
		t.Fatalf("served overload section = %+v", o)
	}
	// Field-name pinning: these spellings are documented API.
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	ds := raw["datasets"].([]any)[0].(map[string]any)
	ov, ok := ds["overload"].(map[string]any)
	if !ok {
		t.Fatalf("dataset stats carry no overload object: %v", ds)
	}
	for _, field := range []string{
		"breaker_state", "breaker_opens", "concurrency_limit", "in_flight",
		"latency_p99_ms", "received", "admitted", "shed", "shed_breaker_open", "shed_capacity",
	} {
		if _, ok := ov[field]; !ok {
			t.Errorf("overload stats missing field %q", field)
		}
	}
}

// The race hammer: concurrent /query, /batch, /scan, /jobs/scan,
// /datasets/load + evict, fault flips and clock advances, with a
// scraper asserting the admission ledger on every concurrent snapshot.
// Run under -race this is the proof the guard's counters are committed
// atomically with their decisions.
func TestOverloadRaceHammer(t *testing.T) {
	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	inj := faultinject.NewInjector()
	s := newTestServer(t, Options{
		QueryTimeout: 2 * time.Second,
		ScanTimeout:  10 * time.Second,
		Overload: overload.Config{
			MinSamples:     4,
			FailureRatio:   0.5,
			CoolDown:       2 * time.Second,
			ProbeSuccesses: 1,
			Clock:          clk.Now,
		},
		FaultHook: inj.Hook(),
	})
	h := s.Handler()

	// Statuses the hammer may legitimately see; anything else (500s,
	// auth-shaped surprises) fails the test.
	okStatus := map[int]bool{
		http.StatusOK: true, http.StatusAccepted: true, http.StatusCreated: true,
		http.StatusNotFound: true, http.StatusConflict: true,
		http.StatusRequestTimeout:      true,
		http.StatusTooManyRequests:     true,
		http.StatusServiceUnavailable:  true,
		http.StatusInternalServerError: false,
	}
	fire := func(t *testing.T, method, path, body string) {
		rec := do(t, h, method, path, body, nil)
		if !okStatus[rec.Code] {
			t.Errorf("%s %s: unexpected status %d (body %s)", method, path, rec.Code, rec.Body.String())
		}
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				fire(t, "POST", "/query", fmt.Sprintf(`{"index": %d}`, rng.Intn(150)))
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			fire(t, "POST", "/batch", fmt.Sprintf(`{"items": [{"index": %d}, {"index": %d}]}`, i, i+1))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			fire(t, "POST", "/scan", `{"max_results": 5}`)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			fire(t, "POST", "/jobs/scan", `{"max_results": 5}`)
		}
	}()
	wg.Add(1)
	go func() { // load + query + evict churn on a second dataset
		defer wg.Done()
		for i := 0; i < 6; i++ {
			fire(t, "POST", "/datasets/load", `{"name": "flux", "gen": "uniform", "n": 40, "d": 4, "k": 3, "tq": 0.9, "seed": 3}`)
			fire(t, "POST", "/query", `{"dataset": "flux", "index": 1}`)
			fire(t, "POST", "/datasets/evict", `{"name": "flux"}`)
		}
	}()
	wg.Add(1)
	go func() { // fault flipper + clock: breakers trip, cool down, probe
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if i%2 == 0 {
				inj.Set("default", faultinject.Fault{Err: context.DeadlineExceeded})
			} else {
				inj.Clear("default")
			}
			clk.Advance(500 * time.Millisecond)
		}
	}()
	scraperDone := make(chan struct{})
	go func() { // scraper: every concurrent snapshot obeys the ledger
		defer close(scraperDone)
		for {
			for _, d := range s.Stats().Datasets {
				checkOverloadLedger(t, d.Overload)
				if d.Overload.InFlight < 0 {
					t.Errorf("dataset %s: negative in-flight %d", d.Name, d.Overload.InFlight)
				}
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(120 * time.Second):
		t.Fatal("hammer deadlocked")
	}
	close(done)
	<-scraperDone

	waitIdle(t, s)
	for _, d := range s.Stats().Datasets {
		checkOverloadLedger(t, d.Overload)
	}
}
