package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/overload"
)

// This file is the asynchronous face of /scan: the same full-lattice
// sweep, but submitted to the bounded job subsystem (internal/jobs)
// instead of racing a request deadline. A scan that would blow
// ScanTimeout — the paper's headline operation over any serious
// dataset — used to 503 and throw away every completed point; as a
// job it keeps running on the job worker pool, reports monotonic
// progress (points evaluated / dataset size), and holds its result
// for JobResultTTL:
//
//	POST   /jobs/scan   submit (body = the /scan body)   → 202 + job id
//	GET    /jobs        list retained jobs + counters
//	GET    /jobs/{id}   status, progress, result when done
//	DELETE /jobs/{id}   cancel (queued: immediate; running: cooperative)
//
// Admission is circuit-style: the queue depth is the budget, a full
// queue answers 429 with a Retry-After estimated from recent job run
// times and the current backlog — an honest "come back later", not a
// blind rejection. Job scans run on their own worker pool
// (JobWorkers), deliberately outside the synchronous scan semaphore:
// interactive /scan traffic and background sweeps do not starve each
// other at admission, they only share the machine.

// jobProgress is the progress section of a job response.
type jobProgress struct {
	// Done/Total are points evaluated so far vs dataset size (0/0
	// before the first report).
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// Percent is Done/Total rounded to one decimal (0 when unknown).
	Percent float64 `json:"percent"`
}

// jobResponse is the JSON rendering of one job for every /jobs
// endpoint.
type jobResponse struct {
	ID         string      `json:"id"`
	Kind       string      `json:"kind"`
	State      string      `json:"state"`
	Progress   jobProgress `json:"progress"`
	CreatedAt  string      `json:"created_at"`
	StartedAt  string      `json:"started_at,omitempty"`
	FinishedAt string      `json:"finished_at,omitempty"`
	// ElapsedMs is run time so far (running) or final (terminal).
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
	// Result is the scanResponse of a done scan job.
	Result any `json:"result,omitempty"`
}

type listJobsResponse struct {
	Jobs     []jobResponse `json:"jobs"`
	Counters JobStats      `json:"counters"`
}

// toJobStats renders manager counters for /stats and GET /jobs — the
// single mapping both endpoints share.
func toJobStats(c jobs.Counters) JobStats {
	return JobStats{
		Submitted: c.Submitted,
		Rejected:  c.Rejected,
		Queued:    c.Queued,
		Running:   c.Running,
		Completed: c.Completed,
		Failed:    c.Failed,
		Cancelled: c.Cancelled,
		Abandoned: c.Abandoned,
	}
}

func renderJob(snap jobs.Snapshot) jobResponse {
	out := jobResponse{
		ID:        snap.ID,
		Kind:      snap.Kind,
		State:     snap.State.String(),
		CreatedAt: snap.Created.UTC().Format(time.RFC3339Nano),
	}
	out.Progress = jobProgress{Done: snap.Done, Total: snap.Total}
	if snap.Total > 0 {
		out.Progress.Percent = math.Round(1000*float64(snap.Done)/float64(snap.Total)) / 10
	}
	if !snap.Started.IsZero() {
		out.StartedAt = snap.Started.UTC().Format(time.RFC3339Nano)
		end := snap.Finished
		if end.IsZero() {
			end = time.Now()
		}
		out.ElapsedMs = float64(end.Sub(snap.Started)) / float64(time.Millisecond)
	}
	if !snap.Finished.IsZero() {
		out.FinishedAt = snap.Finished.UTC().Format(time.RFC3339Nano)
	}
	if snap.Err != nil {
		out.Error = snap.Err.Error()
	}
	if snap.State == jobs.StateDone {
		out.Result = snap.Result
	}
	return out
}

// handleSubmitScanJob accepts the /scan request body and runs the
// sweep asynchronously. 202 + job id on admission; 429 + Retry-After
// when the queue is full.
func (s *Server) handleSubmitScanJob(w http.ResponseWriter, r *http.Request) {
	plan, ok := s.planScan(w, r)
	if !ok {
		return
	}
	// Jobs run on their own worker pool, so the guard admits them
	// detached — no concurrency permit is held through queueing and
	// execution — but the dataset's breaker and the bulk class's share
	// of the adaptive limit still gate submission: a dataset that is
	// drowning must not keep accepting background sweeps it cannot
	// serve. The job's outcome feeds back via RecordDetached below.
	if rej := plan.d.guard.AdmitDetached(overload.Bulk); rej != nil {
		if rej.Reason == overload.ReasonBreakerOpen {
			s.shedBreakerOpen(w, plan.d.name, rej)
			return
		}
		retry := overload.RetryAfterSeconds(rej.RetryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.error(w, http.StatusTooManyRequests,
			fmt.Sprintf("dataset %q at its bulk concurrency share, retry in ~%ds", plan.d.name, retry))
		return
	}
	snap, err := s.jobs.Submit("scan", func(jobCtx context.Context, report func(done, total int)) (any, error) {
		runCtx := jobCtx
		if s.opts.JobTimeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(jobCtx, s.opts.JobTimeout)
			defer cancel()
		}
		// The result's elapsed_ms is the scan's run time: the clock
		// starts when a worker picks the job up, not at submission —
		// queue wait is visible separately (created_at vs started_at).
		resp, err := plan.run(runCtx, time.Now(), report)
		// The detached admission's outcome lands in the breaker window
		// before the error is dressed up for the poller: a job-timeout
		// or engine failure is evidence against the dataset, while a
		// DELETE-cancelled job proves nothing either way.
		plan.d.guard.RecordDetached(outcomeFor(err))
		if err != nil {
			// A deadline with the job's own context still live is the
			// JobTimeout backstop firing; name it, or the poller sees
			// a bare "context deadline exceeded" indistinguishable
			// from any other failure.
			if errors.Is(err, context.DeadlineExceeded) && jobCtx.Err() == nil {
				return nil, fmt.Errorf("job exceeded the %s job-timeout: %w", s.opts.JobTimeout, err)
			}
			return nil, err
		}
		// A completed job scan is an answered scan, same as the
		// synchronous path: the global and per-dataset counters agree
		// on "answers produced" regardless of transport.
		plan.d.queries.Add(1)
		s.stats.recordScan()
		return resp, nil
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// The shared helper floors the estimate at 1s: whatever the
		// estimator returns (it has no run-time history before the
		// first job finishes), "Retry-After: 0" is never a sane header
		// on a 429 — a literal client would hammer the full queue in a
		// zero-delay loop. Breaker-open 503s go through the same floor
		// (shedBreakerOpen), so no rejection path can undercut it.
		retry := overload.RetryAfterSeconds(s.jobs.RetryAfter())
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.error(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued), retry in ~%ds", s.opts.JobQueueDepth, retry))
		return
	case errors.Is(err, jobs.ErrClosed):
		s.error(w, http.StatusServiceUnavailable, "server is draining, no new jobs")
		return
	case err != nil:
		s.error(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.debugf("server: job %s admitted (dataset %s, %d workers)", snap.ID, plan.d.name, plan.workers)
	resp := renderJob(snap)
	w.Header().Set("Location", "/jobs/"+snap.ID)
	s.writeJSON(w, http.StatusAccepted, &resp)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound,
			fmt.Sprintf("job %q not found (finished jobs are retained for %s)", r.PathValue("id"), s.opts.JobResultTTL))
		return
	}
	resp := renderJob(snap)
	s.writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Sprintf("job %q not found", r.PathValue("id")))
		return
	}
	s.debugf("server: job %s cancel requested (state %s)", snap.ID, snap.State)
	resp := renderJob(snap)
	// Cancelling a job that already finished is a no-op that reports
	// the terminal state; it is not a delivery channel — only GET
	// /jobs/{id} serves the result, because only Get marks it fetched
	// and an unfetched delivery would later read as abandoned.
	resp.Result = nil
	s.writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	snaps := s.jobs.List()
	resp := &listJobsResponse{
		Jobs:     make([]jobResponse, len(snaps)),
		Counters: toJobStats(s.jobs.Counters()),
	}
	for i, snap := range snaps {
		resp.Jobs[i] = renderJob(snap)
		// The listing is an index, not a delivery channel: embedding
		// every retained result would re-serialize up to MaxScanResults
		// hits per done job on every poll, and a result read here would
		// not mark the job fetched (only GET /jobs/{id} does, which is
		// what keeps the abandoned counter honest).
		resp.Jobs[i].Result = nil
	}
	s.writeJSON(w, http.StatusOK, resp)
}
