package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/overload"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/subspace"
	"repro/internal/wal"
)

// This file is the multi-dataset registry: a Server is no longer the
// HTTP face of exactly one preprocessed Miner but of a named set of
// them, each with its own shard topology, evaluator pool and result
// LRU. /query, /scan and /batch route on an optional "dataset" field
// (default: the dataset the process was started with); operators load
// and evict datasets at runtime:
//
//	GET  /datasets        list every entry with shard topology
//	POST /datasets/load   generate + preprocess + register a dataset
//	POST /datasets/evict  drop a loaded dataset
//
// Loading is generator-based (datagen.ByName): the service stays
// self-contained — no file-upload surface — while tests and operators
// can still stand up arbitrarily shaped datasets on a running
// process.

// dataset is one registry entry: the epoch-versioned serving state of
// one named dataset. The queryable state — miner, evaluator pool,
// result cache, stable row IDs — lives in an immutable view behind an
// atomic pointer: readers pin the current view with one load and keep
// using it for the whole request, so a concurrent append or delete
// (which derives a complete replacement view and swaps the pointer)
// can never show them torn data. Old views retire by garbage
// collection when their last in-flight query drains.
type dataset struct {
	name    string
	cur     atomic.Pointer[view]
	queries atomic.Int64
	// guard is the dataset's admission gate: circuit breaker + AIMD
	// concurrency limiter (internal/overload). It is created with the
	// entry and dies with it, which is what makes evict + reload a
	// clean breaker reset — a recovered dataset re-registered under
	// the same name starts closed with a full concurrency limit.
	guard *overload.Guard
	// transform maps ad-hoc query vectors into the dataset's
	// coordinate space (nil = identity); only the default dataset,
	// whose owner may have normalized it at startup, carries one.
	transform func([]float64) []float64
	created   time.Time
	// prov records where the dataset came from; it travels into
	// snapshots written by POST /datasets/{name}/save.
	prov snapshot.Provenance
	// normStats is the raw per-column [Min,Max] behind transform when
	// the dataset was min-max normalized (nil otherwise); it rides
	// into snapshots so a restore can rebuild the transform.
	normStats []snapshot.ColumnRange

	// mut serializes mutations — append, delete, compaction, save,
	// retention. Readers never take it; they go through cur. wal
	// (guarded by mut) is the entry's delta log once WAL persistence
	// has been engaged.
	mut sync.Mutex
	wal *wal.Log
	// compacting gates auto-compaction so mutations do not pile up
	// duplicate jobs while one is queued or running; retaining does
	// the same for retention sweeps.
	compacting atomic.Bool
	retaining  atomic.Bool

	// pendMu guards pending — append requests queued for the next
	// coalescer drain (see handleAppendRows). It is a leaf lock held
	// only for the enqueue/steal instants, never across engine work,
	// so enqueueing never waits on a rebuild in progress.
	pendMu  sync.Mutex
	pending []*appendOp

	// retMu guards retention, the entry's expiry policy. It starts as
	// the process-wide default (Options.RetentionAge/RetentionRows)
	// and PUT /datasets/{name}/retention overrides it at runtime.
	retMu     sync.Mutex
	retention retentionConfig

	// Mutation counters for /stats. walBytes/walRecords/walSyncs
	// shadow the log's state atomically so a stats scrape never waits
	// on a compaction holding mut.
	appends       atomic.Int64
	appendedRows  atomic.Int64
	appendBatches atomic.Int64
	deletes       atomic.Int64
	deletedRows   atomic.Int64
	compactions   atomic.Int64
	walBytes      atomic.Int64
	walRecords    atomic.Int64
	walSyncs      atomic.Int64
	// retentionSweeps counts completed sweep jobs (including no-op
	// sweeps); retentionExpired counts the rows they deleted.
	retentionSweeps  atomic.Int64
	retentionExpired atomic.Int64
}

// view returns the entry's current queryable state. Handlers call it
// once per request and hold the result — that is the epoch pin.
func (d *dataset) view() *view { return d.cur.Load() }

// Typed registry failures. The HTTP layer maps these onto statuses —
// 409 for conflicts, 404 for absences — and counts them apart from
// server errors in /stats: an operator filling the registry or naming
// a dataset that is not there is not a malfunctioning server, and the
// old behaviour of folding everything into one generic error counter
// (and, for registry-full, a generic error status) made capacity
// pressure indistinguishable from breakage on a dashboard.
var (
	// ErrRegistryFull: no load slot left; evict something first.
	ErrRegistryFull = errors.New("registry full")
	// ErrDatasetExists: the name is already registered.
	ErrDatasetExists = errors.New("dataset already loaded")
	// ErrDatasetNotFound: the name matches no registered dataset.
	ErrDatasetNotFound = errors.New("dataset not found")
	// ErrNotEvictable: the default dataset cannot be evicted.
	ErrNotEvictable = errors.New("dataset not evictable")
)

// registry is the named-dataset table. Reads (request routing) take
// the read lock; load/evict take the write lock. The entries
// themselves are never mutated in place, so a handler may keep using
// a *dataset it resolved even across a concurrent eviction — the
// entry's miner and caches outlive their registry slot.
//
//hos:statslock mu
type registry struct {
	mu      sync.RWMutex
	entries map[string]*dataset
	max     int
}

func newRegistry(def *dataset, max int) *registry {
	return &registry{entries: map[string]*dataset{def.name: def}, max: max}
}

// resolve returns the entry for name ("" selects the default).
func (r *registry) resolve(name string) (*dataset, bool) {
	if name == "" {
		name = DefaultDatasetName
	}
	r.mu.RLock()
	d, ok := r.entries[name]
	r.mu.RUnlock()
	return d, ok
}

// len returns the entry count without list's allocation and sort.
func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// list returns the entries sorted by name.
func (r *registry) list() []*dataset {
	r.mu.RLock()
	out := make([]*dataset, 0, len(r.entries))
	for _, d := range r.entries {
		out = append(out, d)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// check reports whether name could currently be added — the cheap
// pre-flight the load handler runs before paying for a build.
func (r *registry) check(name string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	if len(r.entries) >= r.max {
		return fmt.Errorf("%w (%d datasets); evict one first", ErrRegistryFull, r.max)
	}
	return nil
}

// add registers a new entry; it fails on duplicate names or when the
// registry is full.
func (r *registry) add(d *dataset) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[d.name]; ok {
		return fmt.Errorf("%w: %q", ErrDatasetExists, d.name)
	}
	if len(r.entries) >= r.max {
		return fmt.Errorf("%w (%d datasets); evict one first", ErrRegistryFull, r.max)
	}
	r.entries[d.name] = d
	return nil
}

// remove drops name. The default dataset is not evictable: it is the
// entry the process was configured with and the fallback for every
// request that names none.
func (r *registry) remove(name string) error {
	if name == DefaultDatasetName {
		return fmt.Errorf("%w: %q is the default dataset", ErrNotEvictable, DefaultDatasetName)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	delete(r.entries, name)
	return nil
}

// DefaultDatasetName is the registry name of the dataset the process
// was started with; requests that name no dataset route to it.
const DefaultDatasetName = "default"

// ---- request/response bodies ----

type loadRequest struct {
	// Name registers the dataset (required; anything but "default").
	Name string `json:"name"`
	// File loads a snapshot file from the server's -data-dir instead
	// of generating: a bare file name, resolved inside the data
	// directory only. A full snapshot (hosserve save, hosminer -save)
	// restores dataset, configuration, state and index wholesale — the
	// request must then carry no miner parameters. A dataset-only
	// snapshot (hosgen -save) supplies just the data; the request
	// configures the miner exactly as a generated load does.
	File string `json:"file,omitempty"`
	// Gen selects the generator (datagen.ByName):
	// synthetic|uniform|athlete|medical|nba.
	Gen     string `json:"gen"`
	N       int    `json:"n,omitempty"`
	D       int    `json:"d,omitempty"`
	Planted int    `json:"planted,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// Miner parameters, mirroring the hosserve flags.
	K         int     `json:"k"`
	T         float64 `json:"t,omitempty"`
	TQuantile float64 `json:"tq,omitempty"`
	Samples   int     `json:"samples,omitempty"`
	Policy    string  `json:"policy,omitempty"`
	Backend   string  `json:"backend,omitempty"`
	// Shards > 1 serves the dataset from a scatter-gather engine with
	// this many per-shard indexes.
	Shards      int    `json:"shards,omitempty"`
	Partitioner string `json:"partitioner,omitempty"`
}

type datasetInfo struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	D           int     `json:"d"`
	K           int     `json:"k"`
	Threshold   float64 `json:"threshold"`
	Policy      string  `json:"policy"`
	Backend     string  `json:"backend"`
	Shards      int     `json:"shards"`
	Partitioner string  `json:"partitioner,omitempty"`
	ShardSizes  []int   `json:"shard_sizes,omitempty"`
	Epoch       int64   `json:"epoch"`
	Queries     int64   `json:"queries"`
	CreatedAt   string  `json:"created_at"`
	Default     bool    `json:"default,omitempty"`
}

type listDatasetsResponse struct {
	Datasets []datasetInfo `json:"datasets"`
	Capacity int           `json:"capacity"`
}

type evictRequest struct {
	Name string `json:"name"`
}

// ---- handlers ----

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.list()
	resp := &listDatasetsResponse{
		Datasets: make([]datasetInfo, len(entries)),
		Capacity: s.opts.MaxDatasets,
	}
	for i, d := range entries {
		resp.Datasets[i] = d.info()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// validDatasetName restricts registry names to path-safe spellings:
// they become snapshot file stems under -data-dir, so separators,
// leading dots and empty/oversized names are rejected at the door.
func validDatasetName(name string) bool {
	if name == "" || len(name) > 64 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

func (s *Server) handleLoadDataset(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !validDatasetName(req.Name) {
		s.error(w, http.StatusBadRequest, "dataset name must be 1-64 characters from [a-zA-Z0-9._-], not starting with '.'")
		return
	}
	if req.Name == DefaultDatasetName {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("name %q is reserved", DefaultDatasetName))
		return
	}
	if req.File != "" && req.Gen != "" {
		s.error(w, http.StatusBadRequest, "set either \"file\" or \"gen\", not both")
		return
	}
	// Generating + preprocessing allocates N×D floats and runs the
	// full threshold/learning pipeline inline; bound the size before
	// spending anything. (File loads re-check N after reading the
	// snapshot, whose size is already bounded by the file itself.)
	if req.N > s.opts.MaxLoadPoints {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("n = %d exceeds the load limit %d", req.N, s.opts.MaxLoadPoints))
		return
	}
	if req.D > subspace.MaxDim {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("d = %d exceeds the supported maximum %d", req.D, subspace.MaxDim))
		return
	}
	// Fail fast on a name or capacity conflict before the expensive
	// build; reg.add re-checks under its lock, so a racing duplicate
	// still loses there.
	if err := s.reg.check(req.Name); err != nil {
		s.registryError(w, err)
		return
	}
	// One build at a time: loads are operator actions, not traffic,
	// and each one monopolises memory bandwidth and cores while it
	// preprocesses.
	select {
	case s.loadSem <- struct{}{}:
		defer func() { <-s.loadSem }()
	default:
		s.error(w, http.StatusTooManyRequests, "another dataset load is in progress, retry later")
		return
	}
	var d *dataset
	var err error
	if req.File != "" {
		d, err = s.loadDatasetFromFile(&req)
	} else {
		d, err = s.buildDataset(&req)
	}
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.reg.add(d); err != nil {
		s.registryError(w, err)
		return
	}
	info := d.info()
	s.writeJSON(w, http.StatusCreated, &info)
}

func (s *Server) handleEvictDataset(w http.ResponseWriter, r *http.Request) {
	var req evictRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		s.error(w, http.StatusBadRequest, "set \"name\"")
		return
	}
	if err := s.reg.remove(req.Name); err != nil {
		s.registryError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"evicted": req.Name})
}

// buildDataset generates, mines and preprocesses one loadRequest —
// the runtime twin of the hosserve startup path.
func (s *Server) buildDataset(req *loadRequest) (*dataset, error) {
	ds, _, err := datagen.ByName(req.Gen, datagen.NamedConfig{
		N: req.N, D: req.D, Planted: req.Planted, Seed: req.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		K: req.K, T: req.T, TQuantile: req.TQuantile,
		SampleSize: req.Samples, Seed: req.Seed, Shards: req.Shards,
	}
	cfg.ClampSampleSize(ds.N())
	if req.Backend != "" {
		if cfg.Backend, err = core.ParseBackend(req.Backend); err != nil {
			return nil, err
		}
	}
	if req.Policy != "" {
		if cfg.Policy, err = core.ParsePolicy(req.Policy); err != nil {
			return nil, err
		}
	}
	if req.Partitioner != "" {
		if cfg.Partitioner, err = shard.ParsePartitioner(req.Partitioner); err != nil {
			return nil, err
		}
	}
	m, err := core.NewMiner(ds, cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	prov := snapshot.Provenance{Generator: req.Gen, Seed: req.Seed, CreatedUnix: time.Now().Unix()}
	return s.newDatasetEntry(req.Name, m, nil, nil, prov), nil
}

// newDatasetEntry wraps a preprocessed miner in its serving state at
// epoch 0, with stable row IDs 0..N-1. Every base row is stamped with
// the load time: their true ingest times are unknown, and stamping
// "now" is the conservative choice — retention can never expire a row
// earlier than its policy allows, only later.
func (s *Server) newDatasetEntry(name string, m *core.Miner, transform func([]float64) []float64, norm []snapshot.ColumnRange, prov snapshot.Provenance) *dataset {
	d := &dataset{
		name:      name,
		guard:     overload.NewGuard(s.guardConfig()),
		transform: transform,
		created:   time.Now(),
		prov:      prov,
		normStats: norm,
		retention: retentionConfig{MaxAge: s.opts.RetentionAge, MaxRows: s.opts.RetentionRows},
	}
	n := m.Dataset().N()
	ids := make([]int64, n)
	stamps := make([]int64, n)
	now := time.Now().UnixNano()
	for i := range ids {
		ids[i] = int64(i)
		stamps[i] = now
	}
	d.cur.Store(s.newView(d, m, 0, ids, stamps, int64(n)))
	return d
}

// newView wraps a preprocessed miner in one immutable queryable
// epoch: its own evaluator pool and result cache (both are bound to
// this miner's rows and threshold, so they cannot outlive the epoch).
// ids and stamps are parallel (stamps non-decreasing — the retention
// sweeper's prefix-expiry relies on it).
func (s *Server) newView(d *dataset, m *core.Miner, epoch int64, ids, stamps []int64, nextID int64) *view {
	return &view{
		miner:     m,
		pool:      m.NewEvaluatorPool(),
		cache:     newResultCache(s.opts.CacheSize),
		transform: d.transform,
		epoch:     epoch,
		ids:       ids,
		stamps:    stamps,
		nextID:    nextID,
	}
}

// guardConfig derives a per-dataset overload config from Options:
// explicit Overload fields win, and the gaps are filled from the
// classic tuning knobs. The class caps default to the static
// MaxConcurrent* bounds — each class keeps its hard ceiling — and the
// adaptive limit tops out at their sum, so a healthy dataset behaves
// exactly as the static-semaphore server did; only under pressure
// does the shrinking limit bite (bulk first, then batch).
func (s *Server) guardConfig() overload.Config {
	cfg := s.opts.Overload
	if cfg.ClassCaps == [3]int{} {
		cfg.ClassCaps = [3]int{
			overload.Interactive: s.opts.MaxConcurrentQueries,
			overload.Batch:       s.opts.MaxConcurrentBatches,
			overload.Bulk:        s.opts.MaxConcurrentScans,
		}
	}
	if cfg.MaxLimit == 0 {
		cfg.MaxLimit = s.opts.MaxConcurrentQueries + s.opts.MaxConcurrentBatches + s.opts.MaxConcurrentScans
	}
	if cfg.TargetP99 == 0 {
		cfg.TargetP99 = s.opts.QueryTimeout / 2
	}
	return cfg
}

// info renders the entry for /datasets and /stats.
func (d *dataset) info() datasetInfo {
	v := d.view()
	cfg := v.miner.Config()
	info := datasetInfo{
		Name:      d.name,
		N:         v.miner.Dataset().N(),
		D:         v.miner.Dataset().Dim(),
		K:         cfg.K,
		Threshold: v.miner.Threshold(),
		Policy:    cfg.Policy.String(),
		Backend:   cfg.Backend.String(),
		Shards:    v.miner.NumShards(),
		Epoch:     v.epoch,
		Queries:   d.queries.Load(),
		CreatedAt: d.created.UTC().Format(time.RFC3339),
		Default:   d.name == DefaultDatasetName,
	}
	if e := v.miner.ShardEngine(); e != nil {
		info.Partitioner = e.Config().Partitioner.String()
		info.ShardSizes = e.ShardSizes()
	}
	return info
}

// stats renders the entry for the /stats datasets section, including
// the cumulative per-shard work counters and the overload guard.
func (d *dataset) stats() DatasetStats {
	v := d.view()
	g := d.guard.Snapshot()
	out := DatasetStats{
		Name:    d.name,
		N:       v.miner.Dataset().N(),
		D:       v.miner.Dataset().Dim(),
		Shards:  v.miner.NumShards(),
		Queries: d.queries.Load(),
		Live: LiveStats{
			Epoch:                v.epoch,
			NextID:               v.nextID,
			Appends:              d.appends.Load(),
			AppendedRows:         d.appendedRows.Load(),
			AppendBatches:        d.appendBatches.Load(),
			Deletes:              d.deletes.Load(),
			DeletedRows:          d.deletedRows.Load(),
			Compactions:          d.compactions.Load(),
			WALBytes:             d.walBytes.Load(),
			WALRecords:           d.walRecords.Load(),
			WALSyncs:             d.walSyncs.Load(),
			RetentionSweeps:      d.retentionSweeps.Load(),
			RetentionExpiredRows: d.retentionExpired.Load(),
		},
		Overload: OverloadStats{
			BreakerState:     g.Breaker.State.String(),
			BreakerOpens:     g.Breaker.Opens,
			ConcurrencyLimit: g.Limiter.Limit,
			InFlight:         g.Limiter.Total,
			P99Ms:            float64(g.Limiter.P99) / float64(time.Millisecond),
			Received:         g.Received,
			Admitted:         g.Admitted,
			Shed:             g.Shed,
			ShedBreakerOpen:  g.ShedBreakerOpen,
			ShedCapacity:     g.ShedCapacity,
		},
	}
	if cfg := d.retentionCfg(); cfg.enabled() {
		if cfg.MaxAge > 0 {
			out.Live.RetentionMaxAge = cfg.MaxAge.String()
		}
		out.Live.RetentionMaxRows = cfg.MaxRows
	}
	if e := v.miner.ShardEngine(); e != nil {
		sizes := e.ShardSizes()
		work := e.ShardStats()
		out.PerShard = make([]ShardStats, len(sizes))
		for i := range sizes {
			out.PerShard[i] = ShardStats{
				Points:         sizes[i],
				Queries:        work[i].Queries,
				PointsExamined: work[i].PointsExamined,
				NodesVisited:   work[i].NodesVisited,
			}
		}
	}
	return out
}

// resolveDataset routes a request's dataset name to its entry,
// writing the 404 itself when the name is unknown.
func (s *Server) resolveDataset(w http.ResponseWriter, name string) (*dataset, bool) {
	d, ok := s.reg.resolve(name)
	if !ok {
		s.notFound(w, fmt.Sprintf("%s: %q (GET /datasets lists loaded ones)", ErrDatasetNotFound, name))
		return nil, false
	}
	return d, true
}
