package server

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
)

func TestListDatasetsStartsWithDefault(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp listDatasetsResponse
	rec := do(t, s.Handler(), "GET", "/datasets", "", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Datasets) != 1 || resp.Datasets[0].Name != DefaultDatasetName {
		t.Fatalf("datasets = %+v", resp.Datasets)
	}
	if !resp.Datasets[0].Default || resp.Datasets[0].Shards != 1 {
		t.Fatalf("default entry = %+v", resp.Datasets[0])
	}
	if resp.Capacity != 8 {
		t.Fatalf("capacity = %d, want default 8", resp.Capacity)
	}
}

func TestLoadQueryEvictDataset(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()

	body := `{"name":"synth2","gen":"synthetic","n":120,"d":4,"planted":3,"seed":7,
	          "k":4,"tq":0.9,"shards":3,"partitioner":"hash","backend":"linear"}`
	rec := do(t, h, "POST", "/datasets/load", body, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("load status %d: %s", rec.Code, rec.Body.String())
	}

	// The loaded dataset answers queries routed by the dataset field,
	// identically to a directly built sharded miner.
	var resp queryResponse
	rec = do(t, h, "POST", "/query", `{"dataset":"synth2","index":5}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("routed query status %d: %s", rec.Code, rec.Body.String())
	}
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 120, D: 4, NumOutliers: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{
		K: 4, TQuantile: 0.9, Seed: 7, Shards: 3,
		Partitioner: shard.HashPoint, Backend: core.BackendLinear,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.OutlyingSubspacesOfPoint(5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Threshold != want.Threshold || resp.IsOutlier != want.IsOutlierAnywhere {
		t.Fatalf("routed answer (T=%v outlier=%v) != library answer (T=%v outlier=%v)",
			resp.Threshold, resp.IsOutlier, want.Threshold, want.IsOutlierAnywhere)
	}

	// /scan and /batch route on the same field.
	var scanResp scanResponse
	rec = do(t, h, "POST", "/scan", `{"dataset":"synth2","max_results":5}`, &scanResp)
	if rec.Code != http.StatusOK {
		t.Fatalf("routed scan status %d: %s", rec.Code, rec.Body.String())
	}
	var batchResp batchResponse
	rec = do(t, h, "POST", "/batch", `{"dataset":"synth2","items":[{"index":1},{"index":2}]}`, &batchResp)
	if rec.Code != http.StatusOK || batchResp.Succeeded != 2 {
		t.Fatalf("routed batch status %d: %s", rec.Code, rec.Body.String())
	}

	// /stats carries the registry section with per-shard counters.
	var stats StatsSnapshot
	do(t, h, "GET", "/stats", "", &stats)
	if len(stats.Datasets) != 2 {
		t.Fatalf("stats datasets = %+v", stats.Datasets)
	}
	var loaded *DatasetStats
	for i := range stats.Datasets {
		if stats.Datasets[i].Name == "synth2" {
			loaded = &stats.Datasets[i]
		}
	}
	if loaded == nil || loaded.Shards != 3 || len(loaded.PerShard) != 3 {
		t.Fatalf("loaded dataset stats = %+v", loaded)
	}
	if loaded.Queries == 0 {
		t.Fatal("per-dataset query counter stayed zero")
	}
	var shardWork int64
	points := 0
	for _, ps := range loaded.PerShard {
		shardWork += ps.PointsExamined
		points += ps.Points
	}
	if shardWork == 0 || points != 120 {
		t.Fatalf("per-shard counters = %+v", loaded.PerShard)
	}

	// Evict, then routing must 404 and the registry shrink.
	rec = do(t, h, "POST", "/datasets/evict", `{"name":"synth2"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("evict status %d: %s", rec.Code, rec.Body.String())
	}
	rec = do(t, h, "POST", "/query", `{"dataset":"synth2","index":5}`, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("query after evict status %d", rec.Code)
	}
	var after listDatasetsResponse
	do(t, h, "GET", "/datasets", "", &after)
	if len(after.Datasets) != 1 {
		t.Fatalf("datasets after evict = %+v", after.Datasets)
	}
}

func TestLoadDatasetValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxDatasets: 2})
	h := s.Handler()
	cases := []struct {
		name, body string
		status     int
	}{
		{"missing name", `{"gen":"synthetic","n":50,"d":3,"k":3,"tq":0.9}`, http.StatusBadRequest},
		{"reserved name", `{"name":"default","gen":"synthetic","n":50,"d":3,"k":3,"tq":0.9}`, http.StatusBadRequest},
		{"unknown generator", `{"name":"x","gen":"nope","n":50,"d":3,"k":3,"tq":0.9}`, http.StatusBadRequest},
		{"bad miner config", `{"name":"x","gen":"synthetic","n":50,"d":3,"k":0,"tq":0.9}`, http.StatusBadRequest},
		{"bad partitioner", `{"name":"x","gen":"synthetic","n":50,"d":3,"k":3,"tq":0.9,"partitioner":"zig"}`, http.StatusBadRequest},
		{"bad backend", `{"name":"x","gen":"synthetic","n":50,"d":3,"k":3,"tq":0.9,"backend":"zig"}`, http.StatusBadRequest},
		{"bad policy", `{"name":"x","gen":"synthetic","n":50,"d":3,"k":3,"tq":0.9,"policy":"zig"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := do(t, h, "POST", "/datasets/load", c.body, nil); rec.Code != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.status, rec.Body.String())
		}
	}

	// Capacity: the default occupies one of the two slots.
	ok := `{"name":"one","gen":"synthetic","n":60,"d":3,"k":3,"tq":0.9}`
	if rec := do(t, h, "POST", "/datasets/load", ok, nil); rec.Code != http.StatusCreated {
		t.Fatalf("first load status %d", rec.Code)
	}
	dup := `{"name":"one","gen":"synthetic","n":60,"d":3,"k":3,"tq":0.9}`
	if rec := do(t, h, "POST", "/datasets/load", dup, nil); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate load status %d", rec.Code)
	}
	full := `{"name":"two","gen":"synthetic","n":60,"d":3,"k":3,"tq":0.9}`
	if rec := do(t, h, "POST", "/datasets/load", full, nil); rec.Code != http.StatusConflict {
		t.Fatalf("over-capacity load status %d", rec.Code)
	}

	// Eviction guards.
	if rec := do(t, h, "POST", "/datasets/evict", `{"name":"default"}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("evicting default status %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/datasets/evict", `{"name":"ghost"}`, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("evicting unknown status %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/datasets/evict", `{}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("evicting empty name status %d", rec.Code)
	}
}

func TestLoadDatasetBounds(t *testing.T) {
	s := newTestServer(t, Options{MaxLoadPoints: 500})
	h := s.Handler()
	// Oversized generation requests are rejected before any allocation.
	over := `{"name":"big","gen":"uniform","n":501,"d":3,"k":3,"t":1}`
	if rec := do(t, h, "POST", "/datasets/load", over, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized n status %d: %s", rec.Code, rec.Body.String())
	}
	wide := `{"name":"wide","gen":"uniform","n":100,"d":99,"k":3,"t":1}`
	if rec := do(t, h, "POST", "/datasets/load", wide, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized d status %d: %s", rec.Code, rec.Body.String())
	}
	ok := `{"name":"fits","gen":"uniform","n":500,"d":3,"k":3,"t":1}`
	if rec := do(t, h, "POST", "/datasets/load", ok, nil); rec.Code != http.StatusCreated {
		t.Fatalf("in-bounds load status %d: %s", rec.Code, rec.Body.String())
	}
	// created_at is surfaced in the listing.
	var list listDatasetsResponse
	do(t, h, "GET", "/datasets", "", &list)
	for _, d := range list.Datasets {
		if d.CreatedAt == "" {
			t.Fatalf("entry %q missing created_at", d.Name)
		}
	}
	// While a load is in flight, a second one is shed with 429.
	s.loadSem <- struct{}{}
	busy := `{"name":"later","gen":"uniform","n":100,"d":3,"k":3,"t":1}`
	if rec := do(t, h, "POST", "/datasets/load", busy, nil); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("concurrent load status %d: %s", rec.Code, rec.Body.String())
	}
	<-s.loadSem
}

func TestStatePerDataset(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	body := `{"name":"alt","gen":"synthetic","n":80,"d":3,"k":3,"tq":0.85,"seed":3}`
	if rec := do(t, h, "POST", "/datasets/load", body, nil); rec.Code != http.StatusCreated {
		t.Fatalf("load status %d", rec.Code)
	}
	var def, alt struct {
		Threshold float64 `json:"threshold"`
	}
	do(t, h, "GET", "/state", "", &def)
	do(t, h, "GET", "/state?dataset=alt", "", &alt)
	if def.Threshold == 0 || alt.Threshold == 0 || def.Threshold == alt.Threshold {
		t.Fatalf("per-dataset state thresholds: default %v, alt %v", def.Threshold, alt.Threshold)
	}
	if rec := do(t, h, "GET", "/state?dataset=ghost", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown dataset state status %d", rec.Code)
	}
}

// TestShardedDefaultHealthz covers the sharded-default path: hosserve
// -shards N surfaces the topology in /healthz and /datasets.
func TestShardedDefaultHealthz(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 100, D: 4, NumOutliers: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{K: 3, TQuantile: 0.9, Seed: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var health healthResponse
	do(t, s.Handler(), "GET", "/healthz", "", &health)
	if health.Shards != 4 || health.Datasets != 1 {
		t.Fatalf("healthz = %+v", health)
	}
	var list listDatasetsResponse
	do(t, s.Handler(), "GET", "/datasets", "", &list)
	info := list.Datasets[0]
	if info.Shards != 4 || len(info.ShardSizes) != 4 || info.Partitioner != "roundrobin" {
		t.Fatalf("default sharded info = %+v", info)
	}
	sum := 0
	for _, n := range info.ShardSizes {
		sum += n
	}
	if sum != 100 {
		t.Fatalf("shard sizes %v don't cover the dataset", info.ShardSizes)
	}
}

// TestConcurrentRegistryAndQueries races loads, evicts, queries and
// stats scrapes; correctness here is "no panic, no deadlock, no race
// report" plus consistent scalar snapshots throughout.
func TestConcurrentRegistryAndQueries(t *testing.T) {
	s := newTestServer(t, Options{MaxDatasets: 4})
	h := s.Handler()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("d%d", i%3)
			do(t, h, "POST", "/datasets/load",
				fmt.Sprintf(`{"name":%q,"gen":"synthetic","n":60,"d":3,"k":3,"tq":0.9,"shards":2}`, name), nil)
			do(t, h, "POST", "/datasets/evict", fmt.Sprintf(`{"name":%q}`, name), nil)
		}
	}()
	for i := 0; i < 40; i++ {
		do(t, h, "POST", "/query", fmt.Sprintf(`{"index":%d}`, i%20), nil)
		var snap StatsSnapshot
		do(t, h, "GET", "/stats", "", &snap)
		if snap.CacheHits+snap.CacheMisses != snap.Queries {
			t.Fatalf("torn stats under registry churn: %+v", snap)
		}
	}
	<-done
}
