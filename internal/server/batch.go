package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/subspace"
)

// POST /batch evaluates many outlying-subspace queries as one request
// through core.QueryBatch: one evaluator pool, one shared bounded
// per-batch OD cache, bounded worker fan-out. Items that are already
// in the server's result LRU are answered from it without touching
// the engine; computed items seed the LRU so follow-up /query traffic
// hits. Item-level failures (bad index, wrong dimensionality) are
// reported per item and do not fail the batch.

type batchRequest struct {
	// Dataset routes the whole batch to a registry entry ("" = the
	// default dataset).
	Dataset string             `json:"dataset,omitempty"`
	Items   []batchRequestItem `json:"items"`
	// Workers overrides the per-batch fan-out (clamped to the server's
	// BatchWorkers bound).
	Workers int `json:"workers,omitempty"`
}

type batchRequestItem struct {
	// Exactly one of Index (dataset row) or Point (ad-hoc vector) must
	// be set, as in /query.
	Index *int      `json:"index,omitempty"`
	Point []float64 `json:"point,omitempty"`
}

type batchItemResponse struct {
	Index         *int      `json:"index,omitempty"`
	Point         []float64 `json:"point,omitempty"`
	Error         string    `json:"error,omitempty"`
	IsOutlier     bool      `json:"is_outlier"`
	Minimal       [][]int   `json:"minimal"`
	OutlyingCount int       `json:"outlying_count"`
	ODEvaluations int64     `json:"od_evaluations"`
	Cached        bool      `json:"cached"`
}

type batchResponse struct {
	Results   []batchItemResponse `json:"results"`
	Succeeded int                 `json:"succeeded"`
	Failed    int                 `json:"failed"`
	Threshold float64             `json:"threshold"`
	// ResultCacheHits counts items answered from the server's LRU;
	// the OD* fields are the shared per-batch OD cache accounting.
	ResultCacheHits int64   `json:"result_cache_hits"`
	ODCacheHits     int64   `json:"od_cache_hits"`
	ODCacheMisses   int64   `json:"od_cache_misses"`
	ElapsedMs       float64 `json:"elapsed_ms"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	d, ok := s.resolveDataset(w, req.Dataset)
	if !ok {
		return
	}
	// One epoch for the whole batch: items, cache lookups and the
	// engine all see the same view even across a concurrent append.
	v := d.view()
	if len(req.Items) == 0 {
		s.error(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(req.Items) > s.opts.MaxBatchItems {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d items, limit is %d", len(req.Items), s.opts.MaxBatchItems))
		return
	}
	if req.Workers < 0 {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("workers = %d", req.Workers))
		return
	}
	maxWorkers := s.opts.BatchWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	workers := req.Workers
	if workers == 0 || workers > maxWorkers {
		workers = maxWorkers
	}

	// Validate items and split them into LRU hits and engine work
	// before taking the batch slot: a fully-cached batch costs nothing.
	resp := &batchResponse{
		Results:   make([]batchItemResponse, len(req.Items)),
		Threshold: v.miner.Threshold(),
	}
	var queries []core.BatchQuery // engine work, in compacted order
	var queryPos []int            // queries[j] answers Results[queryPos[j]]
	keys := make([]string, len(req.Items))
	for i, item := range req.Items {
		out := &resp.Results[i]
		point, exclude, emsg := v.resolveQueryTarget(item.Index, item.Point)
		if emsg != "" {
			out.Error = emsg
			continue
		}
		if exclude >= 0 {
			out.Index = item.Index
		} else {
			out.Point = append([]float64(nil), point...)
		}
		keys[i] = cacheKey(point, exclude)
		if cached, ok := v.cache.get(keys[i]); ok {
			out.IsOutlier = cached.IsOutlier
			out.Minimal = cached.Minimal
			out.OutlyingCount = cached.OutlyingCount
			out.ODEvaluations = cached.ODEvaluations
			out.Cached = true
			resp.ResultCacheHits++
			continue
		}
		if exclude >= 0 {
			queries = append(queries, core.BatchIndex(exclude))
		} else {
			queries = append(queries, core.BatchPoint(point))
		}
		queryPos = append(queryPos, i)
	}

	// batchStats carries the engine-side accounting out of the compute
	// block so it lands in serverStats as one consistent transition.
	var batchStats struct{ odHits, odMisses, odEvals int64 }
	if len(queries) > 0 {
		// Batch traffic fails fast at the guard: it is programmatic and
		// retryable, so it is shed before interactive queries — but
		// after bulk scans — as the adaptive limit shrinks. A
		// fully-cached batch never reaches this admission.
		permit, rej := d.guard.Admit(r.Context(), overload.Batch, false)
		if rej != nil {
			if rej.Reason == overload.ReasonBreakerOpen {
				s.shedBreakerOpen(w, d.name, rej)
				return
			}
			w.Header().Set("Retry-After", strconv.Itoa(overload.RetryAfterSeconds(rej.RetryAfter)))
			s.error(w, http.StatusTooManyRequests,
				fmt.Sprintf("batch limit (%d concurrent) reached, retry later", s.opts.MaxConcurrentBatches))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.BatchTimeout)
		defer cancel()

		type outcome struct {
			res *core.BatchResult
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			computeStart := time.Now()
			if s.opts.FaultHook != nil {
				if _, err := s.opts.FaultHook("batch", d.name); err != nil {
					permit.Release(outcomeFor(err), time.Since(computeStart))
					done <- outcome{nil, err}
					return
				}
			}
			res, err := v.miner.QueryBatch(ctx, queries, core.BatchOptions{
				Workers: workers,
				Pool:    v.pool,
			})
			permit.Release(outcomeFor(err), time.Since(computeStart))
			done <- outcome{res, err}
		}()

		var res *core.BatchResult
		select {
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.error(w, http.StatusServiceUnavailable,
					fmt.Sprintf("batch exceeded the %s deadline", s.opts.BatchTimeout))
			} else {
				s.clientGone(w, "batch")
			}
			return
		case o := <-done:
			if o.err != nil {
				// QueryBatch is ctx-aware, so a deadline/cancel can surface
				// through its error rather than ctx.Done() when both are
				// ready; classify identically either way.
				switch {
				case errors.Is(o.err, context.DeadlineExceeded):
					s.error(w, http.StatusServiceUnavailable,
						fmt.Sprintf("batch exceeded the %s deadline", s.opts.BatchTimeout))
				case errors.Is(o.err, context.Canceled):
					s.clientGone(w, "batch")
				default:
					s.error(w, http.StatusInternalServerError, o.err.Error())
				}
				return
			}
			res = o.res
		}

		var batchODEvals int64
		for j, item := range res.Items {
			out := &resp.Results[queryPos[j]]
			if item.Err != nil {
				out.Error = item.Err.Error()
				continue
			}
			qr := item.Result
			out.IsOutlier = qr.IsOutlierAnywhere
			out.Minimal = masksToDims(qr.Minimal)
			out.OutlyingCount = len(qr.Outlying)
			out.ODEvaluations = qr.ODEvaluations
			batchODEvals += qr.ODEvaluations
			// Seed the LRU so follow-up /query (and /batch) traffic for
			// the same key hits, applying the same oversized-mask-set
			// rule as /query.
			toCache := &queryResponse{
				Index:         out.Index,
				Point:         out.Point,
				Threshold:     qr.Threshold,
				IsOutlier:     qr.IsOutlierAnywhere,
				Minimal:       out.Minimal,
				OutlyingCount: len(qr.Outlying),
				ODEvaluations: qr.ODEvaluations,
				// Copy: qr.Outlying is carved from the BatchResult's
				// arena; caching it directly would pin the whole batch's
				// arena for the lifetime of one LRU entry.
				outlyingMasks: append([]subspace.Mask(nil), qr.Outlying...),
			}
			if s.opts.MaxCachedMasks > 0 && len(qr.Outlying) > s.opts.MaxCachedMasks {
				toCache.outlyingMasks = nil
			}
			v.cache.put(keys[queryPos[j]], toCache)
		}
		resp.ODCacheHits = res.Cache.Hits
		resp.ODCacheMisses = res.Cache.Misses
		batchStats.odHits = res.Cache.Hits
		batchStats.odMisses = res.Cache.Misses
		batchStats.odEvals = batchODEvals
	}

	for i := range resp.Results {
		if resp.Results[i].Error != "" {
			resp.Failed++
		} else {
			resp.Succeeded++
		}
	}
	resp.ElapsedMs = msSince(start)
	d.queries.Add(int64(len(req.Items)))
	s.stats.recordBatch(len(req.Items), batchStats.odHits, batchStats.odMisses, batchStats.odEvals)
	s.writeJSON(w, http.StatusOK, resp)
}
