package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/overload"
)

// occupySlot takes one admission slot of the dataset's guard directly
// — the test stand-in for a computation that is holding its permit —
// and returns the release. It bypasses the guard's ledger, so the
// admitted+shed==received invariant over HTTP requests is untouched.
func occupySlot(t *testing.T, s *Server, pri overload.Priority) func() {
	t.Helper()
	if err := s.def.guard.Limiter().Acquire(context.Background(), pri, false); err != nil {
		t.Fatalf("occupying %s slot: %v", pri, err)
	}
	return func() { s.def.guard.Limiter().Release(pri, overload.Cancelled, 0) }
}

// waitIdle polls until the dataset's guard shows no in-flight
// admissions — the sync point for permits released by goroutines that
// outlive their handler.
func waitIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.def.guard.Snapshot().Limiter.Total != 0 {
		if time.Now().After(deadline) {
			t.Fatal("guard never returned to idle: a permit leaked")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newTestMiner(t *testing.T) *core.Miner {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 150, D: 5, NumOutliers: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(newTestMiner(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	registerClose(t, s)
	return s
}

// registerClose drains the server's job subsystem at test end so job
// workers never outlive the test that spawned them.
func registerClose(t *testing.T, s *Server) {
	t.Helper()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("draining jobs at cleanup: %v", err)
		}
	})
}

// do runs one request through the full handler stack and decodes the
// JSON response into out (when non-nil).
func do(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s %s response: %v\nbody: %s", method, path, err, rec.Body.String())
		}
	}
	return rec
}

func TestQueryByIndex(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp queryResponse
	rec := do(t, s.Handler(), "POST", "/query", `{"index": 3}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Threshold <= 0 {
		t.Fatalf("threshold %v, want > 0", resp.Threshold)
	}
	if resp.Cached {
		t.Fatal("first query reported cached")
	}
	if resp.Outlying != nil {
		t.Fatal("full outlying set included without include_all")
	}
	// The response must agree with a direct library query.
	eval, err := s.def.view().miner.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.def.view().miner.QueryPointWith(eval, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Minimal, masksToDims(want.Minimal)) {
		t.Fatalf("minimal = %v, library says %v", resp.Minimal, masksToDims(want.Minimal))
	}
	if resp.IsOutlier != want.IsOutlierAnywhere || resp.OutlyingCount != len(want.Outlying) {
		t.Fatalf("outlier summary diverged from library result")
	}
}

func TestQueryByPointAndIncludeAll(t *testing.T) {
	s := newTestServer(t, Options{})
	point := s.def.view().miner.Dataset().Point(5)
	buf, _ := json.Marshal(map[string]any{"point": point, "include_all": true})
	var resp queryResponse
	rec := do(t, s.Handler(), "POST", "/query", string(buf), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Outlying) != resp.OutlyingCount {
		t.Fatalf("outlying has %d entries, count says %d", len(resp.Outlying), resp.OutlyingCount)
	}
	if len(resp.Point) != s.def.view().miner.Dataset().Dim() {
		t.Fatalf("point echo has %d dims", len(resp.Point))
	}
}

func TestQueryBadInput(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"neither index nor point", `{}`, http.StatusBadRequest},
		{"both index and point", `{"index":1,"point":[1,2,3,4,5]}`, http.StatusBadRequest},
		{"index out of range", `{"index":100000}`, http.StatusBadRequest},
		{"negative index", `{"index":-1}`, http.StatusBadRequest},
		{"wrong dims", `{"point":[1,2]}`, http.StatusBadRequest},
		{"unknown field", `{"idx":3}`, http.StatusBadRequest},
		{"malformed json", `{"index":`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := do(t, h, "POST", "/query", c.body, nil)
		if rec.Code != c.status {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, rec.Code, c.status, rec.Body.String())
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", c.name, rec.Body.String())
		}
	}
	if rec := do(t, h, "GET", "/query", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", rec.Code)
	}
	if errs := s.Stats().Errors; errs < int64(len(cases)) {
		t.Errorf("error counter %d, want ≥ %d", errs, len(cases))
	}
}

func TestBodyLimit(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"point":[%s1]}`, strings.Repeat("1,", 500))
	rec := do(t, s.Handler(), "POST", "/query", big, nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", rec.Code, rec.Body.String())
	}
}

func TestQueryCacheHit(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	var first, second queryResponse
	if rec := do(t, h, "POST", "/query", `{"index": 7}`, &first); rec.Code != http.StatusOK {
		t.Fatalf("first: %d %s", rec.Code, rec.Body.String())
	}
	rec := do(t, h, "POST", "/query", `{"index": 7}`, &second)
	if rec.Code != http.StatusOK {
		t.Fatalf("second: %d %s", rec.Code, rec.Body.String())
	}
	if !second.Cached || first.Cached {
		t.Fatalf("cached flags: first %v second %v, want false/true", first.Cached, second.Cached)
	}
	if rec.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache = %q, want HIT", rec.Header().Get("X-Cache"))
	}
	if !reflect.DeepEqual(first.Minimal, second.Minimal) {
		t.Fatal("cached answer differs from computed answer")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Queries != 2 {
		t.Fatalf("stats = hits %d misses %d queries %d, want 1/1/2", st.CacheHits, st.CacheMisses, st.Queries)
	}
	// An ad-hoc vector equal to the row (exclude differs) must NOT hit.
	buf, _ := json.Marshal(map[string]any{"point": s.def.view().miner.Dataset().Point(7)})
	var third queryResponse
	do(t, h, "POST", "/query", string(buf), &third)
	if third.Cached {
		t.Fatal("external point hit the dataset-row cache entry")
	}
}

// TestQueryTimeoutRetryConverges runs with a 1ns deadline: every
// attempt either sheds before taking a compute slot, times out after
// spawning (which still seeds the cache), or — rarely — beats the
// race. A retrying client must converge to 200 once any attempt's
// computation lands in the cache, because the cache is consulted
// before the deadline applies.
func TestQueryTimeoutRetryConverges(t *testing.T) {
	s := newTestServer(t, Options{QueryTimeout: time.Nanosecond})
	h := s.Handler()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var resp queryResponse
		rec := do(t, h, "POST", "/query", `{"index": 0}`, &resp)
		if rec.Code == http.StatusOK {
			if s.def.view().cache.len() == 0 {
				t.Fatal("200 served but nothing cached")
			}
			return
		}
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503 or 200 (body %s)", rec.Code, rec.Body.String())
		}
		if time.Now().After(deadline) {
			t.Fatal("retries never converged to a cached answer")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestQuerySheddingWhenSaturated(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrentQueries: 1, QueryTimeout: 20 * time.Millisecond})
	release := occupySlot(t, s, overload.Interactive) // occupy the only compute slot
	rec := do(t, s.Handler(), "POST", "/query", `{"index": 0}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("capacity shed carried no Retry-After header")
	}
	if s.def.view().cache.len() != 0 {
		t.Fatal("shed request must not have computed anything")
	}
	release()
	if rec := do(t, s.Handler(), "POST", "/query", `{"index": 0}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("after slot freed: status %d", rec.Code)
	}
	// The shed and the answer both landed in the dataset's ledger.
	ov := s.Stats().Datasets[0].Overload
	if ov.Received != 2 || ov.Admitted != 1 || ov.ShedCapacity != 1 {
		t.Fatalf("ledger received/admitted/shed_capacity = %d/%d/%d, want 2/1/1",
			ov.Received, ov.Admitted, ov.ShedCapacity)
	}
}

func TestScanWorkersClamped(t *testing.T) {
	s := newTestServer(t, Options{ScanWorkers: 2})
	rec := do(t, s.Handler(), "POST", "/scan", `{"workers": 1000000}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("huge workers: status %d (body %s)", rec.Code, rec.Body.String())
	}
	if rec := do(t, s.Handler(), "POST", "/scan", `{"workers": -1}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative workers: status %d, want 400", rec.Code)
	}
}

func TestScan(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp scanResponse
	rec := do(t, s.Handler(), "POST", "/scan", `{"max_results": 5, "sort_by_severity": true}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.HitCount > 5 {
		t.Fatalf("hit count %d exceeds max_results", resp.HitCount)
	}
	for i := 1; i < len(resp.Hits); i++ {
		if resp.Hits[i-1].FullSpaceOD < resp.Hits[i].FullSpaceOD {
			t.Fatalf("hits not sorted by severity: %v before %v",
				resp.Hits[i-1].FullSpaceOD, resp.Hits[i].FullSpaceOD)
		}
	}
	if s.Stats().Scans != 1 {
		t.Fatalf("scan counter = %d", s.Stats().Scans)
	}
}

func TestScanLimitsClamped(t *testing.T) {
	s := newTestServer(t, Options{MaxScanResults: 3})
	var resp scanResponse
	do(t, s.Handler(), "POST", "/scan", `{"max_results": 1000000}`, &resp)
	if resp.MaxResults != 3 {
		t.Fatalf("effective max_results %d, want clamped to 3", resp.MaxResults)
	}
	if len(resp.Hits) > 3 {
		t.Fatalf("%d hits returned past the cap", len(resp.Hits))
	}
	if rec := do(t, s.Handler(), "POST", "/scan", `{"max_results": -1}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative max_results: status %d, want 400", rec.Code)
	}
}

func TestScanEmptyBodyUsesDefaults(t *testing.T) {
	s := newTestServer(t, Options{})
	var resp scanResponse
	rec := do(t, s.Handler(), "POST", "/scan", "", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("empty body: status %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
	if resp.MaxResults != 1000 {
		t.Fatalf("defaults not applied: max_results %d", resp.MaxResults)
	}
}

// newSlowScanServer builds a server whose scans take seconds: a huge
// absolute threshold with bottom-up ordering defeats upward pruning,
// so every point sweeps its full 2^12-1 lattice — slow enough to
// cancel or time out deterministically mid-scan.
func newSlowScanServer(t *testing.T, opts Options) *Server {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 60, D: 12, NumOutliers: 2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{K: 3, T: 1e15, Policy: core.PolicyBottomUp, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	registerClose(t, s)
	return s
}

// waitStats polls the stats snapshot until cond holds or the deadline
// lapses — the sync point for counters recorded by goroutines that
// outlive their handler.
func waitStats(t *testing.T, s *Server, what string, cond func(StatsSnapshot) bool) StatsSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s.Stats()
		if cond(snap) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never satisfied %s: %+v", what, snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestScanClientCancelIsNot503 is the regression test for the
// cancellation-semantics bug: a client closing its connection
// mid-scan used to be answered 503 and counted as a server error,
// making impatient clients indistinguishable from overload. It must
// be reported 408 and land in client_cancelled, leaving the error
// counter untouched.
func TestScanClientCancelIsNot503(t *testing.T) {
	s := newSlowScanServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/scan", strings.NewReader(`{}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(50 * time.Millisecond) // let the scan start
		cancel()
	}()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408 (body %s)", rec.Code, rec.Body.String())
	}
	snap := waitStats(t, s, "client_cancelled == 1", func(st StatsSnapshot) bool {
		return st.ClientCancelled == 1
	})
	if snap.Errors != 0 {
		t.Fatalf("client cancellation counted as %d server errors", snap.Errors)
	}
	// The interrupted scan goroutine finishes into nobody's hands and
	// must be visible as abandoned.
	waitStats(t, s, "scans_abandoned == 1", func(st StatsSnapshot) bool {
		return st.ScansAbandoned == 1
	})
}

// TestQueryClientCancelIsNot503: the same contract on /query, covering
// the slot-wait path (the compute slot is occupied, the client gives
// up waiting).
func TestQueryClientCancelIsNot503(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrentQueries: 1, QueryTimeout: 10 * time.Second})
	release := occupySlot(t, s, overload.Interactive) // occupy the only compute slot
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/query", strings.NewReader(`{"index": 0}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408 (body %s)", rec.Code, rec.Body.String())
	}
	st := s.Stats()
	if st.ClientCancelled != 1 || st.Errors != 0 {
		t.Fatalf("client_cancelled/errors = %d/%d, want 1/0", st.ClientCancelled, st.Errors)
	}
}

// TestScanDeadlineCountsAbandoned forces the deadline path: the
// handler answers 503 (a real capacity error) and the scan goroutine,
// completing into a channel nobody reads anymore, must be counted and
// debug-logged instead of vanishing.
func TestScanDeadlineCountsAbandoned(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	s := newTestServer(t, Options{
		ScanTimeout: time.Nanosecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	rec := do(t, s.Handler(), "POST", "/scan", `{}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	snap := waitStats(t, s, "scans_abandoned == 1", func(st StatsSnapshot) bool {
		return st.ScansAbandoned == 1
	})
	if snap.Errors != 1 {
		t.Fatalf("errors = %d, want 1 (the 503 is the server's fault)", snap.Errors)
	}
	if snap.ClientCancelled != 0 {
		t.Fatalf("client_cancelled = %d for a server-side deadline", snap.ClientCancelled)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, line := range logged {
		if strings.Contains(line, "scan abandoned") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no abandonment debug log in %q", logged)
	}
}

func TestScanTimeoutReleasesSlot(t *testing.T) {
	s := newTestServer(t, Options{ScanTimeout: time.Nanosecond})
	rec := do(t, s.Handler(), "POST", "/scan", `{}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	// The cancelled workers notice promptly and free the admission slot.
	waitIdle(t, s)
}

func TestScanConcurrencyLimit(t *testing.T) {
	s := newTestServer(t, Options{})
	release := occupySlot(t, s, overload.Bulk) // occupy the single scan slot
	rec := do(t, s.Handler(), "POST", "/scan", `{}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("scan capacity shed carried no Retry-After header")
	}
	release()
}

func TestStateEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	var st core.State
	rec := do(t, s.Handler(), "GET", "/state", "", &st)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if st.Threshold <= 0 || st.Dim != 5 || st.K != 4 {
		t.Fatalf("state = %+v", st)
	}
	// The exported state must round-trip into a fresh miner.
	m2 := newTestMiner(t)
	if err := m2.ImportState(&st); err != nil {
		t.Fatalf("re-importing served state: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	var h healthResponse
	rec := do(t, s.Handler(), "GET", "/healthz", "", &h)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if h.Status != "ok" || h.DatasetN != 150 || h.DatasetD != 5 || h.Threshold <= 0 {
		t.Fatalf("health = %+v", h)
	}
}

// TestConcurrentQueriesRace hammers /query from many goroutines —
// the acceptance check for the Miner sharing contract; run with
// -race. Answers must match the sequential library results, and the
// hot repeated query must be served from the cache.
func TestConcurrentQueriesRace(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	const points = 10
	want := make([][]byte, points)
	eval, err := s.def.view().miner.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < points; i++ {
		r, err := s.def.view().miner.QueryPointWith(eval, i)
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = json.Marshal(masksToDims(r.Minimal))
	}

	const goroutines = 16
	const iters = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				idx := (g + it) % points
				req := httptest.NewRequest("POST", "/query",
					bytes.NewReader([]byte(fmt.Sprintf(`{"index": %d}`, idx))))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errCh <- fmt.Errorf("goroutine %d: status %d: %s", g, rec.Code, rec.Body.String())
					return
				}
				var resp queryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errCh <- err
					return
				}
				got, _ := json.Marshal(resp.Minimal)
				if !bytes.Equal(got, want[idx]) {
					errCh <- fmt.Errorf("index %d: got %s want %s", idx, got, want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Queries != goroutines*iters {
		t.Fatalf("queries = %d, want %d", st.Queries, goroutines*iters)
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits across repeated identical queries")
	}
	if st.CacheHits+st.CacheMisses != st.Queries {
		t.Fatalf("hits %d + misses %d != queries %d", st.CacheHits, st.CacheMisses, st.Queries)
	}
}

// TestConcurrentQueryAndScan overlaps a scan with query traffic; run
// with -race to validate the read-only sharing contract.
func TestConcurrentQueryAndScan(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("POST", "/scan", strings.NewReader(`{"workers": 4}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"index": %d}`, g)
			req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("query during scan: status %d", rec.Code)
			}
		}(g)
	}
	wg.Wait()
}

func TestOversizedMaskSetNotPinned(t *testing.T) {
	// Cap of 1 mask: any real outlier's set is "oversized".
	s := newTestServer(t, Options{MaxCachedMasks: 1})
	h := s.Handler()
	// Find an outlier row (planted ones sit at the low indexes).
	var probe queryResponse
	idx := -1
	for i := 0; i < 10; i++ {
		do(t, h, "POST", "/query", fmt.Sprintf(`{"index": %d}`, i), &probe)
		if probe.IsOutlier && probe.OutlyingCount > 1 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("no multi-subspace outlier in the first rows")
	}
	body := fmt.Sprintf(`{"index": %d}`, idx)
	// Plain repeat: served from the stripped entry.
	var plain queryResponse
	do(t, h, "POST", "/query", body, &plain)
	if !plain.Cached {
		t.Fatal("plain repeat should hit the stripped entry")
	}
	// include_all cannot be served from the stripped entry: it must
	// recompute, and still return the full set.
	full := fmt.Sprintf(`{"index": %d, "include_all": true}`, idx)
	var withAll queryResponse
	do(t, h, "POST", "/query", full, &withAll)
	if withAll.Cached {
		t.Fatal("include_all served from an entry with no masks")
	}
	if len(withAll.Outlying) != withAll.OutlyingCount {
		t.Fatalf("recomputed outlying has %d entries, count %d", len(withAll.Outlying), withAll.OutlyingCount)
	}
}

func TestPointTransformApplied(t *testing.T) {
	m := newTestMiner(t)
	calls := 0
	s, err := New(m, Options{PointTransform: func(p []float64) []float64 {
		calls++
		return p
	}})
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(map[string]any{"point": m.Dataset().Point(5)})
	do(t, s.Handler(), "POST", "/query", string(buf), nil)
	if calls != 1 {
		t.Fatalf("transform called %d times for one ad-hoc query", calls)
	}
	// Dataset-row queries are already in dataset space: no transform.
	do(t, s.Handler(), "POST", "/query", `{"index": 5}`, nil)
	if calls != 1 {
		t.Fatalf("transform called on an index query")
	}
}

func TestCacheDisabled(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: -1})
	h := s.Handler()
	var resp queryResponse
	do(t, h, "POST", "/query", `{"index": 2}`, &resp)
	do(t, h, "POST", "/query", `{"index": 2}`, &resp)
	if resp.Cached {
		t.Fatal("cache disabled but second query reported cached")
	}
	if s.Stats().CacheHits != 0 {
		t.Fatal("cache hits counted with caching disabled")
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	n := s.def.view().miner.Dataset().N()
	point := s.def.view().miner.Dataset().Point(2)
	buf, _ := json.Marshal(map[string]any{"items": []map[string]any{
		{"index": 0},
		{"index": 7},
		{"point": point},
		{"index": n},            // out of range -> per-item error
		{"point": []float64{1}}, // wrong dims -> per-item error
	}})
	var resp batchResponse
	rec := do(t, s.Handler(), "POST", "/batch", string(buf), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Succeeded != 3 || resp.Failed != 2 {
		t.Fatalf("succeeded/failed = %d/%d, want 3/2", resp.Succeeded, resp.Failed)
	}
	if resp.Threshold != s.def.view().miner.Threshold() {
		t.Fatalf("threshold %v, want %v", resp.Threshold, s.def.view().miner.Threshold())
	}
	if !strings.Contains(resp.Results[3].Error, "out of range") {
		t.Fatalf("item 3 error = %q", resp.Results[3].Error)
	}
	if !strings.Contains(resp.Results[4].Error, "dims") {
		t.Fatalf("item 4 error = %q", resp.Results[4].Error)
	}
	// Every successful item must agree with the single-query path.
	eval, err := s.def.view().miner.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range []int{0, 7} {
		want, err := s.def.view().miner.QueryPointWith(eval, idx)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[i]
		if !reflect.DeepEqual(got.Minimal, masksToDims(want.Minimal)) ||
			got.IsOutlier != want.IsOutlierAnywhere ||
			got.OutlyingCount != len(want.Outlying) {
			t.Fatalf("item %d diverged from library query", i)
		}
	}
	wantExt, err := s.def.view().miner.QueryWith(eval, point, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Results[2].Minimal, masksToDims(wantExt.Minimal)) {
		t.Fatal("external point item diverged from library query")
	}
}

func TestBatchValidation(t *testing.T) {
	s := newTestServer(t, Options{MaxBatchItems: 3})
	cases := []struct {
		name, body string
		status     int
	}{
		{"empty batch", `{}`, http.StatusBadRequest},
		{"no items", `{"items": []}`, http.StatusBadRequest},
		{"too many items", `{"items": [{"index":0},{"index":1},{"index":2},{"index":3}]}`, http.StatusBadRequest},
		{"negative workers", `{"items": [{"index":0}], "workers": -1}`, http.StatusBadRequest},
		{"unknown field", `{"items": [{"index":0}], "bogus": 1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := do(t, s.Handler(), "POST", "/batch", c.body, nil)
		if rec.Code != c.status {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, rec.Code, c.status, rec.Body.String())
		}
	}
	// Ambiguous and empty items fail per-item, not per-request.
	point := s.def.view().miner.Dataset().Point(0)
	buf, _ := json.Marshal(map[string]any{"items": []map[string]any{
		{"index": 0, "point": point},
		{},
	}})
	var resp batchResponse
	rec := do(t, s.Handler(), "POST", "/batch", string(buf), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Failed != 2 || resp.Succeeded != 0 {
		t.Fatalf("succeeded/failed = %d/%d, want 0/2", resp.Succeeded, resp.Failed)
	}
}

// /batch and /query share the result LRU in both directions.
func TestBatchResultCacheInterplay(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	// Seed index 1 through /query.
	if rec := do(t, h, "POST", "/query", `{"index": 1}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("query status %d", rec.Code)
	}
	var resp batchResponse
	rec := do(t, h, "POST", "/batch", `{"items": [{"index": 1}, {"index": 2}]}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Results[0].Cached || resp.ResultCacheHits != 1 {
		t.Fatalf("previously queried item not served from LRU: %+v", resp)
	}
	if resp.Results[1].Cached {
		t.Fatal("fresh item claimed to be cached")
	}
	// The batch-computed item must now hit on /query.
	var q queryResponse
	rec = do(t, h, "POST", "/query", `{"index": 2}`, &q)
	if rec.Code != http.StatusOK || !q.Cached {
		t.Fatalf("batch result did not seed the query cache (status %d, cached %v)", rec.Code, q.Cached)
	}
	// A fully-cached batch takes no batch slot and recomputes nothing.
	resp = batchResponse{}
	rec = do(t, h, "POST", "/batch", `{"items": [{"index": 1}, {"index": 2}]}`, &resp)
	if rec.Code != http.StatusOK || resp.ResultCacheHits != 2 || resp.ODCacheMisses != 0 {
		t.Fatalf("fully-cached batch recomputed: %+v", resp)
	}
}

func TestBatchDuplicatesShareODWork(t *testing.T) {
	// Disable the result LRU so every item goes through the engine and
	// the sharing must come from the per-batch OD cache alone.
	s := newTestServer(t, Options{CacheSize: -1})
	items := make([]map[string]any, 12)
	for i := range items {
		items[i] = map[string]any{"index": 4}
	}
	buf, _ := json.Marshal(map[string]any{"items": items, "workers": 1})
	var resp batchResponse
	rec := do(t, s.Handler(), "POST", "/batch", string(buf), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Succeeded != len(items) {
		t.Fatalf("succeeded = %d, want %d", resp.Succeeded, len(items))
	}
	if resp.ODCacheHits == 0 {
		t.Fatal("duplicate items produced no OD cache hits")
	}
	if resp.Results[0].ODEvaluations == 0 {
		t.Fatal("first duplicate computed nothing")
	}
	for i := 1; i < len(items); i++ {
		if resp.Results[i].ODEvaluations != 0 {
			t.Fatalf("duplicate item %d recomputed %d ODs", i, resp.Results[i].ODEvaluations)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.BatchItems != int64(len(items)) {
		t.Fatalf("stats batches/items = %d/%d", st.Batches, st.BatchItems)
	}
	if st.BatchODHits != resp.ODCacheHits || st.BatchODMisses != resp.ODCacheMisses {
		t.Fatalf("stats OD cache counters diverge from response: %+v vs %+v", st, resp)
	}
}

func TestBatchConcurrencyLimit(t *testing.T) {
	s := newTestServer(t, Options{MaxConcurrentBatches: 1, CacheSize: -1})
	release := occupySlot(t, s, overload.Batch) // occupy the single batch slot
	rec := do(t, s.Handler(), "POST", "/batch", `{"items": [{"index": 0}]}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	release()
}

func TestBatchTimeout(t *testing.T) {
	s := newTestServer(t, Options{BatchTimeout: time.Nanosecond, CacheSize: -1})
	rec := do(t, s.Handler(), "POST", "/batch", `{"items": [{"index": 0}]}`, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	// The cancelled batch frees its slot promptly (cancellation is
	// noticed mid-search, not just between items).
	waitIdle(t, s)
}

// TestConcurrentBatchesRace hammers /batch from many goroutines with
// overlapping duplicate-heavy workloads plus interleaved /query
// traffic — the -race acceptance check for the shared per-batch OD
// cache. The result LRU is disabled so every request exercises the
// engine and the shared cache.
func TestConcurrentBatchesRace(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: -1, MaxConcurrentBatches: 16})
	h := s.Handler()
	const points = 8
	want := make([][]byte, points)
	eval, err := s.def.view().miner.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < points; i++ {
		r, err := s.def.view().miner.QueryPointWith(eval, i)
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = json.Marshal(masksToDims(r.Minimal))
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%4 == 3 { // interleave plain queries with the batches
				for it := 0; it < 6; it++ {
					body := fmt.Sprintf(`{"index": %d}`, (g+it)%points)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("POST", "/query", strings.NewReader(body)))
					if rec.Code != http.StatusOK {
						errCh <- fmt.Errorf("goroutine %d query: status %d", g, rec.Code)
						return
					}
				}
				return
			}
			for it := 0; it < 3; it++ {
				items := make([]map[string]any, 10)
				for j := range items {
					items[j] = map[string]any{"index": (g + it + j) % points}
				}
				buf, _ := json.Marshal(map[string]any{"items": items, "workers": 2})
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("POST", "/batch", bytes.NewReader(buf)))
				if rec.Code != http.StatusOK {
					errCh <- fmt.Errorf("goroutine %d batch: status %d: %s", g, rec.Code, rec.Body.String())
					return
				}
				var resp batchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errCh <- err
					return
				}
				if resp.Failed != 0 {
					errCh <- fmt.Errorf("goroutine %d: %d items failed", g, resp.Failed)
					return
				}
				for j, item := range resp.Results {
					got, _ := json.Marshal(item.Minimal)
					if !bytes.Equal(got, want[(g+it+j)%points]) {
						errCh <- fmt.Errorf("goroutine %d item %d: got %s want %s", g, j, got, want[(g+it+j)%points])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	// 12 goroutines, every 4th doing queries instead: 9 batchers × 3
	// iterations.
	if st.Batches != 27 {
		t.Fatalf("batches = %d, want 27", st.Batches)
	}
}
