package server

import (
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(sorted, 0.50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(sorted, 0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty sample p50 = %v", got)
	}
	if got := percentile(sorted[:1], 0.99); got != time.Millisecond {
		t.Fatalf("single sample p99 = %v", got)
	}
}

func TestLatencyRingWraps(t *testing.T) {
	s := newServerStats(4)
	for i := 1; i <= 10; i++ {
		s.observe(time.Duration(i) * time.Millisecond)
	}
	lat := s.latencies()
	if len(lat) != 4 {
		t.Fatalf("window holds %d, want 4", len(lat))
	}
	// Only the most recent 4 observations (7..10ms) survive.
	if lat[0] != 7*time.Millisecond || lat[3] != 10*time.Millisecond {
		t.Fatalf("window = %v", lat)
	}
}

func TestSnapshotPercentiles(t *testing.T) {
	s := newServerStats(8)
	s.queries.Add(3)
	s.cacheHits.Add(1)
	for _, d := range []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond} {
		s.observe(d)
	}
	snap := s.snapshot(5, 10*time.Second)
	if snap.Queries != 3 || snap.CacheHits != 1 || snap.CacheEntries != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.LatencySample != 3 || snap.P50Ms != 4 {
		t.Fatalf("latency fields = %+v", snap)
	}
	if snap.UptimeSeconds != 10 {
		t.Fatalf("uptime = %v", snap.UptimeSeconds)
	}
}
