package server

import (
	"sync"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(sorted, 0.50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(sorted, 0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty sample p50 = %v", got)
	}
	if got := percentile(sorted[:1], 0.99); got != time.Millisecond {
		t.Fatalf("single sample p99 = %v", got)
	}
}

// TestPercentileNearestRankBoundaries pins the nearest-rank (⌈q·n⌉)
// behaviour at the tiny-sample boundaries where an off-by-one hides
// easiest, plus the fractional case the old int(q·n+0.5) formula got
// wrong: at n=10, q=0.51 nearest-rank requires the 6th value (rank
// ⌈5.1⌉ = 6), but round-half-up read the 5th.
func TestPercentileNearestRankBoundaries(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"n=1 q=0.5", ms(7), 0.5, 7 * time.Millisecond},
		{"n=1 q=0.99", ms(7), 0.99, 7 * time.Millisecond},
		{"n=1 q=1.0", ms(7), 1.0, 7 * time.Millisecond},
		{"n=2 q=0.5", ms(10, 20), 0.5, 10 * time.Millisecond},
		{"n=2 q=0.99", ms(10, 20), 0.99, 20 * time.Millisecond},
		{"n=2 q=1.0", ms(10, 20), 1.0, 20 * time.Millisecond},
		{"n=10 q=0.51 regression", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.51, 6 * time.Millisecond},
		{"n=10 q=1.0", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 1.0, 10 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: percentile = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLatencyRingWraps(t *testing.T) {
	s := newServerStats(4)
	for i := 1; i <= 10; i++ {
		s.recordQuery(false, time.Duration(i)*time.Millisecond)
	}
	snap := s.snapshot(0, 0)
	if snap.LatencySample != 4 {
		t.Fatalf("window holds %d, want 4", snap.LatencySample)
	}
	// Only the most recent 4 observations (7..10ms) survive; the
	// nearest-rank p50 of {7,8,9,10} is 8, the p99 is 10.
	if snap.P50Ms != 8 || snap.P99Ms != 10 {
		t.Fatalf("percentiles = %+v", snap)
	}
}

func TestSnapshotPercentiles(t *testing.T) {
	s := newServerStats(8)
	s.recordQuery(true, 2*time.Millisecond)
	s.recordQuery(false, 4*time.Millisecond)
	s.recordQuery(false, 6*time.Millisecond)
	snap := s.snapshot(5, 10*time.Second)
	if snap.Queries != 3 || snap.CacheHits != 1 || snap.CacheMisses != 2 || snap.CacheEntries != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.LatencySample != 3 || snap.P50Ms != 4 {
		t.Fatalf("latency fields = %+v", snap)
	}
	if snap.UptimeSeconds != 10 {
		t.Fatalf("uptime = %v", snap.UptimeSeconds)
	}
}

// TestSnapshotNeverTorn is the regression test for the torn-stats
// bug: counters used to be read field by field, so a scrape racing a
// query could observe cache_hits + cache_misses != queries or a batch
// item total from a different instant than its batch count. Every
// update path now commits its counters in one critical section and
// the snapshot reads under the same lock, so the invariants below
// must hold in EVERY scrape, not just the final one. Run under
// -race (as CI does) this also proves the locking is sound.
func TestSnapshotNeverTorn(t *testing.T) {
	s := newServerStats(64)
	const writers = 4
	const perWriter = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.startRequest()
				s.recordQuery(i%2 == 0, time.Duration(i)*time.Microsecond)
				s.addODEvals(3)
				s.recordBatch(2, 1, 1, 5)
				s.endRequest()
			}
		}()
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()

	scrape := func() {
		snap := s.snapshot(0, 0)
		if snap.CacheHits+snap.CacheMisses != snap.Queries {
			t.Fatalf("torn snapshot: hits %d + misses %d != queries %d",
				snap.CacheHits, snap.CacheMisses, snap.Queries)
		}
		if snap.BatchItems != 2*snap.Batches {
			t.Fatalf("torn snapshot: %d items for %d two-item batches", snap.BatchItems, snap.Batches)
		}
		if snap.InFlight < 0 || snap.InFlight > writers {
			t.Fatalf("torn snapshot: in_flight = %d", snap.InFlight)
		}
	}
	for {
		select {
		case <-writersDone:
			scrape()
			snap := s.snapshot(0, 0)
			if want := int64(writers * perWriter); snap.Queries != want {
				t.Fatalf("queries = %d, want %d", snap.Queries, want)
			}
			if snap.InFlight != 0 {
				t.Fatalf("in_flight = %d after all requests ended", snap.InFlight)
			}
			return
		default:
			scrape()
		}
	}
}
