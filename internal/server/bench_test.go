package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func benchServer(b *testing.B, opts Options) *Server {
	b.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 1000, D: 8, NumOutliers: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{K: 5, TQuantile: 0.95, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkQueryCold always misses the cache (distinct points).
func BenchmarkQueryCold(b *testing.B) {
	s := benchServer(b, Options{})
	h := s.Handler()
	n := s.def.view().miner.Dataset().N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"index": %d}`, i%n)
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkQueryCached hammers one hot key — the O(1) path repeated
// identical queries take in production.
func BenchmarkQueryCached(b *testing.B) {
	s := benchServer(b, Options{})
	h := s.Handler()
	body := `{"index": 42}`
	// Warm the entry.
	req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), req)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkAppendThroughput is the append lane of the bench gate: it
// drives /append requests carrying 1, 16 and 256 rows against a
// WAL-backed dataset and reports rows/s plus fsyncs/row (one
// group-commit fsync per drained batch, amortized over its rows). The
// CI gate holds batch=256 to ≥ 5x the batch=1 row throughput and to
// under one fsync per row — the amortization the mutation pipeline
// exists to provide. Auto-compaction is disabled so the WAL sync
// counter is cumulative for the whole run.
func BenchmarkAppendThroughput(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s := benchServer(b, Options{
				DataDir: b.TempDir(), WAL: true, CacheSize: -1,
				MaxLoadPoints: 50_000_000, WALCompactBytes: -1,
			})
			h := s.Handler()
			body := appendJSON(batch, 8, int64(batch))
			// The warm-up append engages persistence (base snapshot +
			// WAL creation) outside the timed region.
			req := httptest.NewRequest("POST", "/datasets/default/append", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("warm-up append: %d (%s)", rec.Code, rec.Body.String())
			}
			syncs0 := s.Stats().Datasets[0].Live.WALSyncs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/datasets/default/append", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("append: %d (%s)", rec.Code, rec.Body.String())
				}
			}
			b.StopTimer()
			rows := float64(b.N * batch)
			b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
			b.ReportMetric(float64(s.Stats().Datasets[0].Live.WALSyncs-syncs0)/rows, "fsyncs/row")
		})
	}
}

// BenchmarkQueryParallel measures throughput with pooled evaluators
// under GOMAXPROCS client goroutines over a working set larger than
// trivially cacheable.
func BenchmarkQueryParallel(b *testing.B) {
	s := benchServer(b, Options{CacheSize: -1}) // isolate compute path
	h := s.Handler()
	n := s.def.view().miner.Dataset().N()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := fmt.Sprintf(`{"index": %d}`, i%n)
			i++
			req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
