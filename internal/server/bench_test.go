package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func benchServer(b *testing.B, opts Options) *Server {
	b.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 1000, D: 8, NumOutliers: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{K: 5, TQuantile: 0.95, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkQueryCold always misses the cache (distinct points).
func BenchmarkQueryCold(b *testing.B) {
	s := benchServer(b, Options{})
	h := s.Handler()
	n := s.def.view().miner.Dataset().N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"index": %d}`, i%n)
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkQueryCached hammers one hot key — the O(1) path repeated
// identical queries take in production.
func BenchmarkQueryCached(b *testing.B) {
	s := benchServer(b, Options{})
	h := s.Handler()
	body := `{"index": 42}`
	// Warm the entry.
	req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
	h.ServeHTTP(httptest.NewRecorder(), req)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkQueryParallel measures throughput with pooled evaluators
// under GOMAXPROCS client goroutines over a working set larger than
// trivially cacheable.
func BenchmarkQueryParallel(b *testing.B) {
	s := benchServer(b, Options{CacheSize: -1}) // isolate compute path
	h := s.Handler()
	n := s.def.view().miner.Dataset().N()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := fmt.Sprintf(`{"index": %d}`, i%n)
			i++
			req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}
