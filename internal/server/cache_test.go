package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	a, b, d := &queryResponse{}, &queryResponse{}, &queryResponse{}
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // promote a; b is now LRU
		t.Fatal("a missing")
	}
	c.put("d", d) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if got, ok := c.get("a"); !ok || got != a {
		t.Fatal("a evicted instead of b")
	}
	if got, ok := c.get("d"); !ok || got != d {
		t.Fatal("d missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := newResultCache(2)
	v1, v2 := &queryResponse{}, &queryResponse{}
	c.put("k", v1)
	c.put("k", v2)
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if got, _ := c.get("k"); got != v2 {
		t.Fatal("refresh did not replace the value")
	}
}

func TestCacheNilIsDisabled(t *testing.T) {
	var c *resultCache
	c.put("k", &queryResponse{})
	if _, ok := c.get("k"); ok {
		t.Fatal("nil cache returned a value")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if newResultCache(0) != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
}

func TestCacheKeyDistinguishesExclude(t *testing.T) {
	p := []float64{1.5, -2.25, 0}
	if cacheKey(p, 3) == cacheKey(p, -1) {
		t.Fatal("same key for dataset-row and external queries")
	}
	if cacheKey([]float64{1, 2}, -1) == cacheKey([]float64{2, 1}, -1) {
		t.Fatal("key ignores coordinate order")
	}
	if cacheKey(p, 3) != cacheKey([]float64{1.5, -2.25, 0}, 3) {
		t.Fatal("equal queries produced different keys")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%32)
				c.put(k, &queryResponse{})
				c.get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 16 {
		t.Fatalf("len %d exceeds capacity", c.len())
	}
}
