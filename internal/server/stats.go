package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// serverStats aggregates the counters behind GET /stats. Counters are
// atomics; query latencies go into a bounded ring so percentiles
// reflect recent traffic without unbounded memory.
type serverStats struct {
	queries   atomic.Int64 // /query requests answered (cached or not)
	scans     atomic.Int64 // /scan requests answered
	errors    atomic.Int64 // requests that failed (4xx/5xx)
	cacheHits atomic.Int64
	cacheMiss atomic.Int64
	inFlight  atomic.Int64
	odEvals   atomic.Int64 // OD computations spent on /query and /batch work

	batches            atomic.Int64 // /batch requests answered
	batchItems         atomic.Int64 // items across all answered batches
	batchODCacheHits   atomic.Int64 // shared per-batch OD cache hits
	batchODCacheMisses atomic.Int64 // shared per-batch OD cache misses

	mu   sync.Mutex
	ring []time.Duration // query latencies, ring buffer
	next int             // next write position
	full bool
}

func newServerStats(window int) *serverStats {
	if window <= 0 {
		window = 1024
	}
	return &serverStats{ring: make([]time.Duration, window)}
}

// observe records one query latency.
func (s *serverStats) observe(d time.Duration) {
	s.mu.Lock()
	s.ring[s.next] = d
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// latencies returns a sorted copy of the recorded window.
func (s *serverStats) latencies() []time.Duration {
	s.mu.Lock()
	n := s.next
	if s.full {
		n = len(s.ring)
	}
	out := make([]time.Duration, n)
	copy(out, s.ring[:n])
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// percentile reads the q-quantile (0 < q ≤ 1) from a sorted sample
// using the nearest-rank method; 0 on an empty sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// StatsSnapshot is the JSON body of GET /stats.
type StatsSnapshot struct {
	Queries       int64   `json:"queries"`
	Scans         int64   `json:"scans"`
	Errors        int64   `json:"errors"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
	InFlight      int64   `json:"in_flight"`
	ODEvaluations int64   `json:"od_evaluations"`
	Batches       int64   `json:"batches"`
	BatchItems    int64   `json:"batch_items"`
	BatchODHits   int64   `json:"batch_od_cache_hits"`
	BatchODMisses int64   `json:"batch_od_cache_misses"`
	LatencySample int     `json:"latency_sample"`
	P50Ms         float64 `json:"latency_p50_ms"`
	P90Ms         float64 `json:"latency_p90_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// snapshot assembles the current counters.
func (s *serverStats) snapshot(cacheEntries int, uptime time.Duration) StatsSnapshot {
	lat := s.latencies()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return StatsSnapshot{
		Queries:       s.queries.Load(),
		Scans:         s.scans.Load(),
		Errors:        s.errors.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMiss.Load(),
		CacheEntries:  cacheEntries,
		InFlight:      s.inFlight.Load(),
		ODEvaluations: s.odEvals.Load(),
		Batches:       s.batches.Load(),
		BatchItems:    s.batchItems.Load(),
		BatchODHits:   s.batchODCacheHits.Load(),
		BatchODMisses: s.batchODCacheMisses.Load(),
		LatencySample: len(lat),
		P50Ms:         ms(percentile(lat, 0.50)),
		P90Ms:         ms(percentile(lat, 0.90)),
		P99Ms:         ms(percentile(lat, 0.99)),
		UptimeSeconds: uptime.Seconds(),
	}
}
