package server

import (
	"math"
	"sort"
	"sync"
	"time"
)

// serverStats aggregates the counters behind GET /stats. All counters
// live under one mutex and every update path mutates its counters in
// one critical section, so a snapshot — also taken under the lock —
// is always internally consistent: concurrent scrapes can never
// observe cache_hits + cache_misses != queries, an od_evaluations
// total from a different instant than the query count that produced
// it, or latency percentiles torn across a ring write. (The previous
// field-by-field atomic reads allowed all three.) Query latencies go
// into a bounded ring so percentiles reflect recent traffic without
// unbounded memory.
//
//hos:statslock mu
type serverStats struct {
	mu sync.Mutex

	queries   int64 // /query requests answered (cached or not)
	scans     int64 // /scan requests answered (sync or async job)
	errors    int64 // requests that failed (4xx/5xx, server's fault or client's mistake)
	cacheHits int64
	cacheMiss int64
	inFlight  int64
	odEvals   int64 // OD computations spent on /query and /batch work

	// clientCancelled counts requests whose client closed the
	// connection mid-computation. They are NOT errors: the server did
	// nothing wrong, so folding them into the error counter (as the
	// old 503-on-disconnect path did) corrupted error-rate monitoring.
	clientCancelled int64
	// registryConflicts counts 409s from /datasets/load admission
	// (duplicate name, registry full) and datasetNotFound counts 404s
	// from requests naming an unregistered dataset (routing, evict).
	// Both are deliberate refusals, not malfunctions, so they are
	// excluded from the error counter — the registry-full signal in
	// particular is how operators size MaxDatasets, and it used to
	// drown inside the generic error count.
	registryConflicts int64
	datasetNotFound   int64
	// scansAbandoned counts synchronous scans whose handler stopped
	// listening (deadline or disconnect) before the scan goroutine
	// delivered its outcome — work that completed (or aborted) for
	// nobody. The async /jobs/scan path exists to drive this to zero.
	scansAbandoned int64

	batches            int64 // /batch requests answered
	batchItems         int64 // items across all answered batches
	batchODCacheHits   int64 // shared per-batch OD cache hits
	batchODCacheMisses int64 // shared per-batch OD cache misses

	ring []time.Duration // query latencies, ring buffer
	next int             // next write position
	full bool
}

func newServerStats(window int) *serverStats {
	if window <= 0 {
		window = 1024
	}
	return &serverStats{ring: make([]time.Duration, window)}
}

// startRequest / endRequest bracket an in-flight /query.
func (s *serverStats) startRequest() {
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
}

func (s *serverStats) endRequest() {
	s.mu.Lock()
	s.inFlight--
	s.mu.Unlock()
}

// recordQuery counts one answered /query — hit or miss, latency, and
// the ring write — as a single atomic transition, which is what keeps
// the hits + misses == queries invariant visible to every scrape.
func (s *serverStats) recordQuery(hit bool, latency time.Duration) {
	s.mu.Lock()
	s.queries++
	if hit {
		s.cacheHits++
	} else {
		s.cacheMiss++
	}
	s.observeLocked(latency)
	s.mu.Unlock()
}

// addODEvals accounts engine work. It is called from the compute
// goroutine when an answer lands (even when the requesting handler
// already timed out, since the work was still done).
func (s *serverStats) addODEvals(n int64) {
	s.mu.Lock()
	s.odEvals += n
	s.mu.Unlock()
}

func (s *serverStats) recordScan() {
	s.mu.Lock()
	s.scans++
	s.mu.Unlock()
}

func (s *serverStats) recordError() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

// recordClientCancelled counts a request abandoned by its own client —
// deliberately separate from recordError (see the field comment).
func (s *serverStats) recordClientCancelled() {
	s.mu.Lock()
	s.clientCancelled++
	s.mu.Unlock()
}

// recordRegistryConflict counts one 409 registry-admission refusal.
func (s *serverStats) recordRegistryConflict() {
	s.mu.Lock()
	s.registryConflicts++
	s.mu.Unlock()
}

// recordDatasetNotFound counts one 404 for an unregistered dataset.
func (s *serverStats) recordDatasetNotFound() {
	s.mu.Lock()
	s.datasetNotFound++
	s.mu.Unlock()
}

// recordScanAbandoned counts a scan outcome that completed with no
// handler left to receive it.
func (s *serverStats) recordScanAbandoned() {
	s.mu.Lock()
	s.scansAbandoned++
	s.mu.Unlock()
}

// recordBatch counts one answered /batch with its item count and
// shared OD-cache accounting in a single transition.
func (s *serverStats) recordBatch(items int, odHits, odMisses, odEvals int64) {
	s.mu.Lock()
	s.batches++
	s.batchItems += int64(items)
	s.batchODCacheHits += odHits
	s.batchODCacheMisses += odMisses
	s.odEvals += odEvals
	s.mu.Unlock()
}

// observeLocked records one query latency; the caller holds mu.
func (s *serverStats) observeLocked(d time.Duration) {
	s.ring[s.next] = d
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
}

// percentile reads the q-quantile (0 < q ≤ 1) from a sorted sample
// using the nearest-rank method — rank ⌈q·n⌉, the smallest value with
// at least q·n of the sample at or below it; 0 on an empty sample.
// (The previous rounding formula, int(q·n+0.5), dropped a rank
// whenever q·n had a fractional part below one half — e.g. the p50 of
// a 10-sample window read rank 5 where nearest-rank requires 5 only
// for exact halves and 6 for q=0.51 — understating tail latency.)
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// DatasetStats summarises one registry entry inside StatsSnapshot.
type DatasetStats struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	D       int    `json:"d"`
	Shards  int    `json:"shards"`
	Queries int64  `json:"queries"`
	// Live is the dataset's streaming-mutation state: epoch counter,
	// append/delete ledger and WAL occupancy.
	Live LiveStats `json:"live"`
	// Overload is the dataset's admission-guard state: breaker phase,
	// current adaptive concurrency limit, and the shed ledger.
	Overload OverloadStats `json:"overload"`
	// PerShard is the cumulative per-shard k-NN work (nil for an
	// unsharded dataset): one entry per shard.
	PerShard []ShardStats `json:"per_shard,omitempty"`
}

// LiveStats is one dataset's streaming-mutation section of /stats.
// Epoch counts view swaps (0 = never mutated); the WAL fields are 0
// until persistence engages (first mutation with -data-dir and -wal).
// Appends counts client append operations; AppendBatches counts the
// coalescer drains that applied them, so appends/append_batches is
// the observed group-commit amortization factor. WALSyncs is the
// log's cumulative fsync count (resets when compaction rotates the
// log, like WALRecords).
type LiveStats struct {
	Epoch         int64 `json:"epoch"`
	NextID        int64 `json:"next_id"`
	Appends       int64 `json:"appends"`
	AppendedRows  int64 `json:"appended_rows"`
	AppendBatches int64 `json:"append_batches"`
	Deletes       int64 `json:"deletes"`
	DeletedRows   int64 `json:"deleted_rows"`
	Compactions   int64 `json:"compactions"`
	WALBytes      int64 `json:"wal_bytes"`
	WALRecords    int64 `json:"wal_records"`
	WALSyncs      int64 `json:"wal_syncs"`
	// The retention section: sweep jobs completed, rows they expired,
	// and the currently effective policy (empty/zero = disabled).
	RetentionSweeps      int64  `json:"retention_sweeps"`
	RetentionExpiredRows int64  `json:"retention_expired_rows"`
	RetentionMaxAge      string `json:"retention_max_age,omitempty"`
	RetentionMaxRows     int    `json:"retention_max_rows,omitempty"`
}

// OverloadStats is one dataset's overload-guard section of /stats.
// The ledger obeys received == admitted + shed and shed ==
// shed_breaker_open + shed_capacity in every snapshot — the same
// single-critical-section discipline as hits + misses == queries.
type OverloadStats struct {
	// BreakerState is "closed", "open" or "half_open"; BreakerOpens
	// counts cumulative trips.
	BreakerState string `json:"breaker_state"`
	BreakerOpens int64  `json:"breaker_opens"`
	// ConcurrencyLimit is the current adaptive limit (AIMD-controlled,
	// between the configured min and max); InFlight is total admitted
	// requests currently computing across all classes.
	ConcurrencyLimit int `json:"concurrency_limit"`
	InFlight         int `json:"in_flight"`
	// P99Ms is the windowed interactive p99 the limiter steers by.
	P99Ms float64 `json:"latency_p99_ms"`
	// The admission ledger.
	Received        int64 `json:"received"`
	Admitted        int64 `json:"admitted"`
	Shed            int64 `json:"shed"`
	ShedBreakerOpen int64 `json:"shed_breaker_open"`
	ShedCapacity    int64 `json:"shed_capacity"`
}

// ShardStats is one shard's point count and cumulative search work.
type ShardStats struct {
	Points         int   `json:"points"`
	Queries        int64 `json:"queries"`
	PointsExamined int64 `json:"points_examined"`
	NodesVisited   int64 `json:"nodes_visited"`
}

// JobStats is the async job-subsystem section of StatsSnapshot — a
// rendering of jobs.Counters. Queued/Running are current occupancy;
// everything else is cumulative.
type JobStats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Abandoned int64 `json:"abandoned"`
}

// StatsSnapshot is the JSON body of GET /stats.
type StatsSnapshot struct {
	Queries           int64          `json:"queries"`
	Scans             int64          `json:"scans"`
	Errors            int64          `json:"errors"`
	ClientCancelled   int64          `json:"client_cancelled"`
	RegistryConflicts int64          `json:"registry_conflicts"`
	DatasetNotFound   int64          `json:"dataset_not_found"`
	ScansAbandoned    int64          `json:"scans_abandoned"`
	CacheHits         int64          `json:"cache_hits"`
	CacheMisses       int64          `json:"cache_misses"`
	CacheEntries      int            `json:"cache_entries"`
	InFlight          int64          `json:"in_flight"`
	ODEvaluations     int64          `json:"od_evaluations"`
	Batches           int64          `json:"batches"`
	BatchItems        int64          `json:"batch_items"`
	BatchODHits       int64          `json:"batch_od_cache_hits"`
	BatchODMisses     int64          `json:"batch_od_cache_misses"`
	Jobs              JobStats       `json:"jobs"`
	Datasets          []DatasetStats `json:"datasets"`
	LatencySample     int            `json:"latency_sample"`
	P50Ms             float64        `json:"latency_p50_ms"`
	P90Ms             float64        `json:"latency_p90_ms"`
	P99Ms             float64        `json:"latency_p99_ms"`
	UptimeSeconds     float64        `json:"uptime_seconds"`
}

// snapshot assembles the counters under one lock acquisition. Sorting
// the latency copy happens outside the critical section — the copy is
// private — so scrapes do not stall the serving path.
func (s *serverStats) snapshot(cacheEntries int, uptime time.Duration) StatsSnapshot {
	s.mu.Lock()
	n := s.next
	if s.full {
		n = len(s.ring)
	}
	lat := make([]time.Duration, n)
	copy(lat, s.ring[:n])
	snap := StatsSnapshot{
		Queries:           s.queries,
		Scans:             s.scans,
		Errors:            s.errors,
		ClientCancelled:   s.clientCancelled,
		RegistryConflicts: s.registryConflicts,
		DatasetNotFound:   s.datasetNotFound,
		ScansAbandoned:    s.scansAbandoned,
		CacheHits:         s.cacheHits,
		CacheMisses:       s.cacheMiss,
		CacheEntries:      cacheEntries,
		InFlight:          s.inFlight,
		ODEvaluations:     s.odEvals,
		Batches:           s.batches,
		BatchItems:        s.batchItems,
		BatchODHits:       s.batchODCacheHits,
		BatchODMisses:     s.batchODCacheMisses,
	}
	s.mu.Unlock()

	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	snap.LatencySample = len(lat)
	snap.P50Ms = ms(percentile(lat, 0.50))
	snap.P90Ms = ms(percentile(lat, 0.90))
	snap.P99Ms = ms(percentile(lat, 0.99))
	snap.UptimeSeconds = uptime.Seconds()
	return snap
}
