package server

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
)

// resultCache is a mutex-guarded LRU over finished query responses.
// The Miner's configuration (K, threshold, policy, metric…) is fixed
// for the lifetime of a Server, so the key only has to identify the
// query itself: the point's exact bit pattern plus the self-exclusion
// index. Values are treated as immutable once inserted — handlers
// copy the envelope before stamping per-request fields.
type resultCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	byKy map[string]*list.Element
}

type cacheEntry struct {
	key string
	val *queryResponse
}

// newResultCache returns a cache bounded to capacity entries, or nil
// (caching disabled) when capacity ≤ 0.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:  capacity,
		ll:   list.New(),
		byKy: make(map[string]*list.Element, capacity),
	}
}

// cacheKey serialises (point, exclude) into a compact string key.
// Float64 bits are used verbatim, so +0/-0 and NaN payloads are
// distinct keys — exactness over cleverness.
func cacheKey(point []float64, exclude int) string {
	buf := make([]byte, 8+8*len(point))
	binary.LittleEndian.PutUint64(buf, uint64(int64(exclude)))
	for i, v := range point {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	return string(buf)
}

// get returns the cached response for key, promoting it to most
// recently used.
func (c *resultCache) get(key string) (*queryResponse, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKy[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts (or refreshes) key, evicting the least recently used
// entry when over capacity.
func (c *resultCache) put(key string, val *queryResponse) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKy[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.byKy[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKy, last.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
