package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
)

// newSnapshotServer builds a test server with snapshot persistence
// enabled in a fresh temp dir.
func newSnapshotServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	opts.DataDir = dir
	s := newTestServer(t, opts)
	return s, dir
}

// bodyOf replays a request and returns the raw response body — the
// byte-identical comparisons below deliberately compare JSON bytes,
// not decoded structs, after stripping the only legitimately varying
// field (elapsed_ms timings).
func bodyOf(t *testing.T, h http.Handler, method, path, body string) string {
	t.Helper()
	rec := do(t, h, method, path, body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s %s: status %d (%s)", method, path, rec.Code, rec.Body.String())
	}
	return stripElapsed(rec.Body.String())
}

// stripElapsed zeroes every "elapsed_ms" timing in a JSON body.
var elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)

func stripElapsed(s string) string {
	return elapsedRe.ReplaceAllString(s, `"elapsed_ms":0`)
}

// TestSaveThenFileLoadByteIdentical is the endpoint-level conformance
// check: a dataset saved to disk and re-registered from its snapshot
// must answer /query, /scan and /batch byte-identically to the live
// entry it was saved from.
func TestSaveThenFileLoadByteIdentical(t *testing.T) {
	s, dir := newSnapshotServer(t, Options{CacheSize: -1}) // no LRU: every answer computed
	h := s.Handler()
	load := `{"name":"live","gen":"synthetic","n":130,"d":4,"planted":3,"seed":13,
	          "k":4,"tq":0.9,"shards":2,"partitioner":"hash","backend":"xtree"}`
	if rec := do(t, h, "POST", "/datasets/load", load, nil); rec.Code != http.StatusCreated {
		t.Fatalf("load: %d (%s)", rec.Code, rec.Body.String())
	}
	var saved saveDatasetResponse
	rec := do(t, h, "POST", "/datasets/live/save", "", &saved)
	if rec.Code != http.StatusOK {
		t.Fatalf("save: %d (%s)", rec.Code, rec.Body.String())
	}
	if saved.Saved != "live" || saved.Bytes <= 0 {
		t.Fatalf("save response = %+v", saved)
	}
	if _, err := os.Stat(filepath.Join(dir, "live.snap")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	fileLoad := `{"name":"restored","file":"live.snap"}`
	if rec := do(t, h, "POST", "/datasets/load", fileLoad, nil); rec.Code != http.StatusCreated {
		t.Fatalf("file load: %d (%s)", rec.Code, rec.Body.String())
	}

	probes := []struct{ path, live, restored string }{
		{"/query", `{"dataset":"live","index":7}`, `{"dataset":"restored","index":7}`},
		{"/query", `{"dataset":"live","index":42,"include_all":true}`, `{"dataset":"restored","index":42,"include_all":true}`},
		{"/scan", `{"dataset":"live","max_results":10,"sort_by_severity":true}`, `{"dataset":"restored","max_results":10,"sort_by_severity":true}`},
		{"/batch", `{"dataset":"live","items":[{"index":1},{"index":2},{"index":3}]}`, `{"dataset":"restored","items":[{"index":1},{"index":2},{"index":3}]}`},
	}
	for _, p := range probes {
		want := bodyOf(t, h, "POST", p.path, p.live)
		got := bodyOf(t, h, "POST", p.path, p.restored)
		if want != got {
			t.Fatalf("%s diverged between live and snapshot-restored entries:\n live: %s\n rest: %s", p.path, want, got)
		}
	}
}

// TestSaveLoadValidation covers the failure surface of the new
// endpoints: persistence disabled, unknown names, traversal attempts,
// parameter conflicts, corrupt files.
func TestSaveLoadValidation(t *testing.T) {
	// Without -data-dir both save and file-load are off.
	bare := newTestServer(t, Options{})
	if rec := do(t, bare.Handler(), "POST", "/datasets/default/save", "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("save without data dir: %d", rec.Code)
	}
	if rec := do(t, bare.Handler(), "POST", "/datasets/load", `{"name":"x","file":"x.snap"}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("file load without data dir: %d", rec.Code)
	}

	s, dir := newSnapshotServer(t, Options{})
	h := s.Handler()
	if rec := do(t, h, "POST", "/datasets/ghost/save", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("save unknown: %d", rec.Code)
	}
	// Traversal and non-bare names are rejected.
	for _, file := range []string{"../x.snap", "a/b.snap", ".hidden.snap", ""} {
		body := fmt.Sprintf(`{"name":"x","file":%q}`, file)
		if rec := do(t, h, "POST", "/datasets/load", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("file %q: %d", file, rec.Code)
		}
	}
	// Bad registry names never reach the filesystem.
	for _, name := range []string{"", "a/b", "..", ".x", strings.Repeat("n", 65), "sp ace"} {
		body := fmt.Sprintf(`{"name":%q,"gen":"uniform","n":50,"d":3,"k":3,"t":1}`, name)
		if rec := do(t, h, "POST", "/datasets/load", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("name %q: %d (%s)", name, rec.Code, rec.Body.String())
		}
	}
	// Missing file.
	if rec := do(t, h, "POST", "/datasets/load", `{"name":"x","file":"missing.snap"}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing file: %d", rec.Code)
	}
	// Corrupt file: typed rejection, not a 500 or a panic.
	if err := os.WriteFile(filepath.Join(dir, "junk.snap"), []byte("HOSSNAP1 but then garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, h, "POST", "/datasets/load", `{"name":"x","file":"junk.snap"}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt file: %d", rec.Code)
	}
	// Full snapshot + miner params is contradictory.
	if rec := do(t, h, "POST", "/datasets/default/save", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("save default: %d (%s)", rec.Code, rec.Body.String())
	}
	conflicted := `{"name":"x","file":"default.snap","k":9}`
	if rec := do(t, h, "POST", "/datasets/load", conflicted, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("full snapshot with params: %d", rec.Code)
	}
	// And without params it registers fine.
	if rec := do(t, h, "POST", "/datasets/load", `{"name":"copy","file":"default.snap"}`, nil); rec.Code != http.StatusCreated {
		t.Fatalf("full snapshot load: %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestWarmStartServesSavedDatasets: a directory of snapshots comes
// back as registered datasets after a "restart" (a second server over
// the same data dir), loaded through the job pool with progress, and
// answers queries identically to the original entries.
func TestWarmStartServesSavedDatasets(t *testing.T) {
	s1, dir := newSnapshotServer(t, Options{})
	h1 := s1.Handler()
	for i, spec := range []string{
		`{"name":"wa","gen":"synthetic","n":90,"d":3,"planted":2,"seed":5,"k":3,"tq":0.9}`,
		`{"name":"wb","gen":"synthetic","n":100,"d":4,"planted":3,"seed":6,"k":4,"tq":0.85,"shards":2}`,
	} {
		if rec := do(t, h1, "POST", "/datasets/load", spec, nil); rec.Code != http.StatusCreated {
			t.Fatalf("load %d: %d (%s)", i, rec.Code, rec.Body.String())
		}
	}
	for _, name := range []string{"wa", "wb"} {
		if rec := do(t, h1, "POST", "/datasets/"+name+"/save", "", nil); rec.Code != http.StatusOK {
			t.Fatalf("save %s: %d", name, rec.Code)
		}
	}
	wantA := bodyOf(t, h1, "POST", "/query", `{"dataset":"wa","index":3}`)

	// "Restart": a fresh server over the same dir warm-starts both.
	m := newTestMiner(t)
	s2, err := New(m, Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	registerClose(t, s2)
	n, err := s2.WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("warm start submitted %d jobs, want 2", n)
	}
	h2 := s2.Handler()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var list listDatasetsResponse
		do(t, h2, "GET", "/datasets", "", &list)
		if len(list.Datasets) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm start never registered both datasets: %+v", list.Datasets)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s2.Stats()
	if st.Jobs.Completed != 2 || st.Jobs.Failed != 0 {
		t.Fatalf("warm start job counters = %+v", st.Jobs)
	}
	if got := bodyOf(t, h2, "POST", "/query", `{"dataset":"wa","index":3}`); got != wantA {
		t.Fatalf("warm-started wa answers differently:\n before: %s\n after:  %s", wantA, got)
	}
	// Second warm start is a no-op: everything already registered.
	if n, err := s2.WarmStart(); err != nil || n != 0 {
		t.Fatalf("re-warm start = (%d, %v), want (0, nil)", n, err)
	}
	// A dataless server warm-starts nothing.
	if n, err := bareWarmStart(t); err != nil || n != 0 {
		t.Fatalf("no data dir warm start = (%d, %v)", n, err)
	}
}

func bareWarmStart(t *testing.T) (int, error) {
	t.Helper()
	s := newTestServer(t, Options{})
	return s.WarmStart()
}

// TestWarmStartSurfacesBadFiles: corrupt and dataset-only snapshots
// become failed jobs with readable errors, never panics, and do not
// block the good files.
func TestWarmStartSurfacesBadFiles(t *testing.T) {
	s1, dir := newSnapshotServer(t, Options{})
	h1 := s1.Handler()
	if rec := do(t, h1, "POST", "/datasets/load",
		`{"name":"good","gen":"synthetic","n":80,"d":3,"planted":2,"seed":8,"k":3,"tq":0.9}`, nil); rec.Code != http.StatusCreated {
		t.Fatalf("load: %d", rec.Code)
	}
	if rec := do(t, h1, "POST", "/datasets/good/save", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("save: %d", rec.Code)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.snap"), []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := newTestMiner(t)
	s2, err := New(m, Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	registerClose(t, s2)
	n, err := s2.WarmStart()
	if err != nil || n != 2 {
		t.Fatalf("warm start = (%d, %v), want (2, nil)", n, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s2.Stats()
		if st.Jobs.Completed+st.Jobs.Failed == 2 {
			if st.Jobs.Completed != 1 || st.Jobs.Failed != 1 {
				t.Fatalf("job counters = %+v, want 1 completed + 1 failed", st.Jobs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm start jobs never settled: %+v", s2.Stats().Jobs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rec := do(t, s2.Handler(), "POST", "/query", `{"dataset":"good","index":1}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("good dataset unavailable after warm start: %d", rec.Code)
	}
}

// TestEvictThenReloadServesFreshResults is the regression test for
// cache reuse across a name's lifetimes: after evicting synth2 and
// reloading the same name with a different seed (different bytes), no
// answer may come from the old entry's LRU or OD caches — the reload
// must serve exactly what a directly built miner over the new data
// serves, and the first query after reload must be a cache miss.
func TestEvictThenReloadServesFreshResults(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	load := func(seed int64) {
		body := fmt.Sprintf(`{"name":"synth2","gen":"synthetic","n":110,"d":4,"planted":3,"seed":%d,"k":4,"tq":0.9}`, seed)
		if rec := do(t, h, "POST", "/datasets/load", body, nil); rec.Code != http.StatusCreated {
			t.Fatalf("load seed %d: %d (%s)", seed, rec.Code, rec.Body.String())
		}
	}
	query := func() (*queryResponse, string) {
		var resp queryResponse
		rec := do(t, h, "POST", "/query", `{"dataset":"synth2","index":5}`, &resp)
		if rec.Code != http.StatusOK {
			t.Fatalf("query: %d", rec.Code)
		}
		return &resp, rec.Header().Get("X-Cache")
	}

	load(7)
	first, _ := query()
	// Same query again: cached now — the hazard the regression guards.
	if _, cache := query(); cache != "HIT" {
		t.Fatalf("second query X-Cache = %q, want HIT", cache)
	}
	if rec := do(t, h, "POST", "/datasets/evict", `{"name":"synth2"}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("evict: %d", rec.Code)
	}
	load(99) // same name, different bytes

	got, cache := query()
	if cache != "MISS" {
		t.Fatalf("first query after reload X-Cache = %q, want MISS (old LRU served)", cache)
	}
	// The answer must be the new data's answer, computed independently.
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 110, D: 4, NumOutliers: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMiner(ds, core.Config{K: 4, TQuantile: 0.9, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.OutlyingSubspacesOfPoint(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != want.Threshold || got.IsOutlier != want.IsOutlierAnywhere ||
		got.OutlyingCount != len(want.Outlying) {
		t.Fatalf("reloaded answer stale: got T=%v outlier=%v count=%d, want T=%v outlier=%v count=%d",
			got.Threshold, got.IsOutlier, got.OutlyingCount,
			want.Threshold, want.IsOutlierAnywhere, len(want.Outlying))
	}
	// Belt and braces: thresholds from different seeds differ, so a
	// stale entry would have tripped the comparison above.
	if got.Threshold == first.Threshold {
		t.Fatalf("old and new thresholds coincide (%v); regression test lost its teeth", got.Threshold)
	}
	_ = shard.RoundRobin // keep the import honest if specs above change
}

// TestRegistryErrorsCountedSeparately pins the /stats taxonomy:
// registry conflicts (409) and unknown-dataset 404s land in their own
// counters, not in the server-error count.
func TestRegistryErrorsCountedSeparately(t *testing.T) {
	s := newTestServer(t, Options{MaxDatasets: 2})
	h := s.Handler()
	before := s.Stats()
	ok := `{"name":"one","gen":"uniform","n":60,"d":3,"k":3,"t":1}`
	if rec := do(t, h, "POST", "/datasets/load", ok, nil); rec.Code != http.StatusCreated {
		t.Fatalf("load: %d", rec.Code)
	}
	// Duplicate (409), registry full (409), evict missing (404), query
	// missing (404).
	if rec := do(t, h, "POST", "/datasets/load", ok, nil); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate: %d", rec.Code)
	}
	full := `{"name":"two","gen":"uniform","n":60,"d":3,"k":3,"t":1}`
	if rec := do(t, h, "POST", "/datasets/load", full, nil); rec.Code != http.StatusConflict {
		t.Fatalf("full: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/datasets/evict", `{"name":"ghost"}`, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("evict missing: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/query", `{"dataset":"ghost","index":0}`, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("query missing: %d", rec.Code)
	}
	st := s.Stats()
	if got := st.RegistryConflicts - before.RegistryConflicts; got != 2 {
		t.Fatalf("registry_conflicts += %d, want 2", got)
	}
	if got := st.DatasetNotFound - before.DatasetNotFound; got != 2 {
		t.Fatalf("dataset_not_found += %d, want 2", got)
	}
	if st.Errors != before.Errors {
		t.Fatalf("errors moved by %d; refusals must not count as server errors", st.Errors-before.Errors)
	}
}
