package server

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// waitJob polls GET /jobs/{id} until the job reaches the wanted state
// or the deadline lapses.
func waitJob(t *testing.T, s *Server, id, want string) jobResponse {
	t.Helper()
	h := s.Handler()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var resp jobResponse
		rec := do(t, h, "GET", "/jobs/"+id, "", &resp)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d (body %s)", id, rec.Code, rec.Body.String())
		}
		if resp.State == want {
			return resp
		}
		if resp.State == "failed" || (resp.State != want && resp.State == "cancelled") {
			t.Fatalf("job %s reached %s (error %q), want %s", id, resp.State, resp.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobResponse{}
}

// TestScanJobLifecycle drives the happy path end to end: submit,
// observe 202 + Location, poll to done, and check that the final
// result is exactly what the synchronous /scan answers for the same
// request — plus full progress and the /stats accounting.
func TestScanJobLifecycle(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	body := `{"max_results": 5, "sort_by_severity": true}`

	var sync scanResponse
	if rec := do(t, h, "POST", "/scan", body, &sync); rec.Code != http.StatusOK {
		t.Fatalf("sync scan: status %d", rec.Code)
	}

	rec := do(t, h, "POST", "/jobs/scan", body, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202 (body %s)", rec.Code, rec.Body.String())
	}
	var submitted jobResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ID == "" || (submitted.State != "queued" && submitted.State != "running") {
		t.Fatalf("submit snapshot = %+v", submitted)
	}
	if loc := rec.Header().Get("Location"); loc != "/jobs/"+submitted.ID {
		t.Fatalf("Location = %q", loc)
	}

	done := waitJob(t, s, submitted.ID, "done")
	n := s.def.view().miner.Dataset().N()
	if done.Progress.Done != int64(n) || done.Progress.Total != int64(n) || done.Progress.Percent != 100 {
		t.Fatalf("final progress = %+v, want %d/%d (100%%)", done.Progress, n, n)
	}
	if done.StartedAt == "" || done.FinishedAt == "" {
		t.Fatalf("timestamps missing: %+v", done)
	}

	// The job's result must be the synchronous answer (ElapsedMs is
	// wall time and legitimately differs).
	var async scanResponse
	buf, _ := json.Marshal(done.Result)
	if err := json.Unmarshal(buf, &async); err != nil {
		t.Fatal(err)
	}
	sync.ElapsedMs, async.ElapsedMs = 0, 0
	if !reflect.DeepEqual(sync, async) {
		t.Fatalf("async result diverged from sync scan:\n async %+v\n  sync %+v", async, sync)
	}

	st := s.Stats()
	if st.Jobs.Submitted != 1 || st.Jobs.Completed != 1 {
		t.Fatalf("job stats = %+v", st.Jobs)
	}
	if st.Scans != 2 {
		t.Fatalf("scans = %d, want 2 (sync + job)", st.Scans)
	}

	// GET /jobs lists the retained job.
	var list listJobsResponse
	if rec := do(t, h, "GET", "/jobs", "", &list); rec.Code != http.StatusOK {
		t.Fatalf("list: status %d", rec.Code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID || list.Counters.Completed != 1 {
		t.Fatalf("list = %+v", list)
	}
	// The listing is an index: results are served by GET /jobs/{id}
	// only (which is also what marks them fetched).
	if list.Jobs[0].Result != nil {
		t.Fatal("GET /jobs embedded a job result")
	}
}

// TestScanJobOutlivesScanTimeout is the acceptance criterion: with a
// ScanTimeout so tight every synchronous scan 503s, the same scan
// submitted as a job completes and its result stays retrievable.
func TestScanJobOutlivesScanTimeout(t *testing.T) {
	s := newTestServer(t, Options{ScanTimeout: time.Nanosecond})
	h := s.Handler()
	if rec := do(t, h, "POST", "/scan", `{}`, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("sync scan with 1ns deadline: status %d, want 503", rec.Code)
	}
	rec := do(t, h, "POST", "/jobs/scan", `{}`, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d (body %s)", rec.Code, rec.Body.String())
	}
	var submitted jobResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, s, submitted.ID, "done")
	var async scanResponse
	buf, _ := json.Marshal(done.Result)
	if err := json.Unmarshal(buf, &async); err != nil {
		t.Fatal(err)
	}
	if async.MaxResults != 1000 {
		t.Fatalf("result = %+v, want default-clamped scan response", async)
	}
	// Retrievable again: the result is retained, not consumed.
	again := waitJob(t, s, submitted.ID, "done")
	if again.Result == nil {
		t.Fatal("second fetch lost the result")
	}
}

// TestJobQueueFullGets429WithRetryAfter: one worker busy on a slow
// scan, depth-1 queue occupied — the third submission must be turned
// away with 429 and a positive Retry-After, and counted as rejected.
func TestJobQueueFullGets429WithRetryAfter(t *testing.T) {
	s := newSlowScanServer(t, Options{JobWorkers: 1, JobQueueDepth: 1})
	h := s.Handler()
	submit := func() (*jobResponse, int, string) {
		rec := do(t, h, "POST", "/jobs/scan", `{}`, nil)
		var resp jobResponse
		if rec.Code == http.StatusAccepted {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
		}
		return &resp, rec.Code, rec.Header().Get("Retry-After")
	}
	running, code, _ := submit()
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	waitJob(t, s, running.ID, "running")
	queued, code, _ := submit()
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	_, code, retry := submit()
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", code)
	}
	secs, err := strconv.Atoi(retry)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", retry)
	}
	if st := s.Stats(); st.Jobs.Rejected != 1 || st.Jobs.Queued != 1 || st.Jobs.Running != 1 {
		t.Fatalf("job stats = %+v", st.Jobs)
	}
	// Cancel both so the test does not wait out the slow sweeps.
	for _, id := range []string{queued.ID, running.ID} {
		if rec := do(t, h, "DELETE", "/jobs/"+id, "", nil); rec.Code != http.StatusOK {
			t.Fatalf("cancel %s: status %d", id, rec.Code)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().Jobs.Cancelled != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.Jobs.Cancelled != 2 {
		t.Fatalf("cancelled = %d, want 2 (%+v)", st.Jobs.Cancelled, st.Jobs)
	}
}

// TestJobCancelRunning: DELETE on a running job cancels cooperatively
// and the terminal state is observable.
func TestJobCancelRunning(t *testing.T) {
	s := newSlowScanServer(t, Options{})
	h := s.Handler()
	rec := do(t, h, "POST", "/jobs/scan", `{}`, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	var submitted jobResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, submitted.ID, "running")
	if rec := do(t, h, "DELETE", "/jobs/"+submitted.ID, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("cancel: %d (body %s)", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var resp jobResponse
		do(t, h, "GET", "/jobs/"+submitted.ID, "", &resp)
		if resp.State == "cancelled" {
			if resp.Error == "" || resp.Result != nil {
				t.Fatalf("cancelled job = %+v", resp)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never reached cancelled")
}

func TestJobValidationAndUnknown(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	if rec := do(t, h, "POST", "/jobs/scan", `{"max_results": -1}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad request: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/jobs/scan", `{"dataset": "nope"}`, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/jobs/scan-999", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", rec.Code)
	}
	if rec := do(t, h, "DELETE", "/jobs/scan-999", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: %d", rec.Code)
	}
}

// TestServerCloseDrainsJobs: Close lets queued/running jobs finish
// and subsequent submissions are refused.
func TestServerCloseDrainsJobs(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	rec := do(t, h, "POST", "/jobs/scan", `{}`, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	var submitted jobResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := waitJob(t, s, submitted.ID, "done")
	if got.Result == nil {
		t.Fatal("drained job lost its result")
	}
	if rec := do(t, h, "POST", "/jobs/scan", `{}`, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: %d, want 503", rec.Code)
	}
}
