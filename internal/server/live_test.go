package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dataio"
)

// Tests for the live-mutation surface: streaming appends, id-range
// deletion, WAL persistence across restarts (clean, torn, compacted)
// and the concurrent append hammer the -race CI lane runs.

// appendJSON builds an append body for n rows of dim d, deterministic
// in seed so restart comparisons see the same data.
func appendJSON(n, d int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	body := `{"rows":[`
	for i := 0; i < n; i++ {
		if i > 0 {
			body += ","
		}
		body += "["
		for j := 0; j < d; j++ {
			if j > 0 {
				body += ","
			}
			body += fmt.Sprintf("%.6f", rng.Float64())
		}
		body += "]"
	}
	return body + "]}"
}

// restartFromSnapshot plays the hosserve snapshot-restore boot: load
// <data-dir>/default.snap, restore the miner, build a fresh server
// over the same dir and replay the default WAL. Returns the server
// and the number of replayed records.
func restartFromSnapshot(t *testing.T, dir string, opts Options) (*Server, int) {
	t.Helper()
	snap, err := dataio.LoadSnapshot(filepath.Join(dir, "default.snap"))
	if err != nil {
		t.Fatalf("loading default.snap: %v", err)
	}
	m, err := snap.Restore()
	if err != nil {
		t.Fatalf("restoring default.snap: %v", err)
	}
	opts.DataDir = dir
	opts.NormStats = snap.NormStats
	opts.PointTransform = transformFromNorm(snap.NormStats)
	s, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	registerClose(t, s)
	replayed, err := s.AttachDefaultWAL()
	if err != nil {
		t.Fatalf("attaching default WAL: %v", err)
	}
	return s, replayed
}

func TestAppendAndDeleteRows(t *testing.T) {
	s := newTestServer(t, Options{CacheSize: -1})
	h := s.Handler()
	baseN := s.def.view().miner.Dataset().N()
	baseScan := bodyOf(t, h, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`)

	var ap appendResponse
	rec := do(t, h, "POST", "/datasets/default/append", appendJSON(3, 5, 1), &ap)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d (%s)", rec.Code, rec.Body.String())
	}
	if ap.Appended != 3 || ap.N != baseN+3 || ap.Epoch != 1 || ap.FirstID != int64(baseN) {
		t.Fatalf("append response = %+v", ap)
	}
	// The appended rows are queryable by index immediately.
	if rec := do(t, h, "POST", "/query", fmt.Sprintf(`{"index":%d}`, baseN+2), nil); rec.Code != http.StatusOK {
		t.Fatalf("query appended row: %d (%s)", rec.Code, rec.Body.String())
	}

	// Validation surface.
	for name, body := range map[string]string{
		"empty":     `{"rows":[]}`,
		"wrong_dim": `{"rows":[[1,2]]}`,
		"non_num":   `{"rows":[[1,2,3,4,"x"]]}`,
	} {
		if rec := do(t, h, "POST", "/datasets/default/append", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("append %s: %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}
	for name, body := range map[string]string{
		"no_selector": `{}`,
		"half_range":  `{"from_id":0}`,
		"bad_range":   fmt.Sprintf(`{"from_id":%d,"to_id":0}`, baseN),
		"both":        fmt.Sprintf(`{"keep_last":1,"from_id":0,"to_id":%d}`, baseN),
		"neg_keep":    `{"keep_last":-1}`,
		"zero_keep":   `{"keep_last":0}`, // regression: used to panic indexing ids[len-0]
		"keep_all":    `{"keep_last":100000}`,
		"empty_match": `{"from_id":900000,"to_id":900010}`,
		"neg_from":    `{"from_id":-5,"to_id":3}`,
		"inverted":    `{"from_id":7,"to_id":3}`,
	} {
		if rec := do(t, h, "DELETE", "/datasets/default/rows", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("delete %s: %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}

	// Deleting exactly the appended ID range restores the original
	// dataset — and the original answers, bit for bit.
	var del deleteRowsResponse
	rec = do(t, h, "DELETE", "/datasets/default/rows",
		fmt.Sprintf(`{"from_id":%d,"to_id":%d}`, baseN, baseN+3), &del)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d (%s)", rec.Code, rec.Body.String())
	}
	if del.Deleted != 3 || del.N != baseN || del.Epoch != 2 {
		t.Fatalf("delete response = %+v", del)
	}
	if got := bodyOf(t, h, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`); got != baseScan {
		t.Fatalf("append+delete round trip changed /scan:\n before: %s\n after:  %s", baseScan, got)
	}

	// keep_last retention addresses the newest rows by position.
	do(t, h, "POST", "/datasets/default/append", appendJSON(5, 5, 2), nil)
	rec = do(t, h, "DELETE", "/datasets/default/rows", fmt.Sprintf(`{"keep_last":%d}`, baseN), &del)
	if rec.Code != http.StatusOK || del.Deleted != 5 || del.N != baseN {
		t.Fatalf("keep_last: %d, %+v (%s)", rec.Code, del, rec.Body.String())
	}

	// Epoch and mutation ledger surface in /stats and /datasets.
	st := s.Stats()
	if len(st.Datasets) != 1 {
		t.Fatalf("dataset stats: %+v", st.Datasets)
	}
	live := st.Datasets[0].Live
	if live.Epoch != 4 || live.Appends != 2 || live.AppendedRows != 8 ||
		live.Deletes != 2 || live.DeletedRows != 8 || live.NextID != int64(baseN+8) {
		t.Fatalf("live stats = %+v", live)
	}
	var list listDatasetsResponse
	do(t, h, "GET", "/datasets", "", &list)
	if len(list.Datasets) != 1 || list.Datasets[0].Epoch != 4 {
		t.Fatalf("dataset listing = %+v", list.Datasets)
	}
}

func TestAppendWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{DataDir: dir, WAL: true, CacheSize: -1})
	h1 := s1.Handler()
	baseN := s1.def.view().miner.Dataset().N()

	// Two appends and a delete: three WAL records over one base.
	do(t, h1, "POST", "/datasets/default/append", appendJSON(4, 5, 10), nil)
	do(t, h1, "POST", "/datasets/default/append", appendJSON(3, 5, 11), nil)
	var del deleteRowsResponse
	rec := do(t, h1, "DELETE", "/datasets/default/rows",
		fmt.Sprintf(`{"from_id":%d,"to_id":%d}`, baseN+2, baseN+5), &del)
	if rec.Code != http.StatusOK || del.Deleted != 3 {
		t.Fatalf("delete: %d, %+v", rec.Code, del)
	}
	for _, f := range []string{"default.snap", "default.wal"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("%s missing after mutations: %v", f, err)
		}
	}
	live := s1.Stats().Datasets[0].Live
	if live.WALRecords != 3 || live.WALBytes <= 0 {
		t.Fatalf("live stats = %+v", live)
	}
	wantScan := bodyOf(t, h1, "POST", "/scan", `{"max_results":12,"sort_by_severity":true}`)
	wantQuery := bodyOf(t, h1, "POST", "/query", fmt.Sprintf(`{"index":%d}`, baseN+3))

	// Restart: base snapshot + WAL replay must reproduce the exact
	// serving state, answers included.
	s2, replayed := restartFromSnapshot(t, dir, Options{WAL: true, CacheSize: -1})
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3", replayed)
	}
	h2 := s2.Handler()
	if got := bodyOf(t, h2, "POST", "/scan", `{"max_results":12,"sort_by_severity":true}`); got != wantScan {
		t.Fatalf("/scan diverged across restart:\n before: %s\n after:  %s", wantScan, got)
	}
	if got := bodyOf(t, h2, "POST", "/query", fmt.Sprintf(`{"index":%d}`, baseN+3)); got != wantQuery {
		t.Fatalf("/query diverged across restart:\n before: %s\n after:  %s", wantQuery, got)
	}
	v2 := s2.def.view()
	if v2.epoch != 3 || v2.miner.Dataset().N() != baseN+4 || v2.nextID != int64(baseN+7) {
		t.Fatalf("restored view: epoch=%d n=%d nextID=%d", v2.epoch, v2.miner.Dataset().N(), v2.nextID)
	}

	// The replayed log stays appendable: mutate on s2, restart again,
	// and the chain replays to the longer state.
	do(t, h2, "POST", "/datasets/default/append", appendJSON(2, 5, 12), nil)
	want2 := bodyOf(t, h2, "POST", "/scan", `{"max_results":12,"sort_by_severity":true}`)
	s3, replayed3 := restartFromSnapshot(t, dir, Options{WAL: true, CacheSize: -1})
	if replayed3 != 4 {
		t.Fatalf("second restart replayed %d records, want 4", replayed3)
	}
	if got := bodyOf(t, s3.Handler(), "POST", "/scan", `{"max_results":12,"sort_by_severity":true}`); got != want2 {
		t.Fatalf("/scan diverged across second restart")
	}
}

func TestWarmStartReplaysWAL(t *testing.T) {
	s1, dir := newSnapshotServer(t, Options{WAL: true, CacheSize: -1})
	h1 := s1.Handler()
	load := `{"name":"live","gen":"synthetic","n":120,"d":4,"planted":3,"seed":21,"k":4,"tq":0.9,"shards":2,"backend":"xtree"}`
	if rec := do(t, h1, "POST", "/datasets/load", load, nil); rec.Code != http.StatusCreated {
		t.Fatalf("load: %d (%s)", rec.Code, rec.Body.String())
	}
	var ap appendResponse
	if rec := do(t, h1, "POST", "/datasets/live/append", appendJSON(6, 4, 30), &ap); rec.Code != http.StatusOK {
		t.Fatalf("append: %d (%s)", rec.Code, rec.Body.String())
	}
	want := bodyOf(t, h1, "POST", "/scan", `{"dataset":"live","max_results":10,"sort_by_severity":true}`)

	s2, err := New(newTestMiner(t), Options{DataDir: dir, WAL: true, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	registerClose(t, s2)
	if n, err := s2.WarmStart(); err != nil || n != 1 {
		t.Fatalf("warm start = (%d, %v), want (1, nil)", n, err)
	}
	h2 := s2.Handler()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s2.Stats()
		if st.Jobs.Completed+st.Jobs.Failed == 1 {
			if st.Jobs.Failed != 0 {
				t.Fatalf("warm start failed: %+v", st.Jobs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warm start never settled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := bodyOf(t, h2, "POST", "/scan", `{"dataset":"live","max_results":10,"sort_by_severity":true}`); got != want {
		t.Fatalf("warm-started live dataset diverged:\n before: %s\n after:  %s", want, got)
	}
	for _, ds := range s2.Stats().Datasets {
		if ds.Name == "live" && (ds.Live.Epoch != 1 || ds.Live.WALRecords != 1 || ds.N != 126) {
			t.Fatalf("warm-started live stats = %+v", ds)
		}
	}
}

// TestTornWALWarmStart is the crash-mid-append drill: the trailing WAL
// record is truncated on disk, and a restart must replay everything up
// to the last valid record, truncate the tail, and keep serving — no
// error, no refusal to boot.
func TestTornWALWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{DataDir: dir, WAL: true, CacheSize: -1})
	h1 := s1.Handler()
	baseN := s1.def.view().miner.Dataset().N()
	do(t, h1, "POST", "/datasets/default/append", appendJSON(4, 5, 40), nil)
	afterFirst := bodyOf(t, h1, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`)
	do(t, h1, "POST", "/datasets/default/append", appendJSON(3, 5, 41), nil)

	// Tear the second record mid-payload, as a crash mid-write would.
	wp := filepath.Join(dir, "default.wal")
	raw, err := os.ReadFile(wp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wp, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, replayed := restartFromSnapshot(t, dir, Options{WAL: true, CacheSize: -1})
	if replayed != 1 {
		t.Fatalf("torn restart replayed %d records, want 1", replayed)
	}
	h2 := s2.Handler()
	if n := s2.def.view().miner.Dataset().N(); n != baseN+4 {
		t.Fatalf("torn restart N = %d, want %d", n, baseN+4)
	}
	if got := bodyOf(t, h2, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`); got != afterFirst {
		t.Fatalf("torn restart serves wrong state:\n want: %s\n got:  %s", afterFirst, got)
	}
	// The torn tail was truncated, so the log is appendable again and a
	// further restart replays the repaired chain.
	do(t, h2, "POST", "/datasets/default/append", appendJSON(2, 5, 42), nil)
	want := bodyOf(t, h2, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`)
	s3, replayed3 := restartFromSnapshot(t, dir, Options{WAL: true, CacheSize: -1})
	if replayed3 != 2 {
		t.Fatalf("post-repair restart replayed %d records, want 2", replayed3)
	}
	if got := bodyOf(t, s3.Handler(), "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`); got != want {
		t.Fatal("post-repair restart diverged")
	}
}

func TestCompactionFoldsWALIntoBase(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{DataDir: dir, WAL: true, CacheSize: -1})
	h1 := s1.Handler()
	do(t, h1, "POST", "/datasets/default/append", appendJSON(5, 5, 50), nil)
	do(t, h1, "POST", "/datasets/default/append", appendJSON(5, 5, 51), nil)
	want := bodyOf(t, h1, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`)

	rec := do(t, h1, "POST", "/datasets/default/compact", "", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("compact: %d (%s)", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(30 * time.Second)
	for s1.Stats().Datasets[0].Live.Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compaction never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	live := s1.Stats().Datasets[0].Live
	if live.WALRecords != 0 {
		t.Fatalf("WAL not rotated by compaction: %+v", live)
	}
	// The rotated log replays zero records onto the fatter base — and
	// the state is exactly what was serving before compaction.
	s2, replayed := restartFromSnapshot(t, dir, Options{WAL: true, CacheSize: -1})
	if replayed != 0 {
		t.Fatalf("post-compaction restart replayed %d records, want 0", replayed)
	}
	if got := bodyOf(t, s2.Handler(), "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`); got != want {
		t.Fatal("post-compaction restart diverged")
	}
	// Compaction without WAL persistence is a 400, not a queued no-op.
	bare := newTestServer(t, Options{})
	if rec := do(t, bare.Handler(), "POST", "/datasets/default/compact", "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("compact without WAL: %d", rec.Code)
	}
}

// TestAutoCompaction: a 1-byte budget forces maybeCompact to fire on
// the first mutation that lands in the log.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir, WAL: true, WALCompactBytes: 1, CacheSize: -1})
	h := s.Handler()
	do(t, h, "POST", "/datasets/default/append", appendJSON(2, 5, 60), nil)
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().Datasets[0].Live.Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-compaction never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitJobsSettled waits until the async job subsystem has nothing
// queued or running, so counters mutated by jobs (retention sweeps,
// compactions) are stable to assert against.
func waitJobsSettled(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.Jobs.Queued == 0 && st.Jobs.Running == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never settled: %+v", st.Jobs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAppendGroupCommit pins the coalescer's amortization contract:
// concurrent /append requests that arrive while the writer lock is
// held drain as ONE mutation — one epoch swap, one WAL batch frame,
// one group-commit fsync — and every caller still gets its own
// first_id, acknowledged only after its rows are durable. The test
// holds the writer lock itself so all requests are parked on the
// pending queue before any drain can start, making the coalescing
// deterministic.
func TestAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir, WAL: true, CacheSize: -1})
	h := s.Handler()
	d := s.def
	baseN := d.view().miner.Dataset().N()

	const callers = 4
	const rowsEach = 2

	d.mut.Lock()
	var wg sync.WaitGroup
	resps := make([]appendResponse, callers)
	codes := make([]int, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := do(t, h, "POST", "/datasets/default/append",
				appendJSON(rowsEach, 5, int64(70+i)), &resps[i])
			codes[i] = rec.Code
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		d.pendMu.Lock()
		queued := len(d.pending)
		d.pendMu.Unlock()
		if queued == callers {
			break
		}
		if time.Now().After(deadline) {
			d.mut.Unlock()
			t.Fatalf("only %d/%d appends queued", queued, callers)
		}
		time.Sleep(time.Millisecond)
	}
	d.mut.Unlock()
	wg.Wait()

	// Every caller succeeded, saw the same post-drain state, and owns a
	// distinct contiguous ID span.
	firstIDs := map[int64]bool{}
	for i := 0; i < callers; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d", i, codes[i])
		}
		r := resps[i]
		if r.Appended != rowsEach || r.N != baseN+callers*rowsEach || r.Epoch != 1 {
			t.Fatalf("caller %d response = %+v", i, r)
		}
		if r.FirstID < int64(baseN) || r.FirstID >= int64(baseN+callers*rowsEach) || (r.FirstID-int64(baseN))%rowsEach != 0 {
			t.Fatalf("caller %d first_id = %d", i, r.FirstID)
		}
		if firstIDs[r.FirstID] {
			t.Fatalf("first_id %d handed out twice", r.FirstID)
		}
		firstIDs[r.FirstID] = true
	}

	// The whole drain was one mutation: one epoch, one WAL frame, one
	// fsync — not one per caller.
	live := s.Stats().Datasets[0].Live
	if live.Appends != callers || live.AppendedRows != callers*rowsEach || live.AppendBatches != 1 {
		t.Fatalf("coalescing ledger = %+v", live)
	}
	if live.Epoch != 1 || live.WALRecords != 1 || live.WALSyncs != 1 {
		t.Fatalf("drain was not one group commit: %+v", live)
	}

	// The batch frame replays: a restart flattens it back into the
	// per-request records and reproduces the serving state exactly.
	want := bodyOf(t, h, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`)
	s2, replayed := restartFromSnapshot(t, dir, Options{WAL: true, CacheSize: -1})
	if replayed != callers {
		t.Fatalf("replayed %d records, want %d", replayed, callers)
	}
	if got := bodyOf(t, s2.Handler(), "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`); got != want {
		t.Fatalf("group-committed batch diverged across restart:\n before: %s\n after:  %s", want, got)
	}
	if v2 := s2.def.view(); v2.nextID != int64(baseN+callers*rowsEach) {
		t.Fatalf("restored nextID = %d, want %d", v2.nextID, baseN+callers*rowsEach)
	}
}

// TestRetentionSweep drives the time-based retention subsystem end to
// end: policy endpoints, row-cap and age expiry through the shared
// delete path, the K+1 survivor floor, stats surfacing, and WAL
// journaling of the sweeps across a restart.
func TestRetentionSweep(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir, WAL: true, CacheSize: -1})
	h := s.Handler()
	baseN := s.def.view().miner.Dataset().N()

	// No policy: GET reports disabled and a sweep submits nothing.
	var info retentionInfo
	if rec := do(t, h, "GET", "/datasets/default/retention", "", &info); rec.Code != http.StatusOK || info.Enabled {
		t.Fatalf("default retention = %d, %+v", rec.Code, info)
	}
	if n := s.sweepRetention(); n != 0 {
		t.Fatalf("sweep with no policy submitted %d jobs", n)
	}

	// Validation surface.
	for name, body := range map[string]string{
		"neg_rows": `{"max_rows":-1}`,
		"bad_age":  `{"max_age":"yesterday"}`,
		"neg_age":  `{"max_age":"-1h"}`,
	} {
		if rec := do(t, h, "PUT", "/datasets/default/retention", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("retention %s: %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}

	// Row cap: the sweep expires the oldest overflow, exactly.
	if rec := do(t, h, "PUT", "/datasets/default/retention", `{"max_rows":100}`, &info); rec.Code != http.StatusOK || !info.Enabled || info.MaxRows != 100 {
		t.Fatalf("set retention = %d, %+v", rec.Code, info)
	}
	if n := s.sweepRetention(); n != 1 {
		t.Fatalf("sweep submitted %d jobs, want 1", n)
	}
	waitJobsSettled(t, s)
	if st := s.Stats(); st.Jobs.Failed != 0 {
		t.Fatalf("retention job failed: %+v", st.Jobs)
	}
	live := s.Stats().Datasets[0].Live
	wantExpired := int64(baseN - 100)
	if live.RetentionSweeps != 1 || live.RetentionExpiredRows != wantExpired ||
		live.Deletes != 1 || live.DeletedRows != wantExpired || live.RetentionMaxRows != 100 {
		t.Fatalf("post-sweep ledger = %+v, want %d expired", live, wantExpired)
	}
	if n := s.def.view().miner.Dataset().N(); n != 100 {
		t.Fatalf("post-sweep N = %d, want 100", n)
	}

	// Nothing left to expire: the sweep is counted but deletes nothing.
	if n := s.sweepRetention(); n != 1 {
		t.Fatalf("second sweep submitted %d jobs, want 1", n)
	}
	waitJobsSettled(t, s)
	live = s.Stats().Datasets[0].Live
	if live.RetentionSweeps != 2 || live.Deletes != 1 || live.RetentionExpiredRows != wantExpired {
		t.Fatalf("idle sweep mutated the ledger: %+v", live)
	}

	// Age expiry clamps at the K+1 survivor floor instead of emptying
	// the dataset: with a 1ns horizon every row is expired, but the
	// engine's minimum viable population survives.
	if rec := do(t, h, "PUT", "/datasets/default/retention", `{"max_age":"1ns"}`, &info); rec.Code != http.StatusOK || info.MaxAge != "1ns" {
		t.Fatalf("set max_age = %d, %+v", rec.Code, info)
	}
	if n := s.sweepRetention(); n != 1 {
		t.Fatalf("age sweep submitted %d jobs, want 1", n)
	}
	waitJobsSettled(t, s)
	floor := s.def.view().miner.Config().K + 1
	if n := s.def.view().miner.Dataset().N(); n != floor {
		t.Fatalf("age sweep left N = %d, want the K+1 floor %d", n, floor)
	}
	if live := s.Stats().Datasets[0].Live; live.RetentionMaxAge != "1ns" || live.RetentionMaxRows != 0 {
		t.Fatalf("retention policy not surfaced in stats: %+v", live)
	}

	// Every sweep was journaled through the same WAL path as explicit
	// deletes: a restart replays base + delete records to the same state.
	want := bodyOf(t, h, "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`)
	s2, replayed := restartFromSnapshot(t, dir, Options{WAL: true, CacheSize: -1})
	if replayed != 2 {
		t.Fatalf("restart replayed %d records, want 2 delete records", replayed)
	}
	if got := bodyOf(t, s2.Handler(), "POST", "/scan", `{"max_results":10,"sort_by_severity":true}`); got != want {
		t.Fatalf("retention sweeps diverged across restart:\n before: %s\n after:  %s", want, got)
	}
}

// TestLiveAppendHammer is the -race lane's workload: concurrent
// appends, deletions, queries, batches, compactions and evict/reload
// churn against one server. Correctness here is "no race, no torn
// view, ledger adds up" — epoch-pinned handlers must never observe a
// half-swapped dataset.
func TestLiveAppendHammer(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{DataDir: dir, WAL: true, CacheSize: 64})
	h := s.Handler()
	baseN := s.def.view().miner.Dataset().N()

	const (
		appenders    = 2
		appendsEach  = 8
		rowsPerBatch = 2
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	run := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			f()
		}()
	}
	for a := 0; a < appenders; a++ {
		seed := int64(100 + a)
		run(func() {
			for i := 0; i < appendsEach; i++ {
				rec := do(t, h, "POST", "/datasets/default/append",
					appendJSON(rowsPerBatch, 5, seed*1000+int64(i)), nil)
				if rec.Code != http.StatusOK {
					t.Errorf("hammer append: %d (%s)", rec.Code, rec.Body.String())
					return
				}
			}
		})
	}
	run(func() { // retention deleter: racing keep_last may legitimately 400
		for i := 0; i < 6; i++ {
			do(t, h, "DELETE", "/datasets/default/rows", fmt.Sprintf(`{"keep_last":%d}`, baseN), nil)
			time.Sleep(time.Millisecond)
		}
	})
	for q := 0; q < 2; q++ {
		run(func() {
			for i := 0; i < 25; i++ {
				// Index 0 is stable across every mutation in this test.
				if rec := do(t, h, "POST", "/query", `{"index":0}`, nil); rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
					t.Errorf("hammer query: %d (%s)", rec.Code, rec.Body.String())
					return
				}
			}
		})
	}
	run(func() {
		for i := 0; i < 10; i++ {
			body := `{"items":[{"index":0},{"index":1},{"index":2}]}`
			if rec := do(t, h, "POST", "/batch", body, nil); rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
				t.Errorf("hammer batch: %d (%s)", rec.Code, rec.Body.String())
				return
			}
		}
	})
	run(func() { // compaction churn; queue-full 503s are expected
		for i := 0; i < 4; i++ {
			do(t, h, "POST", "/datasets/default/compact", "", nil)
			time.Sleep(2 * time.Millisecond)
		}
	})
	run(func() { // retention churn: policy writes + sweeps on the shared delete path
		if rec := do(t, h, "PUT", "/datasets/default/retention",
			fmt.Sprintf(`{"max_rows":%d}`, baseN), nil); rec.Code != http.StatusOK {
			t.Errorf("hammer retention policy: %d (%s)", rec.Code, rec.Body.String())
			return
		}
		for i := 0; i < 4; i++ {
			s.sweepRetention()
			time.Sleep(2 * time.Millisecond)
		}
	})
	run(func() { // evict/reload churn on a side dataset
		for i := 0; i < 4; i++ {
			load := fmt.Sprintf(`{"name":"churn","gen":"uniform","n":60,"d":3,"seed":%d,"k":3,"t":1.5}`, i)
			if rec := do(t, h, "POST", "/datasets/load", load, nil); rec.Code != http.StatusCreated {
				continue
			}
			do(t, h, "POST", "/query", `{"dataset":"churn","index":5}`, nil)
			do(t, h, "POST", "/datasets/evict", `{"name":"churn"}`, nil)
		}
	})
	close(start)
	wg.Wait()
	waitIdle(t, s)
	// Retention and compaction jobs may still be in flight; let them
	// settle so the counters below are stable.
	waitJobsSettled(t, s)

	// The ledger adds up: every append landed, N is base + appended −
	// deleted, and nextID advanced monotonically by appended rows.
	v := s.def.view()
	live := s.Stats().Datasets[0].Live
	wantAppended := int64(appenders * appendsEach * rowsPerBatch)
	if live.Appends != appenders*appendsEach || live.AppendedRows != wantAppended {
		t.Fatalf("append ledger = %+v, want %d appends of %d rows", live, appenders*appendsEach, wantAppended)
	}
	if live.NextID != int64(baseN)+wantAppended {
		t.Fatalf("nextID = %d, want %d", live.NextID, int64(baseN)+wantAppended)
	}
	if got := int64(v.miner.Dataset().N()); got != int64(baseN)+wantAppended-live.DeletedRows {
		t.Fatalf("N = %d, want base %d + appended %d - deleted %d", got, baseN, wantAppended, live.DeletedRows)
	}
	// And the survivor still answers.
	if rec := do(t, h, "POST", "/query", `{"index":0}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("post-hammer query: %d (%s)", rec.Code, rec.Body.String())
	}
}
