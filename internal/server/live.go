package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// This file is the live-mutation face of the registry: datasets stop
// being frozen at load time and accept streaming appends and
// id-addressed deletions while serving queries.
//
//	POST   /datasets/{name}/append   {"rows": [[..],..]} → new epoch
//	DELETE /datasets/{name}/rows     {"from_id","to_id"} or {"keep_last"}
//	POST   /datasets/{name}/compact  fold WAL deltas into a fresh .snap (async job)
//
// Consistency model. Each mutation derives a complete replacement
// view — core.Miner.WithAppendedBatch reuses the incremental X-tree
// and shard append paths, so the result is bit-identical to a
// from-scratch rebuild — and swaps the dataset's view pointer once
// the delta is durable. In-flight queries hold the view they resolved
// and never observe torn state; the epoch counter in /stats and
// /datasets is the number of swaps.
//
// Group commit. Concurrent /append requests do not each pay the
// rebuild: every handler enqueues its rows on the entry's pending
// queue and races for the writer lock, and whoever wins drains the
// whole queue as ONE mutation — one per-request validation pass, one
// batched index rebuild, one WAL batch frame, one fsync, one epoch
// swap. Each caller is unblocked only after its rows are durable and
// visible, so the acknowledgment contract is unchanged; only the cost
// is amortized. The epoch counter therefore advances once per drain,
// not once per request (appends vs append_batches in /stats).
//
// Durability. With -data-dir and -wal, the first mutation persists the
// pre-mutation state as <name>.snap and opens <name>.wal beside it
// (internal/wal); every mutation appends a CRC-framed delta record
// AND commits it (per the configured wal.SyncPolicy) BEFORE the new
// view becomes visible. A restart replays base + WAL to the same
// state; compaction folds the deltas into a fresh base and rotates
// the log. A crash between those two steps is safe either way: the
// stale log fails its BaseCRC binding against the new base and is
// ignored, because everything it carried is already in the snapshot.

// view is one immutable epoch of a dataset's queryable state. Every
// field is fixed at construction; mutations build a new view. The
// evaluator pool and result cache live here, not on the entry, because
// both are keyed to this miner's rows and threshold — answers from
// epoch N must never serve epoch N+1.
type view struct {
	miner *core.Miner
	pool  *core.EvaluatorPool
	cache *resultCache
	// transform mirrors dataset.transform (see there).
	transform func([]float64) []float64
	epoch     int64
	// ids[i] is the stable ID of dataset row i — ascending, and what
	// delete-by-range addresses. nextID is the next ID an append takes.
	// stamps[i] is row i's ingest time (Unix nanoseconds), parallel to
	// ids and non-decreasing — rows only ever append at the end and
	// delete preserves order, so "older than" is always a prefix, which
	// is what lets the retention sweeper expire by ID range.
	ids    []int64
	stamps []int64
	nextID int64
}

// resolveQueryTarget turns a request's (index, point) pair — exactly
// one must be set — into the evaluation point and self-exclusion
// index, applying the dataset's point transform to ad-hoc vectors. It
// is the single definition of request-level target validation, shared
// by /query and every /batch item. A non-empty errMsg is a client
// error.
func (v *view) resolveQueryTarget(index *int, point []float64) (pt []float64, exclude int, errMsg string) {
	ds := v.miner.Dataset()
	switch {
	case index != nil && point != nil:
		return nil, -1, "set exactly one of \"index\" and \"point\""
	case index != nil:
		idx := *index
		if idx < 0 || idx >= ds.N() {
			return nil, -1, fmt.Sprintf("index %d out of range [0,%d)", idx, ds.N())
		}
		return ds.Point(idx), idx, ""
	case point != nil:
		if len(point) != ds.Dim() {
			return nil, -1, fmt.Sprintf("point has %d dims, dataset has %d", len(point), ds.Dim())
		}
		if v.transform != nil {
			point = v.transform(point)
		}
		return point, -1, ""
	default:
		return nil, -1, "set one of \"index\" (dataset row) or \"point\" (vector)"
	}
}

// walActive reports whether mutations are write-ahead logged.
func (s *Server) walActive() bool { return s.opts.WAL && s.opts.DataDir != "" }

// walPath is the delta-log path for a dataset name.
func (s *Server) walPath(name string) string {
	return filepath.Join(s.opts.DataDir, name+walExt)
}

// walExt is the delta-log file suffix under DataDir, beside snapExt.
const walExt = ".wal"

// ---- request/response bodies ----

type appendRequest struct {
	Rows [][]float64 `json:"rows"`
}

type appendResponse struct {
	Appended int   `json:"appended"`
	N        int   `json:"n"`
	Epoch    int64 `json:"epoch"`
	// FirstID is the stable ID of the first appended row; the rest
	// follow contiguously. IDs address DELETE /datasets/{name}/rows.
	FirstID  int64 `json:"first_id"`
	WALBytes int64 `json:"wal_bytes,omitempty"`
}

type deleteRowsRequest struct {
	// Either an explicit stable-ID range [FromID, ToID) …
	FromID *int64 `json:"from_id,omitempty"`
	ToID   *int64 `json:"to_id,omitempty"`
	// … or retention: delete everything but the newest KeepLast rows.
	KeepLast *int `json:"keep_last,omitempty"`
}

type deleteRowsResponse struct {
	Deleted  int   `json:"deleted"`
	N        int   `json:"n"`
	Epoch    int64 `json:"epoch"`
	WALBytes int64 `json:"wal_bytes,omitempty"`
}

// ---- handlers ----

// appendOp is one queued /append request: its pre-transformed rows
// and the channel its handler waits on. done is buffered so the
// draining handler can deliver an outcome to an op whose own handler
// has not reached the writer lock yet, without blocking on it.
type appendOp struct {
	rows [][]float64
	done chan appendOutcome
}

// appendOutcome is one op's result, decided under the drain: either a
// success body or an error status + message.
type appendOutcome struct {
	resp   *appendResponse
	status int
	errMsg string
}

func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	d, ok := s.resolveDataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	var req appendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		s.error(w, http.StatusBadRequest, "\"rows\" is empty")
		return
	}
	// Appended rows arrive in the same units as ad-hoc query vectors;
	// a normalized dataset rescales them identically. The WAL records
	// the post-transform values, so replay applies them literally.
	// Transforming here — before the queue — keeps per-request work out
	// of the serialized drain.
	rows := req.Rows
	if d.transform != nil {
		rows = make([][]float64, len(req.Rows))
		for i, row := range req.Rows {
			rows[i] = d.transform(row)
		}
	}

	// Enqueue, then race for the writer lock. Whoever wins drains the
	// whole pending queue as one batch; an op that finds its outcome
	// already delivered when it acquires the lock was coalesced into an
	// earlier drain. Either way the response is written only after this
	// request's rows are durable and visible — group commit at the HTTP
	// layer.
	op := &appendOp{rows: rows, done: make(chan appendOutcome, 1)}
	d.pendMu.Lock()
	d.pending = append(d.pending, op)
	d.pendMu.Unlock()

	d.mut.Lock()
	select {
	case out := <-op.done:
		d.mut.Unlock()
		s.writeAppendOutcome(w, out)
		return
	default:
	}
	s.drainAppendsLocked(d)
	d.mut.Unlock()
	s.writeAppendOutcome(w, <-op.done)
}

func (s *Server) writeAppendOutcome(w http.ResponseWriter, out appendOutcome) {
	if out.resp != nil {
		s.writeJSON(w, http.StatusOK, out.resp)
		return
	}
	s.error(w, out.status, out.errMsg)
}

// stampAfter returns the ingest stamp for a mutation over v: the wall
// clock, floored at the view's newest stamp so the stamp sequence
// stays non-decreasing (the retention sweeper's prefix expiry relies
// on that) even if the clock steps backwards.
func stampAfter(v *view) int64 {
	stamp := time.Now().UnixNano()
	if n := len(v.stamps); n > 0 && v.stamps[n-1] > stamp {
		stamp = v.stamps[n-1]
	}
	return stamp
}

// drainAppendsLocked applies every queued append as one amortized
// mutation; the caller holds d.mut. Per-op validation runs first
// (core.ValidateRows plus the cumulative load limit), so a malformed
// request fails alone instead of poisoning the batch. The surviving
// ops are applied through one core.WithAppendedBatch — one shard
// routing pass, one X-tree unpack/insert/repack, one threshold
// re-resolution — journaled as one WAL batch frame, made durable by
// one Commit, and made visible by one epoch swap. Every drained op's
// outcome is delivered before this returns.
func (s *Server) drainAppendsLocked(d *dataset) {
	d.pendMu.Lock()
	ops := d.pending
	d.pending = nil
	d.pendMu.Unlock()
	if len(ops) == 0 {
		return
	}
	v := d.view()
	dim := v.miner.Dataset().Dim()

	accepted := make([]*appendOp, 0, len(ops))
	total := 0
	for _, op := range ops {
		if err := core.ValidateRows(op.rows, dim); err != nil {
			op.done <- appendOutcome{status: http.StatusBadRequest, errMsg: err.Error()}
			continue
		}
		if n := v.miner.Dataset().N() + total + len(op.rows); n > s.opts.MaxLoadPoints {
			op.done <- appendOutcome{status: http.StatusBadRequest, errMsg: fmt.Sprintf(
				"append would grow the dataset to %d points, exceeding the load limit %d", n, s.opts.MaxLoadPoints)}
			continue
		}
		accepted = append(accepted, op)
		total += len(op.rows)
	}
	if len(accepted) == 0 {
		return
	}
	failAll := func(status int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		for _, op := range accepted {
			op.done <- appendOutcome{status: status, errMsg: msg}
		}
	}
	batches := make([][][]float64, len(accepted))
	for i, op := range accepted {
		batches[i] = op.rows
	}
	nm, err := v.miner.WithAppendedBatch(batches...)
	if err != nil {
		// Every batch already passed ValidateRows, so this is an
		// engine-level refusal, not a malformed request.
		failAll(http.StatusInternalServerError, "%v", err)
		return
	}
	stamp := stampAfter(v)
	// Durable before visible: the whole drain reaches the log as one
	// CRC-framed batch record and one group-commit fsync before the
	// swap. A WAL failure leaves the old view serving, the dataset
	// unchanged, and every queued caller informed.
	if s.walActive() {
		if err := s.ensureWALLocked(d, v); err != nil {
			failAll(http.StatusInternalServerError, "wal: %v", err)
			return
		}
		recs := make([]wal.Record, len(accepted))
		next := v.nextID
		for i, op := range accepted {
			recs[i] = wal.Record{Type: wal.RecordAppend, FirstID: next, Rows: op.rows}
			next += int64(len(op.rows))
		}
		if err := d.wal.AppendBatch(stamp, recs); err != nil {
			failAll(http.StatusInternalServerError, "%v", err)
			return
		}
		if err := d.wal.Commit(); err != nil {
			failAll(http.StatusInternalServerError, "wal: %v", err)
			return
		}
		d.walBytes.Store(d.wal.Size())
		d.walRecords.Store(d.wal.Records())
		d.walSyncs.Store(d.wal.Syncs())
	}
	ids := make([]int64, 0, len(v.ids)+total)
	stamps := make([]int64, 0, len(v.stamps)+total)
	ids = append(ids, v.ids...)
	stamps = append(stamps, v.stamps...)
	for i := 0; i < total; i++ {
		ids = append(ids, v.nextID+int64(i))
		stamps = append(stamps, stamp)
	}
	nv := s.newView(d, nm, v.epoch+1, ids, stamps, v.nextID+int64(total))
	d.cur.Store(nv)
	d.appends.Add(int64(len(accepted)))
	d.appendedRows.Add(int64(total))
	d.appendBatches.Add(1)
	s.maybeCompact(d)
	n := nm.Dataset().N()
	firstID := v.nextID
	for _, op := range accepted {
		op.done <- appendOutcome{resp: &appendResponse{
			Appended: len(op.rows),
			N:        n,
			Epoch:    nv.epoch,
			FirstID:  firstID,
			WALBytes: d.walBytes.Load(),
		}}
		firstID += int64(len(op.rows))
	}
}

func (s *Server) handleDeleteRows(w http.ResponseWriter, r *http.Request) {
	d, ok := s.resolveDataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	var req deleteRowsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}

	d.mut.Lock()
	defer d.mut.Unlock()
	v := d.view()
	var fromID, toID int64
	switch {
	case req.KeepLast != nil:
		if req.FromID != nil || req.ToID != nil {
			s.error(w, http.StatusBadRequest, "set either \"keep_last\" or \"from_id\"+\"to_id\", not both")
			return
		}
		k := *req.KeepLast
		if k <= 0 {
			// keep_last = 0 would mean "delete every row", which the
			// engine refuses anyway (a dataset cannot go empty); it is a
			// client error here, not the index panic it used to be.
			s.error(w, http.StatusBadRequest,
				fmt.Sprintf("keep_last = %d; must keep at least 1 row", k))
			return
		}
		if k >= len(v.ids) {
			s.error(w, http.StatusBadRequest,
				fmt.Sprintf("keep_last = %d retains all %d rows; nothing to delete", k, len(v.ids)))
			return
		}
		fromID, toID = v.ids[0], v.ids[len(v.ids)-k]
	case req.FromID != nil && req.ToID != nil:
		fromID, toID = *req.FromID, *req.ToID
		if fromID < 0 || toID < fromID {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("invalid ID range [%d,%d)", fromID, toID))
			return
		}
	default:
		s.error(w, http.StatusBadRequest, "set \"from_id\"+\"to_id\" (stable ID range, end exclusive) or \"keep_last\"")
		return
	}
	nv, removed, status, errMsg := s.deleteRangeLocked(d, v, fromID, toID)
	if status != 0 {
		s.error(w, status, errMsg)
		return
	}
	s.writeJSON(w, http.StatusOK, &deleteRowsResponse{
		Deleted:  removed,
		N:        nv.miner.Dataset().N(),
		Epoch:    nv.epoch,
		WALBytes: d.walBytes.Load(),
	})
}

// deleteRangeLocked is the one delete path: it removes every row of
// d's view v whose stable ID falls in [fromID, toID), journals the
// deletion (Commit included — the group-commit durability point),
// and swaps the new epoch in. Both the DELETE handler and the
// retention sweeper go through it, so exactness (WithoutRows is a
// full rebuild of the survivors) and durability ordering are argued
// once. The caller holds d.mut. A non-zero status reports the failure
// and the view is unchanged.
func (s *Server) deleteRangeLocked(d *dataset, v *view, fromID, toID int64) (nv *view, removed, status int, errMsg string) {
	keep := make([]int, 0, len(v.ids))
	for i, id := range v.ids {
		if id < fromID || id >= toID {
			keep = append(keep, i)
		}
	}
	removed = len(v.ids) - len(keep)
	if removed == 0 {
		return nil, 0, http.StatusBadRequest, fmt.Sprintf("no rows with IDs in [%d,%d)", fromID, toID)
	}
	nm, err := v.miner.WithoutRows(keep)
	if err != nil {
		return nil, 0, http.StatusBadRequest, err.Error()
	}
	if s.walActive() {
		if err := s.ensureWALLocked(d, v); err != nil {
			return nil, 0, http.StatusInternalServerError, fmt.Sprintf("wal: %v", err)
		}
		if err := d.wal.AppendDelete(fromID, toID); err != nil {
			return nil, 0, http.StatusInternalServerError, err.Error()
		}
		if err := d.wal.Commit(); err != nil {
			return nil, 0, http.StatusInternalServerError, fmt.Sprintf("wal: %v", err)
		}
		d.walBytes.Store(d.wal.Size())
		d.walRecords.Store(d.wal.Records())
		d.walSyncs.Store(d.wal.Syncs())
	}
	ids := make([]int64, len(keep))
	stamps := make([]int64, len(keep))
	for i, g := range keep {
		ids[i] = v.ids[g]
		stamps[i] = v.stamps[g]
	}
	nv = s.newView(d, nm, v.epoch+1, ids, stamps, v.nextID)
	d.cur.Store(nv)
	d.deletes.Add(1)
	d.deletedRows.Add(int64(removed))
	s.maybeCompact(d)
	return nv, removed, 0, ""
}

// handleCompact submits a compaction job: fold the dataset's WAL
// deltas into a fresh base snapshot and rotate the log. 202 + job id.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	d, ok := s.resolveDataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	if !s.walActive() {
		s.error(w, http.StatusBadRequest, "WAL persistence is disabled (start hosserve with -data-dir and -wal)")
		return
	}
	snap, err := s.jobs.Submit("compact", s.compactJob(d))
	if err != nil {
		s.error(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	resp := renderJob(snap)
	w.Header().Set("Location", "/jobs/"+snap.ID)
	s.writeJSON(w, http.StatusAccepted, &resp)
}

// ---- WAL machinery (caller holds d.mut unless noted) ----

// ensureWALLocked engages persistence on first mutation: the current
// (pre-mutation) state becomes the base snapshot and an empty log
// bound to it opens for deltas.
func (s *Server) ensureWALLocked(d *dataset, v *view) error {
	if d.wal != nil {
		return nil
	}
	if !validDatasetName(d.name) {
		return fmt.Errorf("name %q is not snapshot-safe", d.name)
	}
	_, _, err := s.persistLocked(d, v)
	return err
}

// persistLocked writes the view's state to <name>.snap and — when WAL
// persistence is on — rotates <name>.wal to an empty log bound to the
// new base. It is the one write path shared by first-mutation setup,
// explicit saves and compaction, so the snapshot+log pair can never
// disagree about which base the deltas extend.
func (s *Server) persistLocked(d *dataset, v *view) (string, int64, error) {
	snap, err := snapshot.Capture(d.name, d.prov, v.miner)
	if err != nil {
		return "", 0, err
	}
	snap.NormStats = d.normStats
	path := filepath.Join(s.opts.DataDir, d.name+snapExt)
	if err := dataio.SaveSnapshot(path, snap); err != nil {
		return "", 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return "", 0, err
	}
	if s.walActive() {
		crc, err := dataio.FileCRC32(path)
		if err != nil {
			return "", 0, err
		}
		nw, err := wal.Create(s.walPath(d.name), wal.Header{
			Dim:     v.miner.Dataset().Dim(),
			BaseCRC: crc,
			NextID:  v.nextID,
			BaseIDs: v.ids,
		}, s.opts.WALSync)
		if err != nil {
			return "", 0, err
		}
		if d.wal != nil {
			_ = d.wal.Close()
		}
		d.wal = nw
		d.walBytes.Store(nw.Size())
		d.walRecords.Store(0)
		d.walSyncs.Store(0)
	}
	return path, st.Size(), nil
}

// maybeCompact submits an auto-compaction job when the log has grown
// past WALCompactBytes. Best-effort: a full job queue just means the
// next mutation asks again.
func (s *Server) maybeCompact(d *dataset) {
	limit := s.opts.WALCompactBytes
	if d.wal == nil || limit <= 0 || d.walBytes.Load() < limit {
		return
	}
	if !d.compacting.CompareAndSwap(false, true) {
		return
	}
	if _, err := s.jobs.Submit("compact", s.compactJob(d)); err != nil {
		d.compacting.Store(false)
		s.debugf("server: auto-compaction of %s not submitted: %v", d.name, err)
	}
}

// compactJob folds the current view into a fresh base snapshot and
// rotates the WAL. The crash windows are covered by the BaseCRC
// binding: a new snapshot with the old log is detected stale on
// restart, and the data the old log carried is inside the new base.
func (s *Server) compactJob(d *dataset) func(ctx context.Context, report func(done, total int)) (any, error) {
	return func(ctx context.Context, report func(done, total int)) (any, error) {
		defer d.compacting.Store(false)
		d.mut.Lock()
		defer d.mut.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report(0, 1)
		v := d.view()
		path, size, err := s.persistLocked(d, v)
		if err != nil {
			return nil, err
		}
		d.compactions.Add(1)
		report(1, 1)
		s.debugf("server: compacted dataset %s into %s (%d bytes, epoch %d)", d.name, path, size, v.epoch)
		return &saveDatasetResponse{Saved: d.name, File: path, Bytes: size}, nil
	}
}

// attachWALLocked replays <name>.wal onto a freshly restored entry —
// the warm-start path. The entry must not be serving yet (its view is
// still the bare base restore). Returns the number of replayed
// records. Failure modes:
//   - no log, or a log bound to a different base (stale after a crash
//     mid-compaction): nothing to do, serve the base;
//   - torn tail: replay stops at the last valid record, the tail is
//     truncated, the dataset serves everything up to it — logged, not
//     fatal (satellite: crash-mid-append recovery);
//   - corrupt header: error; the caller serves the base and says so.
func (s *Server) attachWALLocked(d *dataset, snapPath string) (int, error) {
	if !s.walActive() {
		return 0, nil
	}
	wp := s.walPath(d.name)
	if _, err := os.Stat(wp); errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	crc, err := dataio.FileCRC32(snapPath)
	if err != nil {
		return 0, err
	}
	lg, rep, err := wal.Open(wp, s.opts.WALSync)
	if err != nil {
		return 0, err
	}
	v := d.view()
	h := rep.Header
	if h.BaseCRC != crc {
		_ = lg.Close()
		s.debugf("server: %s is bound to a different base snapshot (stale after compaction?), ignoring it", wp)
		return 0, fmt.Errorf("%w: %s was written against a different %s", wal.ErrBaseMismatch, wp, snapPath)
	}
	if h.Dim != v.miner.Dataset().Dim() || len(h.BaseIDs) != v.miner.Dataset().N() {
		_ = lg.Close()
		return 0, fmt.Errorf("%w: %s header shape (%d ids, dim %d) does not match the snapshot (%d rows, dim %d)",
			wal.ErrWAL, wp, len(h.BaseIDs), h.Dim, v.miner.Dataset().N(), v.miner.Dataset().Dim())
	}
	if rep.Torn {
		s.debugf("server: %s had a torn trailing record; truncated to the last valid record (%d replayed)", wp, len(rep.Records))
	}
	m := v.miner
	ids := append([]int64(nil), h.BaseIDs...)
	// Ingest stamps do not survive a restart for base rows (the snap
	// format does not carry them), so every base row re-stamps at
	// replay time; replayed records keep their journaled batch stamp,
	// clamped up to the base stamp so the sequence stays non-decreasing
	// (legacy single-record frames carry stamp 0 and clamp the same
	// way). Conservative in retention terms: a row can only expire
	// later than its policy allows, never earlier.
	replayStamp := time.Now().UnixNano()
	stamps := make([]int64, len(ids))
	for j := range stamps {
		stamps[j] = replayStamp
	}
	lastStamp := replayStamp
	nextID := h.NextID
	for i, rec := range rep.Records {
		switch rec.Type {
		case wal.RecordAppend:
			if m, err = m.WithAppended(rec.Rows); err != nil {
				_ = lg.Close()
				return 0, fmt.Errorf("%s record %d: %w", wp, i, err)
			}
			st := rec.Stamp
			if st < lastStamp {
				st = lastStamp
			}
			lastStamp = st
			for j := range rec.Rows {
				ids = append(ids, rec.FirstID+int64(j))
				stamps = append(stamps, st)
			}
			if end := rec.FirstID + int64(len(rec.Rows)); end > nextID {
				nextID = end
			}
		case wal.RecordDelete:
			keep := make([]int, 0, len(ids))
			for j, id := range ids {
				if id < rec.FromID || id >= rec.ToID {
					keep = append(keep, j)
				}
			}
			if len(keep) == len(ids) {
				continue
			}
			if m, err = m.WithoutRows(keep); err != nil {
				_ = lg.Close()
				return 0, fmt.Errorf("%s record %d: %w", wp, i, err)
			}
			kept := make([]int64, len(keep))
			keptStamps := make([]int64, len(keep))
			for j, g := range keep {
				kept[j] = ids[g]
				keptStamps[j] = stamps[g]
			}
			ids, stamps = kept, keptStamps
		}
	}
	d.cur.Store(s.newView(d, m, int64(len(rep.Records)), ids, stamps, nextID))
	d.wal = lg
	d.walBytes.Store(lg.Size())
	d.walRecords.Store(lg.Records())
	d.walSyncs.Store(lg.Syncs())
	return len(rep.Records), nil
}

// AttachDefaultWAL replays the default dataset's delta log on top of
// the default.snap the process restored from. hosserve calls it only
// on the snapshot-restore boot path — after -gen/-data, a lingering
// default.wal belongs to a previous dataset and must not be applied
// (its BaseCRC check would reject it anyway). Returns the number of
// replayed records. Errors mean the base is serving without its
// deltas; the caller decides whether that is fatal.
func (s *Server) AttachDefaultWAL() (int, error) {
	d := s.def
	d.mut.Lock()
	defer d.mut.Unlock()
	return s.attachWALLocked(d, filepath.Join(s.opts.DataDir, d.name+snapExt))
}
