package server

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// This file is the time-based retention subsystem: rows carry ingest
// stamps (view.stamps), every dataset carries an expiry policy, and a
// background sweeper turns the two into exact, WAL-journaled deletes:
//
//	GET /datasets/{name}/retention   current policy
//	PUT /datasets/{name}/retention   {"max_age":"24h","max_rows":50000}
//
// The process-wide defaults come from -retention-age/-retention-rows;
// the endpoint overrides them per dataset at runtime. Sweeps run as
// async jobs (kind "retention") through the same deleteRangeLocked
// path as DELETE /datasets/{name}/rows — same rebuild exactness, same
// durability ordering, same epoch discipline — and are observable in
// GET /jobs and the per-dataset /stats retention counters.

// retentionConfig is one dataset's expiry policy. Zero fields disable
// their dimension.
type retentionConfig struct {
	// MaxAge expires rows whose ingest stamp is older than this.
	MaxAge time.Duration
	// MaxRows caps the row count; a sweep deletes the oldest overflow.
	MaxRows int
}

func (c retentionConfig) enabled() bool { return c.MaxAge > 0 || c.MaxRows > 0 }

// retentionCfg reads the entry's current policy.
func (d *dataset) retentionCfg() retentionConfig {
	d.retMu.Lock()
	defer d.retMu.Unlock()
	return d.retention
}

// retentionBody is the PUT request: a Go duration string and a row
// cap; empty/zero disables that dimension.
type retentionBody struct {
	MaxAge  string `json:"max_age"`
	MaxRows int    `json:"max_rows"`
}

// retentionInfo renders a policy (GET response, PUT echo).
type retentionInfo struct {
	MaxAge  string `json:"max_age,omitempty"`
	MaxRows int    `json:"max_rows,omitempty"`
	Enabled bool   `json:"enabled"`
}

func renderRetention(cfg retentionConfig) retentionInfo {
	info := retentionInfo{MaxRows: cfg.MaxRows, Enabled: cfg.enabled()}
	if cfg.MaxAge > 0 {
		info.MaxAge = cfg.MaxAge.String()
	}
	return info
}

func (s *Server) handleGetRetention(w http.ResponseWriter, r *http.Request) {
	d, ok := s.resolveDataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	resp := renderRetention(d.retentionCfg())
	s.writeJSON(w, http.StatusOK, &resp)
}

func (s *Server) handleSetRetention(w http.ResponseWriter, r *http.Request) {
	d, ok := s.resolveDataset(w, r.PathValue("name"))
	if !ok {
		return
	}
	var req retentionBody
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.MaxRows < 0 {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("max_rows = %d", req.MaxRows))
		return
	}
	cfg := retentionConfig{MaxRows: req.MaxRows}
	if req.MaxAge != "" {
		age, err := time.ParseDuration(req.MaxAge)
		if err != nil {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("max_age: %v", err))
			return
		}
		if age < 0 {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("max_age = %s", age))
			return
		}
		cfg.MaxAge = age
	}
	d.retMu.Lock()
	d.retention = cfg
	d.retMu.Unlock()
	resp := renderRetention(cfg)
	s.writeJSON(w, http.StatusOK, &resp)
}

// retentionLoop is the background sweeper: every RetentionInterval it
// submits one "retention" job per dataset with an enabled policy. It
// runs for the server's whole life and exits when Close runs.
func (s *Server) retentionLoop() {
	defer close(s.retDone)
	t := time.NewTicker(s.opts.RetentionInterval)
	defer t.Stop()
	for {
		select {
		case <-s.retStop:
			return
		case <-t.C:
			s.sweepRetention()
		}
	}
}

// sweepRetention submits retention jobs for every eligible dataset
// and returns how many it submitted. The retaining flag keeps a slow
// sweep from stacking duplicate jobs, same as compacting does for
// compactions; a full job queue just means the next tick asks again.
func (s *Server) sweepRetention() int {
	submitted := 0
	for _, d := range s.reg.list() {
		if !d.retentionCfg().enabled() {
			continue
		}
		if !d.retaining.CompareAndSwap(false, true) {
			continue
		}
		if _, err := s.jobs.Submit("retention", s.retentionJob(d)); err != nil {
			d.retaining.Store(false)
			s.debugf("server: retention sweep of %s not submitted: %v", d.name, err)
			continue
		}
		submitted++
	}
	return submitted
}

// retentionSweepResult is a sweep job's result body under GET /jobs.
type retentionSweepResult struct {
	Dataset string `json:"dataset"`
	Deleted int    `json:"deleted"`
	N       int    `json:"n"`
}

// retentionJob is one dataset's sweep: compute the expired prefix
// under the writer lock and push it through the shared delete path —
// exact (a full rebuild of the survivors), WAL-journaled and
// committed, one epoch swap. The policy is re-read inside the job so
// a PUT landing between tick and run is honoured.
func (s *Server) retentionJob(d *dataset) func(ctx context.Context, report func(done, total int)) (any, error) {
	return func(ctx context.Context, report func(done, total int)) (any, error) {
		defer d.retaining.Store(false)
		cfg := d.retentionCfg()
		d.mut.Lock()
		defer d.mut.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report(0, 1)
		v := d.view()
		p := expiredPrefix(v, cfg, time.Now())
		d.retentionSweeps.Add(1)
		if p == 0 {
			report(1, 1)
			return &retentionSweepResult{Dataset: d.name, N: v.miner.Dataset().N()}, nil
		}
		nv, removed, status, errMsg := s.deleteRangeLocked(d, v, v.ids[0], v.ids[p])
		if status != 0 {
			return nil, fmt.Errorf("retention sweep of %s: %s", d.name, errMsg)
		}
		d.retentionExpired.Add(int64(removed))
		report(1, 1)
		s.debugf("server: retention swept %d rows from %s (epoch %d)", removed, d.name, nv.epoch)
		return &retentionSweepResult{Dataset: d.name, Deleted: removed, N: nv.miner.Dataset().N()}, nil
	}
}

// expiredPrefix returns how many leading rows of v the policy expires:
// every row older than MaxAge, plus however many more the MaxRows cap
// requires. Rows are append-ordered with non-decreasing stamps (the
// view invariant), so both dimensions reduce to a prefix — which is
// what lets the sweep express itself as one contiguous ID range
// through the shared delete path. The prefix is clamped so at least
// K+1 rows survive — the engine's floor for a valid configuration —
// because retention must degrade to "keep the newest rows" on an idle
// dataset rather than fail the sweep outright.
func expiredPrefix(v *view, cfg retentionConfig, now time.Time) int {
	n := len(v.ids)
	p := 0
	if cfg.MaxAge > 0 {
		cutoff := now.Add(-cfg.MaxAge).UnixNano()
		for p < n && v.stamps[p] <= cutoff {
			p++
		}
	}
	if cfg.MaxRows > 0 && n-cfg.MaxRows > p {
		p = n - cfg.MaxRows
	}
	if floor := v.miner.Config().K + 1; n-p < floor {
		p = n - floor
	}
	if p < 0 {
		return 0
	}
	return p
}
