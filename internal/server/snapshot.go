package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/shard"
	"repro/internal/snapshot"
)

// This file is the persistence face of the registry: datasets and
// their preprocessing artifacts (normalized data, threshold, priors,
// serialized X-tree index) move between the registry and the -data-dir
// snapshot directory, so a restart serves yesterday's datasets without
// regenerating or re-indexing anything:
//
//	POST /datasets/{name}/save   write <data-dir>/<name>.snap
//	POST /datasets/load          {"name":..,"file":"x.snap"} register from disk
//	WarmStart()                  register every *.snap at boot, as jobs
//
// Warm starting runs on the async job pool (kind "warmstart"), so a
// directory of large snapshots loads in the background with observable
// progress under GET /jobs while the listener is already accepting
// traffic for the default dataset — readiness is not held hostage to
// restore time.

// snapExt is the snapshot file suffix under DataDir.
const snapExt = ".snap"

type saveDatasetResponse struct {
	Saved string `json:"saved"`
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
}

// handleSaveDataset persists one registry entry to the data dir. For
// an entry with a live WAL this is a compaction: the snapshot absorbs
// the deltas and the log rotates to an empty one bound to the new
// base — saving the snapshot alone would orphan every later delta,
// since the old log's BaseCRC binding would fail on restart.
func (s *Server) handleSaveDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.resolveDataset(w, name)
	if !ok {
		return
	}
	if s.opts.DataDir == "" {
		s.error(w, http.StatusBadRequest, "snapshot persistence is disabled (start hosserve with -data-dir)")
		return
	}
	if !validDatasetName(d.name) {
		// Only reachable for a default entry with an exotic name; every
		// loaded entry was validated at admission.
		s.error(w, http.StatusBadRequest, fmt.Sprintf("name %q is not snapshot-safe", d.name))
		return
	}
	d.mut.Lock()
	path, size, err := s.persistLocked(d, d.view())
	d.mut.Unlock()
	if err != nil {
		s.error(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.debugf("server: saved dataset %s to %s (%d bytes)", d.name, path, size)
	s.writeJSON(w, http.StatusOK, &saveDatasetResponse{Saved: d.name, File: path, Bytes: size})
}

// loadDatasetFromFile services the "file" arm of POST /datasets/load:
// resolve the name inside DataDir, read the snapshot, and either
// restore it wholesale (full snapshot) or build a miner over its
// dataset from the request's parameters (dataset-only snapshot).
func (s *Server) loadDatasetFromFile(req *loadRequest) (*dataset, error) {
	path, err := s.snapshotPath(req.File)
	if err != nil {
		return nil, err
	}
	snap, err := dataio.LoadSnapshot(path)
	if err != nil {
		return nil, err
	}
	if snap.Dataset.N() > s.opts.MaxLoadPoints {
		return nil, fmt.Errorf("snapshot holds %d points, exceeding the load limit %d", snap.Dataset.N(), s.opts.MaxLoadPoints)
	}
	return s.datasetFromSnapshot(req, snap)
}

// snapshotPath resolves a client-supplied snapshot file name inside
// DataDir. Only bare names are accepted: path separators or dot-dot
// would turn a JSON field into a filesystem walk.
func (s *Server) snapshotPath(file string) (string, error) {
	if s.opts.DataDir == "" {
		return "", fmt.Errorf("file loads are disabled (start hosserve with -data-dir)")
	}
	if file == "" || file != filepath.Base(file) || strings.HasPrefix(file, ".") {
		return "", fmt.Errorf("\"file\" must be a bare file name inside the data directory")
	}
	return filepath.Join(s.opts.DataDir, file), nil
}

// datasetFromSnapshot turns a parsed snapshot into a registry entry
// under the request's name and parameters.
func (s *Server) datasetFromSnapshot(req *loadRequest, snap *snapshot.Snapshot) (*dataset, error) {
	if snap.HasState() {
		// Full snapshot: it already fixes every miner parameter, so a
		// request that also specifies them is contradictory — honour
		// neither silently.
		if req.K != 0 || req.T != 0 || req.TQuantile != 0 || req.Samples != 0 ||
			req.Shards != 0 || req.Backend != "" || req.Policy != "" || req.Partitioner != "" {
			return nil, fmt.Errorf("a full snapshot supplies the miner configuration; remove k/t/tq/samples/shards/backend/policy/partitioner from the request")
		}
		m, err := snap.Restore()
		if err != nil {
			return nil, err
		}
		return s.newDatasetEntry(req.Name, m, transformFromNorm(snap.NormStats), snap.NormStats, snap.Provenance), nil
	}
	// Dataset-only snapshot: the request configures the miner, exactly
	// like a generated load, with the snapshot supplying the bytes.
	build := *req
	build.Gen = "" // defensive: the generator arm must not run
	cfg := core.Config{
		K: build.K, T: build.T, TQuantile: build.TQuantile,
		SampleSize: build.Samples, Seed: build.Seed, Shards: build.Shards,
	}
	cfg.ClampSampleSize(snap.Dataset.N())
	var err error
	if build.Backend != "" {
		if cfg.Backend, err = core.ParseBackend(build.Backend); err != nil {
			return nil, err
		}
	}
	if build.Policy != "" {
		if cfg.Policy, err = core.ParsePolicy(build.Policy); err != nil {
			return nil, err
		}
	}
	if build.Partitioner != "" {
		if cfg.Partitioner, err = shard.ParsePartitioner(build.Partitioner); err != nil {
			return nil, err
		}
	}
	m, err := core.NewMiner(snap.Dataset, cfg)
	if err != nil {
		return nil, err
	}
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	return s.newDatasetEntry(req.Name, m, transformFromNorm(snap.NormStats), snap.NormStats, snap.Provenance), nil
}

// transformFromNorm rebuilds the min-max point transform from a
// snapshot's normalization stats (nil when the dataset is raw).
func transformFromNorm(norm []snapshot.ColumnRange) func([]float64) []float64 {
	if len(norm) == 0 {
		return nil
	}
	return func(p []float64) []float64 {
		out := make([]float64, len(p))
		for j, v := range p {
			if j < len(norm) {
				if span := norm[j].Max - norm[j].Min; span > 0 {
					out[j] = (v - norm[j].Min) / span
				}
			}
		}
		return out
	}
}

// WarmStart registers every snapshot in DataDir as a background job on
// the async pool and returns the number of jobs submitted. Snapshots
// whose name is already registered — the default dataset the process
// booted with, typically — are skipped silently; every other failure
// (corrupt file, config mismatch, registry full) surfaces as a failed
// job under GET /jobs, where an operator can read exactly which file
// did not come back. Call it after New and before serving traffic;
// the default dataset answers requests while restores run.
func (s *Server) WarmStart() (int, error) {
	if s.opts.DataDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return 0, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapExt) || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		files = append(files, e.Name())
	}
	sort.Strings(files)
	submitted := 0
	for _, file := range files {
		// The file stem IS the registry name on this path — skip-check
		// and registration use the same key, so a renamed file serves
		// under its new stem instead of oscillating between "already
		// registered" and a permanently failing job. Names already
		// serving (the default dataset's own snapshot on every restart)
		// are skipped without burning a failed job on them.
		stem := strings.TrimSuffix(file, snapExt)
		if _, ok := s.reg.resolve(stem); ok {
			s.debugf("server: warm start skipping %s (%q already registered)", file, stem)
			continue
		}
		path := filepath.Join(s.opts.DataDir, file)
		if _, err := s.jobs.Submit("warmstart", s.warmStartJob(path, stem)); err != nil {
			// Queue full or draining: report how far we got — the
			// operator can raise -job-queue or load the rest by hand.
			return submitted, fmt.Errorf("warm start stalled at %s: %w", file, err)
		}
		s.debugf("server: warm start submitted %s", file)
		submitted++
	}
	return submitted, nil
}

// warmStartJob is one background restore: read, restore, register
// under the file's stem, with coarse progress after each phase.
func (s *Server) warmStartJob(path, stem string) func(ctx context.Context, report func(done, total int)) (any, error) {
	return func(ctx context.Context, report func(done, total int)) (any, error) {
		const steps = 3
		start := time.Now()
		if !validDatasetName(stem) || stem == DefaultDatasetName {
			return nil, fmt.Errorf("%s: file stem %q is not a registrable dataset name", path, stem)
		}
		snap, err := dataio.LoadSnapshot(path)
		if err != nil {
			return nil, err
		}
		report(1, steps)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !snap.HasState() {
			return nil, fmt.Errorf("%s: dataset-only snapshot; load it with POST /datasets/load {\"file\": ...} and miner parameters", path)
		}
		if snap.Name != stem {
			// Registration keys on the stem (see WarmStart); note the
			// drift so operators can re-save under a consistent name.
			s.debugf("server: warm start %s: stored name %q differs from file stem, registering as %q", path, snap.Name, stem)
		}
		m, err := snap.Restore()
		if err != nil {
			return nil, err
		}
		report(2, steps)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := s.newDatasetEntry(stem, m, transformFromNorm(snap.NormStats), snap.NormStats, snap.Provenance)
		if s.walActive() {
			// Replay any delta log bound to this base before the entry is
			// visible; a missing/stale/foreign WAL serves the base alone.
			d.mut.Lock()
			replayed, werr := s.attachWALLocked(d, path)
			d.mut.Unlock()
			if werr != nil {
				s.debugf("server: warm start %s: WAL not attached: %v", path, werr)
			} else if replayed > 0 {
				s.debugf("server: warm start %s: replayed %d WAL records", path, replayed)
			}
		}
		if err := s.reg.add(d); err != nil {
			return nil, err
		}
		report(3, steps)
		s.debugf("server: warm start registered %q from %s in %s",
			stem, path, time.Since(start).Round(time.Millisecond))
		info := d.info()
		return &info, nil
	}
}
