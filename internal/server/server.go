// Package server wraps a preprocessed core.Miner in a concurrent
// HTTP/JSON query service — the "preprocess once, query many" shape
// HOS-Miner's expensive setup (threshold resolution + §3.2 learning)
// calls for. Endpoints:
//
//	POST /query      outlying subspaces of a dataset row or ad-hoc vector
//	POST /batch      many queries at once through a shared per-batch OD cache
//	POST /scan       bounded whole-dataset sweep with severity ranking
//	POST /jobs/scan  the same sweep as an async job (progress + polling)
//	GET  /jobs/{id}  job status/progress/result; DELETE cancels
//	GET  /state      export the preprocessed state (threshold + priors)
//	GET  /healthz    liveness + dataset summary
//	GET  /stats      query counts, cache hit rate, latency percentiles
//
// Concurrency follows the contract documented on core.Miner: after
// Preprocess the Miner is read-only, and every request borrows a
// private OD evaluator from a core.EvaluatorPool. Repeated identical
// queries are answered from an in-memory LRU keyed by (point,
// exclude) — the Miner's configuration is fixed per server, so the
// key does not need to carry it. Every request is bounded by a
// body-size limit and a deadline, and admitted through the dataset's
// overload guard (internal/overload): a per-dataset circuit breaker
// plus an AIMD concurrency limiter with priority-aware shedding —
// /query outranks /batch outranks /scan and /jobs/scan.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/overload"
	"repro/internal/snapshot"
	"repro/internal/subspace"
	"repro/internal/wal"
)

// Options tunes a Server. The zero value selects the defaults noted
// on each field.
type Options struct {
	// QueryTimeout bounds one /query computation (default 10s).
	QueryTimeout time.Duration
	// ScanTimeout bounds one /scan computation (default 2min).
	ScanTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// CacheSize is the LRU result-cache capacity in entries
	// (default 1024; negative disables caching).
	CacheSize int
	// MaxScanResults caps the hits one /scan may return; requests
	// asking for more (or for "all" via 0) are clamped (default 1000).
	MaxScanResults int
	// ScanWorkers is the ScanAllParallel fan-out (default GOMAXPROCS,
	// chosen by core).
	ScanWorkers int
	// MaxConcurrentScans bounds simultaneous scans; excess requests
	// get 429 (default 1).
	MaxConcurrentScans int
	// MaxConcurrentQueries bounds simultaneously *computing* queries
	// (default 4×GOMAXPROCS). A request that cannot take a compute
	// slot within QueryTimeout is shed with 503; this is what keeps a
	// stream of deadline-busting queries from accumulating unbounded
	// work, since an abandoned computation runs to completion (to
	// seed the cache) rather than being cancelled.
	MaxConcurrentQueries int
	// LatencyWindow is the number of recent query latencies kept for
	// percentiles (default 1024).
	LatencyWindow int
	// PointTransform, when set, maps every ad-hoc /query vector into
	// the dataset's coordinate space before evaluation — e.g. the
	// min-max rescaling hosserve installs under -normalize, without
	// which raw-unit client points would be compared against scaled
	// data and report as outliers everywhere. It must be pure and
	// must not retain or mutate its argument's backing array beyond
	// returning it.
	PointTransform func([]float64) []float64
	// MaxCachedMasks caps the per-entry outlying-mask set the result
	// cache pins (default 16384, ~64 KiB; negative = no cap). Larger
	// sets are still answered and cached, but their full outlying set
	// is dropped from the entry, so an include_all request for that
	// key recomputes instead of hitting.
	MaxCachedMasks int
	// MaxBatchItems caps the item count of one /batch request
	// (default 256).
	MaxBatchItems int
	// BatchTimeout bounds one /batch computation (default 1min).
	BatchTimeout time.Duration
	// BatchWorkers caps the per-batch evaluation fan-out; client
	// requests asking for more are clamped (default GOMAXPROCS).
	BatchWorkers int
	// MaxConcurrentBatches bounds simultaneously computing batches;
	// excess requests get 429 (default 2). Fully-cached batches never
	// take a slot.
	MaxConcurrentBatches int
	// MaxDatasets caps the registry size — the startup dataset plus
	// datasets loaded at runtime via POST /datasets/load (default 8).
	MaxDatasets int
	// MaxLoadPoints caps the N a POST /datasets/load may generate —
	// loading allocates N×D floats and preprocesses them inline, so an
	// unbounded request is a memory/CPU DoS (default 100000).
	MaxLoadPoints int
	// JobQueueDepth bounds async scan jobs accepted but not yet
	// running; a full queue rejects POST /jobs/scan with 429 and a
	// Retry-After estimate (default 8).
	JobQueueDepth int
	// JobWorkers is the async job worker-pool size — how many jobs
	// may run simultaneously, independent of MaxConcurrentScans
	// (default 1: full-lattice scans monopolise cores).
	JobWorkers int
	// JobResultTTL bounds how long a finished job's result stays
	// fetchable via GET /jobs/{id} (default 15min).
	JobResultTTL time.Duration
	// JobTimeout bounds one async scan job's run time (default 30min,
	// negative disables). Deliberately far above ScanTimeout: async
	// jobs exist so scans longer than any request deadline still
	// complete; this is only the runaway backstop.
	JobTimeout time.Duration
	// Overload tunes the per-dataset admission guards (circuit breaker
	// + AIMD concurrency limiter — see internal/overload). Zero fields
	// take the package defaults, except where the server derives better
	// ones: MaxLimit defaults to the sum of the three class caps,
	// TargetP99 to QueryTimeout/2, and ClassCaps to
	// [MaxConcurrentQueries, MaxConcurrentBatches, MaxConcurrentScans],
	// so the operator's static bounds survive as per-class ceilings
	// under the adaptive limit.
	Overload overload.Config
	// FaultHook, when set, is consulted at the start of every compute
	// (op ∈ "query"|"batch"|"scan", plus the dataset name). A non-nil
	// error fails the request with it; the returned duration is added
	// to the request's latency as observed by the overload guard
	// without sleeping. It exists for the fault-injection test harness
	// and must be nil in production.
	FaultHook func(op, dataset string) (time.Duration, error)
	// DataDir is the snapshot directory: POST /datasets/{name}/save
	// writes <name>.snap here, the "file" field of /datasets/load
	// resolves against it, and WarmStart registers every *.snap it
	// holds. Empty disables all three (the hosserve default without
	// -data-dir).
	DataDir string
	// WAL enables write-ahead delta logging of live mutations (append
	// and delete): a dataset's first mutation writes its pre-mutation
	// state to <name>.snap and opens <name>.wal beside it; every
	// mutation is journaled before its new view becomes visible, and
	// warm starts replay base + deltas. Requires DataDir.
	WAL bool
	// WALSync is the log's fsync policy (hosserve's -wal-sync flag,
	// parsed by wal.ParseSyncPolicy). The zero value — SyncBatch —
	// issues one fsync per drained mutation batch at the group-commit
	// point, so coalesced appends amortize durability; SyncAlways
	// fsyncs every record frame; SyncInterval coalesces fsyncs in time
	// and may lose acknowledged mutations inside the window on power
	// failure (the documented trade).
	WALSync wal.SyncPolicy
	// WALCompactBytes auto-submits a compaction job when a dataset's
	// log outgrows this many bytes, folding the deltas into a fresh
	// snapshot (default 4 MiB; negative disables auto-compaction —
	// POST /datasets/{name}/compact still works).
	WALCompactBytes int64
	// RetentionAge expires rows whose ingest stamp is older than this
	// from every dataset (0 disables). It is the process-wide default;
	// PUT /datasets/{name}/retention overrides per dataset. Expiry is
	// exact: it runs through the same WAL-journaled delete path as
	// DELETE /datasets/{name}/rows.
	RetentionAge time.Duration
	// RetentionRows caps every dataset's row count: a sweep that finds
	// more deletes the oldest rows beyond the cap (0 disables; same
	// per-dataset override as RetentionAge).
	RetentionRows int
	// RetentionInterval is the background sweep cadence (default 30s).
	// Sweeps are async jobs (kind "retention"), visible under GET /jobs
	// and counted per dataset in /stats.
	RetentionInterval time.Duration
	// Provenance describes where the default dataset came from, so
	// saving it produces a snapshot that records its origin.
	Provenance snapshot.Provenance
	// NormStats is the raw per-column [Min,Max] behind PointTransform
	// when the default dataset was min-max normalized. Set it together
	// with PointTransform: it is what lets a snapshot of the default
	// dataset carry the transform across a restart.
	NormStats []snapshot.ColumnRange
	// Logf, when set, receives debug-level serving events (abandoned
	// scan outcomes, job lifecycle); nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.QueryTimeout <= 0 {
		o.QueryTimeout = 10 * time.Second
	}
	if o.ScanTimeout <= 0 {
		o.ScanTimeout = 2 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.MaxScanResults <= 0 {
		o.MaxScanResults = 1000
	}
	if o.MaxConcurrentScans <= 0 {
		o.MaxConcurrentScans = 1
	}
	if o.MaxConcurrentQueries <= 0 {
		o.MaxConcurrentQueries = 4 * runtime.GOMAXPROCS(0)
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 1024
	}
	if o.MaxCachedMasks == 0 {
		o.MaxCachedMasks = 16384
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = 256
	}
	if o.BatchTimeout <= 0 {
		o.BatchTimeout = time.Minute
	}
	if o.MaxConcurrentBatches <= 0 {
		o.MaxConcurrentBatches = 2
	}
	if o.MaxDatasets <= 0 {
		o.MaxDatasets = 8
	}
	if o.MaxLoadPoints <= 0 {
		o.MaxLoadPoints = 100_000
	}
	if o.JobQueueDepth <= 0 {
		o.JobQueueDepth = 8
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 1
	}
	if o.JobResultTTL <= 0 {
		o.JobResultTTL = 15 * time.Minute
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 30 * time.Minute
	}
	if o.WALCompactBytes == 0 {
		o.WALCompactBytes = 4 << 20
	}
	if o.RetentionInterval <= 0 {
		o.RetentionInterval = 30 * time.Second
	}
}

// Server is the HTTP face of a registry of preprocessed Miners: the
// default dataset it was constructed over plus any loaded at runtime
// through POST /datasets/load. Admission control is per dataset: each
// registry entry carries an overload.Guard (circuit breaker + AIMD
// concurrency limiter) so one slow dataset sheds its own traffic
// instead of starving its siblings; result caches and evaluator pools
// are likewise per dataset.
type Server struct {
	reg     *registry
	def     *dataset
	opts    Options
	stats   *serverStats
	jobs    *jobs.Manager
	loadSem chan struct{}
	mux     *http.ServeMux
	started time.Time
	// retStop/retDone bracket the background retention sweeper's
	// lifetime; retOnce makes shutdown idempotent.
	retStop chan struct{}
	retDone chan struct{}
	retOnce sync.Once
}

// New builds a Server over the Miner, running Preprocess if the
// caller has not already (directly or via ImportState). Preprocessing
// at construction — before any request goroutine exists — is what
// makes the shared Miner state read-only from then on. The Miner
// becomes the registry's default dataset.
func New(m *core.Miner, opts Options) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("server: nil miner")
	}
	opts.setDefaults()
	if err := m.Preprocess(); err != nil {
		return nil, fmt.Errorf("server: preprocessing: %w", err)
	}
	s := &Server{
		opts:    opts,
		stats:   newServerStats(opts.LatencyWindow),
		loadSem: make(chan struct{}, 1),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.jobs = jobs.NewManager(jobs.Options{
		QueueDepth: opts.JobQueueDepth,
		Workers:    opts.JobWorkers,
		ResultTTL:  opts.JobResultTTL,
	})
	s.def = s.newDatasetEntry(DefaultDatasetName, m, opts.PointTransform, opts.NormStats, opts.Provenance)
	s.reg = newRegistry(s.def, opts.MaxDatasets)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("POST /scan", s.handleScan)
	s.mux.HandleFunc("POST /jobs/scan", s.handleSubmitScanJob)
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /state", s.handleState)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /datasets/load", s.handleLoadDataset)
	s.mux.HandleFunc("POST /datasets/evict", s.handleEvictDataset)
	s.mux.HandleFunc("POST /datasets/{name}/save", s.handleSaveDataset)
	s.mux.HandleFunc("POST /datasets/{name}/append", s.handleAppendRows)
	s.mux.HandleFunc("DELETE /datasets/{name}/rows", s.handleDeleteRows)
	s.mux.HandleFunc("POST /datasets/{name}/compact", s.handleCompact)
	s.mux.HandleFunc("GET /datasets/{name}/retention", s.handleGetRetention)
	s.mux.HandleFunc("PUT /datasets/{name}/retention", s.handleSetRetention)
	s.retStop = make(chan struct{})
	s.retDone = make(chan struct{})
	go s.retentionLoop()
	return s, nil
}

// Close stops the background retention sweeper, then drains the async
// job subsystem: queued jobs still run, and Close blocks until the
// pool is idle or ctx expires, at which point the stragglers are
// cancelled. Call it after the HTTP listener has shut down so no new
// jobs can arrive mid-drain.
func (s *Server) Close(ctx context.Context) error {
	s.retOnce.Do(func() {
		close(s.retStop)
		<-s.retDone
	})
	return s.jobs.Close(ctx)
}

// debugf emits a debug-level serving event through Options.Logf.
func (s *Server) debugf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Handler returns the root handler (mux + recovery), ready for
// http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.recoverPanics(s.mux) }

// Stats returns a point-in-time counter snapshot (also served at
// GET /stats). The scalar counters come from one consistent locked
// snapshot; the per-dataset section is appended after it.
func (s *Server) Stats() StatsSnapshot {
	entries := s.reg.list()
	cacheEntries := 0
	for _, d := range entries {
		cacheEntries += d.view().cache.len()
	}
	snap := s.stats.snapshot(cacheEntries, time.Since(s.started))
	snap.Jobs = toJobStats(s.jobs.Counters())
	snap.Datasets = make([]DatasetStats, len(entries))
	for i, d := range entries {
		snap.Datasets[i] = d.stats()
	}
	return snap
}

// ---- request/response bodies ----

type queryRequest struct {
	// Dataset routes the query to a registry entry ("" = the default
	// dataset the process started with).
	Dataset string `json:"dataset,omitempty"`
	// Exactly one of Index (dataset row) or Point (ad-hoc vector) must
	// be set.
	Index *int      `json:"index,omitempty"`
	Point []float64 `json:"point,omitempty"`
	// IncludeAll adds the full outlying set to the response (it can be
	// exponentially larger than the minimal set, so it is opt-in).
	IncludeAll bool `json:"include_all,omitempty"`
}

type queryResponse struct {
	Index         *int      `json:"index,omitempty"`
	Point         []float64 `json:"point,omitempty"`
	Threshold     float64   `json:"threshold"`
	IsOutlier     bool      `json:"is_outlier"`
	Minimal       [][]int   `json:"minimal"`
	OutlyingCount int       `json:"outlying_count"`
	Outlying      [][]int   `json:"outlying,omitempty"`
	ODEvaluations int64     `json:"od_evaluations"`
	Cached        bool      `json:"cached"`
	ElapsedMs     float64   `json:"elapsed_ms"`

	// outlyingMasks is the full outlying set in its compact 4-byte-
	// per-subspace form; it is what the cache pins. The [][]int
	// Outlying field is materialised per response, and only for
	// include_all — the set can be exponential in d.
	outlyingMasks []subspace.Mask
}

type scanRequest struct {
	Dataset        string `json:"dataset,omitempty"`
	MaxResults     int    `json:"max_results,omitempty"`
	SortBySeverity bool   `json:"sort_by_severity,omitempty"`
	Workers        int    `json:"workers,omitempty"`
}

type scanResponse struct {
	Hits       []scanHit `json:"hits"`
	HitCount   int       `json:"hit_count"`
	MaxResults int       `json:"max_results"`
	ElapsedMs  float64   `json:"elapsed_ms"`
}

type scanHit struct {
	Index         int     `json:"index"`
	Minimal       [][]int `json:"minimal"`
	OutlyingCount int     `json:"outlying_count"`
	FullSpaceOD   float64 `json:"full_space_od"`
}

type healthResponse struct {
	Status        string  `json:"status"`
	DatasetN      int     `json:"dataset_n"`
	DatasetD      int     `json:"dataset_d"`
	K             int     `json:"k"`
	Threshold     float64 `json:"threshold"`
	Policy        string  `json:"policy"`
	Backend       string  `json:"backend"`
	Shards        int     `json:"shards"`
	Datasets      int     `json:"datasets"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.stats.startRequest()
	defer s.stats.endRequest()
	start := time.Now()

	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	d, ok := s.resolveDataset(w, req.Dataset)
	if !ok {
		return
	}
	// Pin the current epoch: every read below — target resolution,
	// cache, evaluator pool, the miner itself — goes through this one
	// view, so a concurrent append/delete swapping in a new epoch can
	// never show this request a mix of old and new state.
	v := d.view()
	point, exclude, emsg := v.resolveQueryTarget(req.Index, req.Point)
	if emsg != "" {
		s.error(w, http.StatusBadRequest, emsg)
		return
	}

	key := cacheKey(point, exclude)
	if resp, ok := v.cache.get(key); ok {
		// An entry whose full outlying set was too large to pin (see
		// MaxCachedMasks) cannot serve include_all; fall through and
		// recompute for that combination only.
		if !req.IncludeAll || resp.outlyingMasks != nil || resp.OutlyingCount == 0 {
			// The per-dataset counter mirrors the global one: answers
			// served, not requests received (scan/batch count the same
			// way), so DatasetStats.Queries sums to the scalar counters.
			d.queries.Add(1)
			s.stats.recordQuery(true, time.Since(start))
			out := *resp // copy: cached value stays immutable
			out.Cached = true
			out.ElapsedMs = msSince(start)
			if req.IncludeAll {
				out.Outlying = masksToDims(resp.outlyingMasks)
			}
			w.Header().Set("X-Cache", "HIT")
			s.writeJSON(w, http.StatusOK, &out)
			return
		}
	}

	// Admit through the dataset's overload guard before spawning: when
	// the dataset is saturated (or its breaker is open), requests shed
	// here instead of queueing unbounded abandoned work. The admission
	// wait and the compute wait share one deadline, so a request never
	// occupies the handler longer than QueryTimeout in total.
	queryCtx, cancelQuery := context.WithTimeout(r.Context(), s.opts.QueryTimeout)
	defer cancelQuery()
	permit, rej := d.guard.Admit(queryCtx, overload.Interactive, true)
	if rej != nil {
		switch {
		case rej.Reason == overload.ReasonBreakerOpen:
			s.shedBreakerOpen(w, d.name, rej)
		case r.Context().Err() != nil:
			s.clientGone(w, "query")
		default:
			w.Header().Set("Retry-After", strconv.Itoa(overload.RetryAfterSeconds(rej.RetryAfter)))
			s.error(w, http.StatusServiceUnavailable,
				fmt.Sprintf("no compute slot within the %s deadline", s.opts.QueryTimeout))
		}
		return
	}

	type outcome struct {
		resp *queryResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		// The permit is held until the computation finishes — even past
		// the handler's deadline — so concurrent evaluators stay
		// bounded, and its release tells the guard how the dataset
		// actually behaved: a success that blew the deadline counts as
		// a timeout, because that is what the client experienced.
		computeStart := time.Now()
		var injected time.Duration
		finish := func(err error) {
			lat := time.Since(computeStart) + injected
			out := outcomeFor(err)
			if out == overload.Success && lat > s.opts.QueryTimeout {
				out = overload.Timeout
			}
			permit.Release(out, lat)
		}
		if s.opts.FaultHook != nil {
			delay, err := s.opts.FaultHook("query", d.name)
			injected = delay
			if err != nil {
				finish(err)
				done <- outcome{nil, err}
				return
			}
		}
		eval, err := v.pool.Get()
		if err != nil {
			finish(err)
			done <- outcome{nil, err}
			return
		}
		res, err := v.miner.QueryWith(eval, point, exclude)
		if err != nil {
			v.pool.Put(eval)
			finish(err)
			done <- outcome{nil, err}
			return
		}
		// The result aliases the evaluator's scratch: take an owned copy
		// before the evaluator goes back to the pool (where the next
		// borrower's query would overwrite it), since the response below
		// is also retained by the LRU cache.
		res = res.Clone()
		v.pool.Put(eval)
		resp := &queryResponse{
			Index:         req.Index,
			Threshold:     res.Threshold,
			IsOutlier:     res.IsOutlierAnywhere,
			Minimal:       masksToDims(res.Minimal),
			OutlyingCount: len(res.Outlying),
			ODEvaluations: res.ODEvaluations,
			outlyingMasks: res.Outlying,
		}
		if req.Index == nil {
			resp.Point = append([]float64(nil), point...)
		}
		// Cache here, not in the handler: a query that outlives the
		// deadline still finishes and seeds the cache, so the client's
		// retry is a hit instead of re-paying the full cost (and timing
		// out again, forever). Oversized outlying sets are dropped from
		// the cached copy only — the in-flight response keeps them.
		toCache := resp
		if s.opts.MaxCachedMasks > 0 && len(resp.outlyingMasks) > s.opts.MaxCachedMasks {
			stripped := *resp
			stripped.outlyingMasks = nil
			toCache = &stripped
		}
		v.cache.put(key, toCache)
		s.stats.addODEvals(res.ODEvaluations)
		finish(nil)
		done <- outcome{resp, nil}
	}()

	select {
	case <-queryCtx.Done():
		if r.Context().Err() != nil {
			s.clientGone(w, "query")
			return
		}
		s.error(w, http.StatusServiceUnavailable,
			fmt.Sprintf("query exceeded the %s deadline", s.opts.QueryTimeout))
		return
	case o := <-done:
		if o.err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(o.err, core.ErrNotPreprocessed):
				status = http.StatusServiceUnavailable
			case errors.Is(o.err, context.DeadlineExceeded):
				// An injected or engine-level timeout is a capacity
				// signal, same as the handler's own deadline firing.
				status = http.StatusServiceUnavailable
			}
			s.error(w, status, o.err.Error())
			return
		}
		// Misses are counted when a computed answer is served, not at
		// lookup time, so shed/timed-out requests (counted in errors)
		// keep the invariant hits + misses == queries.
		d.queries.Add(1)
		s.stats.recordQuery(false, time.Since(start))
		out := *o.resp
		out.ElapsedMs = msSince(start)
		if req.IncludeAll {
			out.Outlying = masksToDims(o.resp.outlyingMasks)
		}
		w.Header().Set("X-Cache", "MISS")
		s.writeJSON(w, http.StatusOK, &out)
	}
}

// scanPlan is a validated, clamped scan request — the shared front
// half of the synchronous /scan handler and the async POST /jobs/scan
// submission, so both admission paths apply identical bounds.
type scanPlan struct {
	d *dataset
	// v is the epoch pinned at planning time: the whole sweep runs
	// over it even if the dataset mutates mid-scan.
	v              *view
	maxResults     int
	workers        int
	sortBySeverity bool
	// hook is the fault-injection point (Options.FaultHook bound to
	// this dataset); nil outside the test harness.
	hook func() (time.Duration, error)
}

// planScan decodes and validates a scanRequest, writing the 4xx
// itself on failure.
func (s *Server) planScan(w http.ResponseWriter, r *http.Request) (*scanPlan, bool) {
	var req scanRequest
	if !s.decodeBody(w, r, &req) {
		return nil, false
	}
	d, ok := s.resolveDataset(w, req.Dataset)
	if !ok {
		return nil, false
	}
	if req.MaxResults < 0 {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("max_results = %d", req.MaxResults))
		return nil, false
	}
	if req.Workers < 0 {
		s.error(w, http.StatusBadRequest, fmt.Sprintf("workers = %d", req.Workers))
		return nil, false
	}
	maxResults := req.MaxResults
	if maxResults == 0 || maxResults > s.opts.MaxScanResults {
		maxResults = s.opts.MaxScanResults
	}
	// Clamp the client-supplied fan-out: each worker builds its own
	// evaluator, so an unbounded count is a memory/scheduler DoS.
	maxWorkers := s.opts.ScanWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	workers := req.Workers
	if workers == 0 || workers > maxWorkers {
		workers = maxWorkers
	}
	plan := &scanPlan{d: d, v: d.view(), maxResults: maxResults, workers: workers, sortBySeverity: req.SortBySeverity}
	if fh := s.opts.FaultHook; fh != nil {
		name := d.name
		plan.hook = func() (time.Duration, error) { return fh("scan", name) }
	}
	return plan, true
}

// run executes the plan and renders the response; onProgress may be
// nil (the synchronous handler has nobody to report to).
func (p *scanPlan) run(ctx context.Context, start time.Time, onProgress func(done, total int)) (*scanResponse, error) {
	if p.hook != nil {
		if _, err := p.hook(); err != nil {
			return nil, err
		}
	}
	hits, err := p.v.miner.ScanAllParallelContext(ctx, core.ScanOptions{
		MaxResults:     p.maxResults,
		SortBySeverity: p.sortBySeverity,
		OnProgress:     onProgress,
	}, p.workers)
	if err != nil {
		return nil, err
	}
	resp := &scanResponse{
		Hits:       make([]scanHit, len(hits)),
		HitCount:   len(hits),
		MaxResults: p.maxResults,
		ElapsedMs:  msSince(start),
	}
	for i, h := range hits {
		resp.Hits[i] = scanHit{
			Index:         h.Index,
			Minimal:       masksToDims(h.Minimal),
			OutlyingCount: h.OutlyingCount,
			FullSpaceOD:   h.FullSpaceOD,
		}
	}
	return resp, nil
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	plan, ok := s.planScan(w, r)
	if !ok {
		return
	}

	// Bulk traffic fails fast: a scan that cannot be admitted right now
	// is the cheapest thing on the server to retry (or to re-route
	// through the async job path).
	permit, rej := plan.d.guard.Admit(r.Context(), overload.Bulk, false)
	if rej != nil {
		if rej.Reason == overload.ReasonBreakerOpen {
			s.shedBreakerOpen(w, plan.d.name, rej)
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(overload.RetryAfterSeconds(rej.RetryAfter)))
		s.error(w, http.StatusTooManyRequests,
			fmt.Sprintf("scan limit (%d concurrent) reached, retry later (or submit via POST /jobs/scan)", s.opts.MaxConcurrentScans))
		return
	}

	// The scan context is cancelled on deadline, client disconnect, or
	// handler return: workers notice between points, so an abandoned
	// scan frees its cores and its semaphore slot promptly instead of
	// sweeping to completion for nobody.
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.ScanTimeout)
	defer cancel()

	type outcome struct {
		resp *scanResponse
		err  error
	}
	// done is unbuffered and quit closes when the handler returns, so
	// the scan goroutine always learns which of the two happened: its
	// outcome was received, or it completed for nobody — the
	// previously-invisible abandonment the stats now count.
	done := make(chan outcome)
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		resp, err := plan.run(ctx, start, nil)
		permit.Release(outcomeFor(err), time.Since(start))
		select {
		case done <- outcome{resp, err}:
		case <-quit:
			s.stats.recordScanAbandoned()
			s.debugf("server: scan abandoned after %s (dataset %s, err %v)",
				time.Since(start).Round(time.Millisecond), plan.d.name, err)
		}
	}()

	select {
	case <-ctx.Done():
		s.scanInterrupted(w, ctx.Err())
		return
	case o := <-done:
		// The scan is ctx-aware, so a deadline or disconnect can
		// surface through its error rather than ctx.Done() when both
		// become ready together; classify it the same way.
		switch {
		case o.err != nil && (errors.Is(o.err, context.DeadlineExceeded) || errors.Is(o.err, context.Canceled)):
			s.scanInterrupted(w, o.err)
			return
		case o.err != nil:
			s.error(w, http.StatusInternalServerError, o.err.Error())
			return
		}
		plan.d.queries.Add(1)
		s.stats.recordScan()
		s.writeJSON(w, http.StatusOK, o.resp)
	}
}

// scanInterrupted writes the status for a scan that ended before
// producing an answer, distinguishing the server's deadline (503 — a
// capacity signal, counted as an error) from the client closing the
// request (408-family, the client's own doing, counted separately so
// it cannot corrupt error-rate stats).
func (s *Server) scanInterrupted(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.error(w, http.StatusServiceUnavailable,
			fmt.Sprintf("scan exceeded the %s deadline (submit via POST /jobs/scan to run it asynchronously)", s.opts.ScanTimeout))
		return
	}
	s.clientGone(w, "scan")
}

// handleState exports the preprocessed state of one dataset
// (?dataset=name; default when absent).
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	d, ok := s.resolveDataset(w, r.URL.Query().Get("dataset"))
	if !ok {
		return
	}
	st, err := d.view().miner.ExportState()
	if err != nil {
		s.error(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.def.view().miner
	cfg := m.Config()
	s.writeJSON(w, http.StatusOK, &healthResponse{
		Status:        "ok",
		DatasetN:      m.Dataset().N(),
		DatasetD:      m.Dataset().Dim(),
		K:             cfg.K,
		Threshold:     m.Threshold(),
		Policy:        cfg.Policy.String(),
		Backend:       cfg.Backend.String(),
		Shards:        m.NumShards(),
		Datasets:      s.reg.len(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.Stats()
	s.writeJSON(w, http.StatusOK, &snap)
}

// ---- middleware & helpers ----

// recoverPanics converts a handler panic into a counted 500 instead
// of killing the connection handler. The panic value and stack go to
// the server log; the client sees only a generic message.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				s.error(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// decodeBody parses the JSON request body under the configured size
// limit, writing the 4xx itself when parsing fails.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		// An empty body means "all defaults" — natural for /scan,
		// where every field is optional.
		if errors.Is(err, io.EOF) {
			return true
		}
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.error(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.opts.MaxBodyBytes))
			return false
		}
		s.error(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) error(w http.ResponseWriter, status int, msg string) {
	s.stats.recordError()
	s.writeJSON(w, status, &errorResponse{Error: msg})
}

// conflict answers 409 for registry-capacity and duplicate-name
// refusals. These land in the registry_conflicts counter, not the
// error counter: they are admission control working as designed, and
// counting them as server errors (as the generic error path used to)
// made a full registry look like a malfunction on dashboards.
func (s *Server) conflict(w http.ResponseWriter, msg string) {
	s.stats.recordRegistryConflict()
	s.writeJSON(w, http.StatusConflict, &errorResponse{Error: msg})
}

// notFound answers 404 for requests naming a dataset that is not
// registered — counted in dataset_not_found, apart from server errors,
// for the same reason as conflict.
func (s *Server) notFound(w http.ResponseWriter, msg string) {
	s.stats.recordDatasetNotFound()
	s.writeJSON(w, http.StatusNotFound, &errorResponse{Error: msg})
}

// registryError maps a typed registry failure onto its HTTP status
// and counter — the single place the taxonomy is spelled out.
func (s *Server) registryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDatasetExists), errors.Is(err, ErrRegistryFull):
		s.conflict(w, err.Error())
	case errors.Is(err, ErrDatasetNotFound):
		s.notFound(w, err.Error())
	case errors.Is(err, ErrNotEvictable):
		s.error(w, http.StatusBadRequest, err.Error())
	default:
		s.error(w, http.StatusInternalServerError, err.Error())
	}
}

// outcomeFor classifies a finished computation's error for the
// overload guard: deadline → Timeout (the breaker's primary trip
// signal), cancellation → Cancelled (the client's doing, neutral),
// anything else → Errored.
func outcomeFor(err error) overload.Outcome {
	switch {
	case err == nil:
		return overload.Success
	case errors.Is(err, context.DeadlineExceeded):
		return overload.Timeout
	case errors.Is(err, context.Canceled):
		return overload.Cancelled
	default:
		return overload.Errored
	}
}

// shedBreakerOpen answers a request rejected by an open (or probing)
// circuit breaker: 503 with a Retry-After derived from the remaining
// cool-down, floored at 1s by the shared header helper.
func (s *Server) shedBreakerOpen(w http.ResponseWriter, dataset string, rej *overload.Rejection) {
	retry := overload.RetryAfterSeconds(rej.RetryAfter)
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	s.error(w, http.StatusServiceUnavailable,
		fmt.Sprintf("dataset %q is shedding load (circuit breaker open), retry in ~%ds", dataset, retry))
}

// clientGone reports a request whose own client closed the connection
// mid-computation. The status is 408 (the 4xx "the client gave up"
// family — nobody reads the body, but middleware and access logs do
// read the code) and the event lands in the client_cancelled counter,
// NOT the error counter: the old behaviour of answering 503 here made
// every impatient client look like server overload.
func (s *Server) clientGone(w http.ResponseWriter, what string) {
	s.stats.recordClientCancelled()
	s.writeJSON(w, http.StatusRequestTimeout, &errorResponse{Error: what + ": client closed request"})
}

func masksToDims(masks []subspace.Mask) [][]int {
	out := make([][]int, len(masks))
	for i, m := range masks {
		out[i] = m.Dims()
	}
	return out
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
