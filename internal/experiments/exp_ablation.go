package experiments

import (
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/knn"
	"repro/internal/metrics"
	"repro/internal/od"
	"repro/internal/subspace"
	"repro/internal/vector"
	"repro/internal/xtree"
)

// T5XTreeSplitAblation isolates the X-tree's contribution over a
// plain R*-style tree: with MaxOverlapFraction = 1 every topological
// split is accepted (no overlap-minimal splits, no supernodes) —
// exactly the degenerate configuration the X-tree paper argues
// against in high dimensions. Expected shape: on high-dimensional
// data the X-tree policy yields fewer points examined per k-NN query
// than the overlap-tolerant tree.
func (r *Runner) T5XTreeSplitAblation() (*Table, error) {
	n := pickInt(r.Scale, 2000, 8000)
	dims := pickInts(r.Scale, []int{6, 10}, []int{6, 10, 14, 18})
	k := 5
	queriesPerRun := pickInt(r.Scale, 20, 100)
	t := &Table{
		ID:    "T5",
		Title: "X-tree split policy vs R*-style splits (overlap-tolerant ablation)",
		Header: []string{"d", "data", "xtree_pts", "rstar_pts", "xtree_supernodes",
			"xtree_nodes", "rstar_nodes"},
	}
	rstarCfg := xtree.DefaultConfig()
	rstarCfg.MaxOverlapFraction = 1.0 // accept any split → no supernodes

	for _, d := range dims {
		clustered, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
			N: n, D: d, NumOutliers: 1, Seed: r.Seed,
		})
		if err != nil {
			return nil, err
		}
		uniform, err := datagen.GenerateUniform(n, d, r.Seed)
		if err != nil {
			return nil, err
		}
		for _, data := range []struct {
			name string
			ds   *vector.Dataset
		}{{"clustered", clustered}, {"uniform", uniform}} {
			xt, err := xtree.Build(data.ds, vector.L2, xtree.DefaultConfig())
			if err != nil {
				return nil, err
			}
			rt, err := xtree.Build(data.ds, vector.L2, rstarCfg)
			if err != nil {
				return nil, err
			}
			xs, rs := xtree.NewSearcher(xt), xtree.NewSearcher(rt)
			full := subspace.Full(d)
			for qi := 0; qi < queriesPerRun; qi++ {
				idx := (qi * 31) % n
				xs.KNN(data.ds.Point(idx), full, k, idx)
				rs.KNN(data.ds.Point(idx), full, k, idx)
			}
			t.AddRow(d, data.name,
				float64(xs.Stats().PointsExamined)/float64(queriesPerRun),
				float64(rs.Stats().PointsExamined)/float64(queriesPerRun),
				xt.SupernodeCount(), xt.NodeCount(), rt.NodeCount())
		}
	}
	t.Notes = append(t.Notes,
		"rstar = same tree with MaxOverlapFraction=1 (all topological splits accepted, no supernodes)",
		"expected shape: the X-tree policy's advantage appears on high-d data where directory overlap hurts",
	)
	return t, nil
}

// F9MetricSweep runs the full pipeline under L1, L2 and L∞. OD
// monotonicity (and hence exactness) holds for every L_p metric;
// expected shape: recall stays high across metrics, costs are
// comparable, absolute T values differ by metric scale.
func (r *Runner) F9MetricSweep() (*Table, error) {
	n := pickInt(r.Scale, 400, 1500)
	d := pickInt(r.Scale, 6, 10)
	t := &Table{
		ID:     "F9",
		Title:  "Distance metric sweep (L1 / L2 / LInf)",
		Header: []string{"metric", "T(q95)", "avg_evals", "avg_minimal", "recall_subset"},
	}
	ds, truth, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: n, D: d, NumOutliers: 3, Seed: r.Seed,
	})
	if err != nil {
		return nil, err
	}
	for _, metric := range []vector.Metric{vector.L1, vector.L2, vector.LInf} {
		ls, err := knn.NewLinear(ds, metric)
		if err != nil {
			return nil, err
		}
		eval, err := od.NewEvaluator(ds, ls, metric, 5, od.NormNone)
		if err != nil {
			return nil, err
		}
		e := &env{ds: ds, truth: truth, eval: eval}
		T, err := e.thresholdQuantile(0.95)
		if err != nil {
			return nil, err
		}
		queries := e.queryPoints(3, 3)
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 4, 10), T, r.Seed)
		if err != nil {
			return nil, err
		}
		_, evals, results, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		var minimal int
		var prfs []metrics.PRF
		for qi, idx := range queries {
			minimal += len(results[qi].Minimal)
			if truthMask, ok := truth.ByIndex(idx); ok {
				prfs = append(prfs, metrics.Score(results[qi].Minimal,
					[]subspace.Mask{truthMask}, metrics.MatchSubset))
			}
		}
		nq := float64(len(queries))
		t.AddRow(metric.String(), T, float64(evals)/nq, float64(minimal)/nq,
			metrics.MeanPRF(prfs).Recall)
	}
	t.Notes = append(t.Notes,
		"OD monotonicity holds for every L_p metric, so all three searches are exact; only scales differ",
	)
	return t, nil
}
