package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/vector"
)

// Scale trades experiment fidelity for runtime.
type Scale uint8

const (
	// Quick shrinks datasets and sweeps so the whole suite runs in
	// seconds (used by tests and -short benches).
	Quick Scale = iota
	// Full uses the DESIGN.md §3 parameters.
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Runner owns shared experiment parameters. Every experiment is
// deterministic given (Scale, Seed).
type Runner struct {
	Scale Scale
	Seed  int64
	// Shards overrides the shard counts the SH experiment sweeps
	// (nil = scale default; set by hosbench -shards).
	Shards []int
}

// NewRunner builds a Runner.
func NewRunner(scale Scale, seed int64) *Runner { return &Runner{Scale: scale, Seed: seed} }

// pick returns q under Quick and f under Full.
func pickInt(s Scale, q, f int) int {
	if s == Full {
		return f
	}
	return q
}

func pickInts(s Scale, q, f []int) []int {
	if s == Full {
		return f
	}
	return q
}

// All runs every experiment in DESIGN.md order.
func (r *Runner) All() ([]*Table, error) {
	type namedExp struct {
		name string
		fn   func() (*Table, error)
	}
	exps := []namedExp{
		{"T1", r.T1SavingFactors},
		{"F1", r.F1RuntimeVsDim},
		{"F2", r.F2RuntimeVsN},
		{"F3", r.F3PruningPower},
		{"F4", r.F4SampleSize},
		{"F5", r.F5Threshold},
		{"F6", r.F6K},
		{"T2", r.T2Effectiveness},
		{"F7", r.F7VsEvolutionary},
		{"T3", r.T3XTreeKNN},
		{"T4", r.T4FilterReduction},
		{"F8", r.F8OrderingAblation},
		{"T5", r.T5XTreeSplitAblation},
		{"F9", r.F9MetricSweep},
		{"SH", r.SHShardScaling},
	}
	out := make([]*Table, 0, len(exps))
	for _, e := range exps {
		t, err := e.fn()
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", e.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// ByID runs a single experiment by its DESIGN.md id (e.g. "F3").
func (r *Runner) ByID(id string) (*Table, error) {
	switch id {
	case "T1":
		return r.T1SavingFactors()
	case "F1":
		return r.F1RuntimeVsDim()
	case "F2":
		return r.F2RuntimeVsN()
	case "F3":
		return r.F3PruningPower()
	case "F4":
		return r.F4SampleSize()
	case "F5":
		return r.F5Threshold()
	case "F6":
		return r.F6K()
	case "T2":
		return r.T2Effectiveness()
	case "F7":
		return r.F7VsEvolutionary()
	case "T3":
		return r.T3XTreeKNN()
	case "T4":
		return r.T4FilterReduction()
	case "F8":
		return r.F8OrderingAblation()
	case "T5":
		return r.T5XTreeSplitAblation()
	case "F9":
		return r.F9MetricSweep()
	case "SH":
		return r.SHShardScaling()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment id %q", id)
	}
}

// IDs lists the experiment identifiers in DESIGN.md order.
func IDs() []string {
	return []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "T2", "F7", "T3", "T4", "F8", "T5", "F9", "SH"}
}

// --- shared helpers -------------------------------------------------

// syntheticEnv builds a standard planted-outlier dataset with a
// ready evaluator over a linear-scan backend (experiments that study
// the search algorithm want a backend whose cost is flat across
// subspaces; T3 studies the index itself).
type env struct {
	ds    *vector.Dataset
	truth datagen.GroundTruth
	eval  *od.Evaluator
}

func (r *Runner) syntheticEnv(n, d, k, numOutliers int) (*env, error) {
	ds, truth, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: n, D: d, NumOutliers: numOutliers, Seed: r.Seed,
	})
	if err != nil {
		return nil, err
	}
	ls, err := knn.NewLinear(ds, vector.L2)
	if err != nil {
		return nil, err
	}
	eval, err := od.NewEvaluator(ds, ls, vector.L2, k, od.NormNone)
	if err != nil {
		return nil, err
	}
	return &env{ds: ds, truth: truth, eval: eval}, nil
}

// thresholdQuantile resolves T as a quantile of full-space ODs.
func (e *env) thresholdQuantile(q float64) (float64, error) {
	ods := e.eval.FullSpaceODs()
	return vector.Quantile(ods, q)
}

// queryPoints returns a deterministic mix of planted outliers and
// inliers to average measurements over.
func (e *env) queryPoints(outliers, inliers int) []int {
	var out []int
	for i := 0; i < outliers && i < len(e.truth.Outliers); i++ {
		out = append(out, e.truth.Outliers[i].Index)
	}
	base := len(e.truth.Outliers)
	for i := 0; i < inliers && base+i*7 < e.ds.N(); i++ {
		out = append(out, base+i*7)
	}
	return out
}

// timedSearch runs core.Search for each query and returns (total
// wall time, total OD evaluations, results).
func timedSearch(e *env, queries []int, T float64, priors core.Priors, policy core.Policy) (time.Duration, int64, []*core.SearchResult, error) {
	var total time.Duration
	var evals int64
	var results []*core.SearchResult
	for _, idx := range queries {
		q := e.eval.NewQueryForPoint(idx)
		start := time.Now()
		res, err := core.Search(q, e.ds.Dim(), T, priors, policy, nil)
		if err != nil {
			return 0, 0, nil, err
		}
		total += time.Since(start)
		evals += res.Counters.Evaluations
		results = append(results, res)
	}
	return total, evals, results, nil
}

// learnedPriors runs the §3.2 learning process over `samples` points
// and returns the averaged priors, charging the work to the returned
// evaluation counter.
func learnedPriors(e *env, samples int, T float64, seed int64) (core.Priors, int64, error) {
	if samples <= 0 {
		return core.UniformPriors(e.ds.Dim()), 0, nil
	}
	d := e.ds.Dim()
	uniform := core.UniformPriors(d)
	var evals int64
	var per []core.Priors
	// Deterministic sample: spread across the dataset, skipping
	// planted outliers (indices < len(truth.Outliers)).
	first := len(e.truth.Outliers)
	step := (e.ds.N() - first) / samples
	if step < 1 {
		step = 1
	}
	for i := 0; i < samples; i++ {
		idx := first + i*step
		if idx >= e.ds.N() {
			idx = e.ds.N() - 1
		}
		q := e.eval.NewQueryForPoint(idx)
		res, err := core.Search(q, d, T, uniform, core.PolicyTSF, nil)
		if err != nil {
			return core.Priors{}, 0, err
		}
		evals += res.Counters.Evaluations
		per = append(per, core.PriorsFromResult(res))
	}
	_ = seed
	return core.SmoothPriors(core.AveragePriors(per, d), len(per)), evals, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
