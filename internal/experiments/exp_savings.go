package experiments

import (
	"repro/internal/subspace"
)

// T1SavingFactors regenerates the §3.1 worked example (DSF([1,2,3])=9
// and USF([1,4])=10 in a 4-dimensional space) and tabulates DSF/USF/
// workload across layer dimensionalities for a representative d.
func (r *Runner) T1SavingFactors() (*Table, error) {
	d := pickInt(r.Scale, 8, 12)
	t := &Table{
		ID:     "T1",
		Title:  "Saving factors per layer (Defs 1-2); paper worked example verified",
		Header: []string{"d", "m", "DSF(m)", "USF(m,d)", "C(d,m)", "layer_work", "work_below", "work_above"},
	}
	for m := 1; m <= d; m++ {
		t.AddRow(d, m,
			subspace.DSF(m),
			subspace.USF(m, d),
			subspace.Binomial(d, m),
			subspace.Binomial(d, m)*int64(m),
			subspace.WorkloadBelow(m, d),
			subspace.WorkloadAbove(m, d),
		)
	}
	// Paper example rows (d = 4).
	t.AddRow(4, 3, subspace.DSF(3), subspace.USF(3, 4), subspace.Binomial(4, 3),
		subspace.Binomial(4, 3)*3, subspace.WorkloadBelow(3, 4), subspace.WorkloadAbove(3, 4))
	t.AddRow(4, 2, subspace.DSF(2), subspace.USF(2, 4), subspace.Binomial(4, 2),
		subspace.Binomial(4, 2)*2, subspace.WorkloadBelow(2, 4), subspace.WorkloadAbove(2, 4))
	t.Notes = append(t.Notes,
		"paper example: DSF of a 3-dim subspace = 9 (row d=4,m=3); USF of a 2-dim subspace in d=4 = 10 (row d=4,m=2)",
		"total lattice work = d*2^(d-1); DSF favours pruning from high layers, USF from low layers",
	)
	return t, nil
}
