package experiments

import (
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/subspace"
)

// F1RuntimeVsDim measures query cost versus dimensionality for
// HOS-Miner (TSF-ordered pruned search, learned priors) against the
// naive exhaustive search and the fixed-order pruned ablations.
// Expected shape: naive grows ~2^d; all pruned searches grow far
// slower, with TSF ≤ fixed orders on evaluations.
func (r *Runner) F1RuntimeVsDim() (*Table, error) {
	dims := pickInts(r.Scale, []int{4, 6, 8}, []int{4, 6, 8, 10, 12, 14})
	n := pickInt(r.Scale, 400, 2000)
	naiveCap := pickInt(r.Scale, 8, 12) // naive is exponential; cap it
	k := 5
	t := &Table{
		ID:    "F1",
		Title: "Query cost vs dimensionality d (HOS-Miner vs naive vs fixed orders)",
		Header: []string{"d", "total_subspaces",
			"hos_ms", "hos_evals", "naive_ms", "naive_evals",
			"bottomup_evals", "topdown_evals"},
	}
	for _, d := range dims {
		e, err := r.syntheticEnv(n, d, k, 3)
		if err != nil {
			return nil, err
		}
		T, err := e.thresholdQuantile(0.95)
		if err != nil {
			return nil, err
		}
		queries := e.queryPoints(3, 3)
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 6, 16), T, r.Seed)
		if err != nil {
			return nil, err
		}
		hosTime, hosEvals, _, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		uniform := core.UniformPriors(d)
		_, buEvals, _, err := timedSearch(e, queries, T, uniform, core.PolicyBottomUp)
		if err != nil {
			return nil, err
		}
		_, tdEvals, _, err := timedSearch(e, queries, T, uniform, core.PolicyTopDown)
		if err != nil {
			return nil, err
		}
		naiveMs, naiveEvals := "-", "-"
		if d <= naiveCap {
			var naiveTime time.Duration
			var evals int64
			for _, idx := range queries {
				start := time.Now()
				res, err := baseline.NaiveSearch(e.eval, e.ds.Point(idx), idx, T)
				if err != nil {
					return nil, err
				}
				naiveTime += time.Since(start)
				evals += res.Evaluations
			}
			naiveMs = formatFloat(ms(naiveTime) / float64(len(queries)))
			naiveEvals = formatFloat(float64(evals) / float64(len(queries)))
		}
		q := float64(len(queries))
		t.AddRow(d, subspace.TotalSubspaces(d),
			ms(hosTime)/q, float64(hosEvals)/q, naiveMs, naiveEvals,
			float64(buEvals)/q, float64(tdEvals)/q)
	}
	t.Notes = append(t.Notes,
		"naive evals = 2^d - 1 always; '-' marks naive skipped (exponential cost)",
		"expected shape: hos_evals grows far slower than total_subspaces",
	)
	return t, nil
}

// F2RuntimeVsN measures query cost versus dataset size at fixed d.
// Expected shape: evaluations stay roughly flat (the lattice does not
// grow), per-evaluation cost grows with N, so total time ~ linear.
func (r *Runner) F2RuntimeVsN() (*Table, error) {
	sizes := pickInts(r.Scale, []int{200, 400, 800}, []int{500, 1000, 2000, 4000, 8000})
	d := pickInt(r.Scale, 6, 10)
	k := 5
	t := &Table{
		ID:     "F2",
		Title:  "Query cost vs dataset size N (fixed d)",
		Header: []string{"N", "d", "hos_ms", "hos_evals", "ms_per_eval"},
	}
	for _, n := range sizes {
		e, err := r.syntheticEnv(n, d, k, 3)
		if err != nil {
			return nil, err
		}
		T, err := e.thresholdQuantile(0.95)
		if err != nil {
			return nil, err
		}
		queries := e.queryPoints(2, 2)
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 4, 10), T, r.Seed)
		if err != nil {
			return nil, err
		}
		total, evals, _, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		q := float64(len(queries))
		perEval := 0.0
		if evals > 0 {
			perEval = ms(total) / float64(evals)
		}
		t.AddRow(n, d, ms(total)/q, float64(evals)/q, perEval)
	}
	t.Notes = append(t.Notes,
		"expected shape: evals ~ flat in N; ms_per_eval grows ~ linearly with N (linear-scan k-NN)",
	)
	return t, nil
}

// F3PruningPower decomposes how the lattice gets settled: direct OD
// evaluation vs upward/downward implication, per dimensionality.
func (r *Runner) F3PruningPower() (*Table, error) {
	dims := pickInts(r.Scale, []int{4, 6, 8}, []int{4, 6, 8, 10, 12, 14, 16})
	n := pickInt(r.Scale, 400, 1500)
	k := 5
	t := &Table{
		ID:    "F3",
		Title: "Pruning power vs d: how subspaces get settled",
		Header: []string{"d", "total", "evaluated", "implied_up", "implied_down",
			"evaluated_frac"},
	}
	for _, d := range dims {
		e, err := r.syntheticEnv(n, d, k, 3)
		if err != nil {
			return nil, err
		}
		T, err := e.thresholdQuantile(0.95)
		if err != nil {
			return nil, err
		}
		queries := e.queryPoints(3, 3)
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 4, 12), T, r.Seed)
		if err != nil {
			return nil, err
		}
		_, _, results, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		var c struct{ total, eval, up, down int64 }
		for _, res := range results {
			c.total += res.Counters.Total
			c.eval += res.Counters.Evaluations
			c.up += res.Counters.ImpliedUp
			c.down += res.Counters.ImpliedDown
		}
		q := int64(len(results))
		t.AddRow(d, c.total/q, c.eval/q, c.up/q, c.down/q,
			float64(c.eval)/float64(c.total))
	}
	t.Notes = append(t.Notes,
		"expected shape: evaluated_frac falls as d grows — pruning settles an increasing share of the lattice",
	)
	return t, nil
}

// F8OrderingAblation compares the four layer-ordering policies on
// identical queries with identical priors: the TSF order should need
// no more evaluations than fixed or random orders on average.
func (r *Runner) F8OrderingAblation() (*Table, error) {
	d := pickInt(r.Scale, 8, 12)
	n := pickInt(r.Scale, 400, 1500)
	k := 5
	t := &Table{
		ID:     "F8",
		Title:  "Layer-ordering ablation (same queries, same priors)",
		Header: []string{"policy", "avg_evals", "avg_implied_up", "avg_implied_down", "avg_ms"},
	}
	e, err := r.syntheticEnv(n, d, k, 3)
	if err != nil {
		return nil, err
	}
	T, err := e.thresholdQuantile(0.95)
	if err != nil {
		return nil, err
	}
	queries := e.queryPoints(3, 5)
	priors, _, err := learnedPriors(e, pickInt(r.Scale, 6, 16), T, r.Seed)
	if err != nil {
		return nil, err
	}
	uniform := core.UniformPriors(d)
	variants := []struct {
		label  string
		policy core.Policy
		priors core.Priors
	}{
		{"tsf(learned)", core.PolicyTSF, priors},
		{"tsf(uniform)", core.PolicyTSF, uniform},
		{"bottom-up", core.PolicyBottomUp, uniform},
		{"top-down", core.PolicyTopDown, uniform},
		{"random", core.PolicyRandom, uniform},
	}
	for _, v := range variants {
		var evals, up, down int64
		var total time.Duration
		for _, idx := range queries {
			q := e.eval.NewQueryForPoint(idx)
			rng := newRng(r.Seed)
			start := time.Now()
			res, err := core.Search(q, d, T, v.priors, v.policy, rng)
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			evals += res.Counters.Evaluations
			up += res.Counters.ImpliedUp
			down += res.Counters.ImpliedDown
		}
		q := float64(len(queries))
		t.AddRow(v.label, float64(evals)/q, float64(up)/q, float64(down)/q, ms(total)/q)
	}
	t.Notes = append(t.Notes,
		"all variants return identical answer sets (validated by tests); only work differs",
		"learned priors specialise the order to typical (inlying) points; uniform priors alternate top/bottom and are robust for outlier-heavy query mixes — see EXPERIMENTS.md",
	)
	return t, nil
}
