package experiments

import (
	"time"

	"repro/internal/datagen"
	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
	"repro/internal/xtree"
)

// T3XTreeKNN measures the X-tree's k-NN work against the linear scan
// across dataset size and query-subspace cardinality (§3, "X-tree
// Indexing" module). Expected shape: on clustered data the X-tree
// examines a fraction of the points for full-space and moderate
// subspace queries; the advantage shrinks for very low-dimensional
// projections (more candidates collide) and for uniform data.
func (r *Runner) T3XTreeKNN() (*Table, error) {
	sizes := pickInts(r.Scale, []int{500, 1000}, []int{1000, 4000, 16000})
	d := pickInt(r.Scale, 8, 10)
	k := 5
	queriesPerRun := pickInt(r.Scale, 20, 100)
	t := &Table{
		ID:    "T3",
		Title: "X-tree subspace k-NN vs linear scan (points examined per query)",
		Header: []string{"N", "subspace_dim", "xtree_pts", "linear_pts", "scan_frac",
			"xtree_ms", "linear_ms", "supernodes"},
	}
	for _, n := range sizes {
		ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
			N: n, D: d, NumOutliers: 1, Seed: r.Seed,
		})
		if err != nil {
			return nil, err
		}
		tree, err := xtree.Build(ds, vector.L2, xtree.DefaultConfig())
		if err != nil {
			return nil, err
		}
		xs := xtree.NewSearcher(tree)
		ls, err := knn.NewLinear(ds, vector.L2)
		if err != nil {
			return nil, err
		}
		for _, subDim := range []int{1, d / 2, d} {
			mask := subspace.Full(subDim) // dims 0..subDim-1
			xs.ResetStats()
			ls.ResetStats()
			var xTime, lTime time.Duration
			for qi := 0; qi < queriesPerRun; qi++ {
				idx := (qi * 13) % n
				start := time.Now()
				xs.KNN(ds.Point(idx), mask, k, idx)
				xTime += time.Since(start)
				start = time.Now()
				ls.KNN(ds.Point(idx), mask, k, idx)
				lTime += time.Since(start)
			}
			xPts := float64(xs.Stats().PointsExamined) / float64(queriesPerRun)
			lPts := float64(ls.Stats().PointsExamined) / float64(queriesPerRun)
			t.AddRow(n, subDim, xPts, lPts, xPts/lPts,
				ms(xTime)/float64(queriesPerRun), ms(lTime)/float64(queriesPerRun),
				tree.SupernodeCount())
		}
	}
	t.Notes = append(t.Notes,
		"scan_frac < 1 means the index pruned work; expected to improve with N and with subspace_dim",
	)
	return t, nil
}
