package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:     "X1",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 0.0001)
	var text bytes.Buffer
	if err := tab.Render(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"X1", "demo", "a note", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := tab.CSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" {
		t.Fatalf("csv = %q", csvBuf.String())
	}
	var md bytes.Buffer
	if err := tab.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| a | bb |") {
		t.Fatalf("markdown = %q", md.String())
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale names")
	}
}

func TestIDsCoverByID(t *testing.T) {
	r := NewRunner(Quick, 1)
	for _, id := range IDs() {
		tab, err := r.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab.ID != id {
			t.Fatalf("ByID(%s) returned table %s", id, tab.ID)
		}
		if len(tab.Rows) == 0 || len(tab.Header) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: row width %d != header %d", id, len(row), len(tab.Header))
			}
		}
	}
	if _, err := r.ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	r := NewRunner(Quick, 2)
	tabs, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(IDs()) {
		t.Fatalf("All produced %d tables, want %d", len(tabs), len(IDs()))
	}
	for i, tab := range tabs {
		if tab.ID != IDs()[i] {
			t.Fatalf("table %d id %s, want %s", i, tab.ID, IDs()[i])
		}
	}
}

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tab.Header)
	return ""
}

func cellFloat(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("cell %s[%d] = %q not numeric", col, row, cell(t, tab, row, col))
	}
	return v
}

// TestT1ContainsPaperExample: the DSF/USF worked example from §3.1
// must appear with the paper's values.
func TestT1ContainsPaperExample(t *testing.T) {
	tab, err := NewRunner(Quick, 1).T1SavingFactors()
	if err != nil {
		t.Fatal(err)
	}
	foundDSF, foundUSF := false, false
	for i := range tab.Rows {
		if cell(t, tab, i, "d") == "4" && cell(t, tab, i, "m") == "3" &&
			cell(t, tab, i, "DSF(m)") == "9" {
			foundDSF = true
		}
		if cell(t, tab, i, "d") == "4" && cell(t, tab, i, "m") == "2" &&
			cell(t, tab, i, "USF(m,d)") == "10" {
			foundUSF = true
		}
	}
	if !foundDSF || !foundUSF {
		t.Fatalf("paper example missing: DSF %v USF %v", foundDSF, foundUSF)
	}
}

// TestF1PruningBeatsNaive: HOS-Miner must evaluate far fewer
// subspaces than the naive sweep at the largest tested d.
func TestF1PruningBeatsNaive(t *testing.T) {
	tab, err := NewRunner(Quick, 3).F1RuntimeVsDim()
	if err != nil {
		t.Fatal(err)
	}
	last := len(tab.Rows) - 1
	hos := cellFloat(t, tab, last, "hos_evals")
	naive := cellFloat(t, tab, last, "naive_evals")
	if hos >= naive {
		t.Fatalf("hos evals %v not below naive %v", hos, naive)
	}
}

// TestF3EvaluatedFractionFalls: pruning should settle a growing share
// of the lattice as d rises.
func TestF3EvaluatedFractionFalls(t *testing.T) {
	tab, err := NewRunner(Quick, 4).F3PruningPower()
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tab, 0, "evaluated_frac")
	last := cellFloat(t, tab, len(tab.Rows)-1, "evaluated_frac")
	if last >= first {
		t.Fatalf("evaluated fraction did not fall: %v -> %v", first, last)
	}
}

// TestF5MonotoneOutlyingCounts: raising the threshold quantile cannot
// increase the number of outlying subspaces.
func TestF5MonotoneOutlyingCounts(t *testing.T) {
	tab, err := NewRunner(Quick, 5).F5Threshold()
	if err != nil {
		t.Fatal(err)
	}
	prev := cellFloat(t, tab, 0, "avg_outlying")
	for i := 1; i < len(tab.Rows); i++ {
		cur := cellFloat(t, tab, i, "avg_outlying")
		if cur > prev+1e-9 {
			t.Fatalf("row %d: outlying count rose with threshold (%v -> %v)", i, prev, cur)
		}
		prev = cur
	}
}

// TestT4FilterReduces: the minimal set must be no larger than the raw
// outlying set.
func TestT4FilterReduces(t *testing.T) {
	tab, err := NewRunner(Quick, 6).T4FilterReduction()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		raw := cellFloat(t, tab, i, "avg_outlying")
		min := cellFloat(t, tab, i, "avg_minimal")
		if min > raw {
			t.Fatalf("row %d: minimal %v exceeds raw %v", i, min, raw)
		}
	}
}

// TestT2HOSBeatsEvolutionaryOnRecall: the headline effectiveness
// comparison — HOS-Miner's recall must be at least the GA's on the
// synthetic dataset (and in practice strictly higher overall).
func TestT2HOSBeatsEvolutionaryOnRecall(t *testing.T) {
	tab, err := NewRunner(Quick, 7).T2Effectiveness()
	if err != nil {
		t.Fatal(err)
	}
	recalls := map[string]map[string]float64{}
	for i := range tab.Rows {
		dsName := cell(t, tab, i, "dataset")
		method := cell(t, tab, i, "method")
		if recalls[dsName] == nil {
			recalls[dsName] = map[string]float64{}
		}
		recalls[dsName][method] = cellFloat(t, tab, i, "recall")
	}
	synth := recalls["synthetic"]
	if synth["hos-miner"] < synth["evolutionary"] {
		t.Fatalf("hos recall %v below evolutionary %v on synthetic",
			synth["hos-miner"], synth["evolutionary"])
	}
	if synth["hos-miner"] == 0 {
		t.Fatal("hos recall is zero on the easy synthetic dataset")
	}
}

// TestT3XTreePrunesOnLargestRun: the index should examine fewer
// points than the scan for full-space queries at the largest N.
func TestT3XTreePrunes(t *testing.T) {
	tab, err := NewRunner(Quick, 8).T3XTreeKNN()
	if err != nil {
		t.Fatal(err)
	}
	pruned := false
	for i := range tab.Rows {
		if cellFloat(t, tab, i, "scan_frac") < 0.9 {
			pruned = true
		}
	}
	if !pruned {
		t.Fatal("X-tree never examined <90% of points in any configuration")
	}
}

// TestF8AllPoliciesPresent checks the ablation covers all five
// variants and that uniform-priors TSF — the robust configuration —
// does not lose to random ordering.
func TestF8AllPoliciesPresent(t *testing.T) {
	tab, err := NewRunner(Quick, 9).F8OrderingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d variants", len(tab.Rows))
	}
	evals := map[string]float64{}
	for i := range tab.Rows {
		evals[cell(t, tab, i, "policy")] = cellFloat(t, tab, i, "avg_evals")
	}
	if evals["tsf(uniform)"] > evals["random"]*1.2 {
		t.Fatalf("tsf(uniform) evals %v far above random %v", evals["tsf(uniform)"], evals["random"])
	}
}

// TestT5BothPoliciesValid: the ablation must produce rows for both
// data distributions at every d, with positive work counters.
func TestT5BothPoliciesValid(t *testing.T) {
	tab, err := NewRunner(Quick, 10).T5XTreeSplitAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 2 dims x 2 distributions at quick scale
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cellFloat(t, tab, i, "xtree_pts") <= 0 || cellFloat(t, tab, i, "rstar_pts") <= 0 {
			t.Fatalf("row %d: zero work", i)
		}
		if cellFloat(t, tab, i, "xtree_nodes") < 1 || cellFloat(t, tab, i, "rstar_nodes") < 1 {
			t.Fatalf("row %d: no nodes", i)
		}
	}
}

// TestF9AllMetricsExactAndRecalled: every metric row must keep
// nonzero recall (the search is exact under any L_p metric).
func TestF9AllMetricsExactAndRecalled(t *testing.T) {
	tab, err := NewRunner(Quick, 11).F9MetricSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cellFloat(t, tab, i, "recall_subset") == 0 {
			t.Fatalf("metric %s: zero recall", cell(t, tab, i, "metric"))
		}
		if cellFloat(t, tab, i, "T(q95)") <= 0 {
			t.Fatalf("metric %s: bad threshold", cell(t, tab, i, "metric"))
		}
	}
}
