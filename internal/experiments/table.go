// Package experiments regenerates every table and figure of the
// reproduction (DESIGN.md §3): each exported method of Runner
// produces one experiment's data as a Table that renders as aligned
// text or CSV. cmd/hosbench is the CLI front-end; bench_test.go wires
// the same experiments into `go test -bench`.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a titled grid of cells plus
// free-form notes (expected shape, caveats).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0"
	case abs >= 1000:
		return fmt.Sprintf("%.0f", v)
	case abs >= 10:
		return fmt.Sprintf("%.1f", v)
	case abs >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table (header + rows) as CSV.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*Note: %s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
