package experiments

import (
	"time"

	"repro/internal/datagen"
	"repro/internal/shard"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// SHShardScaling measures scatter-gather k-NN throughput against the
// shard count — the scaling axis behind `hosserve -shards` and the
// BENCH_3.json trajectory. Each row runs the same query stream
// through a shard.Engine of a different width and reports per-query
// latency, queries/sec and speedup over the 1-shard engine. On a
// single-core box speedup hovers near 1 (the fan-out is skipped);
// the interesting numbers come from multi-core CI runners.
//
// Shards defaults to {1, 2, 4} under Quick and {1, 2, 4, 8} under
// Full; hosbench -shards overrides it.
func (r *Runner) SHShardScaling() (*Table, error) {
	shardCounts := r.Shards
	if len(shardCounts) == 0 {
		shardCounts = pickInts(r.Scale, []int{1, 2, 4}, []int{1, 2, 4, 8})
	}
	n := pickInt(r.Scale, 2000, 16000)
	d := pickInt(r.Scale, 6, 8)
	queries := pickInt(r.Scale, 200, 1000)
	k := 5

	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: n, D: d, NumOutliers: 5, Seed: r.Seed,
	})
	if err != nil {
		return nil, err
	}
	full := subspace.Full(d)

	t := &Table{
		ID:    "SH",
		Title: "Sharded scatter-gather k-NN scaling (same query stream per row)",
		Header: []string{"shards", "partitioner", "us_per_query", "queries_per_sec",
			"speedup_vs_1", "points_examined"},
	}
	// Measure every width first, then emit: the speedup column anchors
	// to the shards=1 measurement wherever it sits in the sweep.
	type row struct {
		shards  int
		elapsed time.Duration
		points  int64
	}
	rows := make([]row, 0, len(shardCounts))
	for _, sc := range shardCounts {
		e, err := shard.NewEngine(ds, shard.Config{
			Shards: sc, Partitioner: shard.RoundRobin,
			Metric: vector.L2, Index: shard.IndexLinear,
		})
		if err != nil {
			return nil, err
		}
		s, err := e.NewSearcher()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for qi := 0; qi < queries; qi++ {
			idx := (qi * 17) % n
			s.KNN(ds.Point(idx), full, k, idx)
		}
		rows = append(rows, row{sc, time.Since(start), s.Stats().PointsExamined})
	}
	baseline := rows[0].elapsed
	for _, r := range rows {
		if r.shards == 1 {
			baseline = r.elapsed
			break
		}
	}
	for _, r := range rows {
		us := float64(r.elapsed.Microseconds()) / float64(queries)
		qps := float64(queries) / r.elapsed.Seconds()
		t.AddRow(r.shards, shard.RoundRobin.String(), us, qps,
			float64(baseline)/float64(r.elapsed), r.points)
	}
	t.Notes = append(t.Notes,
		"speedup_vs_1 is relative to the shards=1 row (first row when the sweep omits 1); expect ≥ 1.5x at 4 shards on a multi-core host",
		"answers are byte-identical across rows (internal/conformance asserts this)",
	)
	return t, nil
}
