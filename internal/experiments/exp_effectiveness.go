package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/evolutionary"
	"repro/internal/knn"
	"repro/internal/metrics"
	"repro/internal/od"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// T2Effectiveness scores HOS-Miner and the evolutionary baseline on
// recovering planted outlying subspaces across the synthetic and
// pseudo-real datasets (demo part 3, effectiveness). Expected shape:
// HOS-Miner's exact lattice search attains higher recall than the
// heuristic grid-cell GA at every dataset.
func (r *Runner) T2Effectiveness() (*Table, error) {
	n := pickInt(r.Scale, 300, 1000)
	deviants := pickInt(r.Scale, 3, 8)
	t := &Table{
		ID:    "T2",
		Title: "Effectiveness: planted-subspace recovery, HOS-Miner vs evolutionary",
		Header: []string{"dataset", "d", "method",
			"precision", "recall", "f1", "match_mode"},
	}
	type namedData struct {
		name  string
		ds    *vector.Dataset
		truth datagen.GroundTruth
	}
	synth, synthTruth, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: n, D: 8, NumOutliers: deviants, Seed: r.Seed,
	})
	if err != nil {
		return nil, err
	}
	athl, athlTruth, err := datagen.Athlete(n, deviants, r.Seed)
	if err != nil {
		return nil, err
	}
	med, medTruth, err := datagen.Medical(n, deviants, r.Seed)
	if err != nil {
		return nil, err
	}
	nba, nbaTruth, err := datagen.NBA(n, deviants, r.Seed)
	if err != nil {
		return nil, err
	}
	sets := []namedData{
		{"synthetic", synth, synthTruth},
		{"athlete", athl, athlTruth},
		{"medical", med, medTruth},
		{"nba", nba, nbaTruth},
	}
	for _, data := range sets {
		// Pseudo-real data mixes attribute scales; normalize so L2
		// distances are meaningful.
		norm, _ := data.ds.MinMaxNormalize()
		hos, err := r.scoreHOSMiner(norm, data.truth)
		if err != nil {
			return nil, fmt.Errorf("%s/hos: %w", data.name, err)
		}
		t.AddRow(data.name, norm.Dim(), "hos-miner", hos.Precision, hos.Recall, hos.F1, "subset")
		evo, err := r.scoreEvolutionary(norm, data.truth)
		if err != nil {
			return nil, fmt.Errorf("%s/evolutionary: %w", data.name, err)
		}
		t.AddRow(data.name, norm.Dim(), "evolutionary", evo.Precision, evo.Recall, evo.F1, "overlap")
	}
	t.Notes = append(t.Notes,
		"hos-miner scored with subset matching (a minimal subspace ⊆ planted counts); the evolutionary method is scored with the laxer overlap matching because its cells have fixed cardinality — even so it recalls fewer planted deviations",
		"per-point truth: the planted mask of each deviant; predictions: minimal subspaces (HOS) / sparse-cell dimension sets containing the point (evolutionary)",
	)
	return t, nil
}

// scoreHOSMiner queries every planted outlier and averages subset-
// match PRF against its planted subspace.
func (r *Runner) scoreHOSMiner(ds *vector.Dataset, truth datagen.GroundTruth) (metrics.PRF, error) {
	m, err := core.NewMiner(ds, core.Config{
		K: 5, TQuantile: 0.97, SampleSize: pickInt(r.Scale, 6, 16),
		Seed: r.Seed, Backend: core.BackendLinear,
	})
	if err != nil {
		return metrics.PRF{}, err
	}
	if err := m.Preprocess(); err != nil {
		return metrics.PRF{}, err
	}
	var prfs []metrics.PRF
	for _, o := range truth.Outliers {
		res, err := m.OutlyingSubspacesOfPoint(o.Index)
		if err != nil {
			return metrics.PRF{}, err
		}
		prfs = append(prfs, metrics.Score(res.Minimal, []subspace.Mask{o.Subspace}, metrics.MatchSubset))
	}
	return metrics.MeanPRF(prfs), nil
}

// scoreEvolutionary runs the GA at cell cardinalities 1..3 (it cannot
// adapt cardinality within a run), pools the discovered sparse cells
// per point, and scores with overlap matching.
func (r *Runner) scoreEvolutionary(ds *vector.Dataset, truth datagen.GroundTruth) (metrics.PRF, error) {
	grid, err := evolutionary.NewGrid(ds, 8)
	if err != nil {
		return metrics.PRF{}, err
	}
	perPoint := make(map[int][]subspace.Mask)
	for targetDim := 1; targetDim <= 3 && targetDim <= ds.Dim(); targetDim++ {
		s, err := evolutionary.NewSearcher(grid, evolutionary.Config{
			Phi: 8, TargetDim: targetDim,
			Population:  pickInt(r.Scale, 24, 50),
			Generations: pickInt(r.Scale, 25, 80),
			KeepBest:    10, Seed: r.Seed + int64(targetDim),
		})
		if err != nil {
			return metrics.PRF{}, err
		}
		res := s.Search()
		for _, o := range truth.Outliers {
			perPoint[o.Index] = append(perPoint[o.Index], res.OutlyingSubspacesOf(grid, o.Index)...)
		}
	}
	var prfs []metrics.PRF
	for _, o := range truth.Outliers {
		prfs = append(prfs, metrics.Score(perPoint[o.Index], []subspace.Mask{o.Subspace}, metrics.MatchOverlap))
	}
	return metrics.MeanPRF(prfs), nil
}

// F7VsEvolutionary compares end-to-end cost of HOS-Miner and the
// evolutionary search across dimensionality, with the naive sweep as
// the yardstick. Expected shape: the GA's cost is roughly flat in d
// (fixed population×generations) while HOS-Miner grows with the
// lattice but stays far below naive; HOS-Miner is exact, the GA is
// not.
func (r *Runner) F7VsEvolutionary() (*Table, error) {
	dims := pickInts(r.Scale, []int{4, 6, 8}, []int{6, 8, 10, 12, 14})
	n := pickInt(r.Scale, 300, 1000)
	naiveCap := pickInt(r.Scale, 8, 12)
	t := &Table{
		ID:    "F7",
		Title: "Cost vs d: HOS-Miner vs evolutionary vs naive (per query point)",
		Header: []string{"d", "hos_ms", "hos_evals",
			"evo_ms", "evo_cell_evals", "naive_ms"},
	}
	for _, d := range dims {
		ds, truth, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
			N: n, D: d, NumOutliers: 2, Seed: r.Seed,
		})
		if err != nil {
			return nil, err
		}
		ls, err := knn.NewLinear(ds, vector.L2)
		if err != nil {
			return nil, err
		}
		eval, err := od.NewEvaluator(ds, ls, vector.L2, 5, od.NormNone)
		if err != nil {
			return nil, err
		}
		e := &env{ds: ds, truth: truth, eval: eval}
		T, err := e.thresholdQuantile(0.95)
		if err != nil {
			return nil, err
		}
		queries := e.queryPoints(2, 1)
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 4, 10), T, r.Seed)
		if err != nil {
			return nil, err
		}
		hosTime, hosEvals, _, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}

		grid, err := evolutionary.NewGrid(ds, 8)
		if err != nil {
			return nil, err
		}
		searcher, err := evolutionary.NewSearcher(grid, evolutionary.Config{
			Phi: 8, TargetDim: 2,
			Population:  pickInt(r.Scale, 24, 50),
			Generations: pickInt(r.Scale, 25, 80),
			Seed:        r.Seed,
		})
		if err != nil {
			return nil, err
		}
		evoStart := time.Now()
		evoRes := searcher.Search()
		evoTime := time.Since(evoStart)

		naiveMs := "-"
		if d <= naiveCap {
			var naiveTime time.Duration
			for _, idx := range queries {
				start := time.Now()
				if _, err := baseline.NaiveSearch(e.eval, e.ds.Point(idx), idx, T); err != nil {
					return nil, err
				}
				naiveTime += time.Since(start)
			}
			naiveMs = formatFloat(ms(naiveTime) / float64(len(queries)))
		}
		q := float64(len(queries))
		t.AddRow(d, ms(hosTime)/q, float64(hosEvals)/q,
			ms(evoTime), float64(evoRes.Evaluations), naiveMs)
	}
	t.Notes = append(t.Notes,
		"evo_ms is one whole GA run (amortised over all points); hos_ms is per query point",
		"expected shape: naive explodes with d; hos grows slowly; evo flat but inexact (see T2)",
	)
	return t, nil
}
