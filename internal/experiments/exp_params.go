package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/subspace"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// F4SampleSize studies the §3.2 learning process: how the number of
// sample points affects (a) learning cost, (b) query cost with the
// learned priors, (c) result quality. Expected shape: learned priors
// reduce query evaluations versus S=0 (uniform priors), with
// diminishing returns in S; answers never change (pruning is exact).
func (r *Runner) F4SampleSize() (*Table, error) {
	d := pickInt(r.Scale, 8, 12)
	n := pickInt(r.Scale, 400, 1500)
	k := 5
	samples := pickInts(r.Scale, []int{0, 4, 16}, []int{0, 4, 16, 64})
	t := &Table{
		ID:     "F4",
		Title:  "Effect of learning sample size S (§3.2)",
		Header: []string{"S", "learn_evals", "query_evals", "query_ms", "recall_subset"},
	}
	e, err := r.syntheticEnv(n, d, k, 3)
	if err != nil {
		return nil, err
	}
	T, err := e.thresholdQuantile(0.95)
	if err != nil {
		return nil, err
	}
	queries := e.queryPoints(3, 3)
	for _, s := range samples {
		priors, learnEvals, err := learnedPriors(e, s, T, r.Seed)
		if err != nil {
			return nil, err
		}
		total, evals, results, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		// Recall of planted subspaces over the outlier queries.
		var prfs []metrics.PRF
		for qi, idx := range queries {
			if truthMask, ok := e.truth.ByIndex(idx); ok {
				prfs = append(prfs, metrics.Score(results[qi].Minimal,
					[]subspace.Mask{truthMask}, metrics.MatchSubset))
			}
		}
		q := float64(len(queries))
		t.AddRow(s, learnEvals, float64(evals)/q, ms(total)/q, metrics.MeanPRF(prfs).Recall)
	}
	t.Notes = append(t.Notes,
		"S=0 means uniform priors; learning changes only the search order, never the answers",
	)
	return t, nil
}

// F5Threshold sweeps the outlying-degree threshold T (as a quantile
// of the full-space OD distribution). Expected shape: higher T →
// fewer outlying subspaces and fewer minimal subspaces; cost varies
// as pruning directions trade off.
func (r *Runner) F5Threshold() (*Table, error) {
	d := pickInt(r.Scale, 8, 10)
	n := pickInt(r.Scale, 400, 1500)
	k := 5
	quantiles := []float64{0.8, 0.9, 0.95, 0.99}
	t := &Table{
		ID:     "F5",
		Title:  "Effect of threshold T (quantile of full-space OD)",
		Header: []string{"quantile", "T", "avg_outlying", "avg_minimal", "avg_evals"},
	}
	e, err := r.syntheticEnv(n, d, k, 3)
	if err != nil {
		return nil, err
	}
	queries := e.queryPoints(3, 3)
	for _, q := range quantiles {
		T, err := e.thresholdQuantile(q)
		if err != nil {
			return nil, err
		}
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 4, 12), T, r.Seed)
		if err != nil {
			return nil, err
		}
		_, evals, results, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		var outlying, minimal int
		for _, res := range results {
			outlying += len(res.Outlying)
			minimal += len(res.Minimal)
		}
		nq := float64(len(queries))
		t.AddRow(q, T, float64(outlying)/nq, float64(minimal)/nq, float64(evals)/nq)
	}
	t.Notes = append(t.Notes,
		"expected shape: avg_outlying and avg_minimal fall monotonically as the quantile rises",
	)
	return t, nil
}

// F6K sweeps the neighbourhood size k of the OD measure. Expected
// shape: OD values (and hence a fixed-quantile T) grow with k; the
// planted outliers stay detected across the sweep.
func (r *Runner) F6K() (*Table, error) {
	d := pickInt(r.Scale, 6, 10)
	n := pickInt(r.Scale, 400, 1500)
	ks := pickInts(r.Scale, []int{1, 5, 10}, []int{1, 3, 5, 10, 20})
	t := &Table{
		ID:     "F6",
		Title:  "Effect of neighbourhood size k (§2)",
		Header: []string{"k", "T(q95)", "avg_evals", "avg_minimal", "recall_subset"},
	}
	for _, k := range ks {
		e, err := r.syntheticEnv(n, d, k, 3)
		if err != nil {
			return nil, err
		}
		T, err := e.thresholdQuantile(0.95)
		if err != nil {
			return nil, err
		}
		queries := e.queryPoints(3, 3)
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 4, 10), T, r.Seed)
		if err != nil {
			return nil, err
		}
		_, evals, results, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		var minimal int
		var prfs []metrics.PRF
		for qi, idx := range queries {
			minimal += len(results[qi].Minimal)
			if truthMask, ok := e.truth.ByIndex(idx); ok {
				prfs = append(prfs, metrics.Score(results[qi].Minimal,
					[]subspace.Mask{truthMask}, metrics.MatchSubset))
			}
		}
		nq := float64(len(queries))
		t.AddRow(k, T, float64(evals)/nq, float64(minimal)/nq, metrics.MeanPRF(prfs).Recall)
	}
	t.Notes = append(t.Notes,
		"T is re-resolved per k (OD sums grow with k); recall should stay high across the sweep",
	)
	return t, nil
}

// T4FilterReduction quantifies the §3.4 refinement: raw outlying
// subspaces versus the minimal set actually returned to the user.
func (r *Runner) T4FilterReduction() (*Table, error) {
	dims := pickInts(r.Scale, []int{4, 6, 8}, []int{6, 8, 10, 12})
	n := pickInt(r.Scale, 400, 1500)
	k := 5
	t := &Table{
		ID:     "T4",
		Title:  "Result refinement (§3.4): raw outlying vs minimal subspaces",
		Header: []string{"d", "avg_outlying", "avg_minimal", "reduction_factor"},
	}
	for _, d := range dims {
		e, err := r.syntheticEnv(n, d, k, 3)
		if err != nil {
			return nil, err
		}
		T, err := e.thresholdQuantile(0.95)
		if err != nil {
			return nil, err
		}
		queries := e.queryPoints(3, 0) // outliers only: inliers have empty sets
		priors, _, err := learnedPriors(e, pickInt(r.Scale, 4, 10), T, r.Seed)
		if err != nil {
			return nil, err
		}
		_, _, results, err := timedSearch(e, queries, T, priors, core.PolicyTSF)
		if err != nil {
			return nil, err
		}
		var outlying, minimal int
		for _, res := range results {
			outlying += len(res.Outlying)
			minimal += len(res.Minimal)
		}
		nq := float64(len(queries))
		red := 0.0
		if minimal > 0 {
			red = float64(outlying) / float64(minimal)
		}
		t.AddRow(d, float64(outlying)/nq, float64(minimal)/nq, red)
	}
	t.Notes = append(t.Notes,
		"expected shape: reduction factor grows quickly with d (superset tails dominate the raw set)",
	)
	return t, nil
}
