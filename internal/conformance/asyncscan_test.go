package conformance

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// The async scan-job path must be a pure transport change: a scan
// submitted via POST /jobs/scan and polled to completion returns
// exactly the bytes the synchronous POST /scan answers for the same
// request on the same preprocessed miner — for both k-NN backends.
// Only elapsed_ms (wall time) may differ. This is the differential
// spec guarding the jobs subsystem against answer drift: the job
// runner threads a progress callback and its own context through
// core.ScanAllParallelContext, and none of that may perturb results.

// scanBody mirrors the /scan JSON response for comparison; elapsed_ms
// is deliberately omitted so DeepEqual ignores wall time.
type scanBody struct {
	Hits []struct {
		Index         int     `json:"index"`
		Minimal       [][]int `json:"minimal"`
		OutlyingCount int     `json:"outlying_count"`
		FullSpaceOD   float64 `json:"full_space_od"`
	} `json:"hits"`
	HitCount   int `json:"hit_count"`
	MaxResults int `json:"max_results"`
}

func TestAsyncScanJobMatchesSyncScan(t *testing.T) {
	sp := DefaultSpecs()[0]
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			t.Parallel()
			m, err := sp.Miner(backend, core.PolicyTSF)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := server.New(m, server.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_ = srv.Close(ctx)
			})
			h := srv.Handler()
			body := `{"sort_by_severity": true}`

			var sync scanBody
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/scan", strings.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("sync scan: status %d (body %s)", rec.Code, rec.Body.String())
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &sync); err != nil {
				t.Fatal(err)
			}

			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs/scan", strings.NewReader(body)))
			if rec.Code != http.StatusAccepted {
				t.Fatalf("submit: status %d (body %s)", rec.Code, rec.Body.String())
			}
			var submitted struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
				t.Fatal(err)
			}

			var async scanBody
			deadline := time.Now().Add(60 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatal("job never finished")
				}
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+submitted.ID, nil))
				if rec.Code != http.StatusOK {
					t.Fatalf("poll: status %d", rec.Code)
				}
				var poll struct {
					State  string          `json:"state"`
					Error  string          `json:"error"`
					Result json.RawMessage `json:"result"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &poll); err != nil {
					t.Fatal(err)
				}
				if poll.State == "done" {
					if err := json.Unmarshal(poll.Result, &async); err != nil {
						t.Fatal(err)
					}
					break
				}
				if poll.State == "failed" || poll.State == "cancelled" {
					t.Fatalf("job reached %s: %s", poll.State, poll.Error)
				}
				time.Sleep(2 * time.Millisecond)
			}

			if !reflect.DeepEqual(sync, async) {
				t.Fatalf("async scan job diverged from sync /scan on %s:\n sync  %+v\n async %+v",
					backend, sync, async)
			}
		})
	}
}
