package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/overload"
	"repro/internal/overload/faultinject"
	"repro/internal/server"
)

// Overload isolation is a conformance property, not just a latency
// one: while one dataset is being driven into its circuit breaker by
// injected faults, a sibling dataset on the same process must answer
// byte-identically to the same dataset on an unloaded reference
// server. Shedding that perturbed sibling answers — shared caches,
// cross-dataset admission, anything — would make overload protection
// a correctness bug.

// canonicalQuery runs one /query and returns the response body with
// the wall-time field stripped and keys re-marshalled in sorted order,
// so two servers' answers compare as exact strings.
func canonicalQuery(t *testing.T, h http.Handler, body string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/query", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("query %s: status %d (body %s)", body, rec.Code, rec.Body.String())
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "elapsed_ms") // wall time is the only field allowed to differ
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestDegradedDatasetDoesNotPerturbSiblingAnswers(t *testing.T) {
	sp := DefaultSpecs()[0]
	newServer := func(opts server.Options) *server.Server {
		m, err := sp.Miner(core.BackendAuto, core.PolicyTSF)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Close(ctx)
		})
		return srv
	}

	clk := faultinject.NewClock(time.Unix(1_700_000_000, 0))
	inj := faultinject.NewInjector()
	degraded := newServer(server.Options{
		Overload: overload.Config{
			MinSamples:     5,
			FailureRatio:   0.5,
			CoolDown:       5 * time.Second,
			ProbeSuccesses: 1,
			Clock:          clk.Now,
		},
		FaultHook: inj.Hook(),
	})
	reference := newServer(server.Options{})

	// The same sibling dataset — deterministic generator, same seed and
	// miner parameters — on both servers.
	const loadSibling = `{"name": "sibling", "gen": "synthetic", "n": 100, "d": 4, "planted": 3, "k": 4, "tq": 0.9, "seed": 77}`
	for _, srv := range []*server.Server{degraded, reference} {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/datasets/load", strings.NewReader(loadSibling)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("loading sibling: status %d (body %s)", rec.Code, rec.Body.String())
		}
	}

	// Drive the degraded server's default dataset into its breaker with
	// 100% injected timeouts.
	inj.Set(server.DefaultDatasetName, faultinject.Fault{Err: context.DeadlineExceeded})
	dh := degraded.Handler()
	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		dh.ServeHTTP(rec, httptest.NewRequest("POST", "/query",
			strings.NewReader(fmt.Sprintf(`{"index": %d}`, i))))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("faulted default query %d: status %d, want 503", i, rec.Code)
		}
	}
	assertBreaker := func(srv *server.Server, name, want string) {
		t.Helper()
		for _, d := range srv.Stats().Datasets {
			if d.Name == name {
				if d.Overload.BreakerState != want {
					t.Fatalf("dataset %s breaker = %s, want %s", name, d.Overload.BreakerState, want)
				}
				return
			}
		}
		t.Fatalf("dataset %s not in stats", name)
	}
	assertBreaker(degraded, server.DefaultDatasetName, "open")

	// With the default dataset's breaker open, every sibling answer on
	// the degraded server must equal the unloaded reference's, byte for
	// byte. Both row queries and ad-hoc points go through.
	bodies := make([]string, 0, 22)
	for i := 0; i < 20; i++ {
		bodies = append(bodies, fmt.Sprintf(`{"dataset": "sibling", "index": %d}`, i*5))
	}
	bodies = append(bodies,
		`{"dataset": "sibling", "point": [0.5, 0.5, 0.5, 0.5], "include_all": true}`,
		`{"dataset": "sibling", "index": 7, "include_all": true}`,
	)
	for _, body := range bodies {
		want := canonicalQuery(t, reference.Handler(), body)
		got := canonicalQuery(t, dh, body)
		if got != want {
			t.Fatalf("sibling answer diverged under a degraded neighbour\nquery: %s\n ref:  %s\n got:  %s", body, want, got)
		}
	}
	assertBreaker(degraded, "sibling", "closed")
	assertBreaker(degraded, server.DefaultDatasetName, "open")
}
