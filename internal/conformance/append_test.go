package conformance

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

// Differential tests for live ingestion: a dataset grown by streaming
// appends must be indistinguishable from the same dataset built in one
// shot. These are the conformance backing for POST /datasets/{name}/append
// — the server's incremental path is core.Miner.WithAppended, which is
// exactly what AppendedMiner drives.

// appendPrefix picks how much of the spec's dataset the base miner is
// built over before the rest streams in: roughly two thirds, so both
// append chunks are non-trivial.
func appendPrefix(sp Spec) int { return sp.Gen.N * 2 / 3 }

// assertAppendEqualsRebuild compares an appended-to miner against its
// from-scratch twin on resolved threshold bits and full-scan
// fingerprints (exact OD bits per hit).
func assertAppendEqualsRebuild(t *testing.T, appended, rebuilt *core.Miner) {
	t.Helper()
	if got, want := math.Float64bits(appended.Threshold()), math.Float64bits(rebuilt.Threshold()); got != want {
		t.Fatalf("thresholds diverge: appended %v, rebuilt %v", appended.Threshold(), rebuilt.Threshold())
	}
	a, err := ScanFingerprints(appended, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScanFingerprints(rebuilt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff("appended", a, "rebuilt", b); d != "" {
		t.Fatalf("appended and rebuilt miners disagree:\n%s", d)
	}
}

// Every spec, both backends, unsharded: append ≡ rebuild.
func TestAppendedMatchesRebuilt(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range Backends() {
				appended, err := sp.AppendedMiner(backend, core.PolicyTSF, 0, shard.RoundRobin, appendPrefix(sp))
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				rebuilt, err := sp.Miner(backend, core.PolicyTSF)
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				assertAppendEqualsRebuild(t, appended, rebuilt)
			}
		})
	}
}

// Sharded engines, every width and both partitioners: the incremental
// path routes each appended row to its partition-assigned shard, and
// the result must still match a one-shot sharded build. Two specs keep
// the 2 backends x 3 widths x 2 partitioners cross affordable.
func TestShardedAppendedMatchesRebuilt(t *testing.T) {
	for _, sp := range []Spec{DefaultSpecs()[0], DefaultSpecs()[2]} {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range Backends() {
				for _, width := range ShardWidths() {
					for _, part := range Partitioners() {
						appended, err := sp.AppendedMiner(backend, core.PolicyTSF, width, part, appendPrefix(sp))
						if err != nil {
							t.Fatalf("%v/%d/%v: %v", backend, width, part, err)
						}
						rebuilt, err := sp.ShardedMiner(backend, core.PolicyTSF, width, part)
						if err != nil {
							t.Fatalf("%v/%d/%v: %v", backend, width, part, err)
						}
						assertAppendEqualsRebuild(t, appended, rebuilt)
					}
				}
			}
		})
	}
}

// Every spec, both backends, unsharded: one coalesced
// WithAppendedBatch of the same chunks ≡ the sequential WithAppended
// chain ≡ a one-shot rebuild. This is the conformance backing for the
// server's group-committed append drain, which folds every request
// coalesced into a batch through a single WithAppendedBatch call.
func TestBatchAppendedMatchesSequentialAndRebuilt(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range Backends() {
				batched, err := sp.BatchAppendedMiner(backend, core.PolicyTSF, 0, shard.RoundRobin, appendPrefix(sp))
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				sequential, err := sp.AppendedMiner(backend, core.PolicyTSF, 0, shard.RoundRobin, appendPrefix(sp))
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				assertAppendEqualsRebuild(t, batched, sequential)
				rebuilt, err := sp.Miner(backend, core.PolicyTSF)
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				assertAppendEqualsRebuild(t, batched, rebuilt)
			}
		})
	}
}

// Sharded engines, every width and both partitioners: the batched
// append must route every coalesced row to its partition-assigned
// shard exactly as the sequential path does.
func TestShardedBatchAppendedMatchesRebuilt(t *testing.T) {
	for _, sp := range []Spec{DefaultSpecs()[0], DefaultSpecs()[2]} {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range Backends() {
				for _, width := range ShardWidths() {
					for _, part := range Partitioners() {
						batched, err := sp.BatchAppendedMiner(backend, core.PolicyTSF, width, part, appendPrefix(sp))
						if err != nil {
							t.Fatalf("%v/%d/%v: %v", backend, width, part, err)
						}
						rebuilt, err := sp.ShardedMiner(backend, core.PolicyTSF, width, part)
						if err != nil {
							t.Fatalf("%v/%d/%v: %v", backend, width, part, err)
						}
						assertAppendEqualsRebuild(t, batched, rebuilt)
					}
				}
			}
		})
	}
}

// A sharded appended engine also agrees with the unsharded rebuilt
// miner — closing the triangle append x shard x single-index.
func TestShardedAppendedMatchesUnsharded(t *testing.T) {
	sp := DefaultSpecs()[3]
	single, err := sp.Miner(core.BackendXTree, core.PolicyTSF)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ScanFingerprints(single, 2)
	if err != nil {
		t.Fatal(err)
	}
	appended, err := sp.AppendedMiner(core.BackendXTree, core.PolicyTSF, 2, shard.HashPoint, appendPrefix(sp))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScanFingerprints(appended, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff("sharded-appended", got, "unsharded", want); d != "" {
		t.Fatalf("sharded appended engine diverged from the unsharded build:\n%s", d)
	}
}
