// Package conformance is a differential test harness for the
// HOS-Miner engine: it drives independently-implemented
// configurations — the linear-scan and X-tree k-NN backends, all four
// layer-ordering policies, the batched versus single-query execution
// paths, and sharded scatter-gather engines versus single-index ones
// (widths 1/2/7, both partitioners) — over the same seeded synthetic
// datasets and asserts that they produce byte-identical minimal
// outlying subspaces.
//
// The harness exists so the hot path can be refactored without fear:
// any divergence between two engines that are supposed to be
// equivalent is a bug in one of them, found without needing ground
// truth. Tests in this package run under the ordinary `go test ./...`
// tier and therefore in CI.
package conformance

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Spec is one seeded dataset + miner parameterisation of the harness.
// The same Spec always builds the same dataset and, for a fixed
// backend/policy, the same preprocessed miner.
type Spec struct {
	Name string
	Gen  datagen.SyntheticConfig
	K    int
	// Exactly one of T / TQuantile is set, mirroring core.Config.
	T         float64
	TQuantile float64
	// SampleSize > 0 exercises the §3.2 learning phase too (its priors
	// feed PolicyTSF's layer ordering, which must not change answers).
	SampleSize int
	Seed       int64
}

// DefaultSpecs returns the standard battery: ≥ 5 seeded synthetic
// datasets spanning dimensionality, size, cluster count, planted
// subspace cardinality, threshold style and the learning phase.
func DefaultSpecs() []Spec {
	return []Spec{
		{
			Name: "small-d4",
			Gen:  datagen.SyntheticConfig{N: 120, D: 4, NumOutliers: 3, Seed: 101},
			K:    4, TQuantile: 0.92, Seed: 1,
		},
		{
			Name: "mid-d6-learned",
			Gen:  datagen.SyntheticConfig{N: 250, D: 6, NumOutliers: 5, Seed: 202},
			K:    5, TQuantile: 0.95, SampleSize: 12, Seed: 2,
		},
		{
			Name: "clusters-d5",
			Gen:  datagen.SyntheticConfig{N: 180, D: 5, NumOutliers: 4, Clusters: 5, Seed: 303},
			K:    3, TQuantile: 0.9, Seed: 3,
		},
		{
			Name: "deep-subspaces-d7",
			Gen:  datagen.SyntheticConfig{N: 220, D: 7, NumOutliers: 4, OutlierSubspaceDim: 3, Seed: 404},
			K:    4, TQuantile: 0.96, Seed: 4,
		},
		{
			Name: "absolute-threshold-d5",
			Gen:  datagen.SyntheticConfig{N: 160, D: 5, NumOutliers: 3, Seed: 505},
			K:    4, T: 9, Seed: 5,
		},
		{
			Name: "dense-d4-low-threshold",
			Gen:  datagen.SyntheticConfig{N: 300, D: 4, NumOutliers: 6, Seed: 606},
			K:    6, TQuantile: 0.85, Seed: 6,
		},
	}
}

// Dataset materialises the spec's dataset (identical for every call).
func (sp Spec) Dataset() (*vector.Dataset, error) {
	ds, _, err := datagen.GenerateSynthetic(sp.Gen)
	return ds, err
}

// Miner builds and preprocesses a miner for the spec under the given
// backend and policy.
func (sp Spec) Miner(backend core.Backend, policy core.Policy) (*core.Miner, error) {
	return sp.ShardedMiner(backend, policy, 0, shard.RoundRobin)
}

// ShardedMiner is Miner with a scatter-gather engine of the given
// width (shards 0 builds the ordinary single-index miner; shards 1
// builds a one-shard engine, exercising the scatter-gather plumbing
// without a partition).
func (sp Spec) ShardedMiner(backend core.Backend, policy core.Policy, shards int, part shard.Partitioner) (*core.Miner, error) {
	ds, err := sp.Dataset()
	if err != nil {
		return nil, err
	}
	m, err := core.NewMiner(ds, core.Config{
		K: sp.K, T: sp.T, TQuantile: sp.TQuantile,
		SampleSize: sp.SampleSize, Seed: sp.Seed,
		Backend: backend, Policy: policy,
		Shards: shards, Partitioner: part,
	})
	if err != nil {
		return nil, err
	}
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	return m, nil
}

// AppendedMiner builds the spec's miner over only the first prefix
// rows of the dataset and streams the remainder in through
// core.Miner.WithAppended in several chunks — the live-ingestion path
// POST /datasets/{name}/append takes. The HOS-Miner exactness contract
// says the result must be indistinguishable, bit for bit, from a miner
// built over the full dataset in one shot: same resolved threshold,
// same priors, same encoded index, same answers.
func (sp Spec) AppendedMiner(backend core.Backend, policy core.Policy, shards int, part shard.Partitioner, prefix int) (*core.Miner, error) {
	m, chunks, err := sp.appendBase(backend, policy, shards, part, prefix)
	if err != nil {
		return nil, err
	}
	for _, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		if m, err = m.WithAppended(chunk); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// BatchAppendedMiner is AppendedMiner's coalesced twin: the same base
// miner and the same chunks, but delivered in one
// core.Miner.WithAppendedBatch call — the path the server's group
// committed append drain takes when concurrent requests coalesce. The
// exactness contract extends to it: one batched append of several
// chunks must be indistinguishable from applying them sequentially,
// and from a one-shot rebuild.
func (sp Spec) BatchAppendedMiner(backend core.Backend, policy core.Policy, shards int, part shard.Partitioner, prefix int) (*core.Miner, error) {
	m, chunks, err := sp.appendBase(backend, policy, shards, part, prefix)
	if err != nil {
		return nil, err
	}
	return m.WithAppendedBatch(chunks...)
}

// appendBase builds the prefix-rows base miner shared by AppendedMiner
// and BatchAppendedMiner plus the remainder split into two uneven
// chunks, so the incremental path runs more than once and the second
// chunk lands on already-appended indices.
func (sp Spec) appendBase(backend core.Backend, policy core.Policy, shards int, part shard.Partitioner, prefix int) (*core.Miner, [][][]float64, error) {
	ds, err := sp.Dataset()
	if err != nil {
		return nil, nil, err
	}
	if prefix <= 0 || prefix >= ds.N() {
		return nil, nil, fmt.Errorf("prefix %d outside (0,%d)", prefix, ds.N())
	}
	rows := make([][]float64, ds.N())
	for i := range rows {
		rows[i] = ds.Point(i)
	}
	base, err := vector.FromRows(rows[:prefix])
	if err != nil {
		return nil, nil, err
	}
	m, err := core.NewMiner(base, core.Config{
		K: sp.K, T: sp.T, TQuantile: sp.TQuantile,
		SampleSize: sp.SampleSize, Seed: sp.Seed,
		Backend: backend, Policy: policy,
		Shards: shards, Partitioner: part,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := m.Preprocess(); err != nil {
		return nil, nil, err
	}
	mid := prefix + (ds.N()-prefix)/3
	return m, [][][]float64{rows[prefix:mid], rows[mid:]}, nil
}

// RestoredMiner builds the spec's miner, pushes it through a full
// snapshot round trip — capture, binary encode, decode, restore — and
// returns the warm-started twin. Everything travels through the real
// on-disk byte format, so any field the codec mangles shows up as a
// divergence downstream.
func (sp Spec) RestoredMiner(backend core.Backend, policy core.Policy, shards int, part shard.Partitioner) (*core.Miner, error) {
	m, err := sp.ShardedMiner(backend, policy, shards, part)
	if err != nil {
		return nil, err
	}
	snap, err := snapshot.Capture(sp.Name, snapshot.Provenance{Generator: "synthetic", Seed: sp.Gen.Seed}, m)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, snap); err != nil {
		return nil, err
	}
	back, err := snapshot.Read(&buf)
	if err != nil {
		return nil, err
	}
	return back.Restore()
}

// ScanFingerprints runs the whole-dataset scan (the /scan operation)
// and renders every hit — index, minimal set, outlying count, severity
// — as one canonical string per hit.
func ScanFingerprints(m *core.Miner, workers int) ([]string, error) {
	hits, err := m.ScanAllParallelContext(context.Background(), core.ScanOptions{SortBySeverity: true}, workers)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = fmt.Sprintf("#%d|%s|%d|%x", h.Index, Fingerprint(h.Minimal), h.OutlyingCount,
			math.Float64bits(h.FullSpaceOD))
	}
	return out, nil
}

// Fingerprint renders a subspace set in its canonical byte form:
// masks sorted by ascending cardinality then mask value (the order
// core.SearchResult already guarantees), each printed as its sorted
// dimension list. Two engines agree on a result iff their
// fingerprints are equal as strings.
func Fingerprint(masks []subspace.Mask) string {
	sorted := append([]subspace.Mask(nil), masks...)
	subspace.SortMasks(sorted)
	var b strings.Builder
	for _, m := range sorted {
		b.WriteString(m.String())
	}
	return b.String()
}

// MinimalFingerprints answers the outlying-subspace query for every
// dataset point through the plain single-query path and returns one
// Fingerprint of the minimal set per point.
func MinimalFingerprints(m *core.Miner) ([]string, error) {
	out := make([]string, m.Dataset().N())
	for i := range out {
		res, err := m.OutlyingSubspacesOfPoint(i)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		out[i] = Fingerprint(res.Minimal)
	}
	return out, nil
}

// BatchMinimalFingerprints answers the same per-point queries through
// core.QueryBatch (with the shared per-batch OD cache enabled) and
// returns one Fingerprint per point.
func BatchMinimalFingerprints(m *core.Miner, workers int) ([]string, error) {
	queries := make([]core.BatchQuery, m.Dataset().N())
	for i := range queries {
		queries[i] = core.BatchIndex(i)
	}
	res, err := m.QueryBatch(context.Background(), queries, core.BatchOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.Items))
	for i, item := range res.Items {
		if item.Err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, item.Err)
		}
		out[i] = Fingerprint(item.Result.Minimal)
	}
	return out, nil
}

// Diff compares two per-point fingerprint slices and describes every
// divergence ("" when identical).
func Diff(nameA string, a []string, nameB string, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s answered %d points, %s answered %d", nameA, len(a), nameB, len(b))
	}
	var sb strings.Builder
	for i := range a {
		if a[i] != b[i] {
			fmt.Fprintf(&sb, "point %d: %s=%q %s=%q\n", i, nameA, a[i], nameB, b[i])
		}
	}
	return sb.String()
}

// Backends and Policies enumerate the configurations the differential
// tests cross.
func Backends() []core.Backend {
	return []core.Backend{core.BackendLinear, core.BackendXTree}
}

// Policies returns all four layer-ordering policies.
func Policies() []core.Policy {
	return []core.Policy{core.PolicyTSF, core.PolicyBottomUp, core.PolicyTopDown, core.PolicyRandom}
}

// ShardWidths enumerates the shard counts the sharded differential
// tests cross: 1 (a one-shard engine — scatter-gather plumbing, no
// partition), a small even split, and a prime width that leaves
// shards unevenly sized.
func ShardWidths() []int { return []int{1, 2, 7} }

// Partitioners enumerates both row-assignment strategies.
func Partitioners() []shard.Partitioner {
	return []shard.Partitioner{shard.RoundRobin, shard.HashPoint}
}
