package conformance

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/shard"
	"repro/internal/subspace"
)

// Every spec, linear vs X-tree: the k-NN backend must be invisible in
// the answers. OD values depend only on the neighbour set, and both
// backends implement the same exact-k-NN contract, so the minimal
// outlying subspaces must match byte for byte.
func TestBackendsAgree(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			lin, err := sp.Miner(core.BackendLinear, core.PolicyTSF)
			if err != nil {
				t.Fatal(err)
			}
			xt, err := sp.Miner(core.BackendXTree, core.PolicyTSF)
			if err != nil {
				t.Fatal(err)
			}
			if lin.Threshold() != xt.Threshold() {
				t.Fatalf("resolved thresholds diverge: linear %v, xtree %v", lin.Threshold(), xt.Threshold())
			}
			a, err := MinimalFingerprints(lin)
			if err != nil {
				t.Fatal(err)
			}
			b, err := MinimalFingerprints(xt)
			if err != nil {
				t.Fatal(err)
			}
			if d := Diff("linear", a, "xtree", b); d != "" {
				t.Fatalf("backends disagree:\n%s", d)
			}
		})
	}
}

// Every spec, all four policies: layer ordering decides how much work
// the search does, never what it answers. All policies must settle
// every subspace to the same verdict.
func TestPoliciesAgree(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			var ref []string
			for _, policy := range Policies() {
				m, err := sp.Miner(core.BackendLinear, policy)
				if err != nil {
					t.Fatal(err)
				}
				got, err := MinimalFingerprints(m)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = got
					continue
				}
				if d := Diff(core.PolicyTSF.String(), ref, policy.String(), got); d != "" {
					t.Fatalf("policy %v disagrees with %v:\n%s", policy, core.PolicyTSF, d)
				}
			}
		})
	}
}

// Every spec: the batched path (shared per-batch OD cache, worker
// fan-out, pooled evaluators) must be indistinguishable from the
// single-query path.
func TestBatchedMatchesSingle(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range Backends() {
				m, err := sp.Miner(backend, core.PolicyTSF)
				if err != nil {
					t.Fatal(err)
				}
				single, err := MinimalFingerprints(m)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					batched, err := BatchMinimalFingerprints(m, workers)
					if err != nil {
						t.Fatal(err)
					}
					if d := Diff("single", single, "batched", batched); d != "" {
						t.Fatalf("backend %v workers %d: batched path diverged:\n%s", backend, workers, d)
					}
				}
			}
		})
	}
}

// The batched path must also agree across policies — the combination
// matters because PolicyRandom consumes per-call deterministic rngs
// on the batch path and the Miner's own rng on the sequential path.
func TestBatchedPoliciesAgree(t *testing.T) {
	sp := DefaultSpecs()[0]
	var ref []string
	for _, policy := range Policies() {
		m, err := sp.Miner(core.BackendLinear, policy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BatchMinimalFingerprints(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if d := Diff("first-policy", ref, policy.String(), got); d != "" {
			t.Fatalf("batched policy %v diverged:\n%s", policy, d)
		}
	}
}

// Every spec, both backends, shard widths 1/2/7, both partitioners:
// the sharded scatter-gather engine must be invisible in the answers.
// The per-shard top-k merge reconstructs the exact global neighbour
// set (shard.Merge), so OD values — and with them every outlying
// verdict — must match the single-index miner byte for byte.
func TestShardedMatchesUnsharded(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			ref, err := sp.Miner(core.BackendLinear, core.PolicyTSF)
			if err != nil {
				t.Fatal(err)
			}
			want, err := MinimalFingerprints(ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, backend := range Backends() {
				for _, widths := range ShardWidths() {
					for _, part := range Partitioners() {
						m, err := sp.ShardedMiner(backend, core.PolicyTSF, widths, part)
						if err != nil {
							t.Fatal(err)
						}
						if m.Threshold() != ref.Threshold() {
							t.Fatalf("%v/%d/%v: thresholds diverge: %v vs %v",
								backend, widths, part, m.Threshold(), ref.Threshold())
						}
						got, err := MinimalFingerprints(m)
						if err != nil {
							t.Fatal(err)
						}
						name := fmt.Sprintf("%v shards=%d part=%v", backend, widths, part)
						if d := Diff("unsharded", want, name, got); d != "" {
							t.Fatalf("sharded engine diverged (%s):\n%s", name, d)
						}
					}
				}
			}
		})
	}
}

// All four policies through sharded engines: ordering must stay
// answer-invariant when the backend underneath is a scatter-gather.
func TestShardedPoliciesAgree(t *testing.T) {
	sp := DefaultSpecs()[0]
	ref, err := sp.Miner(core.BackendLinear, core.PolicyTSF)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MinimalFingerprints(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range Policies() {
		for _, part := range Partitioners() {
			m, err := sp.ShardedMiner(core.BackendLinear, policy, 7, part)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MinimalFingerprints(m)
			if err != nil {
				t.Fatal(err)
			}
			if d := Diff("unsharded-tsf", want, policy.String(), got); d != "" {
				t.Fatalf("sharded policy %v (%v) diverged:\n%s", policy, part, d)
			}
		}
	}
}

// The sharded engine under the batched path — the full stack the
// server runs when both features are on at once.
func TestShardedBatchedMatchesSingle(t *testing.T) {
	sp := DefaultSpecs()[1] // includes the learning phase
	m, err := sp.ShardedMiner(core.BackendLinear, core.PolicyTSF, 2, shard.HashPoint)
	if err != nil {
		t.Fatal(err)
	}
	single, err := MinimalFingerprints(m)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := BatchMinimalFingerprints(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff("single", single, "sharded-batched", batched); d != "" {
		t.Fatalf("sharded batch path diverged:\n%s", d)
	}
}

// Property test: shard.Merge is order-independent — any permutation
// of per-shard partials (and any order within one partial) merges to
// the same global top-k. This is the algebraic fact that makes the
// scatter-gather engine's answers independent of shard scheduling.
func TestShardMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(6)
		nParts := 1 + rng.Intn(5)
		var partials [][]knn.Neighbor
		idx := 0
		for p := 0; p < nParts; p++ {
			m := rng.Intn(k + 3)
			part := make([]knn.Neighbor, 0, m)
			for j := 0; j < m; j++ {
				part = append(part, knn.Neighbor{Index: idx, Dist: float64(rng.Intn(5))})
				idx++
			}
			partials = append(partials, part)
		}
		want := shard.Merge(k, partials...)
		perm := rng.Perm(len(partials))
		shuffled := make([][]knn.Neighbor, len(partials))
		for i, p := range perm {
			in := append([]knn.Neighbor(nil), partials[p]...)
			rng.Shuffle(len(in), func(a, b int) { in[a], in[b] = in[b], in[a] })
			shuffled[i] = in
		}
		got := shard.Merge(k, shuffled...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge depends on order:\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestFingerprint(t *testing.T) {
	a := []subspace.Mask{subspace.New(0, 2), subspace.New(1)}
	b := []subspace.Mask{subspace.New(1), subspace.New(0, 2)} // same set, shuffled
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint is order-sensitive")
	}
	if Fingerprint(a) == Fingerprint([]subspace.Mask{subspace.New(1)}) {
		t.Fatal("fingerprint collides across different sets")
	}
	if Fingerprint(nil) != "" {
		t.Fatal("empty set fingerprint not empty")
	}
}

func TestDiff(t *testing.T) {
	if d := Diff("a", []string{"x", "y"}, "b", []string{"x", "y"}); d != "" {
		t.Fatalf("identical slices diff %q", d)
	}
	if d := Diff("a", []string{"x"}, "b", []string{"x", "y"}); d == "" {
		t.Fatal("length mismatch not reported")
	}
	if d := Diff("a", []string{"x", "y"}, "b", []string{"x", "z"}); d == "" {
		t.Fatal("content mismatch not reported")
	}
}
