package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/subspace"
)

// Every spec, linear vs X-tree: the k-NN backend must be invisible in
// the answers. OD values depend only on the neighbour set, and both
// backends implement the same exact-k-NN contract, so the minimal
// outlying subspaces must match byte for byte.
func TestBackendsAgree(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			lin, err := sp.Miner(core.BackendLinear, core.PolicyTSF)
			if err != nil {
				t.Fatal(err)
			}
			xt, err := sp.Miner(core.BackendXTree, core.PolicyTSF)
			if err != nil {
				t.Fatal(err)
			}
			if lin.Threshold() != xt.Threshold() {
				t.Fatalf("resolved thresholds diverge: linear %v, xtree %v", lin.Threshold(), xt.Threshold())
			}
			a, err := MinimalFingerprints(lin)
			if err != nil {
				t.Fatal(err)
			}
			b, err := MinimalFingerprints(xt)
			if err != nil {
				t.Fatal(err)
			}
			if d := Diff("linear", a, "xtree", b); d != "" {
				t.Fatalf("backends disagree:\n%s", d)
			}
		})
	}
}

// Every spec, all four policies: layer ordering decides how much work
// the search does, never what it answers. All policies must settle
// every subspace to the same verdict.
func TestPoliciesAgree(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			var ref []string
			for _, policy := range Policies() {
				m, err := sp.Miner(core.BackendLinear, policy)
				if err != nil {
					t.Fatal(err)
				}
				got, err := MinimalFingerprints(m)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = got
					continue
				}
				if d := Diff(core.PolicyTSF.String(), ref, policy.String(), got); d != "" {
					t.Fatalf("policy %v disagrees with %v:\n%s", policy, core.PolicyTSF, d)
				}
			}
		})
	}
}

// Every spec: the batched path (shared per-batch OD cache, worker
// fan-out, pooled evaluators) must be indistinguishable from the
// single-query path.
func TestBatchedMatchesSingle(t *testing.T) {
	for _, sp := range DefaultSpecs() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range Backends() {
				m, err := sp.Miner(backend, core.PolicyTSF)
				if err != nil {
					t.Fatal(err)
				}
				single, err := MinimalFingerprints(m)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					batched, err := BatchMinimalFingerprints(m, workers)
					if err != nil {
						t.Fatal(err)
					}
					if d := Diff("single", single, "batched", batched); d != "" {
						t.Fatalf("backend %v workers %d: batched path diverged:\n%s", backend, workers, d)
					}
				}
			}
		})
	}
}

// The batched path must also agree across policies — the combination
// matters because PolicyRandom consumes per-call deterministic rngs
// on the batch path and the Miner's own rng on the sequential path.
func TestBatchedPoliciesAgree(t *testing.T) {
	sp := DefaultSpecs()[0]
	var ref []string
	for _, policy := range Policies() {
		m, err := sp.Miner(core.BackendLinear, policy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BatchMinimalFingerprints(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if d := Diff("first-policy", ref, policy.String(), got); d != "" {
			t.Fatalf("batched policy %v diverged:\n%s", policy, d)
		}
	}
}

func TestFingerprint(t *testing.T) {
	a := []subspace.Mask{subspace.New(0, 2), subspace.New(1)}
	b := []subspace.Mask{subspace.New(1), subspace.New(0, 2)} // same set, shuffled
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint is order-sensitive")
	}
	if Fingerprint(a) == Fingerprint([]subspace.Mask{subspace.New(1)}) {
		t.Fatal("fingerprint collides across different sets")
	}
	if Fingerprint(nil) != "" {
		t.Fatal("empty set fingerprint not empty")
	}
}

func TestDiff(t *testing.T) {
	if d := Diff("a", []string{"x", "y"}, "b", []string{"x", "y"}); d != "" {
		t.Fatalf("identical slices diff %q", d)
	}
	if d := Diff("a", []string{"x"}, "b", []string{"x", "y"}); d == "" {
		t.Fatal("length mismatch not reported")
	}
	if d := Diff("a", []string{"x", "y"}, "b", []string{"x", "z"}); d == "" {
		t.Fatal("content mismatch not reported")
	}
}
