package conformance

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

// snapshotWidths are the engine widths the snapshot differential
// crosses: unsharded (0), a one-shard scatter-gather engine (1), and
// a prime width with unevenly sized shards (7) — the acceptance
// criterion's pair plus the degenerate plumbing case.
func snapshotWidths() []int { return []int{0, 1, 7} }

// TestSnapshotRestoredMatchesFresh is the warm-start conformance
// spec: for both k-NN backends and every snapshot width, a miner
// restored from the binary snapshot format must answer the /query,
// /scan and /batch operations byte-identically to the freshly
// generated and freshly indexed miner it was captured from.
func TestSnapshotRestoredMatchesFresh(t *testing.T) {
	specs := DefaultSpecs()[:3] // spans threshold styles and the learning phase
	for _, sp := range specs {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			for _, backend := range Backends() {
				for _, width := range snapshotWidths() {
					name := fmt.Sprintf("%v/width=%d", backend, width)
					fresh, err := sp.ShardedMiner(backend, core.PolicyTSF, width, shard.RoundRobin)
					if err != nil {
						t.Fatal(err)
					}
					warm, err := sp.RestoredMiner(backend, core.PolicyTSF, width, shard.RoundRobin)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if warm.Threshold() != fresh.Threshold() {
						t.Fatalf("%s: thresholds diverge: %v vs %v", name, warm.Threshold(), fresh.Threshold())
					}
					if warm.NumShards() != fresh.NumShards() {
						t.Fatalf("%s: widths diverge: %d vs %d", name, warm.NumShards(), fresh.NumShards())
					}

					// /query: every point's minimal outlying subspaces.
					want, err := MinimalFingerprints(fresh)
					if err != nil {
						t.Fatal(err)
					}
					got, err := MinimalFingerprints(warm)
					if err != nil {
						t.Fatal(err)
					}
					if d := Diff("fresh", want, "restored", got); d != "" {
						t.Fatalf("%s: query path diverged:\n%s", name, d)
					}

					// /scan: full sweep with severity ranking, including the
					// exact OD bits.
					wantScan, err := ScanFingerprints(fresh, 2)
					if err != nil {
						t.Fatal(err)
					}
					gotScan, err := ScanFingerprints(warm, 2)
					if err != nil {
						t.Fatal(err)
					}
					if d := Diff("fresh-scan", wantScan, "restored-scan", gotScan); d != "" {
						t.Fatalf("%s: scan path diverged:\n%s", name, d)
					}

					// /batch: the batched execution path over the restored
					// engine.
					gotBatch, err := BatchMinimalFingerprints(warm, 3)
					if err != nil {
						t.Fatal(err)
					}
					if d := Diff("fresh", want, "restored-batch", gotBatch); d != "" {
						t.Fatalf("%s: batch path diverged:\n%s", name, d)
					}
				}
			}
		})
	}
}

// TestSnapshotRestoredAcrossPartitioners covers the hash partitioner
// arm: a snapshot of a hash-partitioned engine restores to the same
// topology and the same answers.
func TestSnapshotRestoredAcrossPartitioners(t *testing.T) {
	sp := DefaultSpecs()[1] // includes the learning phase
	for _, part := range Partitioners() {
		fresh, err := sp.ShardedMiner(core.BackendXTree, core.PolicyTSF, 7, part)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := sp.RestoredMiner(core.BackendXTree, core.PolicyTSF, 7, part)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MinimalFingerprints(fresh)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MinimalFingerprints(warm)
		if err != nil {
			t.Fatal(err)
		}
		if d := Diff("fresh", want, fmt.Sprintf("restored-%v", part), got); d != "" {
			t.Fatalf("partitioner %v: restored engine diverged:\n%s", part, d)
		}
	}
}
