package knn

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// TestBoundedHeapResetReuses: Reset returns a drained heap to service,
// retaining its backing storage, and the results after reuse are
// exactly what a fresh heap would produce.
func TestBoundedHeapResetReuses(t *testing.T) {
	h := NewBoundedHeap(3)
	for i, d := range []float64{5, 1, 4, 2, 3} {
		h.Push(i, d)
	}
	first := h.Sorted()
	if len(first) != 3 || first[0].Dist != 1 || first[2].Dist != 3 {
		t.Fatalf("first drain = %+v", first)
	}

	h.Reset(2)
	for i, d := range []float64{9, 7, 8} {
		h.Push(i, d)
	}
	second := h.Sorted()
	if len(second) != 2 || second[0].Dist != 7 || second[1].Dist != 8 {
		t.Fatalf("after Reset: %+v", second)
	}
	// Reset may also change k.
	h.Reset(1)
	h.Push(0, 42)
	if got := h.Sorted(); len(got) != 1 || got[0].Dist != 42 {
		t.Fatalf("after second Reset: %+v", got)
	}
}

// TestBoundedHeapPushAfterDrainPanics: Sorted hands out the heap's
// backing array, so a Push without an intervening Reset would corrupt
// a result the caller may still hold — it must panic, loudly and
// specifically.
func TestBoundedHeapPushAfterDrainPanics(t *testing.T) {
	h := NewBoundedHeap(2)
	h.Push(0, 1)
	_ = h.Sorted()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Push after Sorted did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "Reset") {
			t.Fatalf("panic = %v, want a message pointing at Reset", r)
		}
	}()
	h.Push(1, 2)
}

// TestBoundedHeapSortedIdempotentSafety: a second Sorted without Push
// in between is harmless (it re-sorts the same storage).
func TestBoundedHeapSortedTwice(t *testing.T) {
	h := NewBoundedHeap(3)
	for i, d := range []float64{3, 1, 2} {
		h.Push(i, d)
	}
	a := h.Sorted()
	b := h.Sorted()
	if len(a) != len(b) {
		t.Fatalf("second Sorted changed length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("second Sorted changed order at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSearcherStatsConcurrentWithQueries is the regression test for
// the Stats data race: one goroutine queries (KNN is single-goroutine
// per searcher), while many goroutines hammer Stats and ResetStats.
// Run under -race this fails deterministically with the old plain
// int64 counters.
func TestSearcherStatsConcurrentWithQueries(t *testing.T) {
	ds, err := vector.FromRows([][]float64{
		{0, 0}, {1, 0}, {0, 1}, {2, 2}, {3, 1}, {5, 5}, {1, 4}, {2, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLinear(ds, vector.L2)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const iters = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := ls.Stats()
				if st.Queries < 0 || st.PointsExamined < 0 {
					t.Error("counter went negative")
					return
				}
				if r == 0 {
					ls.ResetStats()
				}
			}
		}(r)
	}
	for i := 0; i < iters; i++ {
		nbs := ls.KNN(ds.Point(i%ds.N()), subspace.Full(2), 3, i%ds.N())
		if len(nbs) != 3 {
			t.Errorf("iter %d: got %d neighbours", i, len(nbs))
			break
		}
	}
	close(stop)
	wg.Wait()
}
