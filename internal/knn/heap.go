package knn

// BoundedHeap keeps the k smallest (distance, index) pairs seen so
// far. It is a hand-rolled binary max-heap on distance (ties: larger
// index nearer the top, so the kept set is deterministic), avoiding
// container/heap's interface overhead in the innermost loop of every
// OD evaluation.
//
// Sorted drains the heap in place; afterwards the heap is in the
// drained state and Push panics until Reset restores it. Reset keeps
// the backing array, so a pooled heap reaches a steady state where
// neither filling nor draining allocates.
type BoundedHeap struct {
	k       int
	items   []Neighbor // max-heap by (Dist, Index); sorted ascending once drained
	drained bool
}

// NewBoundedHeap creates a heap retaining the k nearest items.
func NewBoundedHeap(k int) *BoundedHeap {
	return &BoundedHeap{k: k, items: make([]Neighbor, 0, max(k, 0))}
}

// Reset returns the heap to the empty, undrained state with capacity
// k, reusing the existing backing array. Results previously obtained
// from Sorted are invalidated by the next Push.
//
//hos:hotpath
func (h *BoundedHeap) Reset(k int) {
	h.k = k
	h.items = h.items[:0]
	h.drained = false
}

// less orders the heap: a dominates b (sits closer to the top) when a
// is farther, or equally far with a larger index.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Index > b.Index
}

// Push offers a candidate. It is kept only if the heap is not yet full
// or the candidate beats the current worst. Push panics after Sorted:
// a drained heap silently dropping candidates was a real bug source,
// so reuse requires an explicit Reset.
//
//hos:hotpath
func (h *BoundedHeap) Push(index int, dist float64) {
	if h.drained {
		panic("knn: BoundedHeap.Push after Sorted drained the heap; call Reset(k) before reuse")
	}
	nb := Neighbor{Index: index, Dist: dist}
	if len(h.items) < h.k {
		h.items = append(h.items, nb)
		h.siftUp(len(h.items) - 1)
		return
	}
	if !worse(h.items[0], nb) {
		return // candidate is no better than the current worst
	}
	h.items[0] = nb
	h.siftDown(0, len(h.items))
}

// Full reports whether k items are held.
func (h *BoundedHeap) Full() bool { return len(h.items) >= h.k }

// Len returns the number of items currently held.
func (h *BoundedHeap) Len() int { return len(h.items) }

// WorstDist returns the largest retained distance, or +Inf semantics
// via ok=false when the heap is not yet full (any candidate would be
// accepted).
func (h *BoundedHeap) WorstDist() (float64, bool) {
	if len(h.items) < h.k {
		return 0, false
	}
	return h.items[0].Dist, true
}

// Sorted drains the heap in place into a slice sorted by ascending
// distance, ties by ascending index. The returned slice aliases the
// heap's backing array: it stays valid until the next Reset/Push, and
// the heap must be Reset before it accepts candidates again.
//
//hos:hotpath
func (h *BoundedHeap) Sorted() []Neighbor {
	h.drained = true
	items := h.items
	// In-place heapsort: repeatedly move the max (farthest) to the end.
	// The comparator is a total order (indices are unique), so the
	// result is deterministic and matches the sort.Slice ordering the
	// drain previously used — without its closure allocation.
	for n := len(items); n > 1; n-- {
		items[0], items[n-1] = items[n-1], items[0]
		h.siftDown(0, n-1)
	}
	return items
}

func (h *BoundedHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// siftDown restores the heap property at i within the first n items
// (the bound lets the in-place heapsort shrink the heap as it drains).
func (h *BoundedHeap) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse(h.items[l], h.items[largest]) {
			largest = l
		}
		if r < n && worse(h.items[r], h.items[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
