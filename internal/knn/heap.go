package knn

import "sort"

// BoundedHeap keeps the k smallest (distance, index) pairs seen so
// far. It is a hand-rolled binary max-heap on distance (ties: larger
// index nearer the top, so the kept set is deterministic), avoiding
// container/heap's interface overhead in the innermost loop of every
// OD evaluation.
type BoundedHeap struct {
	k     int
	items []Neighbor // max-heap by (Dist, Index)
}

// NewBoundedHeap creates a heap retaining the k nearest items.
func NewBoundedHeap(k int) *BoundedHeap {
	return &BoundedHeap{k: k, items: make([]Neighbor, 0, k)}
}

// less orders the heap: a dominates b (sits closer to the top) when a
// is farther, or equally far with a larger index.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Index > b.Index
}

// Push offers a candidate. It is kept only if the heap is not yet full
// or the candidate beats the current worst.
func (h *BoundedHeap) Push(index int, dist float64) {
	nb := Neighbor{Index: index, Dist: dist}
	if len(h.items) < h.k {
		h.items = append(h.items, nb)
		h.siftUp(len(h.items) - 1)
		return
	}
	if !worse(h.items[0], nb) {
		return // candidate is no better than the current worst
	}
	h.items[0] = nb
	h.siftDown(0)
}

// Full reports whether k items are held.
func (h *BoundedHeap) Full() bool { return len(h.items) >= h.k }

// Len returns the number of items currently held.
func (h *BoundedHeap) Len() int { return len(h.items) }

// WorstDist returns the largest retained distance, or +Inf semantics
// via ok=false when the heap is not yet full (any candidate would be
// accepted).
func (h *BoundedHeap) WorstDist() (float64, bool) {
	if len(h.items) < h.k {
		return 0, false
	}
	return h.items[0].Dist, true
}

// Sorted drains the heap into a slice sorted by ascending distance,
// ties by ascending index. The heap must not be reused afterwards.
func (h *BoundedHeap) Sorted() []Neighbor {
	out := h.items
	h.items = nil
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out
}

func (h *BoundedHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *BoundedHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse(h.items[l], h.items[largest]) {
			largest = l
		}
		if r < n && worse(h.items[r], h.items[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
