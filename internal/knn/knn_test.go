package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/subspace"
	"repro/internal/vector"
)

func makeDataset(t *testing.T, rows [][]float64) *vector.Dataset {
	t.Helper()
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewLinearValidation(t *testing.T) {
	if _, err := NewLinear(nil, vector.L2); err == nil {
		t.Fatal("nil dataset accepted")
	}
	ds := makeDataset(t, [][]float64{{1}})
	if _, err := NewLinear(ds, vector.Metric(9)); err == nil {
		t.Fatal("invalid metric accepted")
	}
}

func TestKNNSimple(t *testing.T) {
	ds := makeDataset(t, [][]float64{
		{0, 0}, {1, 0}, {2, 0}, {10, 0}, {0, 100},
	})
	ls, _ := NewLinear(ds, vector.L2)
	// In subspace [0], neighbours of (0,?) are ordered 0,1,2,3 by x.
	nbs := ls.KNN([]float64{0, 0}, subspace.New(0), 3, -1)
	wantIdx := []int{0, 4, 1} // x distances: 0 (pt0), 0 (pt4), 1 (pt1)
	if len(nbs) != 3 {
		t.Fatalf("got %d neighbours", len(nbs))
	}
	for i, nb := range nbs {
		if nb.Index != wantIdx[i] {
			t.Fatalf("neighbour %d = %+v, want index %d", i, nb, wantIdx[i])
		}
	}
	// ties broken by ascending index: pt0 before pt4 at distance 0
	if nbs[0].Index != 0 || nbs[1].Index != 4 {
		t.Fatal("tie-break order wrong")
	}
}

func TestKNNExcludesSelf(t *testing.T) {
	ds := makeDataset(t, [][]float64{{0}, {1}, {2}})
	ls, _ := NewLinear(ds, vector.L2)
	nbs := ls.KNN(ds.Point(0), subspace.New(0), 2, 0)
	for _, nb := range nbs {
		if nb.Index == 0 {
			t.Fatal("excluded point returned")
		}
	}
	if len(nbs) != 2 || nbs[0].Index != 1 || nbs[1].Index != 2 {
		t.Fatalf("nbs = %+v", nbs)
	}
}

func TestKNNFewerThanK(t *testing.T) {
	ds := makeDataset(t, [][]float64{{0}, {1}})
	ls, _ := NewLinear(ds, vector.L2)
	nbs := ls.KNN([]float64{0}, subspace.New(0), 10, 1)
	if len(nbs) != 1 {
		t.Fatalf("got %d, want 1 (dataset minus exclusion)", len(nbs))
	}
}

func TestKNNDegenerateArgs(t *testing.T) {
	ds := makeDataset(t, [][]float64{{0}, {1}})
	ls, _ := NewLinear(ds, vector.L2)
	if nbs := ls.KNN([]float64{0}, subspace.New(0), 0, -1); nbs != nil {
		t.Fatal("k=0 should return nil")
	}
	if nbs := ls.KNN([]float64{0}, subspace.Empty, 2, -1); nbs != nil {
		t.Fatal("empty subspace should return nil")
	}
}

func TestKNNSubspaceSensitivity(t *testing.T) {
	// Point p is far in dim 0, close in dim 1.
	ds := makeDataset(t, [][]float64{
		{0, 0}, {0.1, 0.1}, {0.2, 0}, {100, 0.05},
	})
	ls, _ := NewLinear(ds, vector.L2)
	q := ds.Point(3)
	// KNN results alias searcher scratch: copy the first before the
	// second call invalidates it.
	inDim0 := append([]Neighbor(nil), ls.KNN(q, subspace.New(0), 1, 3)...)
	inDim1 := ls.KNN(q, subspace.New(1), 1, 3)
	if inDim0[0].Dist < 99 {
		t.Fatalf("dim0 nearest = %v, should be far", inDim0[0])
	}
	if inDim1[0].Dist > 0.06 {
		t.Fatalf("dim1 nearest = %v, should be near", inDim1[0])
	}
}

func TestKNNAllMetrics(t *testing.T) {
	ds := makeDataset(t, [][]float64{{0, 0}, {3, 4}, {1, 1}})
	for _, m := range []vector.Metric{vector.L2, vector.L1, vector.LInf} {
		ls, _ := NewLinear(ds, m)
		nbs := ls.KNN([]float64{0, 0}, subspace.New(0, 1), 2, 0)
		if len(nbs) != 2 || nbs[0].Index != 2 {
			t.Fatalf("%v: nbs = %+v", m, nbs)
		}
		want := map[vector.Metric]float64{vector.L2: 5, vector.L1: 7, vector.LInf: 4}[m]
		if math.Abs(nbs[1].Dist-want) > 1e-12 {
			t.Fatalf("%v: dist = %v, want %v", m, nbs[1].Dist, want)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	ds := makeDataset(t, [][]float64{{0}, {1}, {2}, {3}})
	ls, _ := NewLinear(ds, vector.L2)
	ls.KNN([]float64{0}, subspace.New(0), 2, -1)
	ls.KNN([]float64{0}, subspace.New(0), 2, 1)
	st := ls.Stats()
	if st.Queries != 2 {
		t.Fatalf("queries = %d", st.Queries)
	}
	if st.PointsExamined != 4+3 {
		t.Fatalf("points examined = %d, want 7", st.PointsExamined)
	}
	ls.ResetStats()
	if ls.Stats() != (SearchStats{}) {
		t.Fatal("reset failed")
	}
}

func TestStatsAdd(t *testing.T) {
	a := SearchStats{Queries: 1, PointsExamined: 2, NodesVisited: 3}
	b := SearchStats{Queries: 10, PointsExamined: 20, NodesVisited: 30}
	a.Add(b)
	if a != (SearchStats{Queries: 11, PointsExamined: 22, NodesVisited: 33}) {
		t.Fatalf("Add: %+v", a)
	}
}

func TestSumDistances(t *testing.T) {
	if got := SumDistances(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	nbs := []Neighbor{{0, 1.5}, {1, 2.5}}
	if got := SumDistances(nbs); math.Abs(got-4) > 1e-12 {
		t.Fatalf("sum = %v", got)
	}
}

// referenceKNN computes k-NN by full sort — the oracle.
func referenceKNN(ds *vector.Dataset, m vector.Metric, q []float64, s subspace.Mask, k, exclude int) []Neighbor {
	var all []Neighbor
	for i := 0; i < ds.N(); i++ {
		if i == exclude {
			continue
		}
		all = append(all, Neighbor{Index: i, Dist: vector.Dist(m, s, q, ds.Point(i))})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Index < all[j].Index
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TestKNNMatchesReference (property): heap-based scan equals full-sort
// reference on random data for all metrics and random subspaces.
func TestKNNMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 30+rng.Intn(40), 1+rng.Intn(6)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		ds, err := vector.FromRows(rows)
		if err != nil {
			return false
		}
		metric := []vector.Metric{vector.L2, vector.L1, vector.LInf}[rng.Intn(3)]
		ls, err := NewLinear(ds, metric)
		if err != nil {
			return false
		}
		s := subspace.Mask(rng.Uint32()) & subspace.Full(d)
		if s.IsEmpty() {
			s = subspace.Full(d)
		}
		k := 1 + rng.Intn(8)
		exclude := rng.Intn(n)
		q := ds.Point(rng.Intn(n))
		got := ls.KNN(q, s, k, exclude)
		want := referenceKNN(ds, metric, q, s, k, exclude)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Index != want[i].Index || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedHeapBasics(t *testing.T) {
	h := NewBoundedHeap(3)
	if h.Full() {
		t.Fatal("empty heap full")
	}
	if _, ok := h.WorstDist(); ok {
		t.Fatal("WorstDist on non-full heap")
	}
	for i, d := range []float64{5, 1, 3, 2, 4} {
		h.Push(i, d)
	}
	if !h.Full() || h.Len() != 3 {
		t.Fatalf("len = %d", h.Len())
	}
	if w, ok := h.WorstDist(); !ok || w != 3 {
		t.Fatalf("worst = %v, %v", w, ok)
	}
	out := h.Sorted()
	wantD := []float64{1, 2, 3}
	for i := range out {
		if out[i].Dist != wantD[i] {
			t.Fatalf("sorted = %+v", out)
		}
	}
}

func TestBoundedHeapTieBreak(t *testing.T) {
	// With k=2 and three zero-distance candidates, the two smallest
	// indices must be retained.
	h := NewBoundedHeap(2)
	h.Push(7, 0)
	h.Push(3, 0)
	h.Push(5, 0)
	out := h.Sorted()
	if out[0].Index != 3 || out[1].Index != 5 {
		t.Fatalf("tie-break kept %+v", out)
	}
}

func TestBoundedHeapPropertyKSmallest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		k := 1 + rng.Intn(12)
		dists := make([]float64, n)
		h := NewBoundedHeap(k)
		for i := range dists {
			dists[i] = math.Floor(rng.Float64()*100) / 10 // coarse → ties
			h.Push(i, dists[i])
		}
		got := h.Sorted()
		// oracle
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if dists[idx[a]] != dists[idx[b]] {
				return dists[idx[a]] < dists[idx[b]]
			}
			return idx[a] < idx[b]
		})
		want := idx
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Index != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
