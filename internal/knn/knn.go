// Package knn provides k-nearest-neighbour search over a Dataset
// restricted to an arbitrary subspace, the primitive underlying the
// paper's Outlying Degree (§2). Two engines implement the Searcher
// interface: the exhaustive LinearSearcher here and the X-tree-backed
// searcher in internal/xtree.
package knn

import (
	"fmt"
	"math"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// Neighbor is one k-NN result: a dataset point index with its distance
// to the query in the search subspace.
type Neighbor struct {
	Index int
	Dist  float64
}

// Searcher finds the k nearest dataset points to a query within a
// subspace. Implementations must:
//   - exclude the dataset point with index == exclude (pass -1 to keep
//     all points; used so a query that is itself a dataset point is not
//     its own neighbour);
//   - return results sorted by ascending distance, ties broken by
//     ascending index;
//   - return fewer than k neighbours only when the dataset (after
//     exclusion) has fewer than k points.
type Searcher interface {
	KNN(query []float64, s subspace.Mask, k int, exclude int) []Neighbor
	// Stats returns cumulative work counters since construction (or
	// the last ResetStats).
	Stats() SearchStats
	// ResetStats zeroes the work counters.
	ResetStats()
}

// SearchStats counts the work a Searcher has performed. PointsExamined
// is the number of point-to-query distance computations;
// NodesVisited is index-structure specific (0 for a linear scan).
type SearchStats struct {
	Queries        int64
	PointsExamined int64
	NodesVisited   int64
}

// Add accumulates other into s.
func (s *SearchStats) Add(other SearchStats) {
	s.Queries += other.Queries
	s.PointsExamined += other.PointsExamined
	s.NodesVisited += other.NodesVisited
}

// LinearSearcher scans the entire dataset for every query. It is the
// correctness oracle for index-backed searchers and the fastest choice
// for small datasets.
type LinearSearcher struct {
	ds     *vector.Dataset
	metric vector.Metric
	stats  SearchStats
}

// NewLinear creates a LinearSearcher over ds using the given metric.
func NewLinear(ds *vector.Dataset, metric vector.Metric) (*LinearSearcher, error) {
	if ds == nil {
		return nil, fmt.Errorf("knn: nil dataset")
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("knn: invalid metric %v", metric)
	}
	return &LinearSearcher{ds: ds, metric: metric}, nil
}

// KNN implements Searcher by exhaustive scan with a bounded max-heap.
func (l *LinearSearcher) KNN(query []float64, s subspace.Mask, k int, exclude int) []Neighbor {
	l.stats.Queries++
	if k <= 0 || s.IsEmpty() {
		return nil
	}
	h := NewBoundedHeap(k)
	n := l.ds.N()
	useSq := l.metric == vector.L2
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		l.stats.PointsExamined++
		var d float64
		if useSq {
			d = vector.SqDistL2(s, query, l.ds.Point(i))
		} else {
			d = vector.Dist(l.metric, s, query, l.ds.Point(i))
		}
		h.Push(i, d)
	}
	res := h.Sorted()
	if useSq {
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist)
		}
	}
	return res
}

// Stats implements Searcher.
func (l *LinearSearcher) Stats() SearchStats { return l.stats }

// ResetStats implements Searcher.
func (l *LinearSearcher) ResetStats() { l.stats = SearchStats{} }

// SumDistances returns Σ Dist over the neighbours — the Outlying
// Degree aggregation from §2.
func SumDistances(neighbors []Neighbor) float64 {
	var sum float64
	for _, nb := range neighbors {
		sum += nb.Dist
	}
	return sum
}
