// Package knn provides k-nearest-neighbour search over a Dataset
// restricted to an arbitrary subspace, the primitive underlying the
// paper's Outlying Degree (§2). Two engines implement the Searcher
// interface: the exhaustive LinearSearcher here and the X-tree-backed
// searcher in internal/xtree.
package knn

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// Neighbor is one k-NN result: a dataset point index with its distance
// to the query in the search subspace.
type Neighbor struct {
	Index int
	Dist  float64
}

// Searcher finds the k nearest dataset points to a query within a
// subspace. Implementations must:
//   - exclude the dataset point with index == exclude (pass -1 to keep
//     all points; used so a query that is itself a dataset point is not
//     its own neighbour);
//   - return results sorted by ascending distance, ties broken by
//     ascending index;
//   - return fewer than k neighbours only when the dataset (after
//     exclusion) has fewer than k points.
//
// Ownership and concurrency: the returned slice is backed by the
// searcher's reusable scratch — it stays valid only until the next
// KNN call on the same searcher; callers that retain results must
// copy them first. Consequently KNN itself is single-goroutine per
// searcher (give each worker its own searcher over the shared
// dataset/index), while Stats and ResetStats are safe to call
// concurrently with a querying goroutine.
type Searcher interface {
	KNN(query []float64, s subspace.Mask, k int, exclude int) []Neighbor
	// Stats returns cumulative work counters since construction (or
	// the last ResetStats).
	Stats() SearchStats
	// ResetStats zeroes the work counters.
	ResetStats()
}

// SearchStats counts the work a Searcher has performed. PointsExamined
// is the number of point-to-query distance computations;
// NodesVisited is index-structure specific (0 for a linear scan).
type SearchStats struct {
	Queries        int64
	PointsExamined int64
	NodesVisited   int64
}

// Add accumulates other into s.
func (s *SearchStats) Add(other SearchStats) {
	s.Queries += other.Queries
	s.PointsExamined += other.PointsExamined
	s.NodesVisited += other.NodesVisited
}

// AtomicStats is the concurrency-safe counter set behind a Searcher's
// Stats: querying goroutines Add while monitoring goroutines Snapshot,
// without a data race (matching internal/shard's per-shard atomics).
type AtomicStats struct {
	Queries        atomic.Int64
	PointsExamined atomic.Int64
	NodesVisited   atomic.Int64
}

// Snapshot reads the counters into a plain SearchStats. Each counter
// is read atomically; the triple is not a single consistent cut, which
// is fine for monotonic work counters.
func (a *AtomicStats) Snapshot() SearchStats {
	return SearchStats{
		Queries:        a.Queries.Load(),
		PointsExamined: a.PointsExamined.Load(),
		NodesVisited:   a.NodesVisited.Load(),
	}
}

// Reset zeroes the counters.
func (a *AtomicStats) Reset() {
	a.Queries.Store(0)
	a.PointsExamined.Store(0)
	a.NodesVisited.Store(0)
}

// Scratch is the reusable working set a searcher threads through every
// KNN call: the decoded dimension indices of the query subspace and
// the bounded result heap whose backing array carries the returned
// neighbour slice. After the first few queries warm its buffers, a
// searcher's steady state allocates nothing.
type Scratch struct {
	Dims []int
	Heap BoundedHeap
}

// Begin prepares the scratch for one query: decodes s into Dims
// (reusing its backing array) and resets the heap to capacity k. It
// returns the decoded dimension indices.
//
//hos:hotpath
func (sc *Scratch) Begin(s subspace.Mask, k int) []int {
	sc.Dims = s.AppendDims(sc.Dims[:0])
	sc.Heap.Reset(k)
	return sc.Dims
}

// LinearSearcher scans the entire dataset for every query. It is the
// correctness oracle for index-backed searchers and the fastest choice
// for small datasets. See Searcher for the scratch-ownership and
// concurrency contract.
type LinearSearcher struct {
	ds      *vector.Dataset
	metric  vector.Metric
	stats   AtomicStats
	scratch Scratch
}

// NewLinear creates a LinearSearcher over ds using the given metric.
func NewLinear(ds *vector.Dataset, metric vector.Metric) (*LinearSearcher, error) {
	if ds == nil {
		return nil, fmt.Errorf("knn: nil dataset")
	}
	if !metric.Valid() {
		return nil, fmt.Errorf("knn: invalid metric %v", metric)
	}
	return &LinearSearcher{ds: ds, metric: metric}, nil
}

// KNN implements Searcher by exhaustive scan with a bounded max-heap.
//
//hos:hotpath
func (l *LinearSearcher) KNN(query []float64, s subspace.Mask, k int, exclude int) []Neighbor {
	l.stats.Queries.Add(1)
	if k <= 0 || s.IsEmpty() {
		return nil
	}
	dims := l.scratch.Begin(s, k)
	h := &l.scratch.Heap
	n := l.ds.N()
	d := l.ds.Dim()
	slab := l.ds.Slab()
	useSq := l.metric == vector.L2
	examined := 0
	for i, off := 0, 0; i < n; i, off = i+1, off+d {
		if i == exclude {
			continue
		}
		examined++
		row := slab[off : off+d]
		var dist float64
		if useSq {
			dist = vector.SqDistL2Dims(dims, query, row)
		} else {
			dist = vector.DistDims(l.metric, dims, query, row)
		}
		h.Push(i, dist)
	}
	l.stats.PointsExamined.Add(int64(examined))
	res := h.Sorted()
	if useSq {
		for i := range res {
			res[i].Dist = math.Sqrt(res[i].Dist)
		}
	}
	return res
}

// Stats implements Searcher.
func (l *LinearSearcher) Stats() SearchStats { return l.stats.Snapshot() }

// ResetStats implements Searcher.
func (l *LinearSearcher) ResetStats() { l.stats.Reset() }

// SumDistances returns Σ Dist over the neighbours — the Outlying
// Degree aggregation from §2.
func SumDistances(neighbors []Neighbor) float64 {
	var sum float64
	for _, nb := range neighbors {
		sum += nb.Dist
	}
	return sum
}
