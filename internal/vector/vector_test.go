package vector

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/subspace"
)

func mustDataset(t *testing.T, rows [][]float64) *Dataset {
	t.Helper()
	ds, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(make([]float64, 6), 2, 3); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	if _, err := NewDataset(make([]float64, 5), 2, 3); err == nil {
		t.Fatal("mismatched length accepted")
	}
	if _, err := NewDataset(nil, 0, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewDataset(make([]float64, subspace.MaxDim+1), 1, subspace.MaxDim+1); err == nil {
		t.Fatal("over-MaxDim accepted")
	}
}

func TestFromRowsAndPoint(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	if ds.N() != 3 || ds.Dim() != 2 {
		t.Fatalf("shape = (%d,%d)", ds.N(), ds.Dim())
	}
	p := ds.Point(1)
	if p[0] != 3 || p[1] != 4 {
		t.Fatalf("Point(1) = %v", p)
	}
	rows := ds.Rows()
	rows[0][0] = 99 // must be a copy
	if ds.Point(0)[0] == 99 {
		t.Fatal("Rows leaked internal storage")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestColumns(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 2}})
	if got := ds.ColumnName(1); got != "dim1" {
		t.Fatalf("default name = %q", got)
	}
	if err := ds.SetColumns([]string{"speed", "power"}); err != nil {
		t.Fatal(err)
	}
	if got := ds.ColumnName(1); got != "power" {
		t.Fatalf("named = %q", got)
	}
	if err := ds.SetColumns([]string{"only-one"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestAppend(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 2}})
	ds2, err := ds.Append([]float64{3, 4}, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if ds2.N() != 3 || ds.N() != 1 {
		t.Fatalf("append: got %d, original %d", ds2.N(), ds.N())
	}
	if _, err := ds.Append([]float64{1}); err == nil {
		t.Fatal("wrong width accepted")
	}
}

func TestDistKnownValues(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{3, 4, 10}
	s01 := subspace.New(0, 1)
	if got := Dist(L2, s01, a, b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2 = %v, want 5", got)
	}
	if got := Dist(L1, s01, a, b); math.Abs(got-7) > 1e-12 {
		t.Fatalf("L1 = %v, want 7", got)
	}
	if got := Dist(LInf, s01, a, b); math.Abs(got-4) > 1e-12 {
		t.Fatalf("LInf = %v, want 4", got)
	}
	// Single-dimension projections agree across metrics.
	for _, m := range []Metric{L2, L1, LInf} {
		if got := Dist(m, subspace.New(2), a, b); math.Abs(got-10) > 1e-12 {
			t.Fatalf("%v single-dim = %v, want 10", m, got)
		}
	}
}

func TestSqDistL2ConsistentWithDist(t *testing.T) {
	f := func(a0, a1, a2, b0, b1, b2 float64) bool {
		if anyNonFinite(a0, a1, a2, b0, b1, b2) {
			return true
		}
		a := []float64{clamp(a0), clamp(a1), clamp(a2)}
		b := []float64{clamp(b0), clamp(b1), clamp(b2)}
		s := subspace.New(0, 2)
		d := Dist(L2, s, a, b)
		sq := SqDistL2(s, a, b)
		return math.Abs(d*d-sq) <= 1e-9*(1+sq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDistMonotoneInSubspace is the property HOS-Miner's pruning rests
// on (§2): for fixed points, distance can only grow as dimensions are
// added, for every supported metric.
func TestDistMonotoneInSubspace(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64, rawS, rawT uint8) bool {
		if anyNonFinite(a0, a1, a2, a3, b0, b1, b2, b3) {
			return true
		}
		a := []float64{clamp(a0), clamp(a1), clamp(a2), clamp(a3)}
		b := []float64{clamp(b0), clamp(b1), clamp(b2), clamp(b3)}
		sub := subspace.Mask(rawS) & subspace.Full(4)
		sup := sub | (subspace.Mask(rawT) & subspace.Full(4))
		if sub.IsEmpty() {
			return true
		}
		for _, m := range []Metric{L2, L1, LInf} {
			if Dist(m, sup, a, b) < Dist(m, sub, a, b)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(vals [9]float64) bool {
		pts := make([][]float64, 3)
		for i := range pts {
			pts[i] = []float64{clamp(vals[i*3]), clamp(vals[i*3+1]), clamp(vals[i*3+2])}
			for _, v := range pts[i] {
				if math.IsNaN(v) {
					return true
				}
			}
		}
		s := subspace.New(0, 1, 2)
		for _, m := range []Metric{L2, L1, LInf} {
			ab := Dist(m, s, pts[0], pts[1])
			bc := Dist(m, s, pts[1], pts[2])
			ac := Dist(m, s, pts[0], pts[2])
			if ac > ab+bc+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedDist(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1, 1, 1}
	// L2 over m dims between these points is sqrt(m); normalized is 1
	// for every m — dimension bias removed.
	for m := 1; m <= 4; m++ {
		s := subspace.Full(m)
		if got := NormalizedDist(L2, s, a, b); math.Abs(got-1) > 1e-12 {
			t.Fatalf("m=%d: normalized L2 = %v, want 1", m, got)
		}
		if got := NormalizedDist(L1, s, a, b); math.Abs(got-1) > 1e-12 {
			t.Fatalf("m=%d: normalized L1 = %v, want 1", m, got)
		}
	}
}

func TestMetricString(t *testing.T) {
	if L2.String() != "L2" || L1.String() != "L1" || LInf.String() != "LInf" {
		t.Fatal("metric names")
	}
	if !L2.Valid() || Metric(99).Valid() {
		t.Fatal("validity")
	}
}

func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	if v > 1e6 {
		return 1e6
	}
	if v < -1e6 {
		return -1e6
	}
	return v
}

func anyNonFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
