package vector

import "math"

// Distance kernels over precomputed dimension-index slices. They are
// the hot-path counterparts of Dist/SqDistL2: callers decode a
// subspace.Mask once per query (Mask.AppendDims into a scratch slice)
// and then evaluate thousands of point pairs through these kernels
// without the per-dimension closure call of EachDim.
//
// The loops are unrolled 4-wide to amortize loop overhead, but every
// term is accumulated with its own sequential add into a single
// accumulator, in ascending dimension order — exactly the evaluation
// order of the EachDim implementations. Go does not reassociate
// floating-point expressions, so the kernels are bit-identical to
// Dist/SqDistL2 (the differential test in kernels_test.go pins this).

// SqDistL2Dims returns the squared Euclidean distance between a and b
// restricted to the given dimension indices.
//
//hos:hotpath
func SqDistL2Dims(dims []int, a, b []float64) float64 {
	var sum float64
	n := len(dims)
	i := 0
	for ; i+4 <= n; i += 4 {
		k0, k1, k2, k3 := dims[i], dims[i+1], dims[i+2], dims[i+3]
		d0 := a[k0] - b[k0]
		sum += d0 * d0
		d1 := a[k1] - b[k1]
		sum += d1 * d1
		d2 := a[k2] - b[k2]
		sum += d2 * d2
		d3 := a[k3] - b[k3]
		sum += d3 * d3
	}
	for ; i < n; i++ {
		k := dims[i]
		d := a[k] - b[k]
		sum += d * d
	}
	return sum
}

// l1DistDims returns the Manhattan distance restricted to dims.
//
//hos:hotpath
func l1DistDims(dims []int, a, b []float64) float64 {
	var sum float64
	n := len(dims)
	i := 0
	for ; i+4 <= n; i += 4 {
		k0, k1, k2, k3 := dims[i], dims[i+1], dims[i+2], dims[i+3]
		sum += math.Abs(a[k0] - b[k0])
		sum += math.Abs(a[k1] - b[k1])
		sum += math.Abs(a[k2] - b[k2])
		sum += math.Abs(a[k3] - b[k3])
	}
	for ; i < n; i++ {
		k := dims[i]
		sum += math.Abs(a[k] - b[k])
	}
	return sum
}

// lInfDistDims returns the Chebyshev distance restricted to dims.
//
//hos:hotpath
func lInfDistDims(dims []int, a, b []float64) float64 {
	var max float64
	n := len(dims)
	i := 0
	for ; i+4 <= n; i += 4 {
		k0, k1, k2, k3 := dims[i], dims[i+1], dims[i+2], dims[i+3]
		if d := math.Abs(a[k0] - b[k0]); d > max {
			max = d
		}
		if d := math.Abs(a[k1] - b[k1]); d > max {
			max = d
		}
		if d := math.Abs(a[k2] - b[k2]); d > max {
			max = d
		}
		if d := math.Abs(a[k3] - b[k3]); d > max {
			max = d
		}
	}
	for ; i < n; i++ {
		k := dims[i]
		if d := math.Abs(a[k] - b[k]); d > max {
			max = d
		}
	}
	return max
}

// DistDims is the kernel counterpart of Dist: the distance between a
// and b under metric m, restricted to the given dimension indices.
//
//hos:hotpath
func DistDims(m Metric, dims []int, a, b []float64) float64 {
	switch m {
	case L2:
		return math.Sqrt(SqDistL2Dims(dims, a, b))
	case L1:
		return l1DistDims(dims, a, b)
	case LInf:
		return lInfDistDims(dims, a, b)
	default:
		panic("vector: unknown metric")
	}
}
