package vector

import (
	"math"
	"testing"
)

func TestColumnStatsBasic(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 10}, {3, 10}, {5, 10}})
	cs := ds.ColumnStats(0)
	if cs.Min != 1 || cs.Max != 5 {
		t.Fatalf("min/max = %v/%v", cs.Min, cs.Max)
	}
	if math.Abs(cs.Mean-3) > 1e-12 {
		t.Fatalf("mean = %v", cs.Mean)
	}
	wantSd := math.Sqrt((4.0 + 0 + 4.0) / 3.0)
	if math.Abs(cs.StdDev-wantSd) > 1e-12 {
		t.Fatalf("sd = %v, want %v", cs.StdDev, wantSd)
	}
	c1 := ds.ColumnStats(1)
	if c1.StdDev != 0 || c1.Min != 10 || c1.Max != 10 {
		t.Fatalf("constant column stats: %+v", c1)
	}
}

func TestColumnStatsNonFinite(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1}, {math.NaN()}, {3}, {math.Inf(1)}})
	cs := ds.ColumnStats(0)
	if cs.NaNOrInf != 2 || cs.SampleSize != 2 {
		t.Fatalf("non-finite accounting: %+v", cs)
	}
	if cs.Min != 1 || cs.Max != 3 || math.Abs(cs.Mean-2) > 1e-12 {
		t.Fatalf("aggregates should skip non-finite: %+v", cs)
	}
}

func TestColumnStatsAllNonFinite(t *testing.T) {
	ds := mustDataset(t, [][]float64{{math.NaN()}, {math.Inf(-1)}})
	cs := ds.ColumnStats(0)
	if !math.IsNaN(cs.Mean) || !math.IsNaN(cs.Min) {
		t.Fatalf("all-non-finite column should yield NaN aggregates: %+v", cs)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		got, err := Quantile(s, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// input must not be reordered
	if s[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("negative q accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("q>1 accepted")
	}
	if v, err := Quantile([]float64{7}, 0.3); err != nil || v != 7 {
		t.Fatalf("singleton quantile = %v, %v", v, err)
	}
}

func TestMinMaxNormalize(t *testing.T) {
	ds := mustDataset(t, [][]float64{{0, 5, 7}, {10, 5, 9}, {5, 5, 8}})
	norm, stats := ds.MinMaxNormalize()
	// original untouched
	if ds.Point(0)[0] != 0 || ds.Point(1)[0] != 10 {
		t.Fatal("original mutated")
	}
	for i := 0; i < norm.N(); i++ {
		for j := 0; j < norm.Dim(); j++ {
			v := norm.Point(i)[j]
			if v < 0 || v > 1 {
				t.Fatalf("normalized value %v out of [0,1]", v)
			}
		}
	}
	// constant column becomes 0
	if norm.Point(0)[1] != 0 || norm.Point(2)[1] != 0 {
		t.Fatal("constant column should normalize to 0")
	}
	if norm.Point(1)[0] != 1 || norm.Point(0)[0] != 0 {
		t.Fatal("endpoints should map to 0 and 1")
	}
	// round-trip an external point through the same scaling
	np, err := NormalizePoint([]float64{5, 5, 8}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(np[0]-0.5) > 1e-12 || np[1] != 0 || math.Abs(np[2]-0.5) > 1e-12 {
		t.Fatalf("NormalizePoint = %v", np)
	}
	if _, err := NormalizePoint([]float64{1}, stats); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestZScoreNormalize(t *testing.T) {
	ds := mustDataset(t, [][]float64{{2, 1}, {4, 1}, {6, 1}})
	norm, _ := ds.ZScoreNormalize()
	cs := norm.ColumnStats(0)
	if math.Abs(cs.Mean) > 1e-12 {
		t.Fatalf("z-scored mean = %v", cs.Mean)
	}
	if math.Abs(cs.StdDev-1) > 1e-12 {
		t.Fatalf("z-scored sd = %v", cs.StdDev)
	}
	if norm.ColumnStats(1).StdDev != 0 {
		t.Fatal("constant column must stay constant")
	}
}

func TestStatsAllColumns(t *testing.T) {
	ds := mustDataset(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	all := ds.Stats()
	if len(all) != 3 {
		t.Fatalf("Stats len = %d", len(all))
	}
	if all[2].Max != 6 || all[0].Min != 1 {
		t.Fatalf("Stats content: %+v", all)
	}
}
