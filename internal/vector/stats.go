package vector

import (
	"fmt"
	"math"
	"sort"
)

// ColumnStats summarises one dimension of a dataset.
type ColumnStats struct {
	Min, Max   float64
	Mean       float64
	StdDev     float64 // population standard deviation
	NaNOrInf   int     // count of non-finite values encountered
	SampleSize int
}

// Stats computes per-dimension summary statistics. Non-finite values
// are counted but excluded from the aggregates.
func (ds *Dataset) Stats() []ColumnStats {
	out := make([]ColumnStats, ds.d)
	for j := range out {
		out[j] = ds.ColumnStats(j)
	}
	return out
}

// ColumnStats computes summary statistics for dimension j.
func (ds *Dataset) ColumnStats(j int) ColumnStats {
	cs := ColumnStats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for i := 0; i < ds.n; i++ {
		v := ds.data[i*ds.d+j]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			cs.NaNOrInf++
			continue
		}
		cs.SampleSize++
		if v < cs.Min {
			cs.Min = v
		}
		if v > cs.Max {
			cs.Max = v
		}
		sum += v
		sumSq += v * v
	}
	if cs.SampleSize > 0 {
		n := float64(cs.SampleSize)
		cs.Mean = sum / n
		variance := sumSq/n - cs.Mean*cs.Mean
		if variance < 0 {
			variance = 0 // numeric noise
		}
		cs.StdDev = math.Sqrt(variance)
	} else {
		cs.Min, cs.Max = math.NaN(), math.NaN()
		cs.Mean, cs.StdDev = math.NaN(), math.NaN()
	}
	return cs
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the given sample
// using linear interpolation between order statistics. It returns an
// error on an empty sample or out-of-range q. The input slice is not
// modified.
func Quantile(sample []float64, q float64) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("vector: quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("vector: quantile %v out of [0,1]", q)
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MinMaxNormalize rescales every dimension to [0,1] in place (a new
// Dataset is returned; the receiver is unchanged). Constant dimensions
// map to 0. The returned scale information allows denormalization.
func (ds *Dataset) MinMaxNormalize() (*Dataset, []ColumnStats) {
	stats := ds.Stats()
	out := ds.Clone()
	for j := 0; j < ds.d; j++ {
		lo, hi := stats[j].Min, stats[j].Max
		span := hi - lo
		for i := 0; i < ds.n; i++ {
			idx := i*ds.d + j
			if span > 0 {
				out.data[idx] = (out.data[idx] - lo) / span
			} else {
				out.data[idx] = 0
			}
		}
	}
	return out, stats
}

// ZScoreNormalize standardises every dimension to zero mean and unit
// variance (constant dimensions map to 0). A new Dataset is returned.
func (ds *Dataset) ZScoreNormalize() (*Dataset, []ColumnStats) {
	stats := ds.Stats()
	out := ds.Clone()
	for j := 0; j < ds.d; j++ {
		mu, sd := stats[j].Mean, stats[j].StdDev
		for i := 0; i < ds.n; i++ {
			idx := i*ds.d + j
			if sd > 0 {
				out.data[idx] = (out.data[idx] - mu) / sd
			} else {
				out.data[idx] = 0
			}
		}
	}
	return out, stats
}

// NormalizePoint applies the same min-max rescaling captured by stats
// to an external point (e.g. a query that was not part of the
// dataset). Values outside the observed range extrapolate linearly.
func NormalizePoint(p []float64, stats []ColumnStats) ([]float64, error) {
	if len(p) != len(stats) {
		return nil, fmt.Errorf("vector: point has %d dims, stats %d", len(p), len(stats))
	}
	out := make([]float64, len(p))
	for j, v := range p {
		span := stats[j].Max - stats[j].Min
		if span > 0 {
			out[j] = (v - stats[j].Min) / span
		} else {
			out[j] = 0
		}
	}
	return out, nil
}
