package vector

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/subspace"
)

// TestKernelsBitIdenticalToEachDim pins the unrolled dims-slice
// kernels to the naive EachDim implementations bit for bit: same
// accumulator, same sequential add order, so math.Float64bits must
// match exactly — not approximately — across metrics, dimensionalities
// 1..16 and a spread of subspace masks.
func TestKernelsBitIdenticalToEachDim(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	metrics := []Metric{L2, L1, LInf}
	for d := 1; d <= 16; d++ {
		a := make([]float64, d)
		b := make([]float64, d)
		for trial := 0; trial < 50; trial++ {
			for j := 0; j < d; j++ {
				// NaN-free, ±0-free fixtures spanning magnitudes.
				a[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
				b[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
			}
			masks := []subspace.Mask{subspace.Full(d)}
			for m := 0; m < 8; m++ {
				if mk := subspace.Mask(rng.Uint32()) & subspace.Full(d); !mk.IsEmpty() {
					masks = append(masks, mk)
				}
			}
			for _, mask := range masks {
				dims := mask.AppendDims(nil)
				if sq, want := SqDistL2Dims(dims, a, b), SqDistL2(mask, a, b); math.Float64bits(sq) != math.Float64bits(want) {
					t.Fatalf("SqDistL2Dims(d=%d, mask=%v) = %v, EachDim form = %v", d, mask, sq, want)
				}
				for _, metric := range metrics {
					got := DistDims(metric, dims, a, b)
					want := Dist(metric, mask, a, b)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("DistDims(%v, d=%d, mask=%v) = %v, EachDim form = %v", metric, d, mask, got, want)
					}
				}
			}
		}
	}
}

// TestAppendDimsReusesBacking covers the scratch-reuse contract of
// Mask.AppendDims.
func TestAppendDimsReusesBacking(t *testing.T) {
	buf := make([]int, 0, 8)
	m := subspace.New(0, 2, 5)
	got := m.AppendDims(buf[:0])
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("AppendDims = %v, want [0 2 5]", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatalf("AppendDims reallocated despite sufficient capacity")
	}
	if n := testing.AllocsPerRun(100, func() { got = m.AppendDims(got[:0]) }); n != 0 {
		t.Fatalf("AppendDims into scratch allocates %v times per run, want 0", n)
	}
}
