// Package vector provides the numeric substrate of the HOS-Miner
// reproduction: dense datasets of d-dimensional points, subspace-
// projected L_p distances, normalization and summary statistics.
//
// Points are stored in a single flat float64 backing array for cache
// locality; Point(i) returns a zero-copy view.
package vector

import (
	"fmt"
	"math"

	"repro/internal/subspace"
)

// Metric identifies the distance used to compare points.
type Metric uint8

const (
	// L2 is the Euclidean metric (paper default).
	L2 Metric = iota
	// L1 is the Manhattan metric.
	L1
	// LInf is the Chebyshev metric.
	LInf
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "L2"
	case L1:
		return "L1"
	case LInf:
		return "LInf"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

// Valid reports whether m is a defined metric.
func (m Metric) Valid() bool { return m <= LInf }

// Dataset is an immutable, flat-backed collection of n points in d
// dimensions.
type Dataset struct {
	data []float64 // len = n*d, row-major
	n    int
	d    int
	cols []string // optional column names, len d when present
}

// NewDataset wraps row-major data (len must be n*d) into a Dataset.
// The slice is taken over without copying.
func NewDataset(data []float64, n, d int) (*Dataset, error) {
	if n < 0 || d <= 0 {
		return nil, fmt.Errorf("vector: invalid shape n=%d d=%d", n, d)
	}
	if d > subspace.MaxDim {
		return nil, fmt.Errorf("vector: dimensionality %d exceeds supported maximum %d", d, subspace.MaxDim)
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("vector: data length %d != n*d = %d", len(data), n*d)
	}
	return &Dataset{data: data, n: n, d: d}, nil
}

// FromRows builds a Dataset by copying a slice of equal-length rows.
func FromRows(rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("vector: empty dataset")
	}
	d := len(rows[0])
	flat := make([]float64, 0, len(rows)*d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("vector: row %d has %d values, want %d", i, len(r), d)
		}
		flat = append(flat, r...)
	}
	return NewDataset(flat, len(rows), d)
}

// N returns the number of points.
func (ds *Dataset) N() int { return ds.n }

// Dim returns the dimensionality.
func (ds *Dataset) Dim() int { return ds.d }

// Point returns a zero-copy view of point i. The caller must not
// mutate it.
func (ds *Dataset) Point(i int) []float64 {
	return ds.data[i*ds.d : (i+1)*ds.d : (i+1)*ds.d]
}

// Slab returns the flat row-major backing array (len N*Dim). It is
// shared, not a copy: callers must treat it as read-only. Hot loops
// use it to stride through rows without per-point slicing overhead.
func (ds *Dataset) Slab() []float64 { return ds.data }

// Rows materialises all points as a slice of copies.
func (ds *Dataset) Rows() [][]float64 {
	out := make([][]float64, ds.n)
	for i := range out {
		row := make([]float64, ds.d)
		copy(row, ds.Point(i))
		out[i] = row
	}
	return out
}

// SetColumns attaches column names (len must equal Dim).
func (ds *Dataset) SetColumns(cols []string) error {
	if len(cols) != ds.d {
		return fmt.Errorf("vector: %d column names for %d dims", len(cols), ds.d)
	}
	ds.cols = append([]string(nil), cols...)
	return nil
}

// Columns returns the column names, or nil if none were set.
func (ds *Dataset) Columns() []string { return ds.cols }

// ColumnName returns the name of dimension i, or "dim<i>" when
// unnamed.
func (ds *Dataset) ColumnName(i int) string {
	if ds.cols != nil && i >= 0 && i < len(ds.cols) {
		return ds.cols[i]
	}
	return fmt.Sprintf("dim%d", i)
}

// Clone returns a deep copy of the dataset.
func (ds *Dataset) Clone() *Dataset {
	data := make([]float64, len(ds.data))
	copy(data, ds.data)
	out := &Dataset{data: data, n: ds.n, d: ds.d}
	if ds.cols != nil {
		out.cols = append([]string(nil), ds.cols...)
	}
	return out
}

// Append returns a new Dataset with the given rows appended. The
// receiver is unchanged.
func (ds *Dataset) Append(rows ...[]float64) (*Dataset, error) {
	data := make([]float64, len(ds.data), len(ds.data)+len(rows)*ds.d)
	copy(data, ds.data)
	for i, r := range rows {
		if len(r) != ds.d {
			return nil, fmt.Errorf("vector: appended row %d has %d values, want %d", i, len(r), ds.d)
		}
		data = append(data, r...)
	}
	out := &Dataset{data: data, n: ds.n + len(rows), d: ds.d}
	if ds.cols != nil {
		out.cols = append([]string(nil), ds.cols...)
	}
	return out, nil
}

// Dist computes the distance between points a and b restricted to the
// dimensions of subspace s under metric m. It panics when s includes
// dimensions beyond len(a) or len(b) (programming error).
func Dist(m Metric, s subspace.Mask, a, b []float64) float64 {
	switch m {
	case L2:
		var sum float64
		s.EachDim(func(d int) {
			diff := a[d] - b[d]
			sum += diff * diff
		})
		return math.Sqrt(sum)
	case L1:
		var sum float64
		s.EachDim(func(d int) {
			sum += math.Abs(a[d] - b[d])
		})
		return sum
	case LInf:
		var max float64
		s.EachDim(func(d int) {
			if diff := math.Abs(a[d] - b[d]); diff > max {
				max = diff
			}
		})
		return max
	default:
		panic("vector: unknown metric")
	}
}

// SqDistL2 returns the squared Euclidean distance in subspace s; it is
// cheaper than Dist(L2, ...) and order-equivalent, which suffices for
// nearest-neighbour ranking.
func SqDistL2(s subspace.Mask, a, b []float64) float64 {
	var sum float64
	s.EachDim(func(d int) {
		diff := a[d] - b[d]
		sum += diff * diff
	})
	return sum
}

// NormalizedDist divides Dist by a cardinality factor so that
// distances remain comparable across subspace dimensionalities:
// sqrt(|s|) for L2, |s| for L1, 1 for LInf. See DESIGN.md ("Threshold
// semantics").
func NormalizedDist(m Metric, s subspace.Mask, a, b []float64) float64 {
	d := Dist(m, s, a, b)
	switch m {
	case L2:
		return d / math.Sqrt(float64(s.Card()))
	case L1:
		return d / float64(s.Card())
	default:
		return d
	}
}
