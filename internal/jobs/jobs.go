// Package jobs is a bounded asynchronous job subsystem: a fixed-depth
// queue feeding a fixed-size worker pool, with observable monotonic
// progress, cooperative cancellation, TTL'd results and graceful
// drain. It exists for work that outlives any sane request deadline —
// the full-lattice scan of HOS-Miner is the motivating case: a scan
// over a large dataset can run for minutes, and the synchronous /scan
// endpoint used to throw all completed work away at its deadline.
// Submitting the same sweep as a job converts it into resumable,
// observable work: the client polls for progress and fetches the
// result when the job lands.
//
// Admission control is circuit-style, cribbed from the throttled
// breaker shape: the queue depth is the error budget, a full queue
// rejects instantly with ErrQueueFull (never blocks the caller), and
// RetryAfter estimates — from a smoothed run-time of recent jobs and
// the current backlog — when capacity will next free up, so the HTTP
// layer can send an honest Retry-After instead of a blind 429.
//
// Lifecycle: queued → running → done | failed | cancelled. Terminal
// snapshots are retained for ResultTTL and then swept; a done job
// whose result was never fetched before the sweep counts as
// abandoned, which is the observability hook for clients that submit
// work and walk away.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is one phase of the job lifecycle.
type State uint8

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: a worker is executing the job's Fn.
	StateRunning
	// StateDone: Fn returned a result; retained until the TTL sweep.
	StateDone
	// StateFailed: Fn returned a non-cancellation error.
	StateFailed
	// StateCancelled: cancelled while queued, or Fn returned the
	// cancellation it was handed.
	StateCancelled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// String names the state (the spelling the HTTP layer serves).
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Fn is the unit of work a job runs. It must honour ctx — cancellation
// and drain both arrive through it — and should call report with its
// monotonic progress (units done, units total). report is safe to call
// from any number of goroutines; regressing done values are ignored.
type Fn func(ctx context.Context, report func(done, total int)) (any, error)

// Options tunes a Manager. The zero value selects the defaults noted
// on each field.
type Options struct {
	// QueueDepth bounds jobs accepted but not yet running; a full
	// queue rejects Submit with ErrQueueFull (default 8).
	QueueDepth int
	// Workers is the worker-pool size — the number of jobs that
	// may run simultaneously (default 1; scans are heavy).
	Workers int
	// ResultTTL bounds how long a terminal job (and its result) is
	// retained for Get after finishing (default 15min).
	ResultTTL time.Duration
	// MaxRetained bounds how many terminal jobs are retained at once,
	// oldest-finished evicted first (default 64). ResultTTL alone is a
	// time bound, not a memory bound: a client pumping fast-completing
	// jobs through the queue would otherwise accumulate TTL-minutes ×
	// throughput results on the heap.
	MaxRetained int
	// Clock substitutes the time source (tests); nil = time.Now.
	Clock func() time.Time
}

func (o *Options) setDefaults() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.ResultTTL <= 0 {
		o.ResultTTL = 15 * time.Minute
	}
	if o.MaxRetained <= 0 {
		o.MaxRetained = 64
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// ErrQueueFull rejects a Submit when the queue is at depth — the
// admission-control signal the HTTP layer turns into 429 + Retry-After.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed rejects a Submit after Close has begun draining.
var ErrClosed = errors.New("jobs: manager closed")

// Snapshot is a point-in-time view of one job, safe to retain: the
// Result is the value Fn returned and is never mutated by the Manager.
type Snapshot struct {
	ID    string
	Kind  string
	State State
	// Done/Total are the latest progress report (0/0 before the
	// first). Done is monotonic; Total is fixed per job in practice.
	Done, Total int64
	Created     time.Time
	Started     time.Time // zero until running
	Finished    time.Time // zero until terminal
	Result      any       // non-nil only when StateDone
	Err         error     // non-nil only when StateFailed or StateCancelled
}

// job is the Manager-internal mutable record behind a Snapshot.
type job struct {
	id     string
	kind   string
	seq    int64 // submission order; List's tie-break for equal Created
	fn     Fn
	ctx    context.Context
	cancel context.CancelFunc

	done, total atomic.Int64

	mu       sync.Mutex
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      error
	fetched  bool // a terminal Get observed the job before the sweep
}

// report is the progress callback handed to Fn. Total is a plain
// store (fixed per job); done is a CAS-max so late-arriving reports
// from racing workers can never make progress regress.
func (j *job) report(done, total int) {
	j.total.Store(int64(total))
	for {
		cur := j.done.Load()
		if int64(done) <= cur || j.done.CompareAndSwap(cur, int64(done)) {
			return
		}
	}
}

func (j *job) snapshotLocked() Snapshot {
	return Snapshot{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: j.done.Load(), Total: j.total.Load(),
		Created: j.created, Started: j.started, Finished: j.finished,
		Result: j.result, Err: j.err,
	}
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// Counters is the cumulative (and, for Queued/Running, current)
// accounting a Manager exposes — the /stats jobs section.
type Counters struct {
	Submitted int64 // jobs accepted into the queue
	Rejected  int64 // submissions refused with ErrQueueFull
	Completed int64 // jobs that reached StateDone
	Failed    int64 // jobs that reached StateFailed
	Cancelled int64 // jobs that reached StateCancelled
	Abandoned int64 // done jobs swept with their result never fetched
	Queued    int   // currently waiting for a worker
	Running   int   // currently executing
}

// Manager owns the queue, the worker pool and the job table. All
// methods are safe for concurrent use.
//
// The queue is a mutex-guarded slice, not a channel: cancelling a
// queued job must free its admission slot immediately, and a channel
// cannot give up an element from its middle — with a channel queue, a
// client that cancelled every queued job would still be answered 429
// until a worker happened to drain the corpses.
type Manager struct {
	opts Options
	wg   sync.WaitGroup

	mu      sync.Mutex
	newWork *sync.Cond // signalled on enqueue and on close; waits on mu
	pending []*job     // admission-bounded FIFO, len ≤ QueueDepth
	jobs    map[string]*job
	seq     int64
	started bool // worker pool launched (first Submit)
	closed  bool
	ctr     Counters
	avgRun  time.Duration // EWMA of job wall times, feeds RetryAfter
	hasAvg  bool
}

// NewManager builds a Manager. The worker pool starts lazily on the
// first Submit, so a manager that never receives work — every test
// server, every embedder that ignores the async surface — owns no
// goroutines and needs no Close.
func NewManager(opts Options) *Manager {
	opts.setDefaults()
	m := &Manager{
		opts: opts,
		jobs: make(map[string]*job),
	}
	m.newWork = sync.NewCond(&m.mu)
	return m
}

// startWorkersLocked launches the pool once; the caller holds m.mu.
func (m *Manager) startWorkersLocked() {
	if m.started {
		return
	}
	m.started = true
	m.wg.Add(m.opts.Workers)
	for w := 0; w < m.opts.Workers; w++ {
		go m.worker()
	}
}

// Submit enqueues fn as a new job of the given kind and returns its
// queued snapshot. It never blocks: a full queue fails with
// ErrQueueFull and a draining manager with ErrClosed.
func (m *Manager) Submit(kind string, fn Fn) (Snapshot, error) {
	if fn == nil {
		return Snapshot{}, fmt.Errorf("jobs: nil Fn")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		// Not counted in Rejected: that counter is the queue-full
		// admission signal operators size QueueDepth against, and
		// drain-time refusals are not queue pressure.
		return Snapshot{}, ErrClosed
	}
	m.sweepLocked()
	if len(m.pending) >= m.opts.QueueDepth {
		m.ctr.Rejected++
		return Snapshot{}, ErrQueueFull
	}
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      fmt.Sprintf("%s-%d", kind, m.seq),
		kind:    kind,
		seq:     m.seq,
		fn:      fn,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: m.opts.Clock(),
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.ctr.Submitted++
	m.startWorkersLocked()
	m.newWork.Signal()
	return j.snapshot(), nil
}

// Get returns the job's snapshot. Fetching a done job marks its
// result as delivered, which is what keeps it out of the abandoned
// count at sweep time. ok is false for unknown or already-swept ids.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone {
		j.fetched = true
	}
	return j.snapshotLocked(), true
}

// Cancel requests cancellation of the job. A queued job transitions
// to cancelled immediately; a running one has its context cancelled
// and transitions when its Fn returns; a terminal one is unchanged.
// The returned snapshot reflects the state after the request.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = m.opts.Clock()
		j.fn = nil // never runs; drop the closure and its captures
		j.mu.Unlock()
		j.cancel()
		m.mu.Lock()
		// Remove the job from the pending FIFO so its admission slot
		// frees right now — not whenever a worker would have reached
		// it (a worker that races the removal skips it via begin).
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.ctr.Cancelled++
		m.mu.Unlock()
	case StateRunning:
		j.mu.Unlock()
		j.cancel()
	default:
		j.mu.Unlock()
	}
	return j.snapshot(), true
}

// List returns a snapshot of every retained job, oldest first
// (submission order breaks Created ties — ids are not zero-padded, so
// comparing them lexicographically would put scan-10 before scan-2).
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	m.sweepLocked()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	// created and seq are immutable after Submit publishes the job, so
	// sorting outside the lock is safe.
	sort.Slice(js, func(a, b int) bool {
		if !js[a].created.Equal(js[b].created) {
			return js[a].created.Before(js[b].created)
		}
		return js[a].seq < js[b].seq
	})
	out := make([]Snapshot, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Counters returns the cumulative accounting plus the current
// queued/running occupancy.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	out := m.ctr
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			out.Queued++
		case StateRunning:
			out.Running++
		}
		j.mu.Unlock()
	}
	return out
}

// RetryAfter estimates how long a rejected submitter should wait
// before capacity frees up: the smoothed recent job run time scaled
// by the backlog per worker, clamped to [1s, 5min]. With no run-time
// history yet it grows linearly with the backlog.
func (m *Manager) RetryAfter() time.Duration {
	c := m.Counters()
	backlog := c.Queued + c.Running
	m.mu.Lock()
	avg, has := m.avgRun, m.hasAvg
	workers := m.opts.Workers
	m.mu.Unlock()
	est := time.Duration(backlog) * time.Second
	if has {
		est = avg * time.Duration(backlog) / time.Duration(workers)
	}
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est
}

// Close drains the manager: new submissions fail with ErrClosed,
// already-queued jobs still run, and Close blocks until the pool is
// idle or ctx expires — at which point every remaining job is
// cancelled and Close waits (briefly) for the workers to notice.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.newWork.Broadcast()
	}
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() { m.wg.Wait(); close(idle) }()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		// Deadline: abort everything still queued or running. The
		// workers unwind as soon as each Fn honours its context.
		m.mu.Lock()
		for _, j := range m.jobs {
			j.cancel()
		}
		m.mu.Unlock()
		<-idle
		return ctx.Err()
	}
}

// worker is one pool goroutine: pop, skip if cancelled while queued,
// run, account. Workers exit once the manager is closed AND the
// pending queue is empty — that ordering is the graceful drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.newWork.Wait()
		}
		if len(m.pending) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		if !m.begin(j) {
			continue
		}
		res, err := runRecovered(j)
		m.finish(j, res, err)
	}
}

// begin transitions queued → running; false when the job was
// cancelled while it waited.
func (m *Manager) begin(j *job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = m.opts.Clock()
	return true
}

// runRecovered executes the job's Fn, converting a panic into an
// error so one bad job cannot take the worker (and its slot) down.
func runRecovered(j *job) (res any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("jobs: job %s panicked: %v", j.id, rec)
		}
	}()
	return j.fn(j.ctx, j.report)
}

// finish records the terminal state and folds the run time into the
// RetryAfter estimate.
func (m *Manager) finish(j *job, res any, err error) {
	now := m.opts.Clock()
	j.mu.Lock()
	j.finished = now
	switch {
	case err != nil && j.ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// The error is the cancellation we delivered, not a failure of
		// the work itself.
		j.state = StateCancelled
		j.err = err
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
		j.result = res
		// A done job always reads as fully progressed — pollers gate
		// on percent, and an Fn over an empty work list (or one that
		// never called report) would otherwise sit at 0/0 forever.
		if t := j.total.Load(); t > 0 {
			j.report(int(t), int(t))
		} else {
			j.report(1, 1)
		}
	}
	state := j.state
	run := now.Sub(j.started)
	// Drop the closure: the record outlives the run by ResultTTL, and
	// fn can pin arbitrarily large captures (in the server: a whole
	// dataset entry) that the retained Snapshot does not need.
	j.fn = nil
	j.mu.Unlock()
	j.cancel() // release the context's resources

	m.mu.Lock()
	switch state {
	case StateDone:
		m.ctr.Completed++
	case StateFailed:
		m.ctr.Failed++
	case StateCancelled:
		m.ctr.Cancelled++
	}
	if run > 0 {
		if m.hasAvg {
			m.avgRun = (3*m.avgRun + run) / 4
		} else {
			m.avgRun, m.hasAvg = run, true
		}
	}
	m.mu.Unlock()
}

// sweepLocked evicts terminal jobs whose TTL has lapsed, then — the
// memory bound the TTL alone cannot give — the oldest-finished
// terminal jobs beyond MaxRetained; the caller holds m.mu. A done job
// swept with its result never fetched counts as abandoned — the
// signal that clients are submitting scans and never coming back for
// them.
func (m *Manager) sweepLocked() {
	now := m.opts.Clock()
	var terminal []*job
	for id, j := range m.jobs {
		j.mu.Lock()
		isTerminal := j.state.Terminal()
		expired := isTerminal && now.Sub(j.finished) >= m.opts.ResultTTL
		abandoned := expired && j.state == StateDone && !j.fetched
		j.mu.Unlock()
		switch {
		case expired:
			if abandoned {
				m.ctr.Abandoned++
			}
			delete(m.jobs, id)
		case isTerminal:
			terminal = append(terminal, j)
		}
	}
	if len(terminal) <= m.opts.MaxRetained {
		return
	}
	sort.Slice(terminal, func(a, b int) bool {
		// finished is immutable once the job is terminal; seq breaks
		// same-tick ties deterministically.
		if !terminal[a].finished.Equal(terminal[b].finished) {
			return terminal[a].finished.Before(terminal[b].finished)
		}
		return terminal[a].seq < terminal[b].seq
	})
	for _, j := range terminal[:len(terminal)-m.opts.MaxRetained] {
		j.mu.Lock()
		if j.state == StateDone && !j.fetched {
			m.ctr.Abandoned++
		}
		j.mu.Unlock()
		delete(m.jobs, j.id)
	}
}
