package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable time source for TTL/run-time tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// waitState polls until the job reaches the state or the test deadline
// lapses.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %v", id, want)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %v (err %v), want %v", id, snap.State, snap.Err, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return Snapshot{}
}

func closeNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)
	snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		for i := 1; i <= 5; i++ {
			report(i, 5)
		}
		return "result-value", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.Kind != "scan" || !strings.HasPrefix(snap.ID, "scan-") {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	got := waitState(t, m, snap.ID, StateDone)
	if got.Result != "result-value" || got.Err != nil {
		t.Fatalf("done snapshot = %+v", got)
	}
	if got.Done != 5 || got.Total != 5 {
		t.Fatalf("progress = %d/%d, want 5/5", got.Done, got.Total)
	}
	if got.Finished.Before(got.Started) || got.Started.Before(got.Created) {
		t.Fatalf("timestamps out of order: %+v", got)
	}
	c := m.Counters()
	if c.Submitted != 1 || c.Completed != 1 || c.Failed+c.Cancelled+c.Rejected != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestProgressIsMonotonic(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)
	snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		// Out-of-order reports, as racing scan workers can deliver.
		report(3, 10)
		report(1, 10) // must not regress
		report(7, 10)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateDone)
	// finish() promotes a done job to full progress.
	if got.Done != 10 || got.Total != 10 {
		t.Fatalf("progress = %d/%d, want 10/10", got.Done, got.Total)
	}
}

// TestQueueFullRejects fills the single worker and the queue, then
// asserts the next submission is rejected instantly with ErrQueueFull
// and counted.
func TestQueueFullRejects(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	running, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if ra := m.RetryAfter(); ra < time.Second {
		t.Fatalf("RetryAfter = %v, want ≥ 1s", ra)
	}
	c := m.Counters()
	if c.Rejected != 1 || c.Queued != 1 || c.Running != 1 {
		t.Fatalf("counters = %+v", c)
	}
	close(block)
	waitState(t, m, queued.ID, StateDone)
	closeNow(t, m)
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 2})
	block := make(chan struct{})
	blocker, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	ran := make(chan struct{})
	victim, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		close(ran)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := m.Cancel(victim.ID)
	if !ok || snap.State != StateCancelled {
		t.Fatalf("cancel queued: ok=%v state=%v", ok, snap.State)
	}
	close(block)
	waitState(t, m, blocker.ID, StateDone)
	closeNow(t, m) // drains the queue: the skipped job would run here
	select {
	case <-ran:
		t.Fatal("cancelled queued job still ran")
	default:
	}
	if c := m.Counters(); c.Cancelled != 1 || c.Completed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestCancelQueuedFreesAdmissionSlot is the regression test for the
// queue-capacity leak: cancelling a queued job must free its slot
// immediately, not when a worker eventually drains the corpse —
// otherwise a client that cancels its backlog still gets ErrQueueFull
// for as long as the running job holds the worker.
func TestCancelQueuedFreesAdmissionSlot(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	running, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	victim, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue not full before cancel: %v", err)
	}
	if _, ok := m.Cancel(victim.ID); !ok {
		t.Fatal("cancel failed")
	}
	// The slot is free right now — the worker is still blocked.
	replacement, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return "ran", nil
	})
	if err != nil {
		t.Fatalf("submit after cancelling the queued job: %v", err)
	}
	if c := m.Counters(); c.Queued != 1 {
		t.Fatalf("queued = %d after cancel+resubmit, want 1", c.Queued)
	}
	close(block)
	if got := waitState(t, m, replacement.ID, StateDone); got.Result != "ran" {
		t.Fatalf("replacement result = %v", got.Result)
	}
	closeNow(t, m)
}

func TestCancelRunning(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)
	snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateRunning)
	if _, ok := m.Cancel(snap.ID); !ok {
		t.Fatal("cancel reported unknown job")
	}
	got := waitState(t, m, snap.ID, StateCancelled)
	if !errors.Is(got.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", got.Err)
	}
	// Cancelling a terminal job is a no-op that reports its state.
	again, ok := m.Cancel(snap.ID)
	if !ok || again.State != StateCancelled {
		t.Fatalf("re-cancel: ok=%v state=%v", ok, again.State)
	}
	if c := m.Counters(); c.Cancelled != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestFailedJobSurfacesError(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)
	boom := errors.New("lattice imploded")
	snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateFailed)
	if !errors.Is(got.Err, boom) || got.Result != nil {
		t.Fatalf("failed snapshot = %+v", got)
	}
	if c := m.Counters(); c.Failed != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestPanicBecomesFailure: a panicking Fn must not take the worker
// down — the job fails and the pool keeps serving.
func TestPanicBecomesFailure(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer closeNow(t, m)
	snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, snap.ID, StateFailed)
	if got.Err == nil || !strings.Contains(got.Err.Error(), "kaboom") {
		t.Fatalf("panic err = %v", got.Err)
	}
	after, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitState(t, m, after.ID, StateDone); got.Result != 42 {
		t.Fatal("worker did not survive the panic")
	}
}

func TestResultTTLSweepCountsAbandoned(t *testing.T) {
	clock := newFakeClock()
	m := NewManager(Options{ResultTTL: time.Minute, Clock: clock.now})
	defer closeNow(t, m)

	fetched, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, fetched.ID, StateDone) // Get marks the result fetched

	abandoned, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) { return 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.Counters().Completed < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	clock.advance(2 * time.Minute)
	if _, ok := m.Get(fetched.ID); ok {
		t.Fatal("fetched job survived the TTL sweep")
	}
	if _, ok := m.Get(abandoned.ID); ok {
		t.Fatal("unfetched job survived the TTL sweep")
	}
	c := m.Counters()
	if c.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (only the never-fetched job)", c.Abandoned)
	}
	if len(m.List()) != 0 {
		t.Fatal("swept jobs still listed")
	}
}

// TestMaxRetainedBoundsMemory: ResultTTL is a time bound, not a
// memory bound — a stream of fast jobs must not accumulate terminal
// records past MaxRetained, and the evicted-unfetched ones count as
// abandoned.
func TestMaxRetainedBoundsMemory(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 4, MaxRetained: 3})
	defer closeNow(t, m)
	var last Snapshot
	for i := 0; i < 10; i++ {
		snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = waitState(t, m, snap.ID, StateDone) // also marks it fetched
	}
	list := m.List()
	if len(list) > 3 {
		t.Fatalf("%d terminal jobs retained, cap is 3", len(list))
	}
	// The newest job survives the count-based sweep.
	found := false
	for _, snap := range list {
		if snap.ID == last.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("newest job %s evicted before older ones", last.ID)
	}
	if c := m.Counters(); c.Abandoned != 0 {
		t.Fatalf("abandoned = %d for fully fetched jobs", c.Abandoned)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 4})
	var order []string
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("job%d", i)
		if _, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	closeNow(t, m)
	if len(order) != 3 {
		t.Fatalf("drain ran %d of 3 queued jobs", len(order))
	}
	if _, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	closeNow(t, m)
}

func TestCloseDeadlineCancelsStragglers(t *testing.T) {
	m := NewManager(Options{})
	snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		<-ctx.Done() // only a cancelled context ends this job
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close err = %v, want DeadlineExceeded", err)
	}
	got, ok := m.Get(snap.ID)
	if !ok || got.State != StateCancelled {
		t.Fatalf("straggler state = %v (ok %v), want cancelled", got.State, ok)
	}
}

func TestRetryAfterScalesWithBacklogAndHistory(t *testing.T) {
	clock := newFakeClock()
	m := NewManager(Options{Workers: 1, QueueDepth: 8, Clock: clock.now})
	// Seed run-time history: one job whose wall time the fake clock
	// pins at 40s.
	release := make(chan struct{})
	snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateRunning)
	clock.advance(40 * time.Second)
	close(release)
	waitState(t, m, snap.ID, StateDone)

	// Empty manager: floor of 1s.
	if ra := m.RetryAfter(); ra != time.Second {
		t.Fatalf("idle RetryAfter = %v, want 1s", ra)
	}
	// Two jobs outstanding on one worker at ~40s each → ~80s estimate.
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
			<-block
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.Counters().Running != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ra := m.RetryAfter(); ra != 80*time.Second {
		t.Fatalf("backlogged RetryAfter = %v, want 80s", ra)
	}
}

func TestGetAndCancelUnknown(t *testing.T) {
	m := NewManager(Options{})
	defer closeNow(t, m)
	if _, ok := m.Get("nope-1"); ok {
		t.Fatal("Get of unknown id reported ok")
	}
	if _, ok := m.Cancel("nope-1"); ok {
		t.Fatal("Cancel of unknown id reported ok")
	}
	if _, err := m.Submit("scan", nil); err == nil {
		t.Fatal("nil Fn accepted")
	}
}

// TestListOldestFirst submits 12 jobs within one clock tick: every
// Created is equal, so the ordering must come from the submission
// sequence — a lexicographic id tie-break would return scan-10 before
// scan-2.
func TestListOldestFirst(t *testing.T) {
	clock := newFakeClock()
	m := NewManager(Options{Workers: 1, QueueDepth: 16, Clock: clock.now})
	block := make(chan struct{})
	defer close(block)
	var ids []string
	for i := 0; i < 12; i++ {
		snap, err := m.Submit("scan", func(ctx context.Context, report func(done, total int)) (any, error) {
			<-block
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	list := m.List()
	if len(list) != 12 {
		t.Fatalf("listed %d jobs", len(list))
	}
	for i, snap := range list {
		if snap.ID != ids[i] {
			t.Fatalf("list[%d] = %s, want %s", i, snap.ID, ids[i])
		}
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateQueued: "queued", StateRunning: "running", StateDone: "done",
		StateFailed: "failed", StateCancelled: "cancelled", State(9): "State(9)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
	if StateRunning.Terminal() || !StateCancelled.Terminal() {
		t.Fatal("Terminal misclassifies states")
	}
}

// TestRetryAfterNeverBelowOneSecond: the estimate a 429 turns into a
// Retry-After header must stay ≥ 1s in every regime — no history and
// no backlog (a manager that has never run a job), no history with a
// backlog, and history of near-zero run times. A zero estimate would
// become "Retry-After: 0", a standing invitation to hammer the queue.
func TestRetryAfterNeverBelowOneSecond(t *testing.T) {
	m := NewManager(Options{QueueDepth: 1, Workers: 1})
	if got := m.RetryAfter(); got < time.Second {
		t.Fatalf("no history, no backlog: RetryAfter = %v, want ≥ 1s", got)
	}
	// Occupy the worker and the queue: still no run-time history.
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit("t", func(ctx context.Context, _ func(int, int)) (any, error) {
		close(started)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit("t", func(context.Context, func(int, int)) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.RetryAfter(); got < time.Second {
		t.Fatalf("no history, backlog 2: RetryAfter = %v, want ≥ 1s", got)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// History now exists and is microscopic; the floor must hold.
	if got := m.RetryAfter(); got < time.Second {
		t.Fatalf("tiny history: RetryAfter = %v, want ≥ 1s", got)
	}
}
