// Package baseline implements the comparison methods of the
// reproduction's experiments: the naive exhaustive subspace search
// (cost yardstick and correctness oracle for HOS-Miner) and three
// classical "space → outliers" detectors the paper cites — the
// distance-based DB(π,δ) outliers of Knorr & Ng [5], their
// intentional-knowledge extension (strongest outlying spaces) [6],
// the k-NN weight outliers of Ramaswamy et al. [8] and the
// density-based LOF of Breunig et al. [3]. The search-ordering ablations (bottom-up,
// top-down, random) live in internal/core as Policy values since they
// share the pruning machinery.
package baseline

import (
	"fmt"

	"repro/internal/od"
	"repro/internal/subspace"
)

// NaiveResult is the outcome of an exhaustive subspace sweep.
type NaiveResult struct {
	// Outlying is every subspace with OD ≥ T, canonically sorted.
	Outlying []subspace.Mask
	// Evaluations is the number of OD computations: always 2^d - 1.
	Evaluations int64
}

// NaiveSearch evaluates OD in every non-empty subspace — no pruning,
// no ordering. It is exponential in d and exists as the yardstick
// (experiments F1, F3, F7) and as the oracle HOS-Miner is validated
// against.
func NaiveSearch(eval *od.Evaluator, point []float64, exclude int, T float64) (*NaiveResult, error) {
	if eval == nil {
		return nil, fmt.Errorf("baseline: nil evaluator")
	}
	d := eval.Dataset().Dim()
	res := &NaiveResult{}
	subspace.EachAll(d, func(s subspace.Mask) bool {
		res.Evaluations++
		if eval.OD(point, s, exclude) >= T {
			res.Outlying = append(res.Outlying, s)
		}
		return true
	})
	subspace.SortMasks(res.Outlying)
	return res, nil
}
