package baseline

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Intentional knowledge of distance-based outliers, after Knorr & Ng
// (VLDB 1999) — reference [6] of the HOS-Miner paper and its closest
// "space → outliers" relative: for a point that is a DB(π, δ) outlier,
// report the *strongest outlying spaces* — the minimal subspaces in
// which the point is an outlier (every superset is then outlying too).
//
// DB(π, δ) outlier-ness is monotone along the subspace lattice for
// L_p metrics (adding dimensions never decreases distances, so the
// δ-neighbourhood can only shrink), which lets this implementation
// reuse the same pruning tracker as HOS-Miner. The difference from
// HOS-Miner is the predicate (neighbourhood-count threshold instead of
// the OD measure) and the fixed bottom-up sweep of the original work.

// IntentionalResult is the outcome of one intentional-knowledge query.
type IntentionalResult struct {
	// Strongest holds the minimal outlying spaces (an antichain).
	Strongest []subspace.Mask
	// OutlyingCount is the size of the full outlying-space set.
	OutlyingCount int
	// Evaluations counts DB-outlier predicate evaluations spent.
	Evaluations int64
}

// IntentionalOutlyingSpaces finds the strongest (minimal) outlying
// spaces of the query point under the DB(π, δ) definition. exclude is
// the dataset index of the point itself (-1 for external points).
func IntentionalOutlyingSpaces(ds *vector.Dataset, metric vector.Metric, query []float64, exclude int, pi, delta float64) (*IntentionalResult, error) {
	if ds == nil {
		return nil, fmt.Errorf("baseline: nil dataset")
	}
	if len(query) != ds.Dim() {
		return nil, fmt.Errorf("baseline: query has %d dims, dataset %d", len(query), ds.Dim())
	}
	if pi <= 0 || pi >= 1 {
		return nil, fmt.Errorf("baseline: pi = %v out of (0,1)", pi)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("baseline: delta = %v", delta)
	}
	d := ds.Dim()
	tr, err := lattice.NewTracker(d)
	if err != nil {
		return nil, err
	}
	n := ds.N()
	if exclude >= 0 && exclude < n {
		n-- // the point itself never counts as its own neighbour
	}
	// Inlier needs ≥ ceil((1-π)·n) neighbours within δ.
	needed := int((1 - pi) * float64(n))

	res := &IntentionalResult{}
	isOutlier := func(s subspace.Mask) bool {
		res.Evaluations++
		within := 0
		for i := 0; i < ds.N(); i++ {
			if i == exclude {
				continue
			}
			if vector.Dist(metric, s, query, ds.Point(i)) <= delta {
				within++
				if within >= needed {
					return false
				}
			}
		}
		return true
	}

	// Bottom-up sweep with both pruning directions (Knorr & Ng
	// enumerate lattices bottom-up; the tracker adds the monotone
	// short-circuits).
	for m := 1; m <= d && !tr.Done(); m++ {
		tr.EachUnknownInLayer(m, func(s subspace.Mask) bool {
			if isOutlier(s) {
				tr.MarkOutlier(s, true)
			} else {
				tr.MarkNonOutlier(s, true)
			}
			return true
		})
	}

	outlying := tr.Outliers()
	res.OutlyingCount = len(outlying)
	res.Strongest = minimalOf(outlying)
	return res, nil
}

// minimalOf returns the antichain of minimal masks (same semantics as
// core.MinimalSubspaces, duplicated here to keep baseline free of a
// dependency on the system under test).
func minimalOf(outlying []subspace.Mask) []subspace.Mask {
	sorted := append([]subspace.Mask(nil), outlying...)
	subspace.SortMasks(sorted)
	var kept []subspace.Mask
	for _, s := range sorted {
		covered := false
		for _, k := range kept {
			if s.SupersetOf(k) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, s)
		}
	}
	return kept
}
