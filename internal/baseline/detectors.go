package baseline

import (
	"fmt"
	"sort"

	"repro/internal/knn"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// Scored pairs a point index with an outlier score (higher = more
// outlying).
type Scored struct {
	Index int
	Score float64
}

// TopNKNNOutliers implements Ramaswamy et al. [8] restricted to
// subspace s: rank points by the distance to their k-th nearest
// neighbour and return the top n. Ties are broken by ascending index.
func TopNKNNOutliers(ds *vector.Dataset, searcher knn.Searcher, s subspace.Mask, k, n int) ([]Scored, error) {
	if err := checkDetectorArgs(ds, searcher, s, k); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("baseline: n = %d", n)
	}
	scored := make([]Scored, ds.N())
	for i := 0; i < ds.N(); i++ {
		nbs := searcher.KNN(ds.Point(i), s, k, i)
		var kth float64
		if len(nbs) > 0 {
			kth = nbs[len(nbs)-1].Dist
		}
		scored[i] = Scored{Index: i, Score: kth}
	}
	sortScoredDesc(scored)
	if n > len(scored) {
		n = len(scored)
	}
	return scored[:n], nil
}

// KNNWeightOutliers ranks points by the sum of distances to their k
// nearest neighbours in subspace s — exactly the paper's OD measure
// used as a classical whole-dataset detector — and returns the top n.
func KNNWeightOutliers(ds *vector.Dataset, searcher knn.Searcher, s subspace.Mask, k, n int) ([]Scored, error) {
	if err := checkDetectorArgs(ds, searcher, s, k); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("baseline: n = %d", n)
	}
	scored := make([]Scored, ds.N())
	for i := 0; i < ds.N(); i++ {
		nbs := searcher.KNN(ds.Point(i), s, k, i)
		scored[i] = Scored{Index: i, Score: knn.SumDistances(nbs)}
	}
	sortScoredDesc(scored)
	if n > len(scored) {
		n = len(scored)
	}
	return scored[:n], nil
}

// DBOutliers implements Knorr & Ng's DB(π, δ) definition [5] in
// subspace s: a point is an outlier when more than fraction π of the
// dataset lies farther than δ from it — equivalently, fewer than
// (1-π)·N points lie within δ. Returns outlier indices ascending.
func DBOutliers(ds *vector.Dataset, metric vector.Metric, s subspace.Mask, pi, delta float64) ([]int, error) {
	if ds == nil {
		return nil, fmt.Errorf("baseline: nil dataset")
	}
	if s.IsEmpty() {
		return nil, fmt.Errorf("baseline: empty subspace")
	}
	if pi <= 0 || pi >= 1 {
		return nil, fmt.Errorf("baseline: pi = %v out of (0,1)", pi)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("baseline: delta = %v", delta)
	}
	n := ds.N()
	// A point needs ≥ ceil((1-π)(n-1)) in-range neighbours (self
	// excluded) to be an inlier.
	needed := int((1 - pi) * float64(n-1))
	var out []int
	for i := 0; i < n; i++ {
		within := 0
		isInlier := false
		for j := 0; j < n && !isInlier; j++ {
			if j == i {
				continue
			}
			if vector.Dist(metric, s, ds.Point(i), ds.Point(j)) <= delta {
				within++
				if within >= needed {
					isInlier = true
				}
			}
		}
		if !isInlier {
			out = append(out, i)
		}
	}
	return out, nil
}

// LOF computes the Local Outlier Factor of Breunig et al. [3] for
// every point in subspace s with neighbourhood size minPts. Scores
// near 1 are inliers; substantially above 1 are outliers.
func LOF(ds *vector.Dataset, searcher knn.Searcher, s subspace.Mask, minPts int) ([]float64, error) {
	if err := checkDetectorArgs(ds, searcher, s, minPts); err != nil {
		return nil, err
	}
	n := ds.N()

	// Pass 1: k-NN sets, k-distances. KNN results alias the searcher's
	// scratch, so each set is copied before the next query overwrites it.
	neighbors := make([][]knn.Neighbor, n)
	kDist := make([]float64, n)
	for i := 0; i < n; i++ {
		nbs := append([]knn.Neighbor(nil), searcher.KNN(ds.Point(i), s, minPts, i)...)
		neighbors[i] = nbs
		if len(nbs) > 0 {
			kDist[i] = nbs[len(nbs)-1].Dist
		}
	}

	// Pass 2: local reachability density.
	// lrd(p) = 1 / mean_{o ∈ kNN(p)} reach-dist(p, o),
	// reach-dist(p, o) = max(kDist(o), dist(p, o)).
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for _, nb := range neighbors[i] {
			rd := nb.Dist
			if kDist[nb.Index] > rd {
				rd = kDist[nb.Index]
			}
			sum += rd
		}
		if len(neighbors[i]) == 0 || sum == 0 {
			// Degenerate (duplicates): infinite density convention →
			// mark with 0 so the LOF ratio below treats it specially.
			lrd[i] = 0
			continue
		}
		lrd[i] = float64(len(neighbors[i])) / sum
	}

	// Pass 3: LOF(p) = mean_{o ∈ kNN(p)} lrd(o) / lrd(p).
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if lrd[i] == 0 {
			// Infinite own density: deep inside a duplicate cluster.
			out[i] = 1
			continue
		}
		var sum float64
		count := 0
		for _, nb := range neighbors[i] {
			if lrd[nb.Index] == 0 {
				// Neighbour with infinite density dominates: treat the
				// ratio as 1 (same-cluster convention).
				sum++
			} else {
				sum += lrd[nb.Index] / lrd[i]
			}
			count++
		}
		if count == 0 {
			out[i] = 1
			continue
		}
		out[i] = sum / float64(count)
	}
	return out, nil
}

func checkDetectorArgs(ds *vector.Dataset, searcher knn.Searcher, s subspace.Mask, k int) error {
	if ds == nil {
		return fmt.Errorf("baseline: nil dataset")
	}
	if searcher == nil {
		return fmt.Errorf("baseline: nil searcher")
	}
	if s.IsEmpty() {
		return fmt.Errorf("baseline: empty subspace")
	}
	if k < 1 || k >= ds.N() {
		return fmt.Errorf("baseline: k = %d out of [1,%d)", k, ds.N())
	}
	return nil
}

func sortScoredDesc(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].Index < s[j].Index
	})
}
