package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/subspace"
	"repro/internal/vector"
)

func TestIntentionalValidation(t *testing.T) {
	ds := clusterWithOutlier(t, 1, 30, 3)
	q := ds.Point(0)
	if _, err := IntentionalOutlyingSpaces(nil, vector.L2, q, 0, 0.9, 1); err == nil {
		t.Fatal("nil ds accepted")
	}
	if _, err := IntentionalOutlyingSpaces(ds, vector.L2, []float64{1}, -1, 0.9, 1); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := IntentionalOutlyingSpaces(ds, vector.L2, q, 0, 0, 1); err == nil {
		t.Fatal("pi=0 accepted")
	}
	if _, err := IntentionalOutlyingSpaces(ds, vector.L2, q, 0, 0.9, 0); err == nil {
		t.Fatal("delta=0 accepted")
	}
}

func TestIntentionalFindsPlantedSpace(t *testing.T) {
	// A cluster plus one point displaced only in dim 1.
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 80)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}
	}
	rows[0][1] = 40
	ds, _ := vector.FromRows(rows)
	res, err := IntentionalOutlyingSpaces(ds, vector.L2, ds.Point(0), 0, 0.95, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strongest) != 1 || res.Strongest[0] != subspace.New(1) {
		t.Fatalf("strongest = %v, want [[1]]", res.Strongest)
	}
	// Outlying set = all supersets of [1]: 4 of the 7 subspaces.
	if res.OutlyingCount != 4 {
		t.Fatalf("outlying count = %d, want 4", res.OutlyingCount)
	}
	// Pruning must save evaluations vs the 7-subspace sweep.
	if res.Evaluations >= 7 {
		t.Fatalf("no pruning: %d evaluations", res.Evaluations)
	}
}

func TestIntentionalInlierEmpty(t *testing.T) {
	ds := clusterWithOutlier(t, 5, 60, 3)
	res, err := IntentionalOutlyingSpaces(ds, vector.L2, ds.Point(0), 0, 0.95, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strongest) != 0 || res.OutlyingCount != 0 {
		t.Fatalf("inlier got %v", res.Strongest)
	}
}

// TestIntentionalMatchesBruteForce: the lattice-pruned result must
// equal a direct per-subspace evaluation of the DB predicate.
func TestIntentionalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := make([][]float64, 60)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	rows[0] = []float64{6, 0.1, 5, 0}
	ds, _ := vector.FromRows(rows)
	const pi, delta = 0.9, 2.0
	res, err := IntentionalOutlyingSpaces(ds, vector.L2, ds.Point(0), 0, pi, delta)
	if err != nil {
		t.Fatal(err)
	}
	needed := int((1 - pi) * float64(ds.N()-1))
	var brute []subspace.Mask
	subspace.EachAll(4, func(s subspace.Mask) bool {
		within := 0
		for i := 1; i < ds.N(); i++ {
			if vector.Dist(vector.L2, s, ds.Point(0), ds.Point(i)) <= delta {
				within++
			}
		}
		if within < needed {
			brute = append(brute, s)
		}
		return true
	})
	if len(brute) != res.OutlyingCount {
		t.Fatalf("outlying count %d, brute force %d", res.OutlyingCount, len(brute))
	}
	bruteMin := minimalOf(brute)
	if len(bruteMin) != len(res.Strongest) {
		t.Fatalf("strongest %v vs brute %v", res.Strongest, bruteMin)
	}
	for i := range bruteMin {
		if bruteMin[i] != res.Strongest[i] {
			t.Fatalf("strongest %v vs brute %v", res.Strongest, bruteMin)
		}
	}
}

func TestIntentionalExternalQuery(t *testing.T) {
	ds := clusterWithOutlier(t, 9, 50, 2)
	res, err := IntentionalOutlyingSpaces(ds, vector.L2, []float64{0, 99}, -1, 0.9, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strongest) == 0 {
		t.Fatal("external outlier missed")
	}
	for _, s := range res.Strongest {
		if !s.Contains(1) {
			t.Fatalf("strongest %v should involve dim 1", s)
		}
	}
}
