package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// clusterWithOutlier builds a tight cluster plus one far point at
// index n-1.
func clusterWithOutlier(t testing.TB, seed int64, n, d int) *vector.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 0.3
		}
	}
	for j := range rows[n-1] {
		rows[n-1][j] = 50
	}
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newSearcher(t testing.TB, ds *vector.Dataset) knn.Searcher {
	t.Helper()
	ls, err := knn.NewLinear(ds, vector.L2)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestNaiveSearchCountsAndFindsOutlier(t *testing.T) {
	d := 4
	ds := clusterWithOutlier(t, 1, 60, d)
	ls := newSearcher(t, ds)
	eval, err := od.NewEvaluator(ds, ls, vector.L2, 3, od.NormNone)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NaiveSearch(eval, ds.Point(59), 59, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != subspace.TotalSubspaces(d) {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, subspace.TotalSubspaces(d))
	}
	// The planted global outlier deviates in every dim, so every
	// subspace is outlying at this threshold.
	if int64(len(res.Outlying)) != subspace.TotalSubspaces(d) {
		t.Fatalf("outlying = %d subspaces", len(res.Outlying))
	}
	// Inlier query: no subspace should fire.
	res2, _ := NaiveSearch(eval, ds.Point(0), 0, 10)
	if len(res2.Outlying) != 0 {
		t.Fatalf("inlier outlying in %d subspaces", len(res2.Outlying))
	}
	if _, err := NaiveSearch(nil, ds.Point(0), 0, 1); err == nil {
		t.Fatal("nil evaluator accepted")
	}
}

func TestTopNKNNOutliers(t *testing.T) {
	ds := clusterWithOutlier(t, 2, 50, 3)
	ls := newSearcher(t, ds)
	top, err := TopNKNNOutliers(ds, ls, subspace.Full(3), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Index != 49 {
		t.Fatalf("top outlier = %d, want 49", top[0].Index)
	}
	if top[0].Score <= top[1].Score {
		t.Fatal("scores not descending")
	}
}

func TestKNNWeightOutliers(t *testing.T) {
	ds := clusterWithOutlier(t, 3, 50, 3)
	ls := newSearcher(t, ds)
	top, err := KNNWeightOutliers(ds, ls, subspace.Full(3), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Index != 49 {
		t.Fatalf("top = %d", top[0].Index)
	}
	// Weight score must equal OD of the same point.
	eval, _ := od.NewEvaluator(ds, ls, vector.L2, 4, od.NormNone)
	want := eval.ODOfPoint(49, subspace.Full(3))
	if math.Abs(top[0].Score-want) > 1e-9 {
		t.Fatalf("score %v != OD %v", top[0].Score, want)
	}
}

func TestDetectorValidation(t *testing.T) {
	ds := clusterWithOutlier(t, 4, 20, 2)
	ls := newSearcher(t, ds)
	if _, err := TopNKNNOutliers(nil, ls, subspace.Full(2), 2, 1); err == nil {
		t.Fatal("nil ds accepted")
	}
	if _, err := TopNKNNOutliers(ds, nil, subspace.Full(2), 2, 1); err == nil {
		t.Fatal("nil searcher accepted")
	}
	if _, err := TopNKNNOutliers(ds, ls, subspace.Empty, 2, 1); err == nil {
		t.Fatal("empty subspace accepted")
	}
	if _, err := TopNKNNOutliers(ds, ls, subspace.Full(2), 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TopNKNNOutliers(ds, ls, subspace.Full(2), 2, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := KNNWeightOutliers(ds, ls, subspace.Full(2), 2, 0); err == nil {
		t.Fatal("weight n=0 accepted")
	}
	if _, err := LOF(ds, ls, subspace.Full(2), 0); err == nil {
		t.Fatal("LOF minPts=0 accepted")
	}
}

func TestDBOutliers(t *testing.T) {
	ds := clusterWithOutlier(t, 5, 60, 3)
	outs, err := DBOutliers(ds, vector.L2, subspace.Full(3), 0.95, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0] != 59 {
		t.Fatalf("DB outliers = %v, want [59]", outs)
	}
	// Subspace-restricted: in a single constant-ish dim with huge δ,
	// nobody is an outlier.
	outs2, err := DBOutliers(ds, vector.L2, subspace.New(0), 0.95, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs2) != 0 {
		t.Fatalf("loose δ outliers = %v", outs2)
	}
}

func TestDBOutliersValidation(t *testing.T) {
	ds := clusterWithOutlier(t, 5, 20, 2)
	if _, err := DBOutliers(nil, vector.L2, subspace.Full(2), 0.9, 1); err == nil {
		t.Fatal("nil ds")
	}
	if _, err := DBOutliers(ds, vector.L2, subspace.Empty, 0.9, 1); err == nil {
		t.Fatal("empty subspace")
	}
	for _, pi := range []float64{0, 1, -0.5, 2} {
		if _, err := DBOutliers(ds, vector.L2, subspace.Full(2), pi, 1); err == nil {
			t.Fatalf("pi=%v accepted", pi)
		}
	}
	if _, err := DBOutliers(ds, vector.L2, subspace.Full(2), 0.9, 0); err == nil {
		t.Fatal("delta=0 accepted")
	}
}

func TestLOFFlagsOutlier(t *testing.T) {
	ds := clusterWithOutlier(t, 6, 80, 3)
	ls := newSearcher(t, ds)
	scores, err := LOF(ds, ls, subspace.Full(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 80 {
		t.Fatalf("len = %d", len(scores))
	}
	// Outlier LOF far above 1; typical inliers near 1.
	if scores[79] < 2 {
		t.Fatalf("outlier LOF = %v, want >> 1", scores[79])
	}
	inlierMax := 0.0
	for i := 0; i < 79; i++ {
		if scores[i] > inlierMax {
			inlierMax = scores[i]
		}
	}
	if scores[79] <= inlierMax {
		t.Fatalf("outlier LOF %v not above inlier max %v", scores[79], inlierMax)
	}
}

func TestLOFUniformDataNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, 150)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	ds, _ := vector.FromRows(rows)
	ls := newSearcher(t, ds)
	scores, err := LOF(ds, ls, subspace.Full(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Mean LOF over uniform data should hover around 1.
	var sum float64
	for _, s := range scores {
		sum += s
	}
	mean := sum / float64(len(scores))
	if mean < 0.8 || mean > 1.6 {
		t.Fatalf("uniform mean LOF = %v", mean)
	}
}

func TestLOFDuplicatesDegenerate(t *testing.T) {
	// Many duplicates: lrd is infinite; the convention must keep
	// scores finite and near 1.
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{1, 1}
	}
	rows[29] = []float64{9, 9}
	ds, _ := vector.FromRows(rows)
	ls := newSearcher(t, ds)
	scores, err := LOF(ds, ls, subspace.Full(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}
