package subspace

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewAndDims(t *testing.T) {
	m := New(0, 2, 5)
	if got := m.Card(); got != 3 {
		t.Fatalf("Card() = %d, want 3", got)
	}
	want := []int{0, 2, 5}
	got := m.Dims()
	if len(got) != len(want) {
		t.Fatalf("Dims() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dims() = %v, want %v", got, want)
		}
	}
}

func TestNewDuplicatesTolerated(t *testing.T) {
	if New(1, 1, 1) != New(1) {
		t.Fatal("duplicate dims should collapse")
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, dim := range []int{-1, MaxDim, MaxDim + 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", dim)
				}
			}()
			New(dim)
		}()
	}
}

func TestFull(t *testing.T) {
	for d := 0; d <= MaxDim; d++ {
		f := Full(d)
		if f.Card() != d {
			t.Fatalf("Full(%d).Card() = %d", d, f.Card())
		}
	}
	if Full(4) != Mask(0b1111) {
		t.Fatalf("Full(4) = %b", Full(4))
	}
}

func TestContains(t *testing.T) {
	m := New(1, 3)
	if !m.Contains(1) || !m.Contains(3) {
		t.Fatal("missing expected dims")
	}
	if m.Contains(0) || m.Contains(2) || m.Contains(4) {
		t.Fatal("contains unexpected dims")
	}
}

func TestSubsetSuperset(t *testing.T) {
	a := New(1, 3)
	b := New(1, 2, 3)
	if !a.SubsetOf(b) || !a.ProperSubsetOf(b) {
		t.Fatal("a should be proper subset of b")
	}
	if !b.SupersetOf(a) || !b.ProperSupersetOf(a) {
		t.Fatal("b should be proper superset of a")
	}
	if !a.SubsetOf(a) || a.ProperSubsetOf(a) {
		t.Fatal("reflexivity: a ⊆ a but not a ⊂ a")
	}
	c := New(0, 4)
	if a.SubsetOf(c) || c.SubsetOf(a) {
		t.Fatal("disjoint masks must not be subsets")
	}
}

func TestSetOperations(t *testing.T) {
	a, b := New(0, 1), New(1, 2)
	if a.Union(b) != New(0, 1, 2) {
		t.Fatal("union")
	}
	if a.Intersect(b) != New(1) {
		t.Fatal("intersect")
	}
	if a.Without(b) != New(0) {
		t.Fatal("without")
	}
	if a.With(5) != New(0, 1, 5) {
		t.Fatal("with")
	}
	if a.Drop(0) != New(1) {
		t.Fatal("drop")
	}
	if a.Drop(9) != a {
		t.Fatal("drop of absent dim must be identity")
	}
}

func TestStringAndParse(t *testing.T) {
	cases := []struct {
		m Mask
		s string
	}{
		{Empty, "[]"},
		{New(0), "[0]"},
		{New(0, 2), "[0,2]"},
		{New(1, 3, 7), "[1,3,7]"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.s {
			t.Errorf("String(%v) = %q, want %q", uint32(c.m), got, c.s)
		}
		back, err := Parse(c.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.s, err)
		}
		if back != c.m {
			t.Errorf("Parse(%q) = %v, want %v", c.s, back, c.m)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"[x]", "[1,]", "[99]", "[-1]"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	if m, err := Parse("  [1, 3] "); err != nil || m != New(1, 3) {
		t.Errorf("Parse with spaces = %v, %v", m, err)
	}
}

func TestEachDimMatchesDims(t *testing.T) {
	f := func(raw uint32) bool {
		m := Mask(raw) & Full(MaxDim)
		var viaEach []int
		m.EachDim(func(d int) { viaEach = append(viaEach, d) })
		dims := m.Dims()
		if len(viaEach) != len(dims) {
			return false
		}
		for i := range dims {
			if dims[i] != viaEach[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubsetImpliesCardinality(t *testing.T) {
	f := func(ra, rb uint32) bool {
		a := Mask(ra) & Full(MaxDim)
		b := Mask(rb) & Full(MaxDim)
		inter := a.Intersect(b)
		// Intersection is a subset of both.
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			return false
		}
		// Union is a superset of both.
		u := a.Union(b)
		if !u.SupersetOf(a) || !u.SupersetOf(b) {
			return false
		}
		// |a ∪ b| + |a ∩ b| == |a| + |b|.
		return u.Card()+inter.Card() == a.Card()+b.Card()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortMasks(t *testing.T) {
	masks := []Mask{New(0, 1, 2), New(3), New(0, 2), New(1), New(0, 1, 2, 3)}
	SortMasks(masks)
	for i := 1; i < len(masks); i++ {
		ci, cj := masks[i-1].Card(), masks[i].Card()
		if ci > cj || (ci == cj && masks[i-1] >= masks[i]) {
			t.Fatalf("not sorted at %d: %v", i, masks)
		}
	}
}

func TestCardMatchesOnesCount(t *testing.T) {
	f := func(raw uint32) bool {
		m := Mask(raw)
		return m.Card() == bits.OnesCount32(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
