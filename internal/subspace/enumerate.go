package subspace

// Enumeration over the subspace lattice of a d-dimensional space.
// The lattice has 2^d - 1 non-empty subspaces arranged in d layers;
// layer m holds the C(d, m) subspaces of cardinality m.

// All returns every non-empty subspace of a d-dimensional space in
// ascending mask order. The result has 2^d - 1 entries.
func All(d int) []Mask {
	checkDim(d)
	n := (1 << uint(d)) - 1
	out := make([]Mask, 0, n)
	for v := Mask(1); v <= Mask(n); v++ {
		out = append(out, v)
	}
	return out
}

// EachAll calls fn for every non-empty subspace of a d-dimensional
// space in ascending mask order, stopping early if fn returns false.
func EachAll(d int, fn func(Mask) bool) {
	checkDim(d)
	last := Full(d)
	for v := Mask(1); ; v++ {
		if !fn(v) {
			return
		}
		if v == last {
			return
		}
	}
}

// OfDim returns every subspace of cardinality m within a d-dimensional
// space, in ascending mask order. It returns nil when m is out of
// [1, d].
func OfDim(d, m int) []Mask {
	checkDim(d)
	if m < 1 || m > d {
		return nil
	}
	out := make([]Mask, 0, Binomial(d, m))
	EachOfDim(d, m, func(s Mask) bool {
		out = append(out, s)
		return true
	})
	return out
}

// EachOfDim calls fn for every cardinality-m subspace of a
// d-dimensional space in ascending mask order (Gosper's hack),
// stopping early if fn returns false.
func EachOfDim(d, m int, fn func(Mask) bool) {
	checkDim(d)
	if m < 1 || m > d {
		return
	}
	limit := uint32(1) << uint(d)
	v := uint32(1)<<uint(m) - 1
	for v < limit {
		if !fn(Mask(v)) {
			return
		}
		// Gosper's hack: next higher integer with the same popcount.
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
	}
}

// Subsets calls fn for every non-empty proper subset of s, stopping
// early if fn returns false. The subsets are visited in descending mask
// order via the standard submask-enumeration loop.
func Subsets(s Mask, fn func(Mask) bool) {
	if s == 0 {
		return
	}
	for sub := (s - 1) & s; sub != 0; sub = (sub - 1) & s {
		if !fn(sub) {
			return
		}
	}
}

// Supersets calls fn for every proper superset of s within a
// d-dimensional space, stopping early if fn returns false.
func Supersets(d int, s Mask, fn func(Mask) bool) {
	checkDim(d)
	complement := Full(d).Without(s)
	if complement == 0 {
		return
	}
	// Enumerate non-empty submasks of the complement and union each
	// with s.
	for add := complement; add != 0; add = (add - 1) & complement {
		if !fn(s | add) {
			return
		}
	}
}

// CountOfDim returns C(d, m), the number of cardinality-m subspaces.
func CountOfDim(d, m int) int64 { return Binomial(d, m) }

// TotalSubspaces returns 2^d - 1.
func TotalSubspaces(d int) int64 {
	checkDim(d)
	return int64(1)<<uint(d) - 1
}

func checkDim(d int) {
	if d < 0 || d > MaxDim {
		panic("subspace: dimensionality out of range")
	}
}
