package subspace

import "testing"

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {5, 3, 10},
		{10, 5, 252}, {24, 12, 2704156}, {3, 5, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	for n := 0; n <= MaxDim; n++ {
		for k := 0; k <= n; k++ {
			if Binomial(n, k) != Binomial(n, n-k) {
				t.Fatalf("C(%d,%d) != C(%d,%d)", n, k, n, n-k)
			}
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= MaxDim; n++ {
		for k := 1; k <= n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal fails at C(%d,%d)", n, k)
			}
		}
	}
}

func TestBinomialPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Binomial(-1, 2)
}

// TestDSFPaperExample checks the worked example from §3.1:
// DSF([1,2,3]) = C(3,1)·1 + C(3,2)·2 = 9.
func TestDSFPaperExample(t *testing.T) {
	if got := DSF(3); got != 9 {
		t.Fatalf("DSF(3) = %d, want 9", got)
	}
}

// TestUSFPaperExample checks the worked example from §3.1 (d = 4):
// USF([1,4]) = C(2,1)·3 + C(2,2)·4 = 10.
func TestUSFPaperExample(t *testing.T) {
	if got := USF(2, 4); got != 10 {
		t.Fatalf("USF(2,4) = %d, want 10", got)
	}
}

func TestDSFEdges(t *testing.T) {
	if DSF(1) != 0 {
		t.Fatalf("DSF(1) = %d, want 0 (singletons have no non-empty proper subsets)", DSF(1))
	}
	if DSF(2) != 2 {
		t.Fatalf("DSF(2) = %d, want 2", DSF(2))
	}
}

func TestUSFEdges(t *testing.T) {
	if USF(4, 4) != 0 {
		t.Fatalf("USF(d,d) = %d, want 0 (full space has no supersets)", USF(4, 4))
	}
	// m=1, d=2: supersets of a singleton are just the full space, work 2.
	if USF(1, 2) != 2 {
		t.Fatalf("USF(1,2) = %d, want 2", USF(1, 2))
	}
}

// TestDSFBruteForce cross-checks DSF against direct lattice
// enumeration: total work of all proper non-empty subsets.
func TestDSFBruteForce(t *testing.T) {
	for m := 1; m <= 12; m++ {
		s := Full(m)
		var want int64
		Subsets(s, func(sub Mask) bool {
			want += int64(sub.Card())
			return true
		})
		if got := DSF(m); got != want {
			t.Fatalf("DSF(%d) = %d, brute force %d", m, got, want)
		}
	}
}

// TestUSFBruteForce cross-checks USF against direct lattice
// enumeration: total work of all proper supersets within d dims.
func TestUSFBruteForce(t *testing.T) {
	for d := 1; d <= 10; d++ {
		for m := 1; m <= d; m++ {
			s := Full(m) // any m-dim subspace; USF depends only on m and d
			var want int64
			Supersets(d, s, func(sup Mask) bool {
				want += int64(sup.Card())
				return true
			})
			if got := USF(m, d); got != want {
				t.Fatalf("USF(%d,%d) = %d, brute force %d", m, d, got, want)
			}
		}
	}
}

func TestWorkloadsBruteForce(t *testing.T) {
	for d := 1; d <= 10; d++ {
		for m := 1; m <= d; m++ {
			var below, above int64
			EachAll(d, func(s Mask) bool {
				c := int64(s.Card())
				if int(c) < m {
					below += c
				} else if int(c) > m {
					above += c
				}
				return true
			})
			if got := WorkloadBelow(m, d); got != below {
				t.Fatalf("WorkloadBelow(%d,%d) = %d, want %d", m, d, got, below)
			}
			if got := WorkloadAbove(m, d); got != above {
				t.Fatalf("WorkloadAbove(%d,%d) = %d, want %d", m, d, got, above)
			}
		}
	}
}

func TestTotalWorkloadIdentity(t *testing.T) {
	// Σ_{i=1}^{d} C(d,i)·i = d·2^(d-1); also equals
	// WorkloadBelow(m) + C(d,m)·m + WorkloadAbove(m) for any m.
	for d := 1; d <= 16; d++ {
		total := TotalWorkload(d)
		var sum int64
		for i := 1; i <= d; i++ {
			sum += Binomial(d, i) * int64(i)
		}
		if total != sum {
			t.Fatalf("TotalWorkload(%d) = %d, sum %d", d, total, sum)
		}
		for m := 1; m <= d; m++ {
			parts := WorkloadBelow(m, d) + Binomial(d, m)*int64(m) + WorkloadAbove(m, d)
			if parts != total {
				t.Fatalf("d=%d m=%d: partition %d != total %d", d, m, parts, total)
			}
		}
	}
}

// TestSavingsPartition verifies that for an m-dim subspace, DSF(m) +
// m + USF(m,d) accounts for the full work of the chain containing it:
// subsets + itself + supersets.
func TestSavingsPartition(t *testing.T) {
	d := 8
	for m := 1; m <= d; m++ {
		s := OfDim(d, m)[0]
		var work int64 = int64(m)
		Subsets(s, func(sub Mask) bool { work += int64(sub.Card()); return true })
		Supersets(d, s, func(sup Mask) bool { work += int64(sup.Card()); return true })
		if want := DSF(m) + int64(m) + USF(m, d); work != want {
			t.Fatalf("m=%d: chain work %d, want %d", m, work, want)
		}
	}
}
