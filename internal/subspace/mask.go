// Package subspace provides the subspace algebra used throughout the
// HOS-Miner reproduction: compact bitmask subspace representation,
// lattice enumeration, binomial combinatorics and the paper's
// Downward/Upward Saving Factors (Definitions 1 and 2).
//
// A subspace of a d-dimensional attribute space is a non-empty subset of
// the d dimensions. Dimensions are 0-based throughout the library (the
// paper writes 1-based examples such as [1,3]; our String method renders
// 0-based indices).
package subspace

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// MaxDim is the largest supported dimensionality of the full attribute
// space. It is bounded so that dense per-subspace lattice bookkeeping
// (2^d entries) stays affordable: at d = 24 a byte-per-subspace status
// array occupies 16 MiB.
const MaxDim = 24

// Mask is a subspace encoded as a bitmask over dimensions: bit i is set
// iff dimension i belongs to the subspace. The zero Mask is the empty
// set, which is not a valid subspace but is useful as a sentinel.
type Mask uint32

// Empty is the empty dimension set (not a valid subspace).
const Empty Mask = 0

// Full returns the subspace containing all d dimensions.
func Full(d int) Mask {
	if d < 0 || d > MaxDim {
		panic(fmt.Sprintf("subspace: dimensionality %d out of range [0,%d]", d, MaxDim))
	}
	return Mask(uint32(1)<<uint(d)) - 1
}

// New builds a Mask from explicit 0-based dimension indices.
// It panics on out-of-range dimensions; duplicates are tolerated.
func New(dims ...int) Mask {
	var m Mask
	for _, dim := range dims {
		if dim < 0 || dim >= MaxDim {
			panic(fmt.Sprintf("subspace: dimension %d out of range [0,%d)", dim, MaxDim))
		}
		m |= 1 << uint(dim)
	}
	return m
}

// Card returns the number of dimensions in the subspace.
func (m Mask) Card() int { return bits.OnesCount32(uint32(m)) }

// IsEmpty reports whether the mask contains no dimensions.
func (m Mask) IsEmpty() bool { return m == 0 }

// Contains reports whether dimension dim belongs to the subspace.
func (m Mask) Contains(dim int) bool { return m&(1<<uint(dim)) != 0 }

// ContainsAll reports whether every dimension of o belongs to m,
// i.e. o ⊆ m.
func (m Mask) ContainsAll(o Mask) bool { return m&o == o }

// SubsetOf reports m ⊆ o.
func (m Mask) SubsetOf(o Mask) bool { return m&o == m }

// ProperSubsetOf reports m ⊂ o.
func (m Mask) ProperSubsetOf(o Mask) bool { return m != o && m.SubsetOf(o) }

// SupersetOf reports m ⊇ o.
func (m Mask) SupersetOf(o Mask) bool { return m&o == o }

// ProperSupersetOf reports m ⊃ o.
func (m Mask) ProperSupersetOf(o Mask) bool { return m != o && m.SupersetOf(o) }

// Union returns m ∪ o.
func (m Mask) Union(o Mask) Mask { return m | o }

// Intersect returns m ∩ o.
func (m Mask) Intersect(o Mask) Mask { return m & o }

// Without returns m \ o.
func (m Mask) Without(o Mask) Mask { return m &^ o }

// With returns the subspace extended by dimension dim.
func (m Mask) With(dim int) Mask { return m | 1<<uint(dim) }

// Drop returns the subspace with dimension dim removed.
func (m Mask) Drop(dim int) Mask { return m &^ (1 << uint(dim)) }

// Dims returns the sorted 0-based dimension indices of the subspace.
func (m Mask) Dims() []int {
	dims := make([]int, 0, m.Card())
	for v := uint32(m); v != 0; {
		dim := bits.TrailingZeros32(v)
		dims = append(dims, dim)
		v &= v - 1
	}
	return dims
}

// EachDim calls fn for every dimension of the subspace in ascending
// order. It avoids the allocation of Dims in hot paths.
func (m Mask) EachDim(fn func(dim int)) {
	for v := uint32(m); v != 0; {
		fn(bits.TrailingZeros32(v))
		v &= v - 1
	}
}

// AppendDims appends the sorted 0-based dimension indices of the
// subspace to dst and returns the extended slice. Passing dst[:0]
// reuses its backing array, so hot paths can decode a mask into a
// scratch slice without allocating.
//
//hos:hotpath
func (m Mask) AppendDims(dst []int) []int {
	for v := uint32(m); v != 0; {
		dst = append(dst, bits.TrailingZeros32(v))
		v &= v - 1
	}
	return dst
}

// String renders the subspace as the paper does, e.g. "[0,2]" for the
// subspace of dimensions {0, 2}.
func (m Mask) String() string {
	if m == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	first := true
	m.EachDim(func(dim int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(dim))
	})
	b.WriteByte(']')
	return b.String()
}

// Parse parses the String representation ("[0,2]" or "0,2") back into a
// Mask.
func Parse(s string) (Mask, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	if s == "" {
		return Empty, nil
	}
	var m Mask
	for _, part := range strings.Split(s, ",") {
		dim, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return Empty, fmt.Errorf("subspace: parsing %q: %w", s, err)
		}
		if dim < 0 || dim >= MaxDim {
			return Empty, fmt.Errorf("subspace: dimension %d out of range [0,%d)", dim, MaxDim)
		}
		m = m.With(dim)
	}
	return m, nil
}

// SortMasks sorts masks by ascending cardinality, breaking ties by
// numeric mask value. This is the canonical order used by the result
// refinement filter (§3.4): supersets always follow their subsets.
func SortMasks(masks []Mask) {
	sort.Slice(masks, func(i, j int) bool {
		ci, cj := masks[i].Card(), masks[j].Card()
		if ci != cj {
			return ci < cj
		}
		return masks[i] < masks[j]
	})
}
