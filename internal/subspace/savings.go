package subspace

// Saving factors from §3.1 of the paper. These quantify the lattice
// exploration work avoided when a subspace of a given cardinality is
// pruned downward (Definition 1) or upward (Definition 2). The unit of
// "work" is the paper's: evaluating an i-dimensional subspace costs i.

// Binomial returns C(n, k) as an int64. It panics on negative inputs
// and returns 0 when k > n. All inputs encountered in this library
// (n ≤ MaxDim) fit comfortably in int64.
func Binomial(n, k int) int64 {
	if n < 0 || k < 0 {
		panic("subspace: negative binomial argument")
	}
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 1; i <= k; i++ {
		res = res * int64(n-k+i) / int64(i)
	}
	return res
}

// DSF returns the Downward Saving Factor of an m-dimensional subspace
// (Definition 1):
//
//	DSF(m) = Σ_{i=1}^{m-1} C(m, i) · i
//
// i.e. the total evaluation work of all proper non-empty subsets.
// Worked example from the paper: DSF for [1,2,3] (m = 3) is
// C(3,1)·1 + C(3,2)·2 = 9.
func DSF(m int) int64 {
	var sum int64
	for i := 1; i < m; i++ {
		sum += Binomial(m, i) * int64(i)
	}
	return sum
}

// USF returns the Upward Saving Factor of an m-dimensional subspace in
// a d-dimensional space (Definition 2):
//
//	USF(m) = Σ_{i=1}^{d-m} C(d-m, i) · (m + i)
//
// i.e. the total evaluation work of all proper supersets. Worked
// example from the paper (d = 4): USF for [1,4] (m = 2) is
// C(2,1)·3 + C(2,2)·4 = 10.
func USF(m, d int) int64 {
	var sum int64
	for i := 1; i <= d-m; i++ {
		sum += Binomial(d-m, i) * int64(m+i)
	}
	return sum
}

// WorkloadBelow returns Cdown(m): the total evaluation work of all
// subspaces with cardinality strictly below m in a d-dimensional
// space, Σ_{i=1}^{m-1} C(d, i) · i. It is the denominator of the
// paper's f_down(m).
func WorkloadBelow(m, d int) int64 {
	var sum int64
	for i := 1; i < m; i++ {
		sum += Binomial(d, i) * int64(i)
	}
	return sum
}

// WorkloadAbove returns Cup(m): the total evaluation work of all
// subspaces with cardinality strictly above m in a d-dimensional
// space, Σ_{i=m+1}^{d} C(d, i) · i. It is the denominator of the
// paper's f_up(m).
func WorkloadAbove(m, d int) int64 {
	var sum int64
	for i := m + 1; i <= d; i++ {
		sum += Binomial(d, i) * int64(i)
	}
	return sum
}

// TotalWorkload returns the evaluation work of the entire lattice,
// Σ_{i=1}^{d} C(d, i) · i = d · 2^(d-1).
func TotalWorkload(d int) int64 {
	return int64(d) * (int64(1) << uint(d-1))
}
