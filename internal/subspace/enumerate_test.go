package subspace

import (
	"testing"
)

func TestAllCountAndOrder(t *testing.T) {
	for d := 1; d <= 8; d++ {
		all := All(d)
		if int64(len(all)) != TotalSubspaces(d) {
			t.Fatalf("d=%d: len(All) = %d, want %d", d, len(all), TotalSubspaces(d))
		}
		for i := 1; i < len(all); i++ {
			if all[i-1] >= all[i] {
				t.Fatalf("d=%d: not ascending at %d", d, i)
			}
		}
		for _, s := range all {
			if s.IsEmpty() || !s.SubsetOf(Full(d)) {
				t.Fatalf("d=%d: invalid subspace %v", d, s)
			}
		}
	}
}

func TestEachAllEarlyStop(t *testing.T) {
	count := 0
	EachAll(5, func(Mask) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d, want 7", count)
	}
}

func TestOfDimCounts(t *testing.T) {
	for d := 1; d <= 10; d++ {
		total := 0
		for m := 1; m <= d; m++ {
			layer := OfDim(d, m)
			if int64(len(layer)) != Binomial(d, m) {
				t.Fatalf("d=%d m=%d: len = %d, want %d", d, m, len(layer), Binomial(d, m))
			}
			for _, s := range layer {
				if s.Card() != m {
					t.Fatalf("d=%d m=%d: subspace %v has card %d", d, m, s, s.Card())
				}
				if !s.SubsetOf(Full(d)) {
					t.Fatalf("d=%d m=%d: subspace %v out of range", d, m, s)
				}
			}
			total += len(layer)
		}
		if int64(total) != TotalSubspaces(d) {
			t.Fatalf("d=%d: layers sum to %d, want %d", d, total, TotalSubspaces(d))
		}
	}
}

func TestOfDimOutOfRange(t *testing.T) {
	if OfDim(4, 0) != nil || OfDim(4, 5) != nil {
		t.Fatal("out-of-range m must return nil")
	}
}

func TestOfDimAscending(t *testing.T) {
	layer := OfDim(8, 3)
	for i := 1; i < len(layer); i++ {
		if layer[i-1] >= layer[i] {
			t.Fatalf("not ascending at %d", i)
		}
	}
}

func TestEachOfDimEarlyStop(t *testing.T) {
	n := 0
	EachOfDim(10, 4, func(Mask) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := New(0, 2, 3)
	seen := map[Mask]bool{}
	Subsets(s, func(sub Mask) bool {
		if sub.IsEmpty() || sub == s {
			t.Fatalf("Subsets yielded non-proper subset %v", sub)
		}
		if !sub.ProperSubsetOf(s) {
			t.Fatalf("%v is not a proper subset of %v", sub, s)
		}
		if seen[sub] {
			t.Fatalf("duplicate subset %v", sub)
		}
		seen[sub] = true
		return true
	})
	// A card-3 set has 2^3 - 2 = 6 proper non-empty subsets.
	if len(seen) != 6 {
		t.Fatalf("got %d subsets, want 6", len(seen))
	}
}

func TestSubsetsOfEmptyAndSingleton(t *testing.T) {
	calls := 0
	Subsets(Empty, func(Mask) bool { calls++; return true })
	Subsets(New(3), func(Mask) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("empty/singleton should yield no proper non-empty subsets, got %d", calls)
	}
}

func TestSupersetsEnumeration(t *testing.T) {
	d := 5
	s := New(1, 3)
	seen := map[Mask]bool{}
	Supersets(d, s, func(sup Mask) bool {
		if !sup.ProperSupersetOf(s) {
			t.Fatalf("%v is not a proper superset of %v", sup, s)
		}
		if !sup.SubsetOf(Full(d)) {
			t.Fatalf("superset %v escapes Full(%d)", sup, d)
		}
		if seen[sup] {
			t.Fatalf("duplicate superset %v", sup)
		}
		seen[sup] = true
		return true
	})
	// d-|s| = 3 free dims → 2^3 - 1 = 7 proper supersets.
	if len(seen) != 7 {
		t.Fatalf("got %d supersets, want 7", len(seen))
	}
}

func TestSupersetsOfFull(t *testing.T) {
	calls := 0
	Supersets(4, Full(4), func(Mask) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("Full has no proper supersets, got %d", calls)
	}
}

func TestSubsetsSupersetsDuality(t *testing.T) {
	// For every pair (a, b): b appears in Subsets(a) iff a appears in
	// Supersets(d, b).
	d := 6
	for _, a := range All(d) {
		subs := map[Mask]bool{}
		Subsets(a, func(s Mask) bool { subs[s] = true; return true })
		for _, b := range All(d) {
			inSubs := subs[b]
			want := b.ProperSubsetOf(a) && !b.IsEmpty()
			if inSubs != want {
				t.Fatalf("Subsets(%v) contains %v = %v, want %v", a, b, inSubs, want)
			}
		}
	}
}

func TestEarlyStopSupersetsSubsets(t *testing.T) {
	n := 0
	Supersets(8, New(0), func(Mask) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("supersets early stop: %d", n)
	}
	n = 0
	Subsets(Full(8), func(Mask) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("subsets early stop: %d", n)
	}
}
