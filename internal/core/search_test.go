package core

import (
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// testEnv bundles a random dataset with an OD evaluator.
type testEnv struct {
	ds   *vector.Dataset
	eval *od.Evaluator
}

func newTestEnv(t testing.TB, seed int64, n, d, k int) *testEnv {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			// clustered with occasional spread, so both outcomes occur
			if rng.Float64() < 0.9 {
				rows[i][j] = rng.NormFloat64()
			} else {
				rows[i][j] = rng.NormFloat64() * 6
			}
		}
	}
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := knn.NewLinear(ds, vector.L2)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := od.NewEvaluator(ds, ls, vector.L2, k, od.NormNone)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{ds: ds, eval: eval}
}

// naiveOutlying evaluates OD in every subspace directly — the oracle.
func naiveOutlying(env *testEnv, idx int, T float64) []subspace.Mask {
	var out []subspace.Mask
	subspace.EachAll(env.ds.Dim(), func(s subspace.Mask) bool {
		if env.eval.ODOfPoint(idx, s) >= T {
			out = append(out, s)
		}
		return true
	})
	subspace.SortMasks(out)
	return out
}

func masksEqual(a, b []subspace.Mask) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSearchValidation(t *testing.T) {
	env := newTestEnv(t, 1, 30, 3, 2)
	q := env.eval.NewQueryForPoint(0)
	if _, err := Search(nil, 3, 1, UniformPriors(3), PolicyTSF, nil); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, err := Search(q, 3, 1, UniformPriors(3), Policy(9), nil); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := Search(q, 3, 1, UniformPriors(3), PolicyRandom, nil); err == nil {
		t.Fatal("PolicyRandom without rng accepted")
	}
	if _, err := Search(q, 3, 1, UniformPriors(4), PolicyTSF, nil); err == nil {
		t.Fatal("priors/dim mismatch accepted")
	}
	badPriors := Priors{PUp: []float64{0, 2, 0, 0}, PDown: []float64{0, 0, 0, 1}}
	if _, err := Search(q, 3, 1, badPriors, PolicyTSF, nil); err == nil {
		t.Fatal("invalid priors accepted")
	}
}

// TestSearchMatchesNaiveAllPolicies is the central correctness test:
// every ordering policy must produce exactly the oracle's outlying
// set — the pruning rules change the work, never the answer.
func TestSearchMatchesNaiveAllPolicies(t *testing.T) {
	for _, d := range []int{2, 4, 6} {
		env := newTestEnv(t, int64(d)*17, 60, d, 3)
		uniform := UniformPriors(d)
		for idx := 0; idx < 8; idx++ {
			// A mid-range threshold so both outcomes occur.
			T := env.eval.ODOfPoint(idx, subspace.Full(d)) * 0.6
			if T <= 0 {
				continue
			}
			want := naiveOutlying(env, idx, T)
			for _, policy := range []Policy{PolicyTSF, PolicyBottomUp, PolicyTopDown, PolicyRandom} {
				q := env.eval.NewQueryForPoint(idx)
				rng := rand.New(rand.NewSource(5))
				res, err := Search(q, d, T, uniform, policy, rng)
				if err != nil {
					t.Fatal(err)
				}
				if !masksEqual(res.Outlying, want) {
					t.Fatalf("d=%d idx=%d policy=%v: got %d outlying, want %d\n got %v\nwant %v",
						d, idx, policy, len(res.Outlying), len(want), res.Outlying, want)
				}
				// Minimal set must expand back to the full set.
				if !masksEqual(ExpandMinimal(res.Minimal, d), want) {
					t.Fatalf("d=%d idx=%d policy=%v: minimal set loses information", d, idx, policy)
				}
				// Accounting: every subspace settled exactly once.
				c := res.Counters
				if c.Unknown != 0 || c.Evaluations+c.ImpliedUp+c.ImpliedDown != c.Total {
					t.Fatalf("accounting: %+v", c)
				}
			}
		}
	}
}

// TestSearchPrunes: on structured data the search must settle a large
// share of the lattice by implication rather than evaluation.
func TestSearchPrunes(t *testing.T) {
	d := 8
	env := newTestEnv(t, 99, 80, d, 3)
	uniform := UniformPriors(d)
	totalEvals, totalSubspaces := int64(0), int64(0)
	for idx := 0; idx < 10; idx++ {
		T := env.eval.ODOfPoint(idx, subspace.Full(d)) * 0.5
		if T <= 0 {
			continue
		}
		q := env.eval.NewQueryForPoint(idx)
		res, err := Search(q, d, T, uniform, PolicyTSF, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalEvals += res.Counters.Evaluations
		totalSubspaces += res.Counters.Total
	}
	if totalEvals >= totalSubspaces {
		t.Fatalf("no pruning: %d evals over %d subspaces", totalEvals, totalSubspaces)
	}
	t.Logf("evaluated %d of %d subspaces (%.1f%%)", totalEvals, totalSubspaces,
		100*float64(totalEvals)/float64(totalSubspaces))
}

// TestSearchExtremeThresholds: T=0 makes every subspace outlying
// (OD ≥ 0 always); a huge T makes none.
func TestSearchExtremeThresholds(t *testing.T) {
	d := 4
	env := newTestEnv(t, 3, 40, d, 2)
	q := env.eval.NewQueryForPoint(0)
	res, err := Search(q, d, 0, UniformPriors(d), PolicyTSF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Outlying)) != subspace.TotalSubspaces(d) {
		t.Fatalf("T=0: %d outlying, want all %d", len(res.Outlying), subspace.TotalSubspaces(d))
	}
	// All singletons are minimal.
	if len(res.Minimal) != d {
		t.Fatalf("T=0: minimal = %v", res.Minimal)
	}

	q2 := env.eval.NewQueryForPoint(0)
	res2, err := Search(q2, d, 1e18, UniformPriors(d), PolicyTSF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Outlying) != 0 || len(res2.Minimal) != 0 {
		t.Fatalf("huge T: outlying = %v", res2.Outlying)
	}
	// With a huge T the first downward prune from layer d settles
	// everything below: evaluations should be tiny.
	if res2.Counters.Evaluations > int64(d*d) {
		t.Fatalf("huge T needed %d evaluations", res2.Counters.Evaluations)
	}
}

func TestSearchLayerOrderTSFStartsSensibly(t *testing.T) {
	// With uniform priors on a fresh lattice, TSF is maximised by a
	// middle layer (both DSF and USF substantial), never by layer 1
	// of a tall lattice where USF alone with p_up=1 can win — just
	// assert the order is a permutation-with-repeats covering all
	// layers eventually and the search terminates.
	d := 6
	env := newTestEnv(t, 7, 50, d, 2)
	q := env.eval.NewQueryForPoint(1)
	T := env.eval.ODOfPoint(1, subspace.Full(d)) * 0.6
	res, err := Search(q, d, T, UniformPriors(d), PolicyTSF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayerOrder) == 0 || len(res.LayerOrder) > d {
		t.Fatalf("layer order %v", res.LayerOrder)
	}
	seen := map[int]bool{}
	for _, m := range res.LayerOrder {
		if m < 1 || m > d {
			t.Fatalf("bad layer %d", m)
		}
		if seen[m] {
			t.Fatalf("layer %d explored twice: %v", m, res.LayerOrder)
		}
		seen[m] = true
	}
}

func TestSearchBottomUpTopDownOrders(t *testing.T) {
	d := 5
	env := newTestEnv(t, 21, 50, d, 2)
	T := env.eval.ODOfPoint(0, subspace.Full(d)) * 0.6
	qb := env.eval.NewQueryForPoint(0)
	rb, _ := Search(qb, d, T, UniformPriors(d), PolicyBottomUp, nil)
	for i := 1; i < len(rb.LayerOrder); i++ {
		if rb.LayerOrder[i] <= rb.LayerOrder[i-1] {
			t.Fatalf("bottom-up order not increasing: %v", rb.LayerOrder)
		}
	}
	qt := env.eval.NewQueryForPoint(0)
	rt, _ := Search(qt, d, T, UniformPriors(d), PolicyTopDown, nil)
	for i := 1; i < len(rt.LayerOrder); i++ {
		if rt.LayerOrder[i] >= rt.LayerOrder[i-1] {
			t.Fatalf("top-down order not decreasing: %v", rt.LayerOrder)
		}
	}
}

func TestPriorsFromResult(t *testing.T) {
	d := 3
	env := newTestEnv(t, 31, 40, d, 2)
	q := env.eval.NewQueryForPoint(2)
	T := env.eval.ODOfPoint(2, subspace.Full(d)) * 0.5
	res, err := Search(q, d, T, UniformPriors(d), PolicyTSF, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := PriorsFromResult(res)
	for m := 1; m <= d; m++ {
		if p.PUp[m]+p.PDown[m] != 1 {
			t.Fatalf("layer %d: PUp+PDown = %v", m, p.PUp[m]+p.PDown[m])
		}
		// Cross-check against the oracle count.
		var outliers, total int64
		subspace.EachOfDim(d, m, func(s subspace.Mask) bool {
			total++
			if env.eval.ODOfPoint(2, s) >= T {
				outliers++
			}
			return true
		})
		want := float64(outliers) / float64(total)
		if p.PUp[m] != want {
			t.Fatalf("layer %d: PUp = %v, oracle %v", m, p.PUp[m], want)
		}
	}
}

func TestPolicyStringAndValid(t *testing.T) {
	for _, p := range []Policy{PolicyTSF, PolicyBottomUp, PolicyTopDown, PolicyRandom} {
		if p.String() == "" || !p.Valid() {
			t.Fatalf("policy %d", p)
		}
	}
	if Policy(9).Valid() {
		t.Fatal("bogus policy valid")
	}
}
