package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/lattice"
	"repro/internal/od"
	"repro/internal/subspace"
)

// Policy selects the layer-ordering strategy of the dynamic subspace
// search. PolicyTSF is the paper's algorithm; the others are the
// ablation baselines used by experiment F8.
type Policy uint8

const (
	// PolicyTSF explores, at every step, the layer with the highest
	// Total Saving Factor (§3.3).
	PolicyTSF Policy = iota
	// PolicyBottomUp sweeps layers 1..d (Apriori-style).
	PolicyBottomUp
	// PolicyTopDown sweeps layers d..1.
	PolicyTopDown
	// PolicyRandom picks a uniformly random unexplored layer each
	// step.
	PolicyRandom
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyTSF:
		return "tsf"
	case PolicyBottomUp:
		return "bottom-up"
	case PolicyTopDown:
		return "top-down"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Valid reports whether p is a defined policy.
func (p Policy) Valid() bool { return p <= PolicyRandom }

// SearchResult is the outcome of one dynamic subspace search.
type SearchResult struct {
	// Outlying is every subspace in which the query point is an
	// outlier (evaluated or implied by upward pruning), canonically
	// sorted.
	Outlying []subspace.Mask
	// Minimal is Outlying after the §3.4 refinement filter: only the
	// lowest-dimensional outlying subspaces, no returned subspace a
	// superset of another.
	Minimal []subspace.Mask
	// Counters is the lattice work accounting (evaluations vs
	// pruning-implied settlements).
	Counters lattice.Counters
	// LayerOrder records the sequence of layers the search explored.
	LayerOrder []int
	// PerLayerOutlierFrac[m] is the fraction of m-dimensional
	// subspaces found outlying — the quantity the learning process
	// aggregates into priors.
	PerLayerOutlierFrac []float64
}

// Search runs the dynamic subspace search for one query against the
// given cached OD oracle.
//
//	q       cached OD oracle for the query point
//	d       dimensionality of the full space
//	T       the paper's global distance threshold
//	priors  pruning probabilities (uniform for sample points, learned
//	        for query points)
//	policy  layer ordering (PolicyTSF for HOS-Miner proper)
//	rng     used only by PolicyRandom (may be nil otherwise)
func Search(q *od.Query, d int, T float64, priors Priors, policy Policy, rng *rand.Rand) (*SearchResult, error) {
	return SearchContext(context.Background(), q, d, T, priors, policy, rng)
}

// searchCtxStride is how many OD evaluations a layer sweep performs
// between context checks. Each evaluation is a full k-NN search
// (O(N·d) at least), so the check overhead is negligible while
// cancellation latency stays bounded by a handful of evaluations.
const searchCtxStride = 16

// SearchContext is Search with cooperative cancellation: ctx is
// checked before every layer and every searchCtxStride OD evaluations
// within a layer, so an abandoned caller stops paying mid-point
// instead of after finishing the current point's whole lattice. On
// cancellation it returns ctx.Err().
//
// Each call runs on a fresh working set, so the returned result owns
// its slices and may be retained indefinitely (the scan paths rely on
// this). The pooled query path (QueryWith / QueryBatch) reuses a
// per-evaluator scratch through searchInto instead.
func SearchContext(ctx context.Context, q *od.Query, d int, T float64, priors Priors, policy Policy, rng *rand.Rand) (*SearchResult, error) {
	sc := &searchScratch{}
	if err := searchInto(ctx, sc, q, d, T, priors, policy, rng); err != nil {
		return nil, err
	}
	res := sc.sres
	return &res, nil
}

// searchScratch is the reusable working set of one evaluator's
// dynamic searches: the lattice tracker (Reset per query instead of a
// fresh 2^d status array), the result buffers the SearchResult fields
// alias, and the QueryResult the concurrent query surface hands out.
// Ownership rule: everything in here is valid until the next search
// on the same scratch; results that outlive it must be cloned
// (QueryResult.Clone) or copied into a caller-owned arena (QueryBatch).
type searchScratch struct {
	tracker *lattice.Tracker

	outBuf   []subspace.Mask // backs sres.Outlying
	minBuf   []subspace.Mask // backs sres.Minimal
	layerBuf []int           // backs sres.LayerOrder
	fracBuf  []float64       // backs sres.PerLayerOutlierFrac

	sres SearchResult
	qres QueryResult
}

// searchInto runs the dynamic subspace search into sc, filling
// sc.sres with slices that alias the scratch buffers. It is the
// engine behind both SearchContext (fresh scratch per call) and the
// zero-allocation pooled path (per-evaluator scratch).
func searchInto(ctx context.Context, sc *searchScratch, q *od.Query, d int, T float64, priors Priors, policy Policy, rng *rand.Rand) error {
	if q == nil {
		return fmt.Errorf("core: nil query")
	}
	if !policy.Valid() {
		return fmt.Errorf("core: invalid policy %v", policy)
	}
	if policy == PolicyRandom && rng == nil {
		return fmt.Errorf("core: PolicyRandom requires an rng")
	}
	if err := priors.Validate(); err != nil {
		return err
	}
	if priors.Dim() != d {
		return fmt.Errorf("core: priors built for d=%d, search dimensionality %d", priors.Dim(), d)
	}
	if sc.tracker == nil || sc.tracker.Dim() != d {
		tr, err := lattice.NewTracker(d)
		if err != nil {
			return err
		}
		sc.tracker = tr
	} else {
		sc.tracker.Reset()
	}
	tr := sc.tracker

	sc.layerBuf = sc.layerBuf[:0]
	for !tr.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		m, ok := nextLayer(tr, priors, policy, rng)
		if !ok {
			break // defensive: cannot happen while !Done
		}
		sc.layerBuf = append(sc.layerBuf, m)
		var ctxErr error
		evals := 0
		tr.EachUnknownInLayer(m, func(s subspace.Mask) bool {
			if evals%searchCtxStride == 0 {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return false
				}
			}
			evals++
			if q.OD(s) >= T {
				tr.MarkOutlier(s, true)
			} else {
				tr.MarkNonOutlier(s, true)
			}
			return true
		})
		if ctxErr != nil {
			return ctxErr
		}
	}

	// Fill the result from the tracker, preserving the historical
	// slice shapes: Outlying is always non-nil, Minimal is nil exactly
	// when nothing is outlying.
	if sc.outBuf == nil {
		sc.outBuf = make([]subspace.Mask, 0, 16)
	}
	sc.outBuf = tr.AppendOutliers(sc.outBuf[:0])
	sc.minBuf = appendMinimalSorted(sc.minBuf[:0], sc.outBuf)
	if cap(sc.fracBuf) < d+1 {
		sc.fracBuf = make([]float64, d+1)
	}
	sc.fracBuf = sc.fracBuf[:d+1]
	clear(sc.fracBuf)
	for _, s := range sc.outBuf {
		sc.fracBuf[s.Card()]++
	}
	for m := 1; m <= d; m++ {
		sc.fracBuf[m] /= float64(subspace.Binomial(d, m))
	}

	sc.sres = SearchResult{
		Outlying:            sc.outBuf,
		Counters:            tr.Counters(),
		LayerOrder:          sc.layerBuf,
		PerLayerOutlierFrac: sc.fracBuf,
	}
	if len(sc.outBuf) > 0 {
		sc.sres.Minimal = sc.minBuf
	}
	return nil
}

// newDeterministicRng derives a per-worker RNG so concurrent scans
// stay reproducible for a given (seed, worker) pair.
func newDeterministicRng(seed, worker int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + worker))
}

// nextLayer picks the next lattice layer to explore.
func nextLayer(tr *lattice.Tracker, priors Priors, policy Policy, rng *rand.Rand) (int, bool) {
	switch policy {
	case PolicyTSF:
		return BestLayer(tr, priors)
	case PolicyBottomUp:
		for m := 1; m <= tr.Dim(); m++ {
			if tr.UnknownInLayer(m) > 0 {
				return m, true
			}
		}
	case PolicyTopDown:
		for m := tr.Dim(); m >= 1; m-- {
			if tr.UnknownInLayer(m) > 0 {
				return m, true
			}
		}
	case PolicyRandom:
		var candidates []int
		for m := 1; m <= tr.Dim(); m++ {
			if tr.UnknownInLayer(m) > 0 {
				candidates = append(candidates, m)
			}
		}
		if len(candidates) > 0 {
			return candidates[rng.Intn(len(candidates))], true
		}
	}
	return 0, false
}

// PriorsFromResult extracts the per-sample pruning statistics of §3.2
// from a finished search: PUp[m] is the fraction of m-dimensional
// subspaces in which the point was outlying, PDown[m] the complement.
func PriorsFromResult(res *SearchResult) Priors {
	d := len(res.PerLayerOutlierFrac) - 1
	p := Priors{PUp: make([]float64, d+1), PDown: make([]float64, d+1)}
	for m := 1; m <= d; m++ {
		p.PUp[m] = res.PerLayerOutlierFrac[m]
		p.PDown[m] = 1 - res.PerLayerOutlierFrac[m]
	}
	return p
}
