package core

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/subspace"
)

func freshTracker(t *testing.T, d int) *lattice.Tracker {
	t.Helper()
	tr, err := lattice.NewTracker(d)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestUniformPriorsShape(t *testing.T) {
	for d := 1; d <= 10; d++ {
		p := UniformPriors(d)
		if p.Dim() != d {
			t.Fatalf("d=%d: Dim() = %d", d, p.Dim())
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if d > 1 {
			if p.PUp[1] != 1 || p.PDown[1] != 0 {
				t.Fatalf("d=%d: layer-1 priors (%v,%v)", d, p.PUp[1], p.PDown[1])
			}
			if p.PUp[d] != 0 || p.PDown[d] != 1 {
				t.Fatalf("d=%d: layer-d priors (%v,%v)", d, p.PUp[d], p.PDown[d])
			}
		}
		for m := 2; m < d; m++ {
			if p.PUp[m] != 0.5 || p.PDown[m] != 0.5 {
				t.Fatalf("d=%d m=%d: interior priors (%v,%v)", d, m, p.PUp[m], p.PDown[m])
			}
		}
	}
}

func TestPriorsValidate(t *testing.T) {
	bad := Priors{PUp: []float64{0, 0.5}, PDown: []float64{0, 0.5, 0.5}}
	if bad.Validate() == nil {
		t.Fatal("length mismatch accepted")
	}
	bad2 := Priors{PUp: []float64{0, 1.5, 0}, PDown: []float64{0, 0, 1}}
	if bad2.Validate() == nil {
		t.Fatal("out-of-range prior accepted")
	}
	bad3 := Priors{PUp: []float64{0, 1, 0}, PDown: []float64{0, 0.2, 1}}
	if bad3.Validate() == nil {
		t.Fatal("PDown[1] != 0 accepted")
	}
	bad4 := Priors{PUp: []float64{0, 1, 0.3}, PDown: []float64{0, 0, 1}}
	if bad4.Validate() == nil {
		t.Fatal("PUp[d] != 0 accepted")
	}
	empty := Priors{PUp: []float64{0}, PDown: []float64{0}}
	if empty.Validate() == nil {
		t.Fatal("zero-layer priors accepted")
	}
}

// TestTSFInitialFractions: on a fresh tracker every workload remains,
// so f_down = f_up = 1 and TSF reduces to the closed-form
// p_down·DSF + p_up·USF.
func TestTSFInitialFractions(t *testing.T) {
	d := 6
	tr := freshTracker(t, d)
	p := UniformPriors(d)
	for m := 1; m <= d; m++ {
		var want float64
		switch {
		case m == 1:
			want = p.PUp[1] * float64(subspace.USF(1, d))
		case m == d:
			want = p.PDown[d] * float64(subspace.DSF(d))
		default:
			want = p.PDown[m]*float64(subspace.DSF(m)) + p.PUp[m]*float64(subspace.USF(m, d))
		}
		if got := TSF(m, tr, p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("m=%d: TSF = %v, want %v", m, got, want)
		}
	}
}

func TestTSFOutOfRangeLayer(t *testing.T) {
	tr := freshTracker(t, 4)
	p := UniformPriors(4)
	if TSF(0, tr, p) != 0 || TSF(5, tr, p) != 0 {
		t.Fatal("out-of-range layers must price 0")
	}
}

func TestTSFDegenerateD1(t *testing.T) {
	tr := freshTracker(t, 1)
	p := UniformPriors(1)
	if TSF(1, tr, p) != 0 {
		t.Fatal("d=1 lattice has no pruning value")
	}
	m, ok := BestLayer(tr, p)
	if !ok || m != 1 {
		t.Fatalf("BestLayer(d=1) = (%d,%v)", m, ok)
	}
}

// TestTSFDecaysWithSettledWork: settling subspaces below layer m
// shrinks f_down(m) and hence the downward term of TSF(m).
func TestTSFDecaysWithSettledWork(t *testing.T) {
	d := 6
	tr := freshTracker(t, d)
	p := UniformPriors(d)
	before := TSF(4, tr, p)
	// Settle a batch of low layers as non-outliers.
	subspace.EachOfDim(d, 2, func(s subspace.Mask) bool {
		tr.MarkNonOutlier(s, true)
		return true
	})
	after := TSF(4, tr, p)
	if after >= before {
		t.Fatalf("TSF(4) should decay after low layers settle: %v -> %v", before, after)
	}
}

func TestBestLayerSkipsSettledLayers(t *testing.T) {
	d := 4
	tr := freshTracker(t, d)
	p := UniformPriors(d)
	// Settle every layer except 3.
	for _, m := range []int{1, 2, 4} {
		subspace.EachOfDim(d, m, func(s subspace.Mask) bool {
			if tr.Status(s) == lattice.Unknown {
				if m == 4 {
					tr.MarkNonOutlier(s, true)
				} else {
					tr.MarkNonOutlier(s, true)
				}
			}
			return true
		})
	}
	if tr.UnknownInLayer(3) == 0 {
		t.Skip("propagation settled layer 3 entirely; nothing to assert")
	}
	m, ok := BestLayer(tr, p)
	if !ok || m != 3 {
		t.Fatalf("BestLayer = (%d,%v), want (3,true)", m, ok)
	}
}

func TestBestLayerDoneLattice(t *testing.T) {
	d := 3
	tr := freshTracker(t, d)
	subspace.EachAll(d, func(s subspace.Mask) bool {
		if tr.Status(s) == lattice.Unknown {
			tr.MarkNonOutlier(s, true)
		}
		return true
	})
	if _, ok := BestLayer(tr, UniformPriors(d)); ok {
		t.Fatal("BestLayer on a done lattice must report none")
	}
}

func TestAveragePriors(t *testing.T) {
	d := 3
	a := Priors{PUp: []float64{0, 1, 0.5, 0.2}, PDown: []float64{0, 0, 0.5, 0.8}}
	b := Priors{PUp: []float64{0, 0, 0.1, 0.4}, PDown: []float64{0, 1, 0.9, 0.6}}
	avg := averagePriors([]Priors{a, b}, d)
	if math.Abs(avg.PUp[2]-0.3) > 1e-12 || math.Abs(avg.PDown[2]-0.7) > 1e-12 {
		t.Fatalf("interior average: (%v,%v)", avg.PUp[2], avg.PDown[2])
	}
	// Boundary conventions enforced regardless of sample content.
	if avg.PDown[1] != 0 || avg.PUp[d] != 0 {
		t.Fatalf("boundary conventions: PDown[1]=%v PUp[d]=%v", avg.PDown[1], avg.PUp[d])
	}
	if err := avg.Validate(); err != nil {
		t.Fatal(err)
	}
	// No samples → uniform fallback.
	u := averagePriors(nil, d)
	if u.PUp[1] != 1 || u.PDown[d] != 1 {
		t.Fatalf("empty average should be uniform: %+v", u)
	}
}
