package core

import (
	"context"
	"testing"

	"repro/internal/datagen"
)

// These tests pin the zero-allocation contract of the query hot path.
// They are budgets, not benchmarks: a regression that re-introduces
// per-query garbage (a closure, a sort.Slice, a fresh tracker) fails
// here deterministically, long before it shows up as GC pressure in
// production profiles.

func allocTestMiner(t *testing.T) *Miner {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 300, D: 5, NumOutliers: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMiner(ds, Config{K: 5, TQuantile: 0.95, Seed: 1, Backend: BackendLinear})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestQueryWithZeroAlloc: a steady-state QueryWith on a warm evaluator
// allocates nothing — results live in the evaluator's scratch.
func TestQueryWithZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the budget holds only uninstrumented")
	}
	m := allocTestMiner(t)
	eval, err := m.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch (tracker, heaps, buffers) across a spread of
	// points so every buffer reaches its steady-state capacity.
	for i := 0; i < 20; i++ {
		if _, err := m.QueryPointWith(eval, i%m.Dataset().N()); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	n := testing.AllocsPerRun(50, func() {
		if _, err := m.QueryPointWith(eval, i%m.Dataset().N()); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if n != 0 {
		t.Fatalf("steady-state QueryWith allocates %v objects per call, want 0", n)
	}
}

// TestQueryBatchSteadyStateZeroAlloc: a single-worker batch that
// recycles its BatchResult (BatchOptions.Reuse) allocates nothing once
// warm — per item and per batch.
func TestQueryBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the budget holds only uninstrumented")
	}
	m := allocTestMiner(t)
	queries := make([]BatchQuery, 16)
	for i := range queries {
		queries[i] = BatchIndex(i % 8) // duplicates exercise the shared cache
	}
	opts := BatchOptions{Workers: 1}
	for i := 0; i < 5; i++ {
		res, err := m.QueryBatch(context.Background(), queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Reuse = res
	}
	n := testing.AllocsPerRun(30, func() {
		res, err := m.QueryBatch(context.Background(), queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatal("batch items failed")
		}
		opts.Reuse = res
	})
	if n != 0 {
		t.Fatalf("steady-state QueryBatch allocates %v objects per batch, want 0", n)
	}
}

// TestQueryBatchParallelZeroAlloc: the multi-worker fan-out path,
// recycling its BatchResult, allocates nothing once warm either — the
// coordination machinery (cursor, WaitGroup, error slots, the worker
// func value) lives in the recycled batchRun and goroutine descriptors
// come from the runtime's free list. This was ~23 allocs/op before the
// fan-out state moved into BatchResult.
func TestQueryBatchParallelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the budget holds only uninstrumented")
	}
	m := allocTestMiner(t)
	queries := make([]BatchQuery, 32)
	for i := range queries {
		queries[i] = BatchIndex(i % 16) // duplicates exercise the shared cache
	}
	opts := BatchOptions{Workers: 4}
	for i := 0; i < 10; i++ {
		res, err := m.QueryBatch(context.Background(), queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Reuse = res
	}
	n := testing.AllocsPerRun(50, func() {
		res, err := m.QueryBatch(context.Background(), queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatal("batch items failed")
		}
		opts.Reuse = res
	})
	if n != 0 {
		t.Fatalf("steady-state parallel QueryBatch allocates %v objects per batch, want 0", n)
	}
}

// TestQueryBatchReuseInvalidatesPreviousResults documents the Reuse
// contract: recycling a BatchResult overwrites the storage the
// previous round's items pointed into, so retained slices must be
// cloned before the next batch.
func TestQueryBatchReuseInvalidatesPreviousResults(t *testing.T) {
	m := allocTestMiner(t)
	queries := []BatchQuery{BatchIndex(0), BatchIndex(1)}
	res1, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	kept := res1.Items[0].Result
	cloned := kept.Clone()
	res2, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 1, Reuse: res1})
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res1 {
		t.Fatal("Reuse did not recycle the BatchResult")
	}
	// The clone still matches the fresh computation of the same item;
	// the retained pointer may have been overwritten (same inputs here,
	// so only identity, not values, can be asserted).
	fresh := res2.Items[0].Result
	if cloned.IsOutlierAnywhere != fresh.IsOutlierAnywhere ||
		len(cloned.Outlying) != len(fresh.Outlying) {
		t.Fatal("cloned result diverged from recomputation of the same item")
	}
}
