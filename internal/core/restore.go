package core

import (
	"bytes"
	"fmt"

	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/shard"
	"repro/internal/subspace"
	"repro/internal/vector"
	"repro/internal/xtree"
)

// IndexSnapshot is the serialized k-NN index of a Miner: the encoded
// X-tree bytes a warm restart hands back to NewMinerWithIndex so it
// can skip the index build. Exactly one of the layouts is populated
// for tree-backed configurations; a linear-scan miner has neither
// (there is nothing to persist — the dataset is the index).
type IndexSnapshot struct {
	// Tree is the xtree.Encode form of a single-index miner's tree
	// (nil when the miner scans linearly or is sharded).
	Tree []byte
	// ShardTrees is the per-shard encoded tree set of a sharded miner
	// (nil when unsharded); entry s is nil for linear-scan shards.
	// Present — possibly with every entry nil — whenever the miner is
	// sharded, so the sharded/unsharded distinction survives encoding.
	ShardTrees [][]byte
}

// ExportIndex serializes the miner's k-NN index for snapshotting.
func (m *Miner) ExportIndex() (*IndexSnapshot, error) {
	out := &IndexSnapshot{}
	switch {
	case m.shards != nil:
		trees, err := m.shards.EncodedTrees()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		out.ShardTrees = trees
	case m.tree != nil:
		var buf bytes.Buffer
		if err := m.tree.Encode(&buf); err != nil {
			return nil, fmt.Errorf("core: encoding index: %w", err)
		}
		out.Tree = buf.Bytes()
	}
	return out, nil
}

// NewMinerWithIndex is NewMiner with a warm-started index: where the
// configuration calls for an X-tree (single or per-shard), the
// supplied encoded trees are decoded and validated instead of built
// from scratch — the snapshot-restore path. The index shape must
// match what cfg would build: bytes for an index the configuration
// does not use, or a missing tree for one it does, fail loudly rather
// than silently rebuilding, because a shape mismatch means the
// snapshot does not describe this configuration. A nil idx is
// identical to NewMiner.
func NewMinerWithIndex(ds *vector.Dataset, cfg Config, idx *IndexSnapshot) (*Miner, error) {
	if idx == nil || (idx.Tree == nil && idx.ShardTrees == nil) {
		return NewMiner(ds, cfg)
	}
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if ds.Dim() < 1 || ds.Dim() > subspace.MaxDim {
		return nil, fmt.Errorf("core: dimensionality %d out of [1,%d]", ds.Dim(), subspace.MaxDim)
	}
	if err := cfg.validate(ds); err != nil {
		return nil, err
	}

	var searcher knn.Searcher
	var tree *xtree.Tree
	var engine *shard.Engine
	sharded := cfg.Shards >= 1
	useXTree := !sharded && (cfg.Backend == BackendXTree ||
		(cfg.Backend == BackendAuto && ds.N() >= autoXTreeThreshold))
	switch {
	case sharded != (idx.ShardTrees != nil):
		return nil, fmt.Errorf("core: index snapshot shape mismatch (config sharded: %v)", sharded)
	case sharded:
		e, err := shard.NewEngineFromEncoded(ds, shard.Config{
			Shards:      cfg.Shards,
			Partitioner: cfg.Partitioner,
			Metric:      cfg.Metric,
			Index:       cfg.Backend.shardIndexKind(),
		}, idx.ShardTrees)
		if err != nil {
			return nil, err
		}
		engine = e
		s, err := e.NewSearcher()
		if err != nil {
			return nil, err
		}
		searcher = s
	case useXTree != (idx.Tree != nil):
		return nil, fmt.Errorf("core: index snapshot shape mismatch (config wants a tree: %v)", useXTree)
	default: // single-index tree, bytes present
		t, err := xtree.Decode(bytes.NewReader(idx.Tree), ds)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if t.Metric() != cfg.Metric {
			return nil, fmt.Errorf("core: index tree metric %v, config uses %v", t.Metric(), cfg.Metric)
		}
		tree = t
		searcher = xtree.NewSearcher(t)
	}

	eval, err := od.NewEvaluator(ds, searcher, cfg.Metric, cfg.K, od.NormNone)
	if err != nil {
		return nil, err
	}
	return newMinerWith(ds, cfg, eval, searcher, tree, engine), nil
}
