package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// State is the serializable outcome of preprocessing: the resolved
// threshold and the learned priors. Persisting it lets a service
// restart (or a different process) answer queries without re-running
// the quantile resolution and the §3.2 learning phase, which dominate
// startup cost on large datasets.
type State struct {
	// Version guards the format for forward compatibility.
	Version int `json:"version"`
	// Dim is the dataset dimensionality the priors were learned for.
	Dim int `json:"dim"`
	// K and Metric echo the OD configuration so mismatched reuse is
	// rejected.
	K      int    `json:"k"`
	Metric string `json:"metric"`
	// Threshold is the resolved T.
	Threshold float64 `json:"threshold"`
	// PUp/PDown are the query priors (index 0 unused).
	PUp   []float64 `json:"p_up"`
	PDown []float64 `json:"p_down"`
	// Learned records whether the priors came from learning (vs
	// uniform).
	Learned bool `json:"learned"`
}

const stateVersion = 1

// StateVersion is the current State format version — exported so
// other serialization layers (internal/snapshot) can mint State
// values ImportState will accept.
const StateVersion = stateVersion

// ExportState captures the preprocessed state. It fails if Preprocess
// has not run yet.
func (m *Miner) ExportState() (*State, error) {
	if !m.preprocessed {
		return nil, fmt.Errorf("core: ExportState before Preprocess")
	}
	return &State{
		Version:   stateVersion,
		Dim:       m.ds.Dim(),
		K:         m.cfg.K,
		Metric:    m.cfg.Metric.String(),
		Threshold: m.threshold,
		PUp:       append([]float64(nil), m.priors.PUp...),
		PDown:     append([]float64(nil), m.priors.PDown...),
		Learned:   m.learned,
	}, nil
}

// ImportState installs a previously exported state, skipping
// threshold resolution and learning on the next query. The state must
// match the miner's dataset dimensionality, K and metric.
func (m *Miner) ImportState(s *State) error {
	if s == nil {
		return fmt.Errorf("core: nil state")
	}
	if s.Version != stateVersion {
		return fmt.Errorf("core: state version %d, want %d", s.Version, stateVersion)
	}
	if s.Dim != m.ds.Dim() {
		return fmt.Errorf("core: state for d=%d, dataset has d=%d", s.Dim, m.ds.Dim())
	}
	if s.K != m.cfg.K {
		return fmt.Errorf("core: state for K=%d, miner configured with K=%d", s.K, m.cfg.K)
	}
	if s.Metric != m.cfg.Metric.String() {
		return fmt.Errorf("core: state for metric %s, miner uses %s", s.Metric, m.cfg.Metric)
	}
	if s.Threshold <= 0 {
		return fmt.Errorf("core: state threshold %v must be positive", s.Threshold)
	}
	priors := Priors{
		PUp:   append([]float64(nil), s.PUp...),
		PDown: append([]float64(nil), s.PDown...),
	}
	if err := priors.Validate(); err != nil {
		return fmt.Errorf("core: state priors: %w", err)
	}
	if priors.Dim() != s.Dim {
		return fmt.Errorf("core: state priors cover %d layers, want %d", priors.Dim(), s.Dim)
	}
	m.threshold = s.Threshold
	m.priors = priors
	m.learned = s.Learned
	m.preprocessed = true
	return nil
}

// WriteState serialises the preprocessed state as JSON.
func (m *Miner) WriteState(w io.Writer) error {
	s, err := m.ExportState()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadState parses a JSON state and installs it.
func (m *Miner) ReadState(r io.Reader) error {
	var s State
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("core: decoding state: %w", err)
	}
	return m.ImportState(&s)
}

// SaveStateFile writes the state to a file.
func (m *Miner) SaveStateFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.WriteState(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadStateFile reads and installs a state file.
func (m *Miner) LoadStateFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.ReadState(f)
}
