// Package core implements the HOS-Miner algorithm itself (§3 of the
// paper): the Total Saving Factor that prices each lattice layer
// (Definition 3), the sample-based learning process that estimates the
// pruning probabilities (§3.2), the dynamic subspace search (§3.3)
// and the result refinement filter (§3.4). Substrates — distances,
// k-NN engines, the X-tree, lattice bookkeeping — live in sibling
// packages.
package core

import (
	"fmt"
	"math"
)

// Priors holds the estimated pruning probabilities per lattice layer:
// PUp[m] = P(OD_s(p) ≥ T) and PDown[m] = P(OD_s(p) < T) for an
// m-dimensional subspace s. Index 0 is unused. The paper fixes
// PDown[1] = 0 and PUp[d] = 0 because layer 1 yields no downward
// savings and layer d no upward savings.
type Priors struct {
	PUp   []float64
	PDown []float64
}

// UniformPriors returns the §3.2 priors used for sample points:
// 0.5/0.5 on interior layers, (1, 0) at m = 1 and (0, 1) at m = d.
func UniformPriors(d int) Priors {
	p := Priors{PUp: make([]float64, d+1), PDown: make([]float64, d+1)}
	for m := 1; m <= d; m++ {
		switch {
		case m == 1 && d == 1:
			// Degenerate lattice: no pruning possible either way.
			p.PUp[m], p.PDown[m] = 0, 0
		case m == 1:
			p.PUp[m], p.PDown[m] = 1, 0
		case m == d:
			p.PUp[m], p.PDown[m] = 0, 1
		default:
			p.PUp[m], p.PDown[m] = 0.5, 0.5
		}
	}
	return p
}

// Dim returns the lattice dimensionality the priors were built for.
func (p Priors) Dim() int { return len(p.PUp) - 1 }

// Validate checks structural sanity: equal lengths, probabilities in
// [0,1], and the boundary conventions PDown[1] = 0, PUp[d] = 0 (for
// d > 1).
func (p Priors) Validate() error {
	if len(p.PUp) != len(p.PDown) {
		return fmt.Errorf("core: priors length mismatch %d vs %d", len(p.PUp), len(p.PDown))
	}
	d := p.Dim()
	if d < 1 {
		return fmt.Errorf("core: priors cover no layers")
	}
	for m := 1; m <= d; m++ {
		for _, v := range []float64{p.PUp[m], p.PDown[m]} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("core: prior out of [0,1] at layer %d", m)
			}
		}
	}
	if d > 1 {
		if p.PDown[1] != 0 {
			return fmt.Errorf("core: PDown[1] = %v, must be 0", p.PDown[1])
		}
		if p.PUp[d] != 0 {
			return fmt.Errorf("core: PUp[d] = %v, must be 0", p.PUp[d])
		}
	}
	return nil
}

// SmoothPriors blends learned priors with one virtual uniform sample
// (Laplace-style): p ← (S·p + 0.5)/(S + 1) on interior layers. The
// paper's plain averaging can return exactly-zero probabilities (all
// sampled points non-outlying in every m-dim subspace is the common
// case), and a zero p_up blinds the TSF to upward-pruning
// opportunities for the very queries users care about — outliers.
// One pseudo-sample keeps the learned signal dominant while removing
// the degeneracy; DESIGN.md records this as a deliberate deviation.
func SmoothPriors(p Priors, samples int) Priors {
	d := p.Dim()
	out := Priors{PUp: make([]float64, d+1), PDown: make([]float64, d+1)}
	s := float64(samples)
	for m := 1; m <= d; m++ {
		out.PUp[m] = (s*p.PUp[m] + 0.5) / (s + 1)
		out.PDown[m] = (s*p.PDown[m] + 0.5) / (s + 1)
	}
	if d > 1 {
		out.PUp[1], out.PDown[1] = (s*p.PUp[1]+1)/(s+1), 0
		out.PUp[d], out.PDown[d] = 0, (s*p.PDown[d]+1)/(s+1)
	} else {
		out.PUp[1], out.PDown[1] = 0, 0
	}
	return out
}

// AveragePriors pools per-sample layer statistics into the learned
// priors of §3.2: the mean over samples of the fraction of
// m-dimensional subspaces found outlying (PUp) and non-outlying
// (PDown), with the boundary conventions applied. It is exported for
// the experiment harness, which runs the learning loop with custom
// sampling.
func AveragePriors(perSample []Priors, d int) Priors {
	return averagePriors(perSample, d)
}

func averagePriors(perSample []Priors, d int) Priors {
	out := Priors{PUp: make([]float64, d+1), PDown: make([]float64, d+1)}
	if len(perSample) == 0 {
		return UniformPriors(d)
	}
	for m := 1; m <= d; m++ {
		var up, down float64
		for _, ps := range perSample {
			up += ps.PUp[m]
			down += ps.PDown[m]
		}
		out.PUp[m] = up / float64(len(perSample))
		out.PDown[m] = down / float64(len(perSample))
	}
	if d > 1 {
		out.PDown[1] = 0
		out.PUp[d] = 0
	}
	return out
}
