package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/subspace"
)

// TestMinimalSubspacesPaperExample reproduces the §3.4 worked
// example: outlying subspaces {[1,3],[2,4],[1,2,3],[1,2,4],[1,3,4],
// [2,3,4],[1,2,3,4]} filter to {[1,3],[2,4]}. (The paper is 1-based;
// we shift to 0-based dims.)
func TestMinimalSubspacesPaperExample(t *testing.T) {
	in := []subspace.Mask{
		subspace.New(0, 2),       // [1,3]
		subspace.New(1, 3),       // [2,4]
		subspace.New(0, 1, 2),    // [1,2,3]
		subspace.New(0, 1, 3),    // [1,2,4]
		subspace.New(0, 2, 3),    // [1,3,4]
		subspace.New(1, 2, 3),    // [2,3,4]
		subspace.New(0, 1, 2, 3), // [1,2,3,4]
	}
	got := MinimalSubspaces(in)
	if len(got) != 2 || got[0] != subspace.New(0, 2) || got[1] != subspace.New(1, 3) {
		t.Fatalf("filter = %v, want [[0,2] [1,3]]", got)
	}
}

func TestMinimalSubspacesEmptyAndSingle(t *testing.T) {
	if MinimalSubspaces(nil) != nil {
		t.Fatal("empty input should return nil")
	}
	one := []subspace.Mask{subspace.New(2)}
	got := MinimalSubspaces(one)
	if len(got) != 1 || got[0] != subspace.New(2) {
		t.Fatalf("singleton = %v", got)
	}
}

func TestMinimalSubspacesDuplicates(t *testing.T) {
	in := []subspace.Mask{subspace.New(1), subspace.New(1), subspace.New(1, 2)}
	got := MinimalSubspaces(in)
	if len(got) != 1 || got[0] != subspace.New(1) {
		t.Fatalf("dedup = %v", got)
	}
}

func TestMinimalSubspacesIncomparable(t *testing.T) {
	in := []subspace.Mask{subspace.New(0, 1), subspace.New(2, 3), subspace.New(1, 2)}
	got := MinimalSubspaces(in)
	if len(got) != 3 {
		t.Fatalf("pairwise-incomparable set should survive: %v", got)
	}
}

func TestMinimalSubspacesDoesNotMutateInput(t *testing.T) {
	in := []subspace.Mask{subspace.New(0, 1, 2), subspace.New(0)}
	MinimalSubspaces(in)
	if in[0] != subspace.New(0, 1, 2) || in[1] != subspace.New(0) {
		t.Fatal("input reordered")
	}
}

// TestMinimalSubspacesProperties (property): over random upward-
// closed sets, (1) no kept subspace is a superset of another kept
// one; (2) every input subspace is a superset of some kept one;
// (3) expanding the minimal set reproduces the input exactly.
func TestMinimalSubspacesProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(6)
		// Build a random upward-closed outlying set from random seeds.
		seen := make(map[subspace.Mask]bool)
		for i := 0; i < 1+rng.Intn(4); i++ {
			s := subspace.Mask(rng.Uint32()) & subspace.Full(d)
			if s.IsEmpty() {
				continue
			}
			seen[s] = true
			subspace.Supersets(d, s, func(sup subspace.Mask) bool {
				seen[sup] = true
				return true
			})
		}
		var in []subspace.Mask
		for s := range seen {
			in = append(in, s)
		}
		kept := MinimalSubspaces(in)
		for i, a := range kept {
			for j, b := range kept {
				if i != j && a.SupersetOf(b) {
					return false
				}
			}
		}
		for _, s := range in {
			if !coveredBy(s, kept) {
				return false
			}
		}
		expanded := ExpandMinimal(kept, d)
		if len(expanded) != len(in) {
			return false
		}
		for _, s := range expanded {
			if !seen[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandMinimalEmpty(t *testing.T) {
	if got := ExpandMinimal(nil, 4); len(got) != 0 {
		t.Fatalf("expand(nil) = %v", got)
	}
}
