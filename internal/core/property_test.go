package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/subspace"
	"repro/internal/vector"
)

// TestOutlyingSetMonotoneInT (property): raising the threshold can
// only shrink the outlying set, and the result at any T equals the
// oracle regardless of policy.
func TestOutlyingSetMonotoneInT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 40+rng.Intn(40), 2+rng.Intn(4)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * (1 + 4*rng.Float64())
			}
		}
		ds, err := vector.FromRows(rows)
		if err != nil {
			return false
		}
		ls, err := knn.NewLinear(ds, vector.L2)
		if err != nil {
			return false
		}
		eval, err := od.NewEvaluator(ds, ls, vector.L2, 2+rng.Intn(4), od.NormNone)
		if err != nil {
			return false
		}
		idx := rng.Intn(n)
		base := eval.ODOfPoint(idx, subspace.Full(d))
		if base <= 0 {
			return true
		}
		uniform := UniformPriors(d)
		lowT, highT := base*0.4, base*0.9
		qLow := eval.NewQueryForPoint(idx)
		resLow, err := Search(qLow, d, lowT, uniform, PolicyTSF, nil)
		if err != nil {
			return false
		}
		qHigh := eval.NewQueryForPoint(idx)
		resHigh, err := Search(qHigh, d, highT, uniform, PolicyTSF, nil)
		if err != nil {
			return false
		}
		// Monotonicity of the result set: high-T set ⊆ low-T set.
		lowSet := make(map[subspace.Mask]bool, len(resLow.Outlying))
		for _, s := range resLow.Outlying {
			lowSet[s] = true
		}
		for _, s := range resHigh.Outlying {
			if !lowSet[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMinimalSetIsAntichainAndGenerates (property): on real search
// results the minimal set is an antichain whose upward closure is
// exactly the outlying set.
func TestMinimalSetIsAntichainAndGenerates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 50+rng.Intn(30), 3+rng.Intn(3)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		// One displaced point to guarantee non-trivial results.
		rows[0][rng.Intn(d)] += 30
		ds, err := vector.FromRows(rows)
		if err != nil {
			return false
		}
		ls, _ := knn.NewLinear(ds, vector.L2)
		eval, err := od.NewEvaluator(ds, ls, vector.L2, 3, od.NormNone)
		if err != nil {
			return false
		}
		T := eval.ODOfPoint(0, subspace.Full(d)) * 0.5
		if T <= 0 {
			return true
		}
		q := eval.NewQueryForPoint(0)
		res, err := Search(q, d, T, UniformPriors(d), PolicyTSF, nil)
		if err != nil {
			return false
		}
		// Antichain.
		for i, a := range res.Minimal {
			for j, b := range res.Minimal {
				if i != j && a.SubsetOf(b) {
					return false
				}
			}
		}
		// Upward closure reproduces Outlying exactly.
		expanded := ExpandMinimal(res.Minimal, d)
		if len(expanded) != len(res.Outlying) {
			return false
		}
		for i := range expanded {
			if expanded[i] != res.Outlying[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSmoothPriorsProperties: smoothing keeps probabilities in (0,1)
// on interior layers, preserves boundary conventions, converges to
// the raw priors as S grows, and always validates.
func TestSmoothPriorsProperties(t *testing.T) {
	f := func(rawSeed int64, sRaw uint8) bool {
		rng := rand.New(rand.NewSource(rawSeed))
		d := 2 + rng.Intn(10)
		samples := 1 + int(sRaw%64)
		p := Priors{PUp: make([]float64, d+1), PDown: make([]float64, d+1)}
		for m := 1; m <= d; m++ {
			p.PUp[m] = rng.Float64()
			p.PDown[m] = 1 - p.PUp[m]
		}
		p.PDown[1], p.PUp[d] = 0, 0
		sm := SmoothPriors(p, samples)
		if err := sm.Validate(); err != nil {
			return false
		}
		for m := 2; m < d; m++ {
			if sm.PUp[m] <= 0 || sm.PUp[m] >= 1 {
				return false
			}
			// Shrinkage moves toward 0.5 and stays within
			// 1/(2(S+1)) of the raw value.
			if diff := sm.PUp[m] - p.PUp[m]; diff > 0.5/float64(samples+1)+1e-12 || diff < -0.5/float64(samples+1)-1e-12 {
				return false
			}
		}
		return sm.PDown[1] == 0 && sm.PUp[d] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothPriorsDegenerate(t *testing.T) {
	// d = 1: single layer, no pruning either way.
	sm := SmoothPriors(UniformPriors(1), 5)
	if sm.PUp[1] != 0 || sm.PDown[1] != 0 {
		t.Fatalf("d=1 smoothing: %+v", sm)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
}
