package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/subspace"
)

func TestQueryBatchMatchesSingleQueries(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.92, SampleSize: 8, Seed: 3})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	external := append([]float64(nil), m.Dataset().Point(1)...)
	external[0] += 30 // an ad-hoc point, outlying in dim 0

	var queries []BatchQuery
	for i := 0; i < 40; i++ {
		queries = append(queries, BatchIndex(i%25)) // duplicates on purpose
	}
	queries = append(queries, BatchPoint(external))

	res, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != len(queries) || res.Failed != 0 {
		t.Fatalf("succeeded/failed = %d/%d, want %d/0", res.Succeeded, res.Failed, len(queries))
	}
	for i, item := range res.Items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		var want *QueryResult
		if row, ok := queries[i].Row(); ok {
			want, err = m.OutlyingSubspacesOfPoint(row)
		} else {
			p, _ := queries[i].ExternalPoint()
			want, err = m.OutlyingSubspaces(p)
		}
		if err != nil {
			t.Fatal(err)
		}
		got := item.Result
		if !reflect.DeepEqual(got.Outlying, want.Outlying) || !reflect.DeepEqual(got.Minimal, want.Minimal) {
			t.Fatalf("item %d: batch answer diverged from single query", i)
		}
		if got.Threshold != want.Threshold || got.IsOutlierAnywhere != want.IsOutlierAnywhere {
			t.Fatalf("item %d: summary fields diverged", i)
		}
	}
	if res.Cache.Hits == 0 {
		t.Fatal("duplicated batch items produced no shared-cache hits")
	}
}

// A batch of size 1 must be *exactly* the single-query result — every
// field, including the work accounting, since an empty shared cache
// can neither add nor remove OD computations.
func TestQueryBatchSize1ExactlyEquivalent(t *testing.T) {
	for _, policy := range []Policy{PolicyTSF, PolicyBottomUp, PolicyTopDown} {
		m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 5, Policy: policy})
		if err := m.Preprocess(); err != nil {
			t.Fatal(err)
		}
		for idx := 0; idx < 10; idx++ {
			want, err := m.OutlyingSubspacesOfPoint(idx)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.QueryBatch(context.Background(), []BatchQuery{BatchIndex(idx)}, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Items[0].Err != nil {
				t.Fatal(res.Items[0].Err)
			}
			if !reflect.DeepEqual(res.Items[0].Result, want) {
				t.Fatalf("policy %v point %d: batch-of-1 = %+v, single = %+v",
					policy, idx, res.Items[0].Result, want)
			}
		}
	}
}

func TestQueryBatchPartialFailure(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	n := m.Dataset().N()
	queries := []BatchQuery{
		BatchIndex(0),               // ok
		BatchIndex(n),               // out of range
		BatchPoint([]float64{1, 2}), // wrong dimensionality
		{},                          // zero value: invalid by construction
		BatchIndex(-3),              // negative index
		BatchIndex(n - 1),           // ok
	}
	res, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != 2 || res.Failed != 4 {
		t.Fatalf("succeeded/failed = %d/%d, want 2/4", res.Succeeded, res.Failed)
	}
	for _, i := range []int{0, 5} {
		if res.Items[i].Err != nil || res.Items[i].Result == nil {
			t.Fatalf("item %d should have succeeded: %v", i, res.Items[i].Err)
		}
	}
	wantErr := []struct {
		idx  int
		frag string
	}{
		{1, "out of range"},
		{2, "dims"},
		{3, "empty batch item"},
		{4, "out of range"},
	}
	for _, w := range wantErr {
		item := res.Items[w.idx]
		if item.Err == nil || !strings.Contains(item.Err.Error(), w.frag) {
			t.Fatalf("item %d: error %v, want mention of %q", w.idx, item.Err, w.frag)
		}
		if item.Result != nil {
			t.Fatalf("item %d: failed item carries a result", w.idx)
		}
	}
}

func TestQueryBatchSharedCacheAmortisesDuplicates(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 2})
	queries := make([]BatchQuery, 8)
	for i := range queries {
		queries[i] = BatchIndex(3)
	}
	// Workers: 1 makes the dedup deterministic: the first item fills
	// the shared cache, the other seven must compute nothing.
	res, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Items[0].Result
	if first.ODEvaluations == 0 {
		t.Fatal("first item computed nothing")
	}
	for i := 1; i < len(res.Items); i++ {
		if got := res.Items[i].Result.ODEvaluations; got != 0 {
			t.Fatalf("duplicate item %d recomputed %d ODs, want 0", i, got)
		}
	}
	if res.Cache.Misses != first.ODEvaluations {
		t.Fatalf("cache misses %d != first item's %d evaluations", res.Cache.Misses, first.ODEvaluations)
	}
	if res.Cache.Hits == 0 || res.Cache.Entries == 0 {
		t.Fatalf("cache stats %+v show no sharing", res.Cache)
	}
}

func TestQueryBatchCacheDisabled(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 2})
	queries := []BatchQuery{BatchIndex(1), BatchIndex(1)}
	res, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 1, CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != (BatchCacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v", res.Cache)
	}
	// Both duplicates pay full price, but the answers still agree.
	if res.Items[0].Result.ODEvaluations != res.Items[1].Result.ODEvaluations {
		t.Fatal("items diverged with sharing disabled")
	}
	if !reflect.DeepEqual(res.Items[0].Result.Minimal, res.Items[1].Result.Minimal) {
		t.Fatal("duplicate answers diverged")
	}
}

func TestQueryBatchBoundedCacheEvicts(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 2})
	var queries []BatchQuery
	for i := 0; i < 30; i++ {
		queries = append(queries, BatchIndex(i))
	}
	// A deliberately tiny capacity: correctness must survive constant
	// eviction.
	res, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 2, CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d items failed", res.Failed)
	}
	if res.Cache.Entries > 16+sharedCacheSlack {
		t.Fatalf("cache grew to %d entries despite capacity 16", res.Cache.Entries)
	}
	if res.Cache.Evictions == 0 {
		t.Fatal("tiny cache recorded no evictions")
	}
	for i, item := range res.Items {
		want, err := m.OutlyingSubspacesOfPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(item.Result.Minimal, want.Minimal) {
			t.Fatalf("item %d diverged under eviction pressure", i)
		}
	}
}

// sharedCacheSlack absorbs the ceil-division of the capacity across
// shards (each shard rounds its own bound up).
const sharedCacheSlack = 16

func TestQueryBatchEmpty(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	res, err := m.QueryBatch(context.Background(), nil, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 || res.Succeeded != 0 || res.Failed != 0 {
		t.Fatalf("empty batch returned %+v", res)
	}
}

func TestQueryBatchCancelled(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var queries []BatchQuery
	for i := 0; i < 16; i++ {
		queries = append(queries, BatchIndex(i))
	}
	if _, err := m.QueryBatch(ctx, queries, BatchOptions{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// countdownCtx cancels itself after a fixed number of Err() checks —
// a deterministic stand-in for "the client went away mid-search".
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(checks int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(checks)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestQueryBatchCancelMidSearch(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	var queries []BatchQuery
	for i := 0; i < 8; i++ {
		queries = append(queries, BatchIndex(i))
	}
	ctx := newCountdownCtx(3)
	if _, err := m.QueryBatch(ctx, queries, BatchOptions{Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQueryBatchUsesSuppliedPool(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	pool := m.NewEvaluatorPool()
	var queries []BatchQuery
	for i := 0; i < 6; i++ {
		queries = append(queries, BatchIndex(i))
	}
	if _, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 2, Pool: pool}); err != nil {
		t.Fatal(err)
	}
	gets, builds := pool.Stats()
	if gets == 0 {
		t.Fatal("supplied pool was never used")
	}
	if builds > gets {
		t.Fatalf("pool stats gets=%d builds=%d", gets, builds)
	}
	// A second batch borrows from the same pool. Note sync.Pool may
	// legitimately drop idle evaluators between batches, so only the
	// borrow accounting — not perfect reuse — is asserted.
	if _, err := m.QueryBatch(context.Background(), queries, BatchOptions{Workers: 2, Pool: pool}); err != nil {
		t.Fatal(err)
	}
	gets2, builds2 := pool.Stats()
	if gets2 <= gets {
		t.Fatal("second batch did not borrow from the pool")
	}
	if builds2 > gets2 {
		t.Fatalf("pool stats gets=%d builds=%d", gets2, builds2)
	}
}

// The planted outlier must surface identically through the batch path.
func TestQueryBatchFindsPlantedOutlier(t *testing.T) {
	planted := subspace.New(1, 3)
	ds := plantedDataset(t, 17, 120, 5, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.97, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.QueryBatch(context.Background(), []BatchQuery{BatchIndex(0)}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Items[0].Result
	if r == nil || !r.IsOutlierAnywhere {
		t.Fatal("planted outlier not flagged through the batch path")
	}
	found := false
	for _, s := range r.Minimal {
		if s.SubsetOf(planted) || planted.SubsetOf(s) {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted subspace %v not related to any minimal subspace %v", planted, r.Minimal)
	}
}
