package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/subspace"
)

func preprocessedMiner(t *testing.T) (*Miner, *QueryResult) {
	t.Helper()
	ds := plantedDataset(t, 71, 90, 4, subspace.New(1, 3))
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.95, SampleSize: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.OutlyingSubspacesOfPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestExportBeforePreprocessFails(t *testing.T) {
	ds := plantedDataset(t, 71, 50, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, T: 1})
	if _, err := m.ExportState(); err == nil {
		t.Fatal("export before preprocess accepted")
	}
}

func TestStateRoundTripPreservesAnswers(t *testing.T) {
	m, want := preprocessedMiner(t)
	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"threshold\"") {
		t.Fatalf("state JSON: %s", buf.String())
	}

	// A fresh miner over the same dataset, no learning configured —
	// importing the state must reproduce identical answers without
	// running Preprocess work.
	m2, err := NewMiner(m.Dataset(), Config{K: 4, T: 1 /* placeholder */, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.ReadState(&buf); err != nil {
		t.Fatal(err)
	}
	if m2.Threshold() != m.Threshold() {
		t.Fatalf("threshold %v != %v", m2.Threshold(), m.Threshold())
	}
	got, err := m2.OutlyingSubspacesOfPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if !masksEqual(got.Outlying, want.Outlying) || !masksEqual(got.Minimal, want.Minimal) {
		t.Fatal("imported state changed answers")
	}
}

func TestStateFileRoundTrip(t *testing.T) {
	m, _ := preprocessedMiner(t)
	path := filepath.Join(t.TempDir(), "state.json")
	if err := m.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewMiner(m.Dataset(), Config{K: 4, T: 1})
	if err := m2.LoadStateFile(path); err != nil {
		t.Fatal(err)
	}
	if m2.Threshold() != m.Threshold() {
		t.Fatal("threshold lost in file round trip")
	}
	if err := m2.LoadStateFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestImportStateValidation(t *testing.T) {
	m, _ := preprocessedMiner(t)
	good, err := m.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(s State) State
	}{
		{"version", func(s State) State { s.Version = 99; return s }},
		{"dim", func(s State) State { s.Dim = 7; return s }},
		{"k", func(s State) State { s.K = 2; return s }},
		{"metric", func(s State) State { s.Metric = "L1"; return s }},
		{"threshold", func(s State) State { s.Threshold = 0; return s }},
		{"priors len", func(s State) State { s.PUp = s.PUp[:2]; return s }},
		{"priors range", func(s State) State {
			up := append([]float64(nil), s.PUp...)
			up[2] = 5
			s.PUp = up
			return s
		}},
	}
	for _, mu := range mutations {
		bad := mu.mutate(*good)
		if err := m.ImportState(&bad); err == nil {
			t.Errorf("%s mutation accepted", mu.name)
		}
	}
	if err := m.ImportState(nil); err == nil {
		t.Error("nil state accepted")
	}
	if err := m.ImportState(good); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
}

func TestReadStateBadJSON(t *testing.T) {
	m, _ := preprocessedMiner(t)
	if err := m.ReadState(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
