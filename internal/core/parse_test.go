package core

import "testing"

func TestParseBackendRoundTrip(t *testing.T) {
	for _, b := range []Backend{BackendAuto, BackendLinear, BackendXTree} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBackend("warp"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	// Policy.String emits hyphenated forms; they must parse back.
	for _, p := range []Policy{PolicyTSF, PolicyBottomUp, PolicyTopDown, PolicyRandom} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	// The CLI spellings too.
	for s, want := range map[string]Policy{"bottomup": PolicyBottomUp, "topdown": PolicyTopDown} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sideways"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestClampSampleSize(t *testing.T) {
	c := Config{SampleSize: 500}
	c.ClampSampleSize(200)
	if c.SampleSize != 100 {
		t.Fatalf("clamped to %d, want 100", c.SampleSize)
	}
	c = Config{SampleSize: 50}
	c.ClampSampleSize(200)
	if c.SampleSize != 50 {
		t.Fatalf("in-range SampleSize changed to %d", c.SampleSize)
	}
}
