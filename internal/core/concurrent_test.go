package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/datagen"
)

func newTestMiner(t *testing.T, cfg Config) *Miner {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 200, D: 6, NumOutliers: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQueryWithRequiresPreprocess(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	eval, err := m.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QueryWith(eval, m.Dataset().Point(0), 0); !errors.Is(err, ErrNotPreprocessed) {
		t.Fatalf("want ErrNotPreprocessed, got %v", err)
	}
}

func TestQueryWithMatchesSequentialQuery(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	eval, err := m.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 25; idx++ {
		want, err := m.OutlyingSubspacesOfPoint(idx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.QueryPointWith(eval, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Outlying, want.Outlying) {
			t.Fatalf("point %d: outlying sets differ: %v vs %v", idx, got.Outlying, want.Outlying)
		}
		if !reflect.DeepEqual(got.Minimal, want.Minimal) {
			t.Fatalf("point %d: minimal sets differ: %v vs %v", idx, got.Minimal, want.Minimal)
		}
		if got.Threshold != want.Threshold {
			t.Fatalf("point %d: thresholds differ: %v vs %v", idx, got.Threshold, want.Threshold)
		}
	}
}

func TestQueryWithValidation(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	eval, err := m.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QueryWith(nil, m.Dataset().Point(0), 0); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	if _, err := m.QueryWith(eval, []float64{1, 2}, -1); err == nil {
		t.Fatal("wrong-dimension point accepted")
	}
	if _, err := m.QueryWith(eval, m.Dataset().Point(0), m.Dataset().N()); err == nil {
		t.Fatal("out-of-range exclude accepted")
	}
	if _, err := m.QueryPointWith(eval, -1); err == nil {
		t.Fatal("negative index accepted")
	}
}

// TestQueryWithConcurrent hammers QueryWith from many goroutines with
// pooled evaluators; meant to run under -race. Every goroutine must
// reproduce the sequential answer set.
func TestQueryWithConcurrent(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	const points = 20
	want := make([]*QueryResult, points)
	for i := range want {
		r, err := m.OutlyingSubspacesOfPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	pool := m.NewEvaluatorPool()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < points; i++ {
				eval, err := pool.Get()
				if err != nil {
					errCh <- err
					return
				}
				got, err := m.QueryPointWith(eval, i)
				if err != nil {
					pool.Put(eval)
					errCh <- err
					return
				}
				// The result lives in the evaluator's scratch: read it
				// before handing the evaluator back to the pool.
				match := reflect.DeepEqual(got.Outlying, want[i].Outlying)
				pool.Put(eval)
				if !match {
					errCh <- errors.New("concurrent result diverged from sequential")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	gets, builds := pool.Stats()
	if gets < 16*points {
		t.Fatalf("pool gets = %d, want ≥ %d", gets, 16*points)
	}
	if builds > gets {
		t.Fatalf("pool builds %d > gets %d", builds, gets)
	}
}

// TestScanAllParallelSingleWorkerConcurrent runs two workers=1 scans
// at once; meant for -race. ScanAllParallel must use private state
// even at workers=1 — the old ScanAll fallback shared the Miner's
// evaluator and raced here.
func TestScanAllParallelSingleWorkerConcurrent(t *testing.T) {
	m := newTestMiner(t, Config{K: 4, TQuantile: 0.9, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	want, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := m.ScanAllParallel(ScanOptions{}, 1)
			if err != nil {
				errCh <- err
				return
			}
			if len(got) != len(want) {
				errCh <- fmt.Errorf("workers=1 scan found %d hits, sequential found %d", len(got), len(want))
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
