package core

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/shard"
	"repro/internal/subspace"
)

// fingerprint canonicalises a subspace set for equality checks.
func fingerprint(masks []subspace.Mask) string {
	sorted := append([]subspace.Mask(nil), masks...)
	subspace.SortMasks(sorted)
	var b strings.Builder
	for _, m := range sorted {
		b.WriteString(m.String())
	}
	return b.String()
}

// TestShardedMinerMatchesUnsharded drives whole queries (not just
// k-NN) through a sharded miner and asserts identical answers —
// thresholds, minimal sets and OD evaluation counts — against the
// single-index miner.
func TestShardedMinerMatchesUnsharded(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 150, D: 5, NumOutliers: 4, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{K: 4, TQuantile: 0.92, Seed: 1, Backend: BackendLinear}
	ref, err := NewMiner(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Preprocess(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 5} {
		for _, part := range []shard.Partitioner{shard.RoundRobin, shard.HashPoint} {
			cfg := base
			cfg.Shards = shards
			cfg.Partitioner = part
			m, err := NewMiner(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Preprocess(); err != nil {
				t.Fatal(err)
			}
			if m.ShardEngine() == nil || m.ShardEngine().NumShards() != shards {
				t.Fatalf("ShardEngine missing or wrong width for %d shards", shards)
			}
			if m.Threshold() != ref.Threshold() {
				t.Fatalf("%d/%v: threshold %v != %v", shards, part, m.Threshold(), ref.Threshold())
			}
			for idx := 0; idx < ds.N(); idx += 11 {
				want, err := ref.OutlyingSubspacesOfPoint(idx)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.OutlyingSubspacesOfPoint(idx)
				if err != nil {
					t.Fatal(err)
				}
				if gf, wf := fingerprint(got.Minimal), fingerprint(want.Minimal); gf != wf {
					t.Fatalf("%d shards/%v: point %d minimal %q != %q", shards, part, idx, gf, wf)
				}
				if got.ODEvaluations != want.ODEvaluations {
					t.Fatalf("%d shards/%v: point %d did %d OD evaluations, unsharded did %d",
						shards, part, idx, got.ODEvaluations, want.ODEvaluations)
				}
			}
		}
	}
}

// TestShardedMinerWorkerEvaluators checks the concurrent seam: pooled
// worker evaluators over a sharded engine answer QueryWith identically.
func TestShardedMinerWorkerEvaluators(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 90, D: 4, NumOutliers: 3, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 1, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	ref, err := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Preprocess(); err != nil {
		t.Fatal(err)
	}
	eval, err := m.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < ds.N(); idx += 13 {
		got, err := m.QueryPointWith(eval, idx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.OutlyingSubspacesOfPoint(idx)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got.Minimal) != fingerprint(want.Minimal) {
			t.Fatalf("point %d: sharded QueryWith diverged", idx)
		}
	}
	// Per-shard counters saw the work.
	var total int64
	for _, st := range m.ShardEngine().ShardStats() {
		total += st.PointsExamined
	}
	if total == 0 {
		t.Fatal("per-shard counters stayed zero after sharded queries")
	}
}

func TestShardConfigValidation(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 40, D: 3, NumOutliers: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMiner(ds, Config{K: 3, T: 5, Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if _, err := NewMiner(ds, Config{K: 3, T: 5, Shards: 41}); err == nil {
		t.Fatal("Shards > N accepted")
	}
	if _, err := NewMiner(ds, Config{K: 3, T: 5, Shards: 2, Partitioner: shard.Partitioner(99)}); err == nil {
		t.Fatal("invalid partitioner accepted")
	}
	m, err := NewMiner(ds, Config{K: 3, T: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.ShardEngine() != nil {
		t.Fatal("unsharded miner has a shard engine")
	}
}
