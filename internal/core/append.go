package core

import (
	"fmt"
	"math"

	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/shard"
	"repro/internal/vector"
	"repro/internal/xtree"
)

// This file is the copy-on-write mutation surface of the Miner: a
// Miner stays immutable after Preprocess (the concurrency contract
// every query path relies on), so "mutating" a live dataset means
// deriving a complete replacement Miner and swapping it in at a higher
// layer (internal/server's epoch views). WithAppended reuses the old
// index incrementally where that is exact; WithoutRows rebuilds.
//
// Exactness contract, relied on by internal/conformance: the returned
// Miner is indistinguishable — answers, thresholds, learned priors,
// encoded index bytes — from NewMiner over the final dataset followed
// by Preprocess. That holds because (a) xtree.Append / shard.Append
// continue the deterministic insertion sequence byte-identically, and
// (b) Preprocess is re-run from a fresh seed-derived rng, so a
// TQuantile threshold and sampled learning resolve against the grown
// dataset exactly as a from-scratch build would.

// ValidateRows checks appended rows for shape and finiteness (a single
// NaN would poison every distance it touches). Exported so the serving
// layer's mutation coalescer can pre-validate each queued request
// individually — one malformed request then fails alone instead of
// poisoning the whole drained batch.
func ValidateRows(rows [][]float64, dim int) error {
	if len(rows) == 0 {
		return fmt.Errorf("core: append: no rows")
	}
	for i, r := range rows {
		if len(r) != dim {
			return fmt.Errorf("core: append: row %d has %d values, want %d", i, len(r), dim)
		}
		for j, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: append: row %d column %d is not finite", i, j)
			}
		}
	}
	return nil
}

// WithAppended returns a new preprocessed Miner over this Miner's
// dataset extended by rows. The receiver is unchanged and stays fully
// serviceable — in-flight queries against it are unaffected.
//
// The k-NN index is extended incrementally: an unsharded X-tree takes
// xtree.Append (insert via the linked scaffolding, repack), a sharded
// engine routes the rows to their shards and rebuilds only those
// (shard.Engine.Append), and a linear backend crossing the auto
// threshold gets its first tree. Preprocess then re-resolves the
// threshold and learning against the grown dataset, so the result is
// byte-identical to a from-scratch build (see the file comment).
func (m *Miner) WithAppended(rows [][]float64) (*Miner, error) {
	if err := ValidateRows(rows, m.ds.Dim()); err != nil {
		return nil, err
	}
	newDS, err := m.ds.Append(rows...)
	if err != nil {
		return nil, err
	}

	var searcher knn.Searcher
	var tree *xtree.Tree
	var engine *shard.Engine
	switch {
	case m.shards != nil:
		e, err := m.shards.Append(newDS)
		if err != nil {
			return nil, err
		}
		engine = e
		s, err := e.NewSearcher()
		if err != nil {
			return nil, err
		}
		searcher = s
	case m.cfg.Backend == BackendXTree ||
		(m.cfg.Backend == BackendAuto && newDS.N() >= autoXTreeThreshold):
		if m.tree != nil {
			t, err := m.tree.Append(newDS)
			if err != nil {
				return nil, err
			}
			tree = t
		} else {
			// BackendAuto just crossed the threshold: first build, same
			// as NewMiner over the grown dataset.
			t, err := xtree.Build(newDS, m.cfg.Metric, xtree.DefaultConfig())
			if err != nil {
				return nil, err
			}
			tree = t
		}
		searcher = xtree.NewSearcher(tree)
	default:
		ls, err := knn.NewLinear(newDS, m.cfg.Metric)
		if err != nil {
			return nil, err
		}
		searcher = ls
	}

	eval, err := od.NewEvaluator(newDS, searcher, m.cfg.Metric, m.cfg.K, od.NormNone)
	if err != nil {
		return nil, err
	}
	nm := newMinerWith(newDS, m.cfg, eval, searcher, tree, engine)
	if err := nm.Preprocess(); err != nil {
		return nil, err
	}
	return nm, nil
}

// WithAppendedBatch returns a new preprocessed Miner over this Miner's
// dataset extended by every batch, applied as one amortized step: rows
// are validated per batch (so the caller can attribute a failure to
// the request that carried it), routed to shards once, and the
// threshold/priors re-resolved once — instead of once per batch the
// way a WithAppended chain would. Exactness is inherited rather than
// re-argued: conformance already pins that chunked WithAppended calls
// equal a one-shot build, so applying the concatenation in one
// WithAppended call sits between those two pinned points.
func (m *Miner) WithAppendedBatch(batches ...[][]float64) (*Miner, error) {
	total := 0
	for bi, rows := range batches {
		if err := ValidateRows(rows, m.ds.Dim()); err != nil {
			return nil, fmt.Errorf("core: append batch %d: %w", bi, err)
		}
		total += len(rows)
	}
	if total == 0 {
		return nil, fmt.Errorf("core: append: no rows")
	}
	all := make([][]float64, 0, total)
	for _, rows := range batches {
		all = append(all, rows...)
	}
	return m.WithAppended(all)
}

// WithoutRows returns a new preprocessed Miner over only the rows of
// this Miner's dataset whose indices appear in keep (ascending, no
// duplicates). Deletion changes every surviving row's neighbourhood,
// so there is no exact incremental path — the replacement is a full
// from-scratch build, which is trivially identical to one. The
// configuration must remain satisfiable at the reduced size (K below
// the row count, shard width and sample size within it); a deletion
// that would violate it is rejected rather than clamped.
func (m *Miner) WithoutRows(keep []int) (*Miner, error) {
	if len(keep) == 0 {
		return nil, fmt.Errorf("core: delete: cannot delete every row")
	}
	prev := -1
	for _, i := range keep {
		if i <= prev || i >= m.ds.N() {
			return nil, fmt.Errorf("core: delete: keep list not ascending in [0,%d)", m.ds.N())
		}
		prev = i
	}
	if len(keep) == m.ds.N() {
		return nil, fmt.Errorf("core: delete: no rows deleted")
	}
	d := m.ds.Dim()
	flat := make([]float64, 0, len(keep)*d)
	for _, i := range keep {
		flat = append(flat, m.ds.Point(i)...)
	}
	newDS, err := vector.NewDataset(flat, len(keep), d)
	if err != nil {
		return nil, err
	}
	if err := m.cfg.validate(newDS); err != nil {
		return nil, fmt.Errorf("core: delete leaves %d rows: %w", len(keep), err)
	}
	nm, err := NewMiner(newDS, m.cfg)
	if err != nil {
		return nil, err
	}
	if err := nm.Preprocess(); err != nil {
		return nil, err
	}
	return nm, nil
}
