package core

import "repro/internal/subspace"

// MinimalSubspaces implements the §3.4 result refinement filter: from
// the full set of outlying subspaces, keep only those of the lowest
// possible dimensionality — a subspace is discarded if it is a
// superset of a previously selected one. The paper's example: from
// {[1,3], [2,4], [1,2,3], [1,2,4], [1,3,4], [2,3,4], [1,2,3,4]} the
// filter returns {[1,3], [2,4]}.
//
// The input need not be sorted; the output is canonically sorted
// (ascending cardinality, then mask). The input slice is not
// modified.
func MinimalSubspaces(outlying []subspace.Mask) []subspace.Mask {
	if len(outlying) == 0 {
		return nil
	}
	sorted := append([]subspace.Mask(nil), outlying...)
	subspace.SortMasks(sorted)
	var kept []subspace.Mask
	for _, s := range sorted {
		// coveredBy uses ⊇ (including equality), so duplicates of an
		// already-kept subspace are skipped too.
		if !coveredBy(s, kept) {
			kept = append(kept, s)
		}
	}
	return kept
}

// appendMinimalSorted is the scratch-reusing core of MinimalSubspaces
// for input that is already canonically sorted (ascending cardinality,
// then mask — the order lattice.Tracker.AppendOutliers produces): it
// appends the kept subspaces to dst and returns the extended slice,
// allocating only when dst lacks capacity.
func appendMinimalSorted(dst []subspace.Mask, sorted []subspace.Mask) []subspace.Mask {
	base := len(dst)
	for _, s := range sorted {
		if !coveredBy(s, dst[base:]) {
			dst = append(dst, s)
		}
	}
	return dst
}

// coveredBy reports whether s is a (proper or equal) superset of any
// kept subspace.
func coveredBy(s subspace.Mask, kept []subspace.Mask) bool {
	for _, k := range kept {
		if s.SupersetOf(k) {
			return true
		}
	}
	return false
}

// ExpandMinimal is the inverse view of the filter: given the minimal
// outlying subspaces and the space dimensionality, it enumerates the
// full outlying set (every superset of any minimal subspace),
// canonically sorted. It is used by tests to confirm the filter loses
// no information.
func ExpandMinimal(minimal []subspace.Mask, d int) []subspace.Mask {
	seen := make(map[subspace.Mask]bool)
	for _, s := range minimal {
		seen[s] = true
		subspace.Supersets(d, s, func(sup subspace.Mask) bool {
			seen[sup] = true
			return true
		})
	}
	out := make([]subspace.Mask, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	subspace.SortMasks(out)
	return out
}
