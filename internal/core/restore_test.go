package core

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/shard"
)

// restoreRoundTrip builds a fresh preprocessed miner, exports its
// index and state, reconstructs via NewMinerWithIndex + ImportState,
// and asserts identical answers for every dataset point.
func restoreRoundTrip(t *testing.T, n int, cfg Config) {
	t.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: n, D: 4, NumOutliers: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Preprocess(); err != nil {
		t.Fatal(err)
	}
	idx, err := fresh.ExportIndex()
	if err != nil {
		t.Fatal(err)
	}
	state, err := fresh.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewMinerWithIndex(ds, cfg, idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.ImportState(state); err != nil {
		t.Fatal(err)
	}
	if warm.Threshold() != fresh.Threshold() {
		t.Fatalf("thresholds diverge: %v vs %v", warm.Threshold(), fresh.Threshold())
	}
	for i := 0; i < ds.N(); i++ {
		a, err := fresh.OutlyingSubspacesOfPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := warm.OutlyingSubspacesOfPoint(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Minimal) != len(b.Minimal) {
			t.Fatalf("point %d: minimal sets diverge (%v vs %v)", i, a.Minimal, b.Minimal)
		}
		for j := range a.Minimal {
			if a.Minimal[j] != b.Minimal[j] {
				t.Fatalf("point %d: minimal[%d] %v vs %v", i, j, a.Minimal[j], b.Minimal[j])
			}
		}
	}
}

func TestRestoreSingleXTree(t *testing.T) {
	restoreRoundTrip(t, 180, Config{K: 4, TQuantile: 0.9, Seed: 1, Backend: BackendXTree})
}

func TestRestoreLinear(t *testing.T) {
	restoreRoundTrip(t, 150, Config{K: 4, TQuantile: 0.9, Seed: 1, Backend: BackendLinear})
}

func TestRestoreSharded(t *testing.T) {
	restoreRoundTrip(t, 160, Config{
		K: 4, TQuantile: 0.9, Seed: 1,
		Backend: BackendXTree, Shards: 3, Partitioner: shard.HashPoint,
	})
}

func TestRestoreShapeMismatches(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 120, D: 4, NumOutliers: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	treeCfg := Config{K: 4, TQuantile: 0.9, Seed: 1, Backend: BackendXTree}
	m, err := NewMiner(ds, treeCfg)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := m.ExportIndex()
	if err != nil {
		t.Fatal(err)
	}
	if idx.Tree == nil || idx.ShardTrees != nil {
		t.Fatalf("unexpected snapshot shape: %+v", idx)
	}

	// Single-index tree offered to a linear config.
	linCfg := treeCfg
	linCfg.Backend = BackendLinear
	if _, err := NewMinerWithIndex(ds, linCfg, idx); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("linear config accepted a tree snapshot: %v", err)
	}
	// Single-index tree offered to a sharded config.
	shCfg := treeCfg
	shCfg.Shards = 2
	if _, err := NewMinerWithIndex(ds, shCfg, idx); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("sharded config accepted a single-tree snapshot: %v", err)
	}
	// Sharded snapshot offered to an unsharded config.
	sm, err := NewMiner(ds, shCfg)
	if err != nil {
		t.Fatal(err)
	}
	sidx, err := sm.ExportIndex()
	if err != nil {
		t.Fatal(err)
	}
	if sidx.ShardTrees == nil {
		t.Fatalf("sharded snapshot missing shard trees: %+v", sidx)
	}
	if _, err := NewMinerWithIndex(ds, treeCfg, sidx); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("unsharded config accepted a sharded snapshot: %v", err)
	}
	// Corrupted tree bytes must be rejected.
	bad := &IndexSnapshot{Tree: append([]byte(nil), idx.Tree...)}
	bad.Tree[len(bad.Tree)/2] ^= 0xff
	if _, err := NewMinerWithIndex(ds, treeCfg, bad); err == nil {
		t.Fatal("corrupted tree bytes accepted")
	}
	// A nil snapshot behaves exactly like NewMiner.
	plain, err := NewMinerWithIndex(ds, treeCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumShards() != 1 {
		t.Fatalf("nil-snapshot miner shards = %d", plain.NumShards())
	}
}
