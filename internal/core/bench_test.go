package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/datagen"
)

// benchMiner builds one preprocessed miner for the query benchmarks.
func benchMiner(b *testing.B, shards int) *Miner {
	b.Helper()
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 2000, D: 6, NumOutliers: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMiner(ds, Config{
		K: 5, TQuantile: 0.95, Seed: 1, Backend: BackendLinear, Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkQueryWith is the single-query hot path on a caller-owned
// evaluator — the unit the server's /query handler pays per miss.
func BenchmarkQueryWith(b *testing.B) {
	for _, shards := range []int{0, 4} { // 0 = single unsharded index
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m := benchMiner(b, shards)
			eval, err := m.NewWorkerEvaluator()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.QueryPointWith(eval, i%m.Dataset().N()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryBatchCore is the batch engine over the same miner —
// per-item cost with the shared OD cache absorbing duplicates. Pinned
// to one worker with result reuse so the figure is deterministic
// across GOMAXPROCS and reflects the engine's zero-allocation steady
// state; BenchmarkQueryBatchParallel below measures the default
// fan-out configuration.
func BenchmarkQueryBatchCore(b *testing.B) {
	m := benchMiner(b, 0)
	queries := make([]BatchQuery, 64)
	for i := range queries {
		queries[i] = BatchIndex(i % 32) // half duplicates
	}
	opts := BatchOptions{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.QueryBatch(context.Background(), queries, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatal("batch items failed")
		}
		opts.Reuse = res
	}
}

// BenchmarkQueryBatchParallel is the batch engine as the server runs
// it: default worker fan-out, fresh result per batch.
func BenchmarkQueryBatchParallel(b *testing.B) {
	m := benchMiner(b, 0)
	queries := make([]BatchQuery, 64)
	for i := range queries {
		queries[i] = BatchIndex(i % 32) // half duplicates
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.QueryBatch(context.Background(), queries, BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatal("batch items failed")
		}
	}
}

// BenchmarkQueryBatchParallelReuse is the fan-out path in its
// zero-allocation steady state: explicit multi-worker spread with
// BatchOptions.Reuse recycling the result and the coordination
// machinery (see batchRun). The allocs/op figure is gated at 0 by
// benchjson and TestQueryBatchParallelZeroAlloc.
func BenchmarkQueryBatchParallelReuse(b *testing.B) {
	m := benchMiner(b, 0)
	queries := make([]BatchQuery, 64)
	for i := range queries {
		queries[i] = BatchIndex(i % 32) // half duplicates
	}
	opts := BatchOptions{Workers: 4}
	// Warm the pool, arenas and goroutine free list so the figure is
	// the steady state, not amortized startup cost.
	for i := 0; i < 5; i++ {
		res, err := m.QueryBatch(context.Background(), queries, opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.Reuse = res
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.QueryBatch(context.Background(), queries, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatal("batch items failed")
		}
		opts.Reuse = res
	}
}
