package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/subspace"
)

func TestScanAllFindsPlantedOutliers(t *testing.T) {
	planted := subspace.New(0, 2)
	ds := plantedDataset(t, 51, 90, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.97, SampleSize: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("scan found nothing")
	}
	// The planted point (index 0) must be among the hits.
	found := false
	for _, h := range hits {
		if h.Index == 0 {
			found = true
			if len(h.Minimal) == 0 || h.OutlyingCount == 0 {
				t.Fatalf("hit 0 has empty results: %+v", h)
			}
			if h.FullSpaceOD <= 0 {
				t.Fatalf("hit 0 severity: %v", h.FullSpaceOD)
			}
		}
	}
	if !found {
		t.Fatalf("planted point missing from %d hits", len(hits))
	}
	// Default order: ascending index.
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Index >= hits[i].Index {
			t.Fatal("hits not in index order")
		}
	}
}

func TestScanAllSeverityOrderAndLimit(t *testing.T) {
	planted := subspace.New(1)
	ds := plantedDataset(t, 53, 90, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := m.ScanAll(ScanOptions{SortBySeverity: true, MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 3 {
		t.Fatalf("limit ignored: %d hits", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].FullSpaceOD < hits[i].FullSpaceOD {
			t.Fatal("hits not by descending severity")
		}
	}
	// The single extreme planted point must rank first.
	if len(hits) > 0 && hits[0].Index != 0 {
		t.Fatalf("most severe hit = %d, want 0", hits[0].Index)
	}
}

func TestScanAllValidation(t *testing.T) {
	ds := plantedDataset(t, 55, 40, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 1})
	if _, err := m.ScanAll(ScanOptions{MaxResults: -1}); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
}

func TestScanAllHugeThresholdEmpty(t *testing.T) {
	ds := plantedDataset(t, 57, 40, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, T: 1e15, Seed: 1})
	hits, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("huge threshold produced %d hits", len(hits))
	}
}

func TestScanAllParallelMatchesSequential(t *testing.T) {
	planted := subspace.New(0, 2)
	ds := plantedDataset(t, 61, 150, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.95, SampleSize: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 7} {
		par, err := m.ScanAllParallel(ScanOptions{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d hits vs %d sequential", workers, len(par), len(seq))
		}
		for i := range par {
			if par[i].Index != seq[i].Index ||
				par[i].OutlyingCount != seq[i].OutlyingCount ||
				par[i].FullSpaceOD != seq[i].FullSpaceOD ||
				!masksEqual(par[i].Minimal, seq[i].Minimal) {
				t.Fatalf("workers=%d hit %d differs:\n par %+v\n seq %+v",
					workers, i, par[i], seq[i])
			}
		}
	}
}

func TestScanAllParallelXTreeBackend(t *testing.T) {
	planted := subspace.New(1)
	ds := plantedDataset(t, 63, 200, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, T: 8, Backend: BackendXTree, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.ScanAllParallel(ScanOptions{SortBySeverity: true, MaxResults: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.ScanAll(ScanOptions{SortBySeverity: true, MaxResults: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d vs sequential %d", len(par), len(seq))
	}
	for i := range par {
		if par[i].Index != seq[i].Index {
			t.Fatalf("hit %d: %d vs %d", i, par[i].Index, seq[i].Index)
		}
	}
}

func TestScanAllParallelValidation(t *testing.T) {
	ds := plantedDataset(t, 65, 40, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 1})
	if _, err := m.ScanAllParallel(ScanOptions{MaxResults: -1}, 2); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
}

// midPointScanMiner builds a miner whose per-point search is a full
// 2^d-1 lattice sweep: an absurd absolute threshold means nothing is
// ever an outlier, so upward pruning never fires and (bottom-up)
// every subspace of every point is evaluated — 16383 OD evaluations
// per point at d = 14.
func midPointScanMiner(t *testing.T) *Miner {
	t.Helper()
	ds := plantedDataset(t, 91, 60, 14, subspace.New(0))
	m, err := NewMiner(ds, Config{K: 3, T: 1e18, Policy: PolicyBottomUp, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	return m
}

// ScanAllContext must notice cancellation *inside* a point's subspace
// search, not only at point boundaries. The countdown context expires
// after a handful of checks — far fewer than one point's sweep makes —
// so if the scan returns having evaluated anywhere near a full
// lattice, the mid-point check is broken.
func TestScanAllContextCancelsMidPoint(t *testing.T) {
	m := midPointScanMiner(t)
	ctx := newCountdownCtx(8)
	if _, err := m.ScanAllContext(ctx, ScanOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	perPoint := int64(1)<<14 - 1
	if got := m.eval.Evaluations(); got >= perPoint {
		t.Fatalf("scan performed %d OD evaluations before cancelling; a full first point is %d — cancellation was not mid-point", got, perPoint)
	}
}

func TestScanAllContextPreCancelled(t *testing.T) {
	m := midPointScanMiner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ScanAllContext(ctx, ScanOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := m.eval.Evaluations(); got != 0 {
		t.Fatalf("pre-cancelled scan still evaluated %d ODs", got)
	}
}

func TestScanAllParallelContextCancelsMidPoint(t *testing.T) {
	m := midPointScanMiner(t)
	ctx := newCountdownCtx(8)
	start := time.Now()
	if _, err := m.ScanAllParallelContext(ctx, ScanOptions{}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 8 countdown checks cover well under one point's sweep per
	// worker; finishing even one full point would take far longer than
	// this generous bound.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled parallel scan took %v", elapsed)
	}
}

// Sequential scans report progress in strict order: 1..n, each with
// the dataset total.
func TestScanProgressSequential(t *testing.T) {
	ds := plantedDataset(t, 67, 50, 3, subspace.New(0))
	m, err := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var calls [][2]int
	_, err = m.ScanAllContext(context.Background(), ScanOptions{
		OnProgress: func(done, total int) { calls = append(calls, [2]int{done, total}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != ds.N() {
		t.Fatalf("%d progress calls for %d points", len(calls), ds.N())
	}
	for i, c := range calls {
		if c[0] != i+1 || c[1] != ds.N() {
			t.Fatalf("call %d = %d/%d, want %d/%d", i, c[0], c[1], i+1, ds.N())
		}
	}
}

// Parallel scans report each done value in 1..n exactly once (from
// any worker, in any delivery order) with a fixed total.
func TestScanProgressParallelCoversEveryPoint(t *testing.T) {
	ds := plantedDataset(t, 69, 80, 4, subspace.New(0, 1))
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.92, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	_, err = m.ScanAllParallelContext(context.Background(), ScanOptions{
		OnProgress: func(done, total int) {
			if total != ds.N() {
				t.Errorf("total = %d, want %d", total, ds.N())
			}
			mu.Lock()
			seen[done]++
			mu.Unlock()
		},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != ds.N() {
		t.Fatalf("saw %d distinct done values for %d points", len(seen), ds.N())
	}
	for v := 1; v <= ds.N(); v++ {
		if seen[v] != 1 {
			t.Fatalf("done value %d reported %d times", v, seen[v])
		}
	}
}

// A cancelled scan must not report progress for points it never
// evaluated.
func TestScanProgressStopsOnCancel(t *testing.T) {
	m := midPointScanMiner(t)
	ctx := newCountdownCtx(8)
	var mu sync.Mutex
	max := 0
	_, err := m.ScanAllParallelContext(ctx, ScanOptions{
		OnProgress: func(done, total int) {
			mu.Lock()
			if done > max {
				max = done
			}
			mu.Unlock()
		},
	}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := m.Dataset().N(); max >= n {
		t.Fatalf("cancelled scan reported full progress %d/%d", max, n)
	}
}

// ScanAllContext with an unconstrained context must agree exactly
// with ScanAll (it *is* ScanAll).
func TestScanAllContextMatchesScanAll(t *testing.T) {
	planted := subspace.New(0, 2)
	ds := plantedDataset(t, 52, 90, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.95, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ScanAllContext(context.Background(), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d hits vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index || !masksEqual(a[i].Minimal, b[i].Minimal) {
			t.Fatalf("hit %d differs", i)
		}
	}
}
