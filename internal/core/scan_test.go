package core

import (
	"testing"

	"repro/internal/subspace"
)

func TestScanAllFindsPlantedOutliers(t *testing.T) {
	planted := subspace.New(0, 2)
	ds := plantedDataset(t, 51, 90, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.97, SampleSize: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("scan found nothing")
	}
	// The planted point (index 0) must be among the hits.
	found := false
	for _, h := range hits {
		if h.Index == 0 {
			found = true
			if len(h.Minimal) == 0 || h.OutlyingCount == 0 {
				t.Fatalf("hit 0 has empty results: %+v", h)
			}
			if h.FullSpaceOD <= 0 {
				t.Fatalf("hit 0 severity: %v", h.FullSpaceOD)
			}
		}
	}
	if !found {
		t.Fatalf("planted point missing from %d hits", len(hits))
	}
	// Default order: ascending index.
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Index >= hits[i].Index {
			t.Fatal("hits not in index order")
		}
	}
}

func TestScanAllSeverityOrderAndLimit(t *testing.T) {
	planted := subspace.New(1)
	ds := plantedDataset(t, 53, 90, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := m.ScanAll(ScanOptions{SortBySeverity: true, MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) > 3 {
		t.Fatalf("limit ignored: %d hits", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].FullSpaceOD < hits[i].FullSpaceOD {
			t.Fatal("hits not by descending severity")
		}
	}
	// The single extreme planted point must rank first.
	if len(hits) > 0 && hits[0].Index != 0 {
		t.Fatalf("most severe hit = %d, want 0", hits[0].Index)
	}
}

func TestScanAllValidation(t *testing.T) {
	ds := plantedDataset(t, 55, 40, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 1})
	if _, err := m.ScanAll(ScanOptions{MaxResults: -1}); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
}

func TestScanAllHugeThresholdEmpty(t *testing.T) {
	ds := plantedDataset(t, 57, 40, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, T: 1e15, Seed: 1})
	hits, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("huge threshold produced %d hits", len(hits))
	}
}

func TestScanAllParallelMatchesSequential(t *testing.T) {
	planted := subspace.New(0, 2)
	ds := plantedDataset(t, 61, 150, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.95, SampleSize: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.ScanAll(ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 7} {
		par, err := m.ScanAllParallel(ScanOptions{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d hits vs %d sequential", workers, len(par), len(seq))
		}
		for i := range par {
			if par[i].Index != seq[i].Index ||
				par[i].OutlyingCount != seq[i].OutlyingCount ||
				par[i].FullSpaceOD != seq[i].FullSpaceOD ||
				!masksEqual(par[i].Minimal, seq[i].Minimal) {
				t.Fatalf("workers=%d hit %d differs:\n par %+v\n seq %+v",
					workers, i, par[i], seq[i])
			}
		}
	}
}

func TestScanAllParallelXTreeBackend(t *testing.T) {
	planted := subspace.New(1)
	ds := plantedDataset(t, 63, 200, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, T: 8, Backend: BackendXTree, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.ScanAllParallel(ScanOptions{SortBySeverity: true, MaxResults: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.ScanAll(ScanOptions{SortBySeverity: true, MaxResults: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d vs sequential %d", len(par), len(seq))
	}
	for i := range par {
		if par[i].Index != seq[i].Index {
			t.Fatalf("hit %d: %d vs %d", i, par[i].Index, seq[i].Index)
		}
	}
}

func TestScanAllParallelValidation(t *testing.T) {
	ds := plantedDataset(t, 65, 40, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 1})
	if _, err := m.ScanAllParallel(ScanOptions{MaxResults: -1}, 2); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
}
