package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/vector"
)

func appendTestRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 3
		}
		rows[i] = row
	}
	return rows
}

// minersEqual asserts two preprocessed miners are indistinguishable:
// threshold bits, priors, encoded index, and per-point answers.
func minersEqual(t *testing.T, got, want *Miner) {
	t.Helper()
	if math.Float64bits(got.Threshold()) != math.Float64bits(want.Threshold()) {
		t.Fatalf("thresholds differ: %v vs %v", got.Threshold(), want.Threshold())
	}
	if !reflect.DeepEqual(got.Priors(), want.Priors()) {
		t.Fatalf("priors differ:\n%v\n%v", got.Priors(), want.Priors())
	}
	gi, err := got.ExportIndex()
	if err != nil {
		t.Fatal(err)
	}
	wi, err := want.ExportIndex()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gi.Tree, wi.Tree) {
		t.Fatal("encoded single-index trees differ")
	}
	if len(gi.ShardTrees) != len(wi.ShardTrees) {
		t.Fatalf("shard tree counts differ: %d vs %d", len(gi.ShardTrees), len(wi.ShardTrees))
	}
	for s := range gi.ShardTrees {
		if !bytes.Equal(gi.ShardTrees[s], wi.ShardTrees[s]) {
			t.Fatalf("shard %d encoded trees differ", s)
		}
	}
	ge, err := got.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	we, err := want.NewWorkerEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < got.Dataset().N(); i += 13 {
		gr, err := got.QueryPointWith(ge, i)
		if err != nil {
			t.Fatal(err)
		}
		gc := gr.Clone()
		wr, err := want.QueryPointWith(we, i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gc.SearchResult.Outlying, wr.SearchResult.Outlying) ||
			!reflect.DeepEqual(gc.SearchResult.Minimal, wr.SearchResult.Minimal) ||
			gc.IsOutlierAnywhere != wr.IsOutlierAnywhere {
			t.Fatalf("point %d: appended and rebuilt miners disagree", i)
		}
	}
}

// TestWithAppendedEqualsRebuild: the COW append path is byte-identical
// to a from-scratch NewMiner+Preprocess over the final dataset, across
// backends, shard widths and threshold modes.
func TestWithAppendedEqualsRebuild(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 300, D: 5, NumOutliers: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	extra := appendTestRows(rng, 40, 5)
	for _, cfg := range []Config{
		{K: 5, T: 4, Seed: 1, Backend: BackendLinear},
		{K: 5, TQuantile: 0.9, Seed: 1, Backend: BackendXTree},
		{K: 4, TQuantile: 0.95, SampleSize: 20, Seed: 3, Backend: BackendLinear},
		{K: 5, T: 4, Seed: 1, Backend: BackendXTree, Shards: 2, Partitioner: 1},
		{K: 5, TQuantile: 0.9, SampleSize: 10, Seed: 2, Backend: BackendLinear, Shards: 7},
	} {
		m, err := NewMiner(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Preprocess(); err != nil {
			t.Fatal(err)
		}
		// Append in two batches to exercise chained COW derivation.
		m1, err := m.WithAppended(extra[:15])
		if err != nil {
			t.Fatal(err)
		}
		m2, err := m1.WithAppended(extra[15:])
		if err != nil {
			t.Fatal(err)
		}
		full, err := ds.Append(extra...)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewMiner(full, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Preprocess(); err != nil {
			t.Fatal(err)
		}
		minersEqual(t, m2, fresh)
		// The source miner still answers (COW left it intact).
		if _, err := m.OutlyingSubspacesOfPoint(0); err != nil {
			t.Fatalf("source miner broken after WithAppended: %v", err)
		}
	}
}

// TestWithAppendedCrossesAutoThreshold: a BackendAuto linear miner
// that grows past autoXTreeThreshold picks up an X-tree, matching the
// from-scratch build.
func TestWithAppendedCrossesAutoThreshold(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 500, D: 4, NumOutliers: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 5, T: 4, Seed: 1, Backend: BackendAuto}
	m, err := NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	if m.tree != nil {
		t.Fatal("500-point auto miner unexpectedly tree-backed")
	}
	rng := rand.New(rand.NewSource(6))
	m1, err := m.WithAppended(appendTestRows(rng, 30, 4))
	if err != nil {
		t.Fatal(err)
	}
	if m1.tree == nil {
		t.Fatal("530-point auto miner missing its X-tree")
	}
	fresh, err := NewMiner(m1.Dataset(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Preprocess(); err != nil {
		t.Fatal(err)
	}
	minersEqual(t, m1, fresh)
}

// TestWithAppendedRejectsBadRows pins input validation: empty batch,
// wrong width, non-finite values.
func TestWithAppendedRejectsBadRows(t *testing.T) {
	m := allocTestMiner(t)
	if _, err := m.WithAppended(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := m.WithAppended([][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	if _, err := m.WithAppended([][]float64{{1, 2, 3, 4, math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := m.WithAppended([][]float64{{1, 2, 3, 4, math.Inf(1)}}); err == nil {
		t.Fatal("+Inf accepted")
	}
}

// TestWithoutRowsEqualsRebuild: deletion rebuilds, and the result
// matches NewMiner over the surviving rows.
func TestWithoutRowsEqualsRebuild(t *testing.T) {
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 200, D: 4, NumOutliers: 3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, TQuantile: 0.9, Seed: 2, Backend: BackendLinear, Shards: 2}
	m, err := NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	keep := make([]int, 0, 150)
	for i := 0; i < 200; i++ {
		if i%4 != 1 {
			keep = append(keep, i)
		}
	}
	m1, err := m.WithoutRows(keep)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, len(keep))
	for i, g := range keep {
		rows[i] = ds.Point(g)
	}
	kept, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewMiner(kept, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Preprocess(); err != nil {
		t.Fatal(err)
	}
	minersEqual(t, m1, fresh)
}

// TestWithoutRowsRejectsInvalid pins delete validation: empty keep,
// unsorted keep, no-op keep, and a keep too small for K.
func TestWithoutRowsRejectsInvalid(t *testing.T) {
	m := allocTestMiner(t) // N=300, K=5
	if _, err := m.WithoutRows(nil); err == nil {
		t.Fatal("empty keep accepted")
	}
	if _, err := m.WithoutRows([]int{5, 3}); err == nil {
		t.Fatal("unsorted keep accepted")
	}
	if _, err := m.WithoutRows([]int{1, 1}); err == nil {
		t.Fatal("duplicate keep accepted")
	}
	all := make([]int, 300)
	for i := range all {
		all[i] = i
	}
	if _, err := m.WithoutRows(all); err == nil {
		t.Fatal("no-op delete accepted")
	}
	if _, err := m.WithoutRows([]int{0, 1, 2}); err == nil {
		t.Fatal("keep smaller than K accepted")
	}
}
