package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/od"
	"repro/internal/subspace"
)

// This file is the batch query engine: many outlying-subspace queries
// evaluated through one shared, bounded, concurrency-safe memo of OD
// evaluations (od.SharedCache) and one evaluator pool, instead of
// rebuilding per-point state query by query. Duplicate or repeated
// points — the common shape of multi-user traffic — pay for each
// distinct (point, subspace) OD evaluation once per batch.

// batchKind discriminates the two item forms; the zero value marks an
// unconstructed (invalid) item.
type batchKind uint8

const (
	batchKindEmpty batchKind = iota
	batchKindRow
	batchKindPoint
)

// BatchQuery is one item of a QueryBatch: a dataset row or an
// external point. Build items with BatchIndex / BatchPoint — the
// fields are unexported precisely so an accidental zero value or
// half-filled literal cannot silently address row 0; a zero BatchQuery
// is reported as a per-item error.
type BatchQuery struct {
	kind  batchKind
	index int
	point []float64
}

// BatchIndex makes a BatchQuery for dataset row idx.
func BatchIndex(idx int) BatchQuery { return BatchQuery{kind: batchKindRow, index: idx} }

// BatchPoint makes a BatchQuery for an external point.
func BatchPoint(p []float64) BatchQuery { return BatchQuery{kind: batchKindPoint, point: p} }

// Row returns the dataset row the item addresses, or (0, false) for
// external-point and zero-value items.
func (q BatchQuery) Row() (int, bool) { return q.index, q.kind == batchKindRow }

// ExternalPoint returns the external point the item addresses, or
// (nil, false).
func (q BatchQuery) ExternalPoint() ([]float64, bool) { return q.point, q.kind == batchKindPoint }

// BatchOptions tunes QueryBatch. The zero value selects the defaults
// noted on each field.
type BatchOptions struct {
	// Workers is the evaluation fan-out (≤ 0 selects GOMAXPROCS;
	// always clamped to the batch size). At Workers = 1 the batch runs
	// inline on the calling goroutine — no fan-out machinery at all.
	Workers int
	// CacheCapacity bounds the shared per-batch OD cache in entries
	// (0 = od.DefaultSharedCacheCapacity; negative disables sharing,
	// leaving each item with only its private per-query cache).
	CacheCapacity int
	// Pool, when non-nil, supplies worker evaluators (e.g. a serving
	// layer's long-lived pool); nil uses the Miner's shared default
	// pool, so back-to-back batches reuse warmed evaluators.
	Pool *EvaluatorPool
	// Reuse, when non-nil, recycles a previous batch's result storage
	// (item table, per-item result structs and the mask/int/float
	// arenas behind their slices) instead of allocating fresh — the
	// zero-allocation steady state for callers that fully consume each
	// BatchResult before issuing the next batch. The returned
	// *BatchResult is then Reuse itself, and every slice handed out by
	// the previous batch is invalidated. After an error return the
	// recycled storage is in an unspecified state; do not read it.
	Reuse *BatchResult
}

// BatchItemResult is the outcome of one batch item: exactly one of
// Result and Err is non-nil.
type BatchItemResult struct {
	Result *QueryResult
	Err    error
}

// BatchCacheStats summarises the shared per-batch OD cache (zeros
// when sharing was disabled).
type BatchCacheStats struct {
	// Hits is the number of OD probes answered by a sibling query's
	// earlier work; Misses is the number of OD evaluations actually
	// computed through the shared cache.
	Hits   int64
	Misses int64
	// Evictions counts entries displaced by CacheCapacity.
	Evictions int64
	// Entries is the resident size when the batch finished.
	Entries int
}

// BatchResult is the outcome of a QueryBatch: per-item results in
// input order plus batch-wide accounting. Item results are copied out
// of the workers' evaluator scratch into storage owned by the
// BatchResult, so they stay valid for as long as the caller keeps it
// (or until it is recycled via BatchOptions.Reuse).
type BatchResult struct {
	// Items has exactly one entry per input query, in input order.
	Items []BatchItemResult
	// Succeeded and Failed count the two item outcomes.
	Succeeded int
	Failed    int
	// Cache is the shared OD cache accounting.
	Cache BatchCacheStats

	// Recycled storage (see BatchOptions.Reuse): the per-item result
	// structs Items point into and the per-worker arenas their slices
	// are carved from.
	results []QueryResult
	arenas  []resultArena
	// run is the multi-worker fan-out machinery (work cursor,
	// WaitGroup, per-worker error slots, the spawned func), kept here
	// so the Reuse contract covers coordination state too: a recycled
	// parallel batch re-arms it instead of allocating a fresh closure,
	// error slice and boxed counters per call.
	run batchRun
}

// batchRun is the coordination state of one multi-worker QueryBatch.
// The transient fields (miner, ctx, queries, cache, pool) are armed at
// the start of a parallel batch and cleared before QueryBatch returns,
// so a retained BatchResult pins result storage only — never a context
// or a cache. Workers draw their identity from seq and their next item
// from next; both are reset per batch.
type batchRun struct {
	m       *Miner
	ctx     context.Context
	queries []BatchQuery
	shared  *od.SharedCache
	pool    *EvaluatorPool
	res     *BatchResult
	next    atomic.Int64
	seq     atomic.Int64
	wg      sync.WaitGroup
	errs    []error
	// work is r.worker as a func value, bound once per BatchResult
	// lifetime: `go r.work()` spawns without re-allocating the closure
	// every batch the way `go func(){...}()` in the loop would.
	work func()
}

// arm prepares the run for one parallel batch of the given width.
func (r *batchRun) arm(m *Miner, ctx context.Context, queries []BatchQuery, shared *od.SharedCache, pool *EvaluatorPool, res *BatchResult, workers int) {
	r.m, r.ctx, r.queries, r.shared, r.pool, r.res = m, ctx, queries, shared, pool, res
	r.next.Store(0)
	r.seq.Store(0)
	if cap(r.errs) < workers {
		r.errs = make([]error, workers)
	} else {
		r.errs = r.errs[:workers]
		clear(r.errs)
	}
	if r.work == nil {
		r.work = r.worker
	}
}

// disarm drops the transient references armed for the batch.
func (r *batchRun) disarm() {
	r.m, r.ctx, r.queries, r.shared, r.pool, r.res = nil, nil, nil, nil, nil, nil
}

// worker is one fan-out goroutine: claim an identity, borrow an
// evaluator, then drain items off the shared cursor.
func (r *batchRun) worker() {
	defer r.wg.Done()
	w := int(r.seq.Add(1)) - 1
	eval, err := r.pool.Get()
	if err != nil {
		r.errs[w] = err
		return
	}
	defer r.pool.Put(eval)
	arena := &r.res.arenas[w]
	for {
		i := int(r.next.Add(1)) - 1
		if i >= len(r.queries) {
			return
		}
		if err := r.ctx.Err(); err != nil {
			r.errs[w] = err
			return
		}
		r.res.Items[i] = r.m.batchOne(r.ctx, eval, r.queries[i], r.shared, arena, &r.res.results[i])
		if err := r.ctx.Err(); err != nil {
			r.errs[w] = err
			return
		}
	}
}

// reset prepares the result for a batch of n items over the given
// worker count, reusing existing capacity.
func (r *BatchResult) reset(n, workers int) {
	if cap(r.Items) < n {
		r.Items = make([]BatchItemResult, n)
	} else {
		r.Items = r.Items[:n]
		clear(r.Items)
	}
	if cap(r.results) < n {
		r.results = make([]QueryResult, n)
	} else {
		r.results = r.results[:n]
	}
	for len(r.arenas) < workers {
		r.arenas = append(r.arenas, resultArena{})
	}
	for i := range r.arenas {
		r.arenas[i].reset()
	}
	r.Succeeded, r.Failed = 0, 0
	r.Cache = BatchCacheStats{}
}

// resultArena is append-only backing storage for the slices of one
// worker's item results. Growth may reallocate the arena slice, but
// previously handed-out sub-slices keep pointing at the old backing
// array, which stays alive through them — so earlier items are never
// invalidated mid-batch.
type resultArena struct {
	masks  []subspace.Mask
	ints   []int
	floats []float64
}

func (a *resultArena) reset() {
	a.masks = a.masks[:0]
	a.ints = a.ints[:0]
	a.floats = a.floats[:0]
}

// Shared zero-length backings so cloning an empty-but-non-nil slice
// preserves its shape without touching the arena.
var (
	emptyMasks  = make([]subspace.Mask, 0)
	emptyInts   = make([]int, 0)
	emptyFloats = make([]float64, 0)
)

func (a *resultArena) cloneMasks(src []subspace.Mask) []subspace.Mask {
	if src == nil {
		return nil
	}
	if len(src) == 0 {
		return emptyMasks
	}
	start := len(a.masks)
	a.masks = append(a.masks, src...)
	return a.masks[start:len(a.masks):len(a.masks)]
}

func (a *resultArena) cloneInts(src []int) []int {
	if src == nil {
		return nil
	}
	if len(src) == 0 {
		return emptyInts
	}
	start := len(a.ints)
	a.ints = append(a.ints, src...)
	return a.ints[start:len(a.ints):len(a.ints)]
}

func (a *resultArena) cloneFloats(src []float64) []float64 {
	if src == nil {
		return nil
	}
	if len(src) == 0 {
		return emptyFloats
	}
	start := len(a.floats)
	a.floats = append(a.floats, src...)
	return a.floats[start:len(a.floats):len(a.floats)]
}

// QueryBatch evaluates many outlying-subspace queries as one unit of
// work: items fan out over opts.Workers goroutines that borrow
// evaluators from one pool and memoise OD evaluations in one shared
// bounded cache, so duplicated points across the batch are answered
// from each other's work. Answers are identical to running each item
// through OutlyingSubspaces / OutlyingSubspacesOfPoint — the shared
// cache stores deterministic OD values, never decisions.
//
// Item-level problems (index out of range, dimension mismatch,
// ambiguous item) are reported per item in BatchResult.Items, and the
// rest of the batch still completes. QueryBatch itself errors only on
// setup failure or context cancellation; cancellation is noticed
// between items and mid-search (see SearchContext), so an abandoned
// batch frees its workers promptly.
//
// Like ScanAllParallelContext, a first QueryBatch on a fresh Miner
// runs Preprocess lazily (from the calling goroutine, before workers
// fan out); once the Miner is preprocessed, any number of QueryBatch,
// QueryWith and scan calls may run concurrently.
//
//hos:hotpath
func (m *Miner) QueryBatch(ctx context.Context, queries []BatchQuery, opts BatchOptions) (*BatchResult, error) {
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	res := resultFor(opts.Reuse)
	res.reset(len(queries), workers)
	if len(queries) == 0 {
		return res, nil
	}
	pool := m.poolFor(opts.Pool)
	shared := m.sharedCacheFor(opts.CacheCapacity)
	defer m.releaseSharedCache(shared)

	if workers == 1 {
		// Inline path: no goroutines, no WaitGroup — the calling
		// goroutine is the one worker. This is both the GOMAXPROCS=1
		// default and the deterministic zero-allocation steady state.
		eval, err := pool.Get()
		if err != nil {
			return nil, err
		}
		defer pool.Put(eval)
		arena := &res.arenas[0]
		for i := range queries {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res.Items[i] = m.batchOne(ctx, eval, queries[i], shared, arena, &res.results[i])
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	} else {
		if err := m.queryBatchParallel(ctx, queries, shared, pool, res, workers); err != nil {
			return nil, err
		}
	}
	for _, item := range res.Items {
		if item.Err != nil {
			res.Failed++
		} else {
			res.Succeeded++
		}
	}
	st := shared.Stats()
	res.Cache = BatchCacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
	}
	return res, nil
}

// queryBatchParallel is the fan-out arm of QueryBatch: arm the
// recycled run state, launch the workers, wait, and surface the first
// worker error. It lives outside the //hos:hotpath annotation on
// purpose — the goroutine launches are the deliberate cost of the
// parallel mode (their coordination state is still recycled through
// the BatchResult, so the arm stays 0 allocs/op steady-state).
func (m *Miner) queryBatchParallel(ctx context.Context, queries []BatchQuery, shared *od.SharedCache, pool *EvaluatorPool, res *BatchResult, workers int) error {
	run := &res.run
	run.arm(m, ctx, queries, shared, pool, res, workers)
	run.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go run.work()
	}
	run.wg.Wait()
	var failed error
	for _, err := range run.errs {
		if err != nil {
			failed = err
			break
		}
	}
	run.disarm()
	return failed
}

// resultFor returns the result to fill: the caller's recycled one, or
// a fresh BatchResult.
func resultFor(reuse *BatchResult) *BatchResult {
	if reuse == nil {
		return &BatchResult{}
	}
	return reuse
}

// poolFor returns the evaluator pool to borrow from: the caller's, or
// the Miner's lazily built default.
func (m *Miner) poolFor(p *EvaluatorPool) *EvaluatorPool {
	if p != nil {
		return p
	}
	m.defaultPoolOnce.Do(func() { m.defaultPool = m.NewEvaluatorPool() })
	return m.defaultPool
}

// sharedCacheFor borrows a pooled per-batch OD cache (capacity ≥ 0),
// or returns nil when capacity is negative (sharing disabled).
func (m *Miner) sharedCacheFor(capacity int) *od.SharedCache {
	if capacity < 0 {
		return nil
	}
	if v := m.cachePool.Get(); v != nil {
		c := v.(*od.SharedCache)
		c.Reset(capacity)
		return c
	}
	return od.NewSharedCache(capacity)
}

// releaseSharedCache returns a borrowed cache to the pool. Safe at
// the end of a batch: BatchResult carries only a stats snapshot, the
// workers have all exited.
func (m *Miner) releaseSharedCache(c *od.SharedCache) {
	if c != nil {
		m.cachePool.Put(c)
	}
}

// batchOne validates and evaluates a single batch item, copying the
// evaluator-scratch result into slot with its slices carved from the
// worker's arena — the item result then lives as long as the
// BatchResult, independent of the evaluator's next query.
func (m *Miner) batchOne(ctx context.Context, eval *od.Evaluator, q BatchQuery, shared *od.SharedCache, arena *resultArena, slot *QueryResult) BatchItemResult {
	var point []float64
	exclude := -1
	switch q.kind {
	case batchKindRow:
		if q.index < 0 || q.index >= m.ds.N() {
			return BatchItemResult{Err: fmt.Errorf("core: batch index %d out of range [0,%d)", q.index, m.ds.N())}
		}
		point = m.ds.Point(q.index)
		exclude = q.index
	case batchKindPoint:
		if len(q.point) != m.ds.Dim() {
			return BatchItemResult{Err: fmt.Errorf("core: batch point has %d dims, dataset %d", len(q.point), m.ds.Dim())}
		}
		point = q.point
	default:
		return BatchItemResult{Err: fmt.Errorf("core: empty batch item (use BatchIndex or BatchPoint)")}
	}
	r, err := m.searchOne(ctx, eval, point, exclude, shared)
	if err != nil {
		return BatchItemResult{Err: err}
	}
	*slot = *r
	slot.Outlying = arena.cloneMasks(r.Outlying)
	slot.Minimal = arena.cloneMasks(r.Minimal)
	slot.LayerOrder = arena.cloneInts(r.LayerOrder)
	slot.PerLayerOutlierFrac = arena.cloneFloats(r.PerLayerOutlierFrac)
	return BatchItemResult{Result: slot}
}
