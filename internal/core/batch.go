package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/od"
)

// This file is the batch query engine: many outlying-subspace queries
// evaluated through one shared, bounded, concurrency-safe memo of OD
// evaluations (od.SharedCache) and one evaluator pool, instead of
// rebuilding per-point state query by query. Duplicate or repeated
// points — the common shape of multi-user traffic — pay for each
// distinct (point, subspace) OD evaluation once per batch.

// batchKind discriminates the two item forms; the zero value marks an
// unconstructed (invalid) item.
type batchKind uint8

const (
	batchKindEmpty batchKind = iota
	batchKindRow
	batchKindPoint
)

// BatchQuery is one item of a QueryBatch: a dataset row or an
// external point. Build items with BatchIndex / BatchPoint — the
// fields are unexported precisely so an accidental zero value or
// half-filled literal cannot silently address row 0; a zero BatchQuery
// is reported as a per-item error.
type BatchQuery struct {
	kind  batchKind
	index int
	point []float64
}

// BatchIndex makes a BatchQuery for dataset row idx.
func BatchIndex(idx int) BatchQuery { return BatchQuery{kind: batchKindRow, index: idx} }

// BatchPoint makes a BatchQuery for an external point.
func BatchPoint(p []float64) BatchQuery { return BatchQuery{kind: batchKindPoint, point: p} }

// Row returns the dataset row the item addresses, or (0, false) for
// external-point and zero-value items.
func (q BatchQuery) Row() (int, bool) { return q.index, q.kind == batchKindRow }

// ExternalPoint returns the external point the item addresses, or
// (nil, false).
func (q BatchQuery) ExternalPoint() ([]float64, bool) { return q.point, q.kind == batchKindPoint }

// BatchOptions tunes QueryBatch. The zero value selects the defaults
// noted on each field.
type BatchOptions struct {
	// Workers is the evaluation fan-out (≤ 0 selects GOMAXPROCS;
	// always clamped to the batch size).
	Workers int
	// CacheCapacity bounds the shared per-batch OD cache in entries
	// (0 = od.DefaultSharedCacheCapacity; negative disables sharing,
	// leaving each item with only its private per-query cache).
	CacheCapacity int
	// Pool, when non-nil, supplies worker evaluators (e.g. a serving
	// layer's long-lived pool); nil builds a pool for this batch.
	Pool *EvaluatorPool
}

// BatchItemResult is the outcome of one batch item: exactly one of
// Result and Err is non-nil.
type BatchItemResult struct {
	Result *QueryResult
	Err    error
}

// BatchCacheStats summarises the shared per-batch OD cache (zeros
// when sharing was disabled).
type BatchCacheStats struct {
	// Hits is the number of OD probes answered by a sibling query's
	// earlier work; Misses is the number of OD evaluations actually
	// computed through the shared cache.
	Hits   int64
	Misses int64
	// Evictions counts entries displaced by CacheCapacity.
	Evictions int64
	// Entries is the resident size when the batch finished.
	Entries int
}

// BatchResult is the outcome of a QueryBatch: per-item results in
// input order plus batch-wide accounting.
type BatchResult struct {
	// Items has exactly one entry per input query, in input order.
	Items []BatchItemResult
	// Succeeded and Failed count the two item outcomes.
	Succeeded int
	Failed    int
	// Cache is the shared OD cache accounting.
	Cache BatchCacheStats
}

// QueryBatch evaluates many outlying-subspace queries as one unit of
// work: items fan out over opts.Workers goroutines that borrow
// evaluators from one pool and memoise OD evaluations in one shared
// bounded cache, so duplicated points across the batch are answered
// from each other's work. Answers are identical to running each item
// through OutlyingSubspaces / OutlyingSubspacesOfPoint — the shared
// cache stores deterministic OD values, never decisions.
//
// Item-level problems (index out of range, dimension mismatch,
// ambiguous item) are reported per item in BatchResult.Items, and the
// rest of the batch still completes. QueryBatch itself errors only on
// setup failure or context cancellation; cancellation is noticed
// between items and mid-search (see SearchContext), so an abandoned
// batch frees its workers promptly.
//
// Like ScanAllParallelContext, a first QueryBatch on a fresh Miner
// runs Preprocess lazily (from the calling goroutine, before workers
// fan out); once the Miner is preprocessed, any number of QueryBatch,
// QueryWith and scan calls may run concurrently.
func (m *Miner) QueryBatch(ctx context.Context, queries []BatchQuery, opts BatchOptions) (*BatchResult, error) {
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	res := &BatchResult{Items: make([]BatchItemResult, len(queries))}
	if len(queries) == 0 {
		return res, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	pool := opts.Pool
	if pool == nil {
		pool = m.NewEvaluatorPool()
	}
	shared := od.NewSharedCache(opts.CacheCapacity)

	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			eval, err := pool.Get()
			if err != nil {
				errs[worker] = err
				return
			}
			defer pool.Put(eval)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[worker] = err
					return
				}
				res.Items[i] = m.batchOne(ctx, eval, queries[i], shared)
				if err := ctx.Err(); err != nil {
					errs[worker] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, item := range res.Items {
		if item.Err != nil {
			res.Failed++
		} else {
			res.Succeeded++
		}
	}
	st := shared.Stats()
	res.Cache = BatchCacheStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
	}
	return res, nil
}

// batchOne validates and evaluates a single batch item.
func (m *Miner) batchOne(ctx context.Context, eval *od.Evaluator, q BatchQuery, shared *od.SharedCache) BatchItemResult {
	var point []float64
	exclude := -1
	switch q.kind {
	case batchKindRow:
		if q.index < 0 || q.index >= m.ds.N() {
			return BatchItemResult{Err: fmt.Errorf("core: batch index %d out of range [0,%d)", q.index, m.ds.N())}
		}
		point = m.ds.Point(q.index)
		exclude = q.index
	case batchKindPoint:
		if len(q.point) != m.ds.Dim() {
			return BatchItemResult{Err: fmt.Errorf("core: batch point has %d dims, dataset %d", len(q.point), m.ds.Dim())}
		}
		point = q.point
	default:
		return BatchItemResult{Err: fmt.Errorf("core: empty batch item (use BatchIndex or BatchPoint)")}
	}
	r, err := m.searchOne(ctx, eval, point, exclude, shared)
	if err != nil {
		return BatchItemResult{Err: err}
	}
	return BatchItemResult{Result: r}
}
