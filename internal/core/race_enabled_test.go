//go:build race

package core

// raceEnabled mirrors the -race build flag for tests that pin exact
// allocation counts: race instrumentation allocates on its own, so
// the zero-alloc budgets only hold in uninstrumented builds.
const raceEnabled = true
