package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/subspace"
)

// ScanHit is one dataset point found to be an outlier in at least one
// subspace during a whole-dataset scan.
type ScanHit struct {
	Index int
	// Minimal outlying subspaces of the point (§3.4 filtered).
	Minimal []subspace.Mask
	// OutlyingCount is the size of the full outlying set.
	OutlyingCount int
	// FullSpaceOD is the point's OD in the full attribute space
	// (a convenient severity proxy for ranking).
	FullSpaceOD float64
}

// ScanOptions tunes ScanAll.
type ScanOptions struct {
	// MaxResults bounds the number of hits returned (0 = all).
	MaxResults int
	// SortBySeverity orders hits by descending full-space OD instead
	// of ascending index.
	SortBySeverity bool
	// OnProgress, when non-nil, is invoked after each point's subspace
	// search finishes, with the number of points evaluated so far and
	// the dataset total — the hook an async serving layer uses to
	// report real scan progress. The done values across all calls cover
	// 1..total exactly once and never regress, but parallel scans
	// (including scatter-gather sharded ones) invoke the callback from
	// their worker goroutines, so calls may be concurrent and may reach
	// a consumer out of order: consumers should retain the maximum.
	// The callback must be cheap and safe for concurrent use; it is
	// not called for points a cancelled scan never evaluated.
	OnProgress func(done, total int)
}

// ScanAll runs the outlying-subspace query for every dataset point
// and returns the points with non-empty answer sets — the system-
// level "detect the outlying subspaces of high-dimensional data"
// operation. Cost is N times the per-query cost; intended for
// moderate datasets or offline runs.
func (m *Miner) ScanAll(opts ScanOptions) ([]ScanHit, error) {
	return m.ScanAllContext(context.Background(), opts)
}

// ScanAllContext is ScanAll with cooperative cancellation. The
// context is checked between points and *within* each point's
// subspace search (see SearchContext), so cancelling mid-way through
// a high-dimensional point — whose lattice alone can cost tens of
// thousands of OD evaluations — returns promptly instead of finishing
// the point first. On cancellation it returns ctx.Err().
func (m *Miner) ScanAllContext(ctx context.Context, opts ScanOptions) ([]ScanHit, error) {
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	if opts.MaxResults < 0 {
		return nil, fmt.Errorf("core: MaxResults = %d", opts.MaxResults)
	}
	var hits []ScanHit
	d := m.ds.Dim()
	n := m.ds.N()
	fullSpace := subspace.Full(d)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q := m.eval.NewQueryForPoint(i)
		res, err := SearchContext(ctx, q, d, m.threshold, m.priors, m.cfg.Policy, m.rng)
		if err != nil {
			return nil, err
		}
		if len(res.Outlying) > 0 {
			hits = append(hits, ScanHit{
				Index:         i,
				Minimal:       res.Minimal,
				OutlyingCount: len(res.Outlying),
				FullSpaceOD:   m.eval.OD(m.ds.Point(i), fullSpace, i),
			})
		}
		if opts.OnProgress != nil {
			opts.OnProgress(i+1, n)
		}
	}
	return finishScan(hits, opts), nil
}

// ScanAllParallel is ScanAll fanned out over a worker pool. Results
// are identical to ScanAll (answers do not depend on evaluation
// order); only wall-clock changes. workers ≤ 0 selects GOMAXPROCS.
//
// Unlike ScanAll, ScanAllParallel never touches the Miner's shared
// evaluator or rng — even at workers = 1 it runs on private worker
// state — so, post-Preprocess, any number of ScanAllParallel and
// QueryWith calls may run concurrently.
//
// Note: PolicyRandom queries draw from per-worker deterministic RNGs,
// so the *work* per query can differ from the sequential run; the
// answer sets cannot.
func (m *Miner) ScanAllParallel(opts ScanOptions, workers int) ([]ScanHit, error) {
	return m.ScanAllParallelContext(context.Background(), opts, workers)
}

// ScanAllParallelContext is ScanAllParallel with cooperative
// cancellation: workers check ctx between points and inside each
// point's subspace search (SearchContext), so the scan returns
// ctx.Err() promptly once it is cancelled — what lets a serving layer
// reclaim the cores of an abandoned scan instead of finishing a sweep
// nobody will read.
func (m *Miner) ScanAllParallelContext(ctx context.Context, opts ScanOptions, workers int) ([]ScanHit, error) {
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	if opts.MaxResults < 0 {
		return nil, fmt.Errorf("core: MaxResults = %d", opts.MaxResults)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.ds.N() {
		workers = m.ds.N()
	}
	if workers < 1 {
		workers = 1
	}

	d := m.ds.Dim()
	n := m.ds.N()
	fullSpace := subspace.Full(d)
	perPoint := make([]*ScanHit, n)
	errs := make([]error, workers)
	// evaluated feeds OnProgress: one shared monotonic counter across
	// all workers, so the callback sees every done value in 1..n
	// exactly once (though possibly out of delivery order).
	var evaluated atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			eval, err := m.workerEvaluator()
			if err != nil {
				errs[worker] = err
				return
			}
			rng := newDeterministicRng(m.cfg.Seed, int64(worker))
			for i := worker; i < n; i += workers {
				if err := ctx.Err(); err != nil {
					errs[worker] = err
					return
				}
				q := eval.NewQueryForPoint(i)
				res, err := SearchContext(ctx, q, d, m.threshold, m.priors, m.cfg.Policy, rng)
				if err != nil {
					errs[worker] = err
					return
				}
				if len(res.Outlying) > 0 {
					perPoint[i] = &ScanHit{
						Index:         i,
						Minimal:       res.Minimal,
						OutlyingCount: len(res.Outlying),
						FullSpaceOD:   eval.OD(m.ds.Point(i), fullSpace, i),
					}
				}
				if opts.OnProgress != nil {
					opts.OnProgress(int(evaluated.Add(1)), n)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var hits []ScanHit
	for _, h := range perPoint {
		if h != nil {
			hits = append(hits, *h)
		}
	}
	return finishScan(hits, opts), nil
}

func finishScan(hits []ScanHit, opts ScanOptions) []ScanHit {
	if opts.SortBySeverity {
		sort.Slice(hits, func(a, b int) bool {
			if hits[a].FullSpaceOD != hits[b].FullSpaceOD {
				return hits[a].FullSpaceOD > hits[b].FullSpaceOD
			}
			return hits[a].Index < hits[b].Index
		})
	}
	if opts.MaxResults > 0 && len(hits) > opts.MaxResults {
		hits = hits[:opts.MaxResults]
	}
	return hits
}
