package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/knn"
	"repro/internal/od"
	"repro/internal/shard"
	"repro/internal/subspace"
	"repro/internal/vector"
	"repro/internal/xtree"
)

// Backend selects the k-NN engine behind OD evaluation.
type Backend uint8

const (
	// BackendAuto uses an X-tree for datasets above a size threshold
	// and a linear scan below it.
	BackendAuto Backend = iota
	// BackendLinear always scans.
	BackendLinear
	// BackendXTree always uses the X-tree index (§3, "X-tree
	// Indexing" module).
	BackendXTree
)

// autoXTreeThreshold is the dataset size above which BackendAuto
// prefers the X-tree.
const autoXTreeThreshold = 512

// shardIndexKind maps a Backend onto the per-shard index choice of
// internal/shard (BackendAuto is then applied per shard, not to the
// whole dataset).
func (b Backend) shardIndexKind() shard.IndexKind {
	switch b {
	case BackendLinear:
		return shard.IndexLinear
	case BackendXTree:
		return shard.IndexXTree
	default:
		return shard.IndexAuto
	}
}

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendLinear:
		return "linear"
	case BackendXTree:
		return "xtree"
	default:
		return fmt.Sprintf("Backend(%d)", uint8(b))
	}
}

// Config parameterises a Miner.
type Config struct {
	// K is the neighbourhood size of the OD measure (§2).
	K int
	// T is the paper's global outlying-degree threshold: p is an
	// outlier in s iff OD(p, s) ≥ T. Exactly one of T/TQuantile is
	// used: when TQuantile > 0, T is derived at Preprocess time as
	// that quantile of the full-space OD distribution over the
	// dataset.
	T         float64
	TQuantile float64
	// Metric is the distance metric (default L2, as the paper
	// implies).
	Metric vector.Metric
	// SampleSize is the number of sample points for the §3.2 learning
	// process. 0 disables learning (uniform priors are used for
	// queries too).
	SampleSize int
	// Seed drives sampling and PolicyRandom. The same seed reproduces
	// the same run bit-for-bit.
	Seed int64
	// Policy is the layer-ordering strategy (PolicyTSF = the paper).
	Policy Policy
	// Backend selects the k-NN engine.
	Backend Backend
	// Shards partitions the dataset across this many per-shard
	// indexes answered by scatter-gather (internal/shard). 0 means a
	// single unsharded index; any value ≥ 1 routes through the
	// scatter-gather engine (1 = one-shard engine, useful for
	// exercising the plumbing). Sharded answers are byte-identical to
	// unsharded ones (see shard.Merge); Backend then selects the
	// per-shard index, with BackendAuto applied shard by shard.
	Shards int
	// Partitioner assigns rows to shards when Shards > 1 (default
	// round-robin).
	Partitioner shard.Partitioner
}

// Validate checks the configuration against a dataset — the same
// checks NewMiner runs, exported so serialization layers can vet a
// deserialized Config before building anything from it.
func (c Config) Validate(ds *vector.Dataset) error {
	if ds == nil {
		return fmt.Errorf("core: nil dataset")
	}
	return c.validate(ds)
}

func (c *Config) validate(ds *vector.Dataset) error {
	if c.K < 1 {
		return fmt.Errorf("core: K = %d, need ≥ 1", c.K)
	}
	if c.K >= ds.N() {
		return fmt.Errorf("core: K = %d must be below dataset size %d", c.K, ds.N())
	}
	if !c.Metric.Valid() {
		return fmt.Errorf("core: invalid metric")
	}
	if c.TQuantile < 0 || c.TQuantile >= 1 {
		if c.TQuantile != 0 {
			return fmt.Errorf("core: TQuantile %v out of (0,1)", c.TQuantile)
		}
	}
	if c.TQuantile == 0 && c.T <= 0 {
		return fmt.Errorf("core: need a positive T or a TQuantile in (0,1)")
	}
	if c.SampleSize < 0 || c.SampleSize > ds.N() {
		return fmt.Errorf("core: SampleSize %d out of [0,%d]", c.SampleSize, ds.N())
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("core: invalid policy")
	}
	if c.Backend > BackendXTree {
		return fmt.Errorf("core: invalid backend")
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards = %d, need ≥ 0", c.Shards)
	}
	if c.Shards > ds.N() {
		return fmt.Errorf("core: Shards = %d exceeds dataset size %d", c.Shards, ds.N())
	}
	if !c.Partitioner.Valid() {
		return fmt.Errorf("core: invalid partitioner")
	}
	return nil
}

// Miner is the HOS-Miner system: dataset + index + learned priors.
// Construct with NewMiner, then call Preprocess once (indexing +
// learning), then OutlyingSubspaces per query.
//
// Concurrency: a Miner is NOT safe for concurrent use through its
// plain query methods — OutlyingSubspaces, OutlyingSubspacesOfPoint
// and ScanAll share one od.Evaluator (whose k-NN searcher carries
// mutable work counters) and one rand.Rand. After Preprocess (or
// ImportState) has completed, all remaining Miner state — dataset,
// X-tree, threshold, priors, configuration — is read-only, so any
// number of goroutines may query concurrently PROVIDED each uses its
// own evaluator: call QueryWith with an evaluator obtained from
// NewWorkerEvaluator or an EvaluatorPool. ScanAllParallel follows the
// same pattern internally. This is the contract internal/server is
// built on.
type Miner struct {
	cfg    Config
	ds     *vector.Dataset
	eval   *od.Evaluator
	srch   knn.Searcher
	tree   *xtree.Tree   // non-nil when the backend is a single X-tree
	shards *shard.Engine // non-nil when Config.Shards ≥ 1

	threshold    float64
	priors       Priors
	learned      bool
	preprocessed bool
	rng          *rand.Rand

	learnStats LearnStats

	// querySeq numbers QueryWith calls so PolicyRandom stays
	// deterministic per (seed, call) without sharing rng.
	querySeq atomic.Int64

	// defaultPool lazily serves QueryBatch calls that bring no pool of
	// their own, so back-to-back batches reuse warmed evaluators
	// instead of rebuilding them per batch.
	defaultPool     *EvaluatorPool
	defaultPoolOnce sync.Once

	// cachePool recycles per-batch shared OD caches (cleared between
	// batches; the BatchResult only carries a stats snapshot, never
	// the cache itself).
	cachePool sync.Pool
}

// LearnStats summarises the §3.2 learning phase.
type LearnStats struct {
	Samples        int
	ODEvaluations  int64 // OD computations spent on sample searches
	SampledIndices []int
}

// NewMiner validates the configuration and builds the k-NN backend
// (but performs no learning yet; see Preprocess).
func NewMiner(ds *vector.Dataset, cfg Config) (*Miner, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if ds.Dim() < 1 || ds.Dim() > subspace.MaxDim {
		return nil, fmt.Errorf("core: dimensionality %d out of [1,%d]", ds.Dim(), subspace.MaxDim)
	}
	if err := cfg.validate(ds); err != nil {
		return nil, err
	}

	var searcher knn.Searcher
	var tree *xtree.Tree
	var engine *shard.Engine
	if cfg.Shards >= 1 {
		e, err := shard.NewEngine(ds, shard.Config{
			Shards:      cfg.Shards,
			Partitioner: cfg.Partitioner,
			Metric:      cfg.Metric,
			Index:       cfg.Backend.shardIndexKind(),
		})
		if err != nil {
			return nil, err
		}
		engine = e
		s, err := e.NewSearcher()
		if err != nil {
			return nil, err
		}
		searcher = s
	} else if useXTree := cfg.Backend == BackendXTree ||
		(cfg.Backend == BackendAuto && ds.N() >= autoXTreeThreshold); useXTree {
		t, err := xtree.Build(ds, cfg.Metric, xtree.DefaultConfig())
		if err != nil {
			return nil, err
		}
		tree = t
		searcher = xtree.NewSearcher(t)
	} else {
		ls, err := knn.NewLinear(ds, cfg.Metric)
		if err != nil {
			return nil, err
		}
		searcher = ls
	}

	eval, err := od.NewEvaluator(ds, searcher, cfg.Metric, cfg.K, od.NormNone)
	if err != nil {
		return nil, err
	}
	return newMinerWith(ds, cfg, eval, searcher, tree, engine), nil
}

// newMinerWith assembles a Miner from already-constructed components —
// the shared tail of NewMiner and NewMinerWithIndex.
func newMinerWith(ds *vector.Dataset, cfg Config, eval *od.Evaluator, searcher knn.Searcher, tree *xtree.Tree, engine *shard.Engine) *Miner {
	return &Miner{
		cfg:    cfg,
		ds:     ds,
		eval:   eval,
		srch:   searcher,
		tree:   tree,
		shards: engine,
		priors: UniformPriors(ds.Dim()),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// workerEvaluator builds an independent OD evaluator for one worker
// goroutine. The X-tree itself is immutable after Build and safe for
// concurrent reads; Searchers and Evaluators carry per-instance work
// counters and are not, so each worker gets its own.
func (m *Miner) workerEvaluator() (*od.Evaluator, error) {
	var searcher knn.Searcher
	if m.shards != nil {
		s, err := m.shards.NewSearcher()
		if err != nil {
			return nil, err
		}
		searcher = s
	} else if m.tree != nil {
		searcher = xtree.NewSearcher(m.tree)
	} else {
		ls, err := knn.NewLinear(m.ds, m.cfg.Metric)
		if err != nil {
			return nil, err
		}
		searcher = ls
	}
	return od.NewEvaluator(m.ds, searcher, m.cfg.Metric, m.cfg.K, od.NormNone)
}

// Dataset returns the indexed dataset.
func (m *Miner) Dataset() *vector.Dataset { return m.ds }

// Threshold returns the effective T (resolved from TQuantile at
// Preprocess time when configured).
func (m *Miner) Threshold() float64 { return m.threshold }

// Priors returns the priors queries will use (learned when learning
// ran, uniform otherwise).
func (m *Miner) Priors() Priors { return m.priors }

// LearnStats returns the learning-phase summary (zero value before
// Preprocess).
func (m *Miner) LearnStats() LearnStats { return m.learnStats }

// SearcherStats returns cumulative k-NN work counters.
func (m *Miner) SearcherStats() knn.SearchStats { return m.srch.Stats() }

// ShardEngine returns the scatter-gather engine behind a sharded
// Miner, or nil when Config.Shards is 0. Callers use it for shard
// topology (sizes) and cumulative per-shard work counters; the engine
// is immutable and safe to read concurrently.
func (m *Miner) ShardEngine() *shard.Engine { return m.shards }

// NumShards returns the engine width the Miner serves from: the
// shard count of its scatter-gather engine, or 1 for an unsharded
// single-index Miner.
func (m *Miner) NumShards() int {
	if m.shards != nil {
		return m.shards.NumShards()
	}
	return 1
}

// Preprocess resolves the threshold and runs the sample-based
// learning process (§3.2): SampleSize points are drawn uniformly
// without replacement, each is searched with uniform priors, and the
// per-layer outlier fractions are averaged into the query priors.
// Preprocess is idempotent; repeated calls are no-ops.
func (m *Miner) Preprocess() error {
	if m.preprocessed {
		return nil
	}
	d := m.ds.Dim()

	// Resolve the threshold.
	if m.cfg.TQuantile > 0 {
		ods := m.eval.FullSpaceODs()
		t, err := vector.Quantile(ods, m.cfg.TQuantile)
		if err != nil {
			return fmt.Errorf("core: resolving TQuantile: %w", err)
		}
		if t <= 0 {
			return fmt.Errorf("core: TQuantile %v resolves to non-positive threshold %v (degenerate dataset)", m.cfg.TQuantile, t)
		}
		m.threshold = t
	} else {
		m.threshold = m.cfg.T
	}

	// Learning.
	if m.cfg.SampleSize > 0 {
		uniform := UniformPriors(d)
		perm := m.rng.Perm(m.ds.N())
		sampled := perm[:m.cfg.SampleSize]
		perSample := make([]Priors, 0, len(sampled))
		evalsBefore := m.eval.Evaluations()
		for _, idx := range sampled {
			q := m.eval.NewQueryForPoint(idx)
			res, err := Search(q, d, m.threshold, uniform, PolicyTSF, m.rng)
			if err != nil {
				return fmt.Errorf("core: learning on sample %d: %w", idx, err)
			}
			perSample = append(perSample, PriorsFromResult(res))
		}
		m.priors = SmoothPriors(averagePriors(perSample, d), len(perSample))
		m.learned = true
		m.learnStats = LearnStats{
			Samples:        len(sampled),
			ODEvaluations:  m.eval.Evaluations() - evalsBefore,
			SampledIndices: append([]int(nil), sampled...),
		}
	}
	m.preprocessed = true
	return nil
}

// QueryResult is what a caller receives for one query point.
//
// Results from the scratch-backed paths (QueryWith, QueryPointWith)
// alias their evaluator's reusable buffers; Clone detaches them.
type QueryResult struct {
	SearchResult
	// Threshold is the effective T the search used.
	Threshold float64
	// ODEvaluations is the number of distinct OD computations this
	// query performed.
	ODEvaluations int64
	// IsOutlierAnywhere reports whether the point is an outlier in at
	// least one subspace (the paper: "if the answer set is empty for
	// p, we say that p is not an outlier in any subspace").
	IsOutlierAnywhere bool
}

// Clone returns a deep copy whose slices are independently owned —
// the way to retain a QueryWith result beyond the next query on the
// same evaluator. Nil and empty slices keep their shape.
func (r *QueryResult) Clone() *QueryResult {
	if r == nil {
		return nil
	}
	out := *r
	out.Outlying = cloneMasks(r.Outlying)
	out.Minimal = cloneMasks(r.Minimal)
	if r.LayerOrder != nil {
		out.LayerOrder = make([]int, len(r.LayerOrder))
		copy(out.LayerOrder, r.LayerOrder)
	}
	if r.PerLayerOutlierFrac != nil {
		out.PerLayerOutlierFrac = make([]float64, len(r.PerLayerOutlierFrac))
		copy(out.PerLayerOutlierFrac, r.PerLayerOutlierFrac)
	}
	return &out
}

// cloneMasks copies a mask slice preserving nil-ness and emptiness.
func cloneMasks(s []subspace.Mask) []subspace.Mask {
	if s == nil {
		return nil
	}
	out := make([]subspace.Mask, len(s))
	copy(out, s)
	return out
}

// OutlyingSubspaces finds every subspace in which the given point is
// an outlier, and the minimal set after refinement. The point may be
// external to the dataset.
func (m *Miner) OutlyingSubspaces(point []float64) (*QueryResult, error) {
	return m.query(point, -1)
}

// OutlyingSubspacesOfPoint runs the query for dataset member idx
// (self-excluded from its own neighbourhoods).
func (m *Miner) OutlyingSubspacesOfPoint(idx int) (*QueryResult, error) {
	if idx < 0 || idx >= m.ds.N() {
		return nil, fmt.Errorf("core: point index %d out of range [0,%d)", idx, m.ds.N())
	}
	return m.query(m.ds.Point(idx), idx)
}

func (m *Miner) query(point []float64, exclude int) (*QueryResult, error) {
	if err := m.Preprocess(); err != nil {
		return nil, err
	}
	if len(point) != m.ds.Dim() {
		return nil, fmt.Errorf("core: query point has %d dims, dataset %d", len(point), m.ds.Dim())
	}
	q := m.eval.NewQuery(point, exclude)
	res, err := Search(q, m.ds.Dim(), m.threshold, m.priors, m.cfg.Policy, m.rng)
	if err != nil {
		return nil, err
	}
	_, misses := q.CacheStats()
	return &QueryResult{
		SearchResult:      *res,
		Threshold:         m.threshold,
		ODEvaluations:     misses,
		IsOutlierAnywhere: len(res.Outlying) > 0,
	}, nil
}
