package core

import (
	"repro/internal/lattice"
	"repro/internal/subspace"
)

// TSF computes the Total Saving Factor of lattice layer m for the
// current search state (Definition 3):
//
//	m = 1:       p_up·f_up·USF(m)
//	1 < m < d:   p_down·f_down·DSF(m) + p_up·f_up·USF(m)
//	m = d:       p_down·f_down·DSF(m)
//
// where f_down(m) = Cdown_left(m)/Cdown(m) and f_up(m) =
// Cup_left(m)/Cup(m) are the fractions of the below/above workload
// still unsettled (taken live from the tracker), and the p's come from
// the priors. A zero denominator (no workload exists on that side)
// contributes 0.
func TSF(m int, tr *lattice.Tracker, priors Priors) float64 {
	d := tr.Dim()
	if m < 1 || m > d {
		return 0
	}
	down := func() float64 {
		total := subspace.WorkloadBelow(m, d)
		if total == 0 {
			return 0
		}
		fDown := float64(tr.CdownLeft(m)) / float64(total)
		return priors.PDown[m] * fDown * float64(subspace.DSF(m))
	}
	up := func() float64 {
		total := subspace.WorkloadAbove(m, d)
		if total == 0 {
			return 0
		}
		fUp := float64(tr.CupLeft(m)) / float64(total)
		return priors.PUp[m] * fUp * float64(subspace.USF(m, d))
	}
	switch {
	case d == 1:
		return 0
	case m == 1:
		return up()
	case m == d:
		return down()
	default:
		return down() + up()
	}
}

// BestLayer returns the layer with unknown subspaces that maximises
// TSF, breaking ties toward the lower dimensionality (deterministic,
// and lower layers are cheaper to evaluate since k-NN over fewer
// dimensions costs less). The second return is false when no layer has
// unknown subspaces.
func BestLayer(tr *lattice.Tracker, priors Priors) (int, bool) {
	best, bestVal, found := 0, -1.0, false
	for m := 1; m <= tr.Dim(); m++ {
		if tr.UnknownInLayer(m) == 0 {
			continue
		}
		v := TSF(m, tr, priors)
		if !found || v > bestVal {
			best, bestVal, found = m, v, true
		}
	}
	return best, found
}
