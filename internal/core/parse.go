package core

import "fmt"

// ParseBackend parses the CLI spelling of a Backend ("auto",
// "linear", "xtree") — the inverse of Backend.String.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto":
		return BackendAuto, nil
	case "linear":
		return BackendLinear, nil
	case "xtree":
		return BackendXTree, nil
	default:
		return 0, fmt.Errorf("core: unknown backend %q (have auto|linear|xtree)", s)
	}
}

// ClampSampleSize caps SampleSize for an n-point dataset, halving to
// n/2 when the request exceeds n — the CLIs' shared lenient
// alternative to the hard validation error NewMiner would raise.
func (c *Config) ClampSampleSize(n int) {
	if c.SampleSize > n {
		c.SampleSize = n / 2
	}
}

// ParsePolicy parses the CLI spelling of a Policy ("tsf", "bottomup",
// "topdown", "random"). The hyphenated forms Policy.String emits
// ("bottom-up", "top-down") are accepted too, so values read back
// from /healthz or logs round-trip.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "tsf":
		return PolicyTSF, nil
	case "bottomup", "bottom-up":
		return PolicyBottomUp, nil
	case "topdown", "top-down":
		return PolicyTopDown, nil
	case "random":
		return PolicyRandom, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q (have tsf|bottomup|topdown|random)", s)
	}
}
