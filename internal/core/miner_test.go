package core

import (
	"math/rand"
	"testing"

	"repro/internal/subspace"
	"repro/internal/vector"
)

// plantedDataset builds a clustered dataset with one planted point
// (index 0) that deviates strongly in exactly the dimensions of
// `planted` and sits inside the cluster elsewhere.
func plantedDataset(t testing.TB, seed int64, n, d int, planted subspace.Mask) *vector.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64() * 0.5
		}
	}
	planted.EachDim(func(dim int) {
		rows[0][dim] = 25 // far outside the cluster in the planted dims
	})
	ds, err := vector.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewMinerValidation(t *testing.T) {
	ds := plantedDataset(t, 1, 30, 3, subspace.New(0))
	cases := []Config{
		{K: 0, T: 1},                           // bad K
		{K: 30, T: 1},                          // K ≥ N
		{K: 3, T: -1},                          // no threshold
		{K: 3, T: 1, Metric: vector.Metric(9)}, // bad metric
		{K: 3, TQuantile: 1.5},                 // bad quantile
		{K: 3, T: 1, SampleSize: 31},           // sample > N
		{K: 3, T: 1, Policy: Policy(9)},        // bad policy
		{K: 3, T: 1, Backend: Backend(9)},      // bad backend
	}
	for i, cfg := range cases {
		if _, err := NewMiner(ds, cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewMiner(nil, Config{K: 3, T: 1}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewMiner(ds, Config{K: 3, T: 1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestMinerFindsPlantedSubspace is the end-to-end acceptance test:
// the planted point must be an outlier precisely in subspaces
// involving the planted dimensions, and the minimal result should be
// (a subset of) the planted mask's own sub-lattice.
func TestMinerFindsPlantedSubspace(t *testing.T) {
	planted := subspace.New(1, 3)
	ds := plantedDataset(t, 42, 120, 5, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.95, SampleSize: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	res, err := m.OutlyingSubspacesOfPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsOutlierAnywhere {
		t.Fatal("planted outlier not detected anywhere")
	}
	// Every minimal subspace must involve at least one planted dim:
	// the point is ordinary in all other dims.
	for _, s := range res.Minimal {
		if s.Intersect(planted).IsEmpty() {
			t.Fatalf("minimal subspace %v does not touch planted dims %v", s, planted)
		}
	}
	// The planted mask itself (or a subset of it) must be outlying.
	found := false
	for _, s := range res.Outlying {
		if s.SubsetOf(planted) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no outlying subspace within planted mask %v; minimal = %v", planted, res.Minimal)
	}
}

// TestMinerInlierHasFewOrNoSubspaces: a cluster point should have far
// fewer outlying subspaces than the planted outlier.
func TestMinerInlierVsOutlier(t *testing.T) {
	planted := subspace.New(0, 2)
	ds := plantedDataset(t, 9, 100, 4, planted)
	m, err := NewMiner(ds, Config{K: 4, TQuantile: 0.9, SampleSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.OutlyingSubspacesOfPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := m.OutlyingSubspacesOfPoint(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Outlying) >= len(out.Outlying) {
		t.Fatalf("inlier has %d outlying subspaces, outlier %d", len(in.Outlying), len(out.Outlying))
	}
}

func TestMinerExplicitThreshold(t *testing.T) {
	ds := plantedDataset(t, 5, 60, 3, subspace.New(0))
	m, err := NewMiner(ds, Config{K: 3, T: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	if m.Threshold() != 2.5 {
		t.Fatalf("threshold = %v", m.Threshold())
	}
}

func TestMinerQuantileThreshold(t *testing.T) {
	ds := plantedDataset(t, 5, 60, 3, subspace.New(0))
	m, err := NewMiner(ds, Config{K: 3, TQuantile: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	if m.Threshold() <= 0 {
		t.Fatalf("resolved threshold = %v", m.Threshold())
	}
}

func TestMinerPreprocessIdempotent(t *testing.T) {
	ds := plantedDataset(t, 5, 60, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, TQuantile: 0.9, SampleSize: 5, Seed: 1})
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	st := m.LearnStats()
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	st2 := m.LearnStats()
	if st.ODEvaluations != st2.ODEvaluations || st.Samples != st2.Samples {
		t.Fatal("second Preprocess re-ran learning")
	}
}

func TestMinerLearningProducesValidPriors(t *testing.T) {
	ds := plantedDataset(t, 77, 150, 6, subspace.New(2))
	m, err := NewMiner(ds, Config{K: 5, TQuantile: 0.95, SampleSize: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Preprocess(); err != nil {
		t.Fatal(err)
	}
	p := m.Priors()
	if err := p.Validate(); err != nil {
		t.Fatalf("learned priors invalid: %v", err)
	}
	ls := m.LearnStats()
	if ls.Samples != 20 || len(ls.SampledIndices) != 20 {
		t.Fatalf("learn stats: %+v", ls)
	}
	if ls.ODEvaluations <= 0 {
		t.Fatal("learning performed no OD evaluations?")
	}
	// Sampled indices must be distinct and in range.
	seen := map[int]bool{}
	for _, idx := range ls.SampledIndices {
		if idx < 0 || idx >= ds.N() || seen[idx] {
			t.Fatalf("bad sample index %d", idx)
		}
		seen[idx] = true
	}
}

func TestMinerDeterminism(t *testing.T) {
	planted := subspace.New(1)
	ds := plantedDataset(t, 13, 80, 4, planted)
	run := func() []subspace.Mask {
		m, err := NewMiner(ds, Config{K: 3, TQuantile: 0.9, SampleSize: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.OutlyingSubspacesOfPoint(0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Minimal
	}
	a, b := run(), run()
	if !masksEqual(a, b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestMinerExternalQuery(t *testing.T) {
	ds := plantedDataset(t, 3, 70, 3, subspace.New(0))
	m, _ := NewMiner(ds, Config{K: 3, TQuantile: 0.9, Seed: 2})
	// A point far away in dim 2 only.
	res, err := m.OutlyingSubspaces([]float64{0, 0, 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsOutlierAnywhere {
		t.Fatal("external outlier missed")
	}
	for _, s := range res.Minimal {
		if !s.Contains(2) {
			t.Fatalf("minimal subspace %v should involve dim 2", s)
		}
	}
	if _, err := m.OutlyingSubspaces([]float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := m.OutlyingSubspacesOfPoint(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := m.OutlyingSubspacesOfPoint(1000); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestMinerBackendsAgree: linear and X-tree backends must return
// identical results (the index changes cost, never answers).
func TestMinerBackendsAgree(t *testing.T) {
	planted := subspace.New(0, 3)
	ds := plantedDataset(t, 21, 200, 4, planted)
	var results [][]subspace.Mask
	for _, backend := range []Backend{BackendLinear, BackendXTree} {
		m, err := NewMiner(ds, Config{K: 4, T: 8, SampleSize: 6, Seed: 9, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.OutlyingSubspacesOfPoint(0)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res.Outlying)
	}
	if !masksEqual(results[0], results[1]) {
		t.Fatalf("backends disagree: linear %d vs xtree %d subspaces", len(results[0]), len(results[1]))
	}
}

func TestMinerQueryImplicitPreprocess(t *testing.T) {
	ds := plantedDataset(t, 2, 50, 3, subspace.New(1))
	m, _ := NewMiner(ds, Config{K: 3, TQuantile: 0.9, SampleSize: 4, Seed: 1})
	// Query without explicit Preprocess must work.
	if _, err := m.OutlyingSubspacesOfPoint(0); err != nil {
		t.Fatal(err)
	}
	if m.Threshold() <= 0 {
		t.Fatal("threshold not resolved")
	}
}

func TestBackendString(t *testing.T) {
	for _, b := range []Backend{BackendAuto, BackendLinear, BackendXTree, Backend(9)} {
		if b.String() == "" {
			t.Fatal("empty backend name")
		}
	}
}

func TestMinerSearcherStats(t *testing.T) {
	ds := plantedDataset(t, 2, 50, 3, subspace.New(1))
	m, _ := NewMiner(ds, Config{K: 3, T: 3, Seed: 1})
	if _, err := m.OutlyingSubspacesOfPoint(0); err != nil {
		t.Fatal(err)
	}
	if m.SearcherStats().Queries == 0 {
		t.Fatal("no k-NN queries recorded")
	}
}
