package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/od"
)

// This file is the exported concurrent query surface of the Miner.
// The contract (documented on the Miner type): once Preprocess or
// ImportState has completed, the Miner's shared state is read-only;
// what is NOT shareable is an od.Evaluator (its searcher keeps work
// counters) and the Miner's rand.Rand. QueryWith therefore takes an
// evaluator owned by the calling goroutine — obtained from
// NewWorkerEvaluator or, cheaper under churn, from an EvaluatorPool —
// and derives any randomness it needs from an atomic sequence.

// ErrNotPreprocessed is returned by QueryWith when neither Preprocess
// nor ImportState has completed. The concurrent path never
// preprocesses lazily: preprocessing mutates shared state, so it must
// happen before goroutines fan out.
var ErrNotPreprocessed = errors.New("core: miner not preprocessed (call Preprocess or ImportState before concurrent queries)")

// Preprocessed reports whether Preprocess or ImportState has
// completed, i.e. whether the Miner is ready for concurrent use.
func (m *Miner) Preprocessed() bool { return m.preprocessed }

// Config returns the Miner's configuration (a copy).
func (m *Miner) Config() Config { return m.cfg }

// NewWorkerEvaluator builds an independent OD evaluator over the
// Miner's dataset and index for use by one goroutine at a time. The
// X-tree (when present) is shared — it is immutable after Build and
// safe for concurrent reads — so construction is cheap: only the
// searcher cursor and its counters are per-evaluator.
func (m *Miner) NewWorkerEvaluator() (*od.Evaluator, error) {
	return m.workerEvaluator()
}

// QueryWith answers the outlying-subspace query for point using the
// supplied evaluator, which the caller must own for the duration of
// the call (one evaluator, one goroutine). exclude is the dataset
// index of the point when it is a dataset member (so it never counts
// as its own neighbour) and -1 for external points.
//
// Ownership: the returned QueryResult (including its mask slices) is
// backed by the evaluator's reusable scratch — in steady state a
// QueryWith call allocates nothing. It stays valid only until the
// next query run on the same evaluator (including returning the
// evaluator to a pool); callers that retain it longer must
// QueryResult.Clone it first.
//
// Unlike OutlyingSubspaces, QueryWith never triggers lazy
// preprocessing; it fails with ErrNotPreprocessed instead. Any number
// of QueryWith calls may run concurrently with each other and with
// ScanAllParallel.
//
//hos:hotpath
func (m *Miner) QueryWith(eval *od.Evaluator, point []float64, exclude int) (*QueryResult, error) {
	if !m.preprocessed {
		return nil, ErrNotPreprocessed
	}
	if eval == nil {
		return nil, fmt.Errorf("core: QueryWith: nil evaluator")
	}
	if len(point) != m.ds.Dim() {
		return nil, fmt.Errorf("core: query point has %d dims, dataset %d", len(point), m.ds.Dim())
	}
	if exclude < -1 || exclude >= m.ds.N() {
		return nil, fmt.Errorf("core: exclude index %d out of range [-1,%d)", exclude, m.ds.N())
	}
	return m.searchOne(context.Background(), eval, point, exclude, nil)
}

// searchOne is the shared tail of QueryWith and QueryBatch: run the
// dynamic search for one point on a caller-owned evaluator,
// optionally consulting a batch-wide OD cache. PolicyRandom draws a
// per-call deterministic rng from the atomic query sequence — the
// Miner's own rand.Rand is not shareable across goroutines.
//
// The result lives in the evaluator's search scratch (see
// scratchFor): it is valid until the next searchOne on the same
// evaluator, which is exactly the zero-allocation steady state the
// serving path runs in.
func (m *Miner) searchOne(ctx context.Context, eval *od.Evaluator, point []float64, exclude int, shared *od.SharedCache) (*QueryResult, error) {
	rng := m.rng
	if m.cfg.Policy == PolicyRandom {
		rng = newDeterministicRng(m.cfg.Seed, m.querySeq.Add(1))
	}
	sc := scratchFor(eval)
	q := eval.BorrowQuery(point, exclude, shared)
	if err := searchInto(ctx, sc, q, m.ds.Dim(), m.threshold, m.priors, m.cfg.Policy, rng); err != nil {
		return nil, err
	}
	_, misses := q.CacheStats()
	sc.qres = QueryResult{
		SearchResult:      sc.sres,
		Threshold:         m.threshold,
		ODEvaluations:     misses,
		IsOutlierAnywhere: len(sc.sres.Outlying) > 0,
	}
	return &sc.qres, nil
}

// scratchFor returns the evaluator's resident search scratch,
// attaching a fresh one on first use. The scratch rides along with
// pooled evaluators, so its tracker and buffers stay warm across
// borrows.
func scratchFor(eval *od.Evaluator) *searchScratch {
	if sc, ok := eval.Scratch().(*searchScratch); ok {
		return sc
	}
	sc := &searchScratch{}
	eval.SetScratch(sc)
	return sc
}

// QueryPointWith is QueryWith for dataset member idx.
func (m *Miner) QueryPointWith(eval *od.Evaluator, idx int) (*QueryResult, error) {
	if idx < 0 || idx >= m.ds.N() {
		return nil, fmt.Errorf("core: point index %d out of range [0,%d)", idx, m.ds.N())
	}
	return m.QueryWith(eval, m.ds.Point(idx), idx)
}

// EvaluatorPool recycles worker evaluators across short-lived
// borrowers (e.g. HTTP requests), avoiding a per-request linear-scan
// searcher allocation. Backed by sync.Pool: idle evaluators may be
// dropped under memory pressure and rebuilt on demand.
type EvaluatorPool struct {
	m    *Miner
	pool sync.Pool

	gets   atomic.Int64
	builds atomic.Int64
}

// NewEvaluatorPool builds an evaluator pool for the Miner.
func (m *Miner) NewEvaluatorPool() *EvaluatorPool {
	return &EvaluatorPool{m: m}
}

// Get borrows an evaluator. The caller must return it with Put when
// done and must not use it after.
func (p *EvaluatorPool) Get() (*od.Evaluator, error) {
	p.gets.Add(1)
	if v := p.pool.Get(); v != nil {
		return v.(*od.Evaluator), nil
	}
	p.builds.Add(1)
	return p.m.NewWorkerEvaluator()
}

// Put returns a borrowed evaluator to the pool.
func (p *EvaluatorPool) Put(e *od.Evaluator) {
	if e != nil {
		p.pool.Put(e)
	}
}

// Stats reports (borrows, fresh constructions); the difference is the
// number of reuses.
func (p *EvaluatorPool) Stats() (gets, builds int64) {
	return p.gets.Load(), p.builds.Load()
}
