package evolutionary

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/subspace"
)

// Wildcard marks an unconstrained dimension in an Individual; a
// constrained dimension j stores rangeIndex+1 (1..φ), matching the
// "don't care" string encoding of Aggarwal & Yu.
const Wildcard uint8 = 0

// Individual encodes one k-dimensional grid cell as a length-d string
// over {Wildcard, 1..φ}.
type Individual []uint8

// Constrained returns the number of non-wildcard positions.
func (ind Individual) Constrained() int {
	c := 0
	for _, v := range ind {
		if v != Wildcard {
			c++
		}
	}
	return c
}

// Mask returns the subspace of constrained dimensions.
func (ind Individual) Mask() subspace.Mask {
	var m subspace.Mask
	for j, v := range ind {
		if v != Wildcard {
			m = m.With(j)
		}
	}
	return m
}

// Clone copies the individual.
func (ind Individual) Clone() Individual { return append(Individual(nil), ind...) }

// key renders a map key for deduplication/caching.
func (ind Individual) key() string { return string(ind) }

// Config parameterises the genetic search.
type Config struct {
	// Phi is the equi-depth grid resolution (default 10).
	Phi int
	// TargetDim is k: the number of constrained dimensions of every
	// individual (default 3, clamped to [1, d]).
	TargetDim int
	// Population is the GA population size p (default 50).
	Population int
	// Generations bounds the GA iterations (default 100).
	Generations int
	// MutationRate is the per-individual mutation probability
	// (default 0.25).
	MutationRate float64
	// KeepBest is how many distinct sparsest cells to report (default
	// 10).
	KeepBest int
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) normalize(d int) error {
	if c.Phi == 0 {
		c.Phi = 10
	}
	if c.TargetDim == 0 {
		c.TargetDim = 3
	}
	if c.TargetDim < 1 {
		return fmt.Errorf("evolutionary: TargetDim = %d", c.TargetDim)
	}
	if c.TargetDim > d {
		c.TargetDim = d
	}
	if c.Population == 0 {
		c.Population = 50
	}
	if c.Population < 4 {
		return fmt.Errorf("evolutionary: Population = %d too small", c.Population)
	}
	if c.Generations == 0 {
		c.Generations = 100
	}
	if c.Generations < 1 {
		return fmt.Errorf("evolutionary: Generations = %d", c.Generations)
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.25
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("evolutionary: MutationRate = %v", c.MutationRate)
	}
	if c.KeepBest == 0 {
		c.KeepBest = 10
	}
	if c.KeepBest < 1 {
		return fmt.Errorf("evolutionary: KeepBest = %d", c.KeepBest)
	}
	return nil
}

// Cell is one discovered sparse cell.
type Cell struct {
	Individual Individual
	Sparsity   float64
	Points     []int // dataset points inside the cell
}

// Result is the outcome of a Search.
type Result struct {
	// Cells are the KeepBest distinct sparsest NON-EMPTY cells found,
	// ascending by sparsity (most negative first). Empty cells guide
	// the GA (they are legitimate minima of the sparsity coefficient)
	// but hold no points and therefore identify no outliers, so they
	// are excluded from the report — matching Aggarwal & Yu's use of
	// the method, where the outliers are the points inside the
	// discovered sparse cells.
	Cells []Cell
	// Evaluations counts fitness (sparsity) computations, the GA's
	// work unit.
	Evaluations int64
	// Generations actually run.
	Generations int
}

// Searcher runs the Aggarwal–Yu genetic search over a Grid.
type Searcher struct {
	grid *Grid
	cfg  Config
	rng  *rand.Rand

	countCache  map[string]int
	evaluations int64
}

// NewSearcher validates the configuration and prepares a Searcher.
func NewSearcher(grid *Grid, cfg Config) (*Searcher, error) {
	if grid == nil {
		return nil, fmt.Errorf("evolutionary: nil grid")
	}
	if err := cfg.normalize(grid.Dim()); err != nil {
		return nil, err
	}
	if cfg.Phi != grid.Phi() {
		return nil, fmt.Errorf("evolutionary: config phi %d != grid phi %d", cfg.Phi, grid.Phi())
	}
	return &Searcher{
		grid:       grid,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		countCache: make(map[string]int),
	}, nil
}

// Search runs the GA and returns the sparsest non-empty cells.
func (s *Searcher) Search() *Result {
	pop := s.initialPopulation()
	best := newBestSet(s.cfg.KeepBest)
	var elite Individual
	eliteFit := math.Inf(1)
	consider := func(ind Individual) {
		fit := s.fitness(ind)
		if fit < eliteFit {
			elite, eliteFit = ind.Clone(), fit
		}
		if s.count(ind) > 0 {
			best.offer(ind, fit)
		}
	}
	for _, ind := range pop {
		consider(ind)
	}

	for gen := 0; gen < s.cfg.Generations; gen++ {
		next := make([]Individual, 0, len(pop))
		// Elitism: carry the overall best forward (possibly an empty
		// cell — it still pulls the population toward sparse regions).
		if elite != nil {
			next = append(next, elite.Clone())
		}
		for len(next) < len(pop) {
			a := s.selectParent(pop)
			b := s.selectParent(pop)
			child := s.crossover(a, b)
			if s.rng.Float64() < s.cfg.MutationRate {
				s.mutate(child)
			}
			next = append(next, child)
			consider(child)
		}
		pop = next
	}

	cells := make([]Cell, 0, s.cfg.KeepBest)
	for _, e := range best.sorted() {
		cells = append(cells, Cell{
			Individual: e.ind,
			Sparsity:   e.fit,
			Points:     s.grid.PointsIn(e.ind),
		})
	}
	return &Result{Cells: cells, Evaluations: s.evaluations, Generations: s.cfg.Generations}
}

// count is the (cached) cell occupancy — the expensive O(N·d) scan.
func (s *Searcher) count(ind Individual) int {
	k := ind.key()
	if v, ok := s.countCache[k]; ok {
		return v
	}
	s.evaluations++
	v := s.grid.Count(ind)
	s.countCache[k] = v
	return v
}

// fitness is the sparsity coefficient derived from the cached count;
// lower is better.
func (s *Searcher) fitness(ind Individual) float64 {
	return s.grid.SparsityFromCount(s.count(ind), ind.Constrained())
}

func (s *Searcher) initialPopulation() []Individual {
	pop := make([]Individual, s.cfg.Population)
	for i := range pop {
		pop[i] = s.randomIndividual()
	}
	return pop
}

func (s *Searcher) randomIndividual() Individual {
	d := s.grid.Dim()
	ind := make(Individual, d)
	perm := s.rng.Perm(d)
	for _, j := range perm[:s.cfg.TargetDim] {
		ind[j] = uint8(1 + s.rng.Intn(s.cfg.Phi))
	}
	return ind
}

// selectParent uses 2-way tournament selection on sparsity (lower
// wins) — a simple, rank-robust stand-in for the paper's
// probabilistic selection.
func (s *Searcher) selectParent(pop []Individual) Individual {
	a := pop[s.rng.Intn(len(pop))]
	b := pop[s.rng.Intn(len(pop))]
	if s.fitness(a) <= s.fitness(b) {
		return a
	}
	return b
}

// crossover recombines two parents position-wise and repairs the
// child to exactly TargetDim constrained dimensions (the paper's
// "optimized recombination" keeps solutions in the feasible set; we
// repair greedily at random).
func (s *Searcher) crossover(a, b Individual) Individual {
	d := s.grid.Dim()
	child := make(Individual, d)
	for j := 0; j < d; j++ {
		if s.rng.Float64() < 0.5 {
			child[j] = a[j]
		} else {
			child[j] = b[j]
		}
	}
	s.repair(child)
	return child
}

// repair enforces exactly TargetDim constrained positions.
func (s *Searcher) repair(ind Individual) {
	constrained := make([]int, 0, len(ind))
	free := make([]int, 0, len(ind))
	for j, v := range ind {
		if v != Wildcard {
			constrained = append(constrained, j)
		} else {
			free = append(free, j)
		}
	}
	for len(constrained) > s.cfg.TargetDim {
		i := s.rng.Intn(len(constrained))
		ind[constrained[i]] = Wildcard
		constrained[i] = constrained[len(constrained)-1]
		constrained = constrained[:len(constrained)-1]
	}
	for len(constrained) < s.cfg.TargetDim {
		i := s.rng.Intn(len(free))
		j := free[i]
		ind[j] = uint8(1 + s.rng.Intn(s.cfg.Phi))
		constrained = append(constrained, j)
		free[i] = free[len(free)-1]
		free = free[:len(free)-1]
	}
}

// mutate either re-draws the range of a constrained dimension or
// moves a constraint to a new dimension.
func (s *Searcher) mutate(ind Individual) {
	var constrained, free []int
	for j, v := range ind {
		if v != Wildcard {
			constrained = append(constrained, j)
		} else {
			free = append(free, j)
		}
	}
	if len(constrained) == 0 {
		return
	}
	if len(free) > 0 && s.rng.Float64() < 0.5 {
		// move a constraint
		from := constrained[s.rng.Intn(len(constrained))]
		to := free[s.rng.Intn(len(free))]
		ind[to] = ind[from]
		ind[from] = Wildcard
	} else {
		// re-draw a range
		j := constrained[s.rng.Intn(len(constrained))]
		ind[j] = uint8(1 + s.rng.Intn(s.cfg.Phi))
	}
}

// bestSet keeps the K distinct sparsest individuals seen.
type bestSet struct {
	k       int
	entries map[string]bestEntry
}

type bestEntry struct {
	ind Individual
	fit float64
}

func newBestSet(k int) *bestSet { return &bestSet{k: k, entries: make(map[string]bestEntry)} }

func (b *bestSet) offer(ind Individual, fit float64) {
	key := ind.key()
	if _, ok := b.entries[key]; ok {
		return
	}
	b.entries[key] = bestEntry{ind: ind.Clone(), fit: fit}
	if len(b.entries) > b.k {
		// Evict the worst; ties broken on the encoding so map
		// iteration order cannot leak into results.
		worstKey := ""
		worstFit := 0.0
		first := true
		for k, e := range b.entries {
			if first || e.fit > worstFit || (e.fit == worstFit && k > worstKey) {
				worstKey, worstFit, first = k, e.fit, false
			}
		}
		delete(b.entries, worstKey)
	}
}

func (b *bestSet) sorted() []bestEntry {
	out := make([]bestEntry, 0, len(b.entries))
	for _, e := range b.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].fit != out[j].fit {
			return out[i].fit < out[j].fit
		}
		return out[i].ind.key() < out[j].ind.key()
	})
	return out
}

// OutlyingSubspacesOf adapts the cell list to the "outlier → spaces"
// task: the dimension sets of sparse cells containing the given
// dataset point, deduplicated and canonically sorted. Only cells with
// negative sparsity (sparser than expectation) qualify.
func (r *Result) OutlyingSubspacesOf(g *Grid, pointIdx int) []subspace.Mask {
	seen := make(map[subspace.Mask]bool)
	for _, c := range r.Cells {
		if c.Sparsity >= 0 {
			continue
		}
		if g.ContainsPoint(c.Individual, pointIdx) {
			seen[c.Individual.Mask()] = true
		}
	}
	out := make([]subspace.Mask, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	subspace.SortMasks(out)
	return out
}

// OutlierIndices returns the union of points across all
// negative-sparsity cells, ascending — the method's classical output.
func (r *Result) OutlierIndices() []int {
	seen := make(map[int]bool)
	for _, c := range r.Cells {
		if c.Sparsity >= 0 {
			continue
		}
		for _, p := range c.Points {
			seen[p] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
