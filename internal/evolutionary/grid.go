// Package evolutionary implements the high-dimensional outlier
// detection method of Aggarwal & Yu (SIGMOD 2001), reference [1] of
// the HOS-Miner paper and its comparison baseline: each dimension is
// discretised into φ equi-depth ranges, a k-dimensional grid cell's
// abnormality is its sparsity coefficient, and a genetic algorithm
// searches the space of k-dimensional cells for the most negative
// coefficients. Points inside the discovered sparse cells are
// reported as outliers; for the "outlier → spaces" comparison, the
// dimension sets of sparse cells containing a query point act as its
// predicted outlying subspaces.
package evolutionary

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vector"
)

// Grid is the equi-depth discretisation of a dataset: per dimension,
// φ ranges each holding ≈ N/φ points.
type Grid struct {
	ds  *vector.Dataset
	phi int
	// boundaries[j] holds φ-1 ascending cut points for dimension j;
	// range r (0-based) is (boundaries[r-1], boundaries[r]].
	boundaries [][]float64
	// cellOf[i*d+j] is the precomputed range index of point i in dim
	// j.
	cellOf []uint8
}

// NewGrid builds the equi-depth grid with phi ranges per dimension
// (2 ≤ phi ≤ 255).
func NewGrid(ds *vector.Dataset, phi int) (*Grid, error) {
	if ds == nil {
		return nil, fmt.Errorf("evolutionary: nil dataset")
	}
	if phi < 2 || phi > 255 {
		return nil, fmt.Errorf("evolutionary: phi = %d out of [2,255]", phi)
	}
	n, d := ds.N(), ds.Dim()
	if n < phi {
		return nil, fmt.Errorf("evolutionary: dataset size %d below phi %d", n, phi)
	}
	g := &Grid{ds: ds, phi: phi, boundaries: make([][]float64, d), cellOf: make([]uint8, n*d)}
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			col[i] = ds.Point(i)[j]
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		cuts := make([]float64, phi-1)
		for r := 1; r < phi; r++ {
			idx := r * n / phi
			if idx >= n {
				idx = n - 1
			}
			cuts[r-1] = sorted[idx]
		}
		g.boundaries[j] = cuts
		for i := 0; i < n; i++ {
			g.cellOf[i*d+j] = g.rangeOf(j, col[i])
		}
	}
	return g, nil
}

// Phi returns the number of ranges per dimension.
func (g *Grid) Phi() int { return g.phi }

// Dim returns the dimensionality.
func (g *Grid) Dim() int { return g.ds.Dim() }

// N returns the dataset size.
func (g *Grid) N() int { return g.ds.N() }

// rangeOf maps a value to its 0-based range index in dimension j.
func (g *Grid) rangeOf(j int, v float64) uint8 {
	cuts := g.boundaries[j]
	// first cut > v ⇒ that range; binary search.
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}

// RangeOfPoint returns the precomputed range index of dataset point i
// in dimension j.
func (g *Grid) RangeOfPoint(i, j int) uint8 { return g.cellOf[i*g.ds.Dim()+j] }

// RangeOfValue maps an arbitrary value to its range in dimension j
// (for external query points).
func (g *Grid) RangeOfValue(j int, v float64) uint8 { return g.rangeOf(j, v) }

// Count returns n(C): the number of dataset points inside the cell
// described by the individual (see Individual); unconstrained
// dimensions match everything.
func (g *Grid) Count(ind Individual) int {
	n, d := g.ds.N(), g.ds.Dim()
	count := 0
	for i := 0; i < n; i++ {
		match := true
		base := i * d
		for j := 0; j < d && match; j++ {
			if ind[j] != Wildcard && g.cellOf[base+j] != ind[j]-1 {
				match = false
			}
		}
		if match {
			count++
		}
	}
	return count
}

// Sparsity returns the sparsity coefficient of the cell (Aggarwal &
// Yu):
//
//	S(C) = (n(C) − N·f^m) / sqrt(N·f^m·(1 − f^m)),  f = 1/φ
//
// where m is the number of constrained dimensions. Strongly negative
// values mark cells far emptier than independence predicts.
func (g *Grid) Sparsity(ind Individual) float64 {
	return g.SparsityFromCount(g.Count(ind), ind.Constrained())
}

// SparsityFromCount computes the coefficient from a known cell count
// and constrained-dimension count, avoiding a second dataset scan
// when the count is already cached.
func (g *Grid) SparsityFromCount(count, m int) float64 {
	if m == 0 {
		return 0
	}
	n := float64(g.ds.N())
	fk := math.Pow(1/float64(g.phi), float64(m))
	expected := n * fk
	denom := math.Sqrt(n * fk * (1 - fk))
	if denom == 0 {
		return 0
	}
	return (float64(count) - expected) / denom
}

// PointsIn returns the indices of dataset points inside the cell,
// ascending.
func (g *Grid) PointsIn(ind Individual) []int {
	n, d := g.ds.N(), g.ds.Dim()
	var out []int
	for i := 0; i < n; i++ {
		match := true
		base := i * d
		for j := 0; j < d && match; j++ {
			if ind[j] != Wildcard && g.cellOf[base+j] != ind[j]-1 {
				match = false
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

// ContainsPoint reports whether dataset point i lies in the cell.
func (g *Grid) ContainsPoint(ind Individual, i int) bool {
	d := g.ds.Dim()
	base := i * d
	for j := 0; j < d; j++ {
		if ind[j] != Wildcard && g.cellOf[base+j] != ind[j]-1 {
			return false
		}
	}
	return true
}

// ContainsValue reports whether an arbitrary point lies in the cell.
func (g *Grid) ContainsValue(ind Individual, p []float64) bool {
	for j := 0; j < g.ds.Dim(); j++ {
		if ind[j] != Wildcard && g.rangeOf(j, p[j]) != ind[j]-1 {
			return false
		}
	}
	return true
}
