package evolutionary

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/subspace"
	"repro/internal/vector"
)

func uniformDS(t testing.TB, seed int64, n, d int) *vector.Dataset {
	t.Helper()
	ds, err := datagen.GenerateUniform(n, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewGridValidation(t *testing.T) {
	ds := uniformDS(t, 1, 100, 3)
	if _, err := NewGrid(nil, 10); err == nil {
		t.Fatal("nil ds accepted")
	}
	if _, err := NewGrid(ds, 1); err == nil {
		t.Fatal("phi=1 accepted")
	}
	if _, err := NewGrid(ds, 256); err == nil {
		t.Fatal("phi=256 accepted")
	}
	small := uniformDS(t, 1, 5, 2)
	if _, err := NewGrid(small, 10); err == nil {
		t.Fatal("n < phi accepted")
	}
}

func TestGridEquiDepth(t *testing.T) {
	// With n divisible by phi, each 1-dim range holds exactly n/phi
	// points (distinct values almost surely under uniform draws).
	ds := uniformDS(t, 7, 500, 2)
	g, err := NewGrid(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		counts := make([]int, 10)
		for i := 0; i < 500; i++ {
			counts[g.RangeOfPoint(i, j)]++
		}
		for r, c := range counts {
			if c < 40 || c > 60 {
				t.Fatalf("dim %d range %d holds %d points, want ≈50", j, r, c)
			}
		}
	}
}

func TestGridRangeOfValueConsistent(t *testing.T) {
	ds := uniformDS(t, 3, 200, 3)
	g, _ := NewGrid(ds, 8)
	for i := 0; i < 200; i++ {
		for j := 0; j < 3; j++ {
			if g.RangeOfValue(j, ds.Point(i)[j]) != g.RangeOfPoint(i, j) {
				t.Fatalf("point %d dim %d: value/point range mismatch", i, j)
			}
		}
	}
}

func TestGridCountMatchesPointsIn(t *testing.T) {
	ds := uniformDS(t, 5, 300, 4)
	g, _ := NewGrid(ds, 5)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		ind := make(Individual, 4)
		for c := 0; c < 2; c++ {
			ind[rng.Intn(4)] = uint8(1 + rng.Intn(5))
		}
		pts := g.PointsIn(ind)
		if len(pts) != g.Count(ind) {
			t.Fatalf("Count %d != len(PointsIn) %d", g.Count(ind), len(pts))
		}
		for _, p := range pts {
			if !g.ContainsPoint(ind, p) {
				t.Fatalf("PointsIn returned non-member %d", p)
			}
			if !g.ContainsValue(ind, ds.Point(p)) {
				t.Fatalf("ContainsValue disagrees for %d", p)
			}
		}
	}
}

func TestSparsityUniformNearZero(t *testing.T) {
	// Under uniform data, 1-dim equi-depth cells hold ≈ expected
	// count, so sparsity ≈ 0.
	ds := uniformDS(t, 11, 1000, 2)
	g, _ := NewGrid(ds, 10)
	ind := Individual{3, Wildcard}
	s := g.Sparsity(ind)
	if math.Abs(s) > 1.5 {
		t.Fatalf("uniform 1-dim sparsity = %v, want ≈ 0", s)
	}
	// Wildcard-only individual is defined as 0.
	if g.Sparsity(Individual{Wildcard, Wildcard}) != 0 {
		t.Fatal("all-wildcard sparsity must be 0")
	}
}

func TestSparsityEmptyCellNegative(t *testing.T) {
	// Clustered data leaves most of the grid empty: an empty 2-dim
	// cell must have negative sparsity.
	ds, _, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{N: 400, D: 3, Clusters: 2, NumOutliers: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGrid(ds, 10)
	// find an empty cell
	found := false
	for a := uint8(1); a <= 10 && !found; a++ {
		for b := uint8(1); b <= 10 && !found; b++ {
			ind := Individual{a, b, Wildcard}
			if g.Count(ind) == 0 {
				if s := g.Sparsity(ind); s >= 0 {
					t.Fatalf("empty cell sparsity = %v", s)
				}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no empty 2-dim cell in this draw")
	}
}

func TestIndividualHelpers(t *testing.T) {
	ind := Individual{Wildcard, 3, Wildcard, 7}
	if ind.Constrained() != 2 {
		t.Fatalf("constrained = %d", ind.Constrained())
	}
	if ind.Mask() != subspace.New(1, 3) {
		t.Fatalf("mask = %v", ind.Mask())
	}
	c := ind.Clone()
	c[1] = 9
	if ind[1] != 3 {
		t.Fatal("clone aliases")
	}
}

func TestNewSearcherValidation(t *testing.T) {
	ds := uniformDS(t, 1, 100, 4)
	g, _ := NewGrid(ds, 10)
	if _, err := NewSearcher(nil, Config{}); err == nil {
		t.Fatal("nil grid accepted")
	}
	if _, err := NewSearcher(g, Config{Phi: 5}); err == nil {
		t.Fatal("phi mismatch accepted")
	}
	if _, err := NewSearcher(g, Config{Phi: 10, Population: 2}); err == nil {
		t.Fatal("tiny population accepted")
	}
	if _, err := NewSearcher(g, Config{Phi: 10, MutationRate: 1.5}); err == nil {
		t.Fatal("mutation > 1 accepted")
	}
	if _, err := NewSearcher(g, Config{Phi: 10}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestSearchFindsSparseCellsWithPlantedOutlier(t *testing.T) {
	// Planted outliers sit in grid cells of their own; the GA should
	// surface cells that contain them.
	ds, truth, err := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 300, D: 5, NumOutliers: 3, OutlierSubspaceDim: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(g, Config{Phi: 8, TargetDim: 2, Population: 40, Generations: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Search()
	if len(res.Cells) == 0 || res.Evaluations == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	// Cells sorted ascending by sparsity.
	for i := 1; i < len(res.Cells); i++ {
		if res.Cells[i-1].Sparsity > res.Cells[i].Sparsity {
			t.Fatal("cells not sorted by sparsity")
		}
	}
	// The sparsest cells must be genuinely sparse.
	if res.Cells[0].Sparsity >= 0 {
		t.Fatalf("best sparsity = %v, want < 0", res.Cells[0].Sparsity)
	}
	// At least one planted outlier should appear among the outlier
	// indices (the GA is heuristic; full recall is not guaranteed,
	// but on this easy instance complete misses indicate breakage).
	outs := res.OutlierIndices()
	found := false
	for _, idx := range truth.Indices() {
		for _, o := range outs {
			if o == idx {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no planted outlier among %d detected outliers", len(outs))
	}
}

func TestSearchDeterminism(t *testing.T) {
	ds := uniformDS(t, 17, 200, 4)
	g, _ := NewGrid(ds, 6)
	run := func() []Cell {
		s, err := NewSearcher(g, Config{Phi: 6, TargetDim: 2, Population: 20, Generations: 20, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return s.Search().Cells
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Sparsity != b[i].Sparsity || a[i].Individual.key() != b[i].Individual.key() {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestSearchRespectsTargetDim(t *testing.T) {
	ds := uniformDS(t, 19, 150, 6)
	g, _ := NewGrid(ds, 5)
	s, _ := NewSearcher(g, Config{Phi: 5, TargetDim: 3, Population: 16, Generations: 15, Seed: 3})
	res := s.Search()
	for _, c := range res.Cells {
		if c.Individual.Constrained() != 3 {
			t.Fatalf("cell with %d constrained dims, want 3", c.Individual.Constrained())
		}
	}
}

func TestOutlyingSubspacesOfAdapter(t *testing.T) {
	ds, truth, _ := datagen.GenerateSynthetic(datagen.SyntheticConfig{
		N: 300, D: 4, NumOutliers: 1, OutlierSubspaceDim: 2, Seed: 23,
	})
	g, _ := NewGrid(ds, 8)
	s, _ := NewSearcher(g, Config{Phi: 8, TargetDim: 2, Population: 40, Generations: 60, Seed: 5})
	res := s.Search()
	subs := res.OutlyingSubspacesOf(g, truth.Outliers[0].Index)
	for i := 1; i < len(subs); i++ {
		prev, cur := subs[i-1], subs[i]
		if prev.Card() > cur.Card() || (prev.Card() == cur.Card() && prev >= cur) {
			t.Fatal("adapter output not canonically sorted")
		}
	}
	// Subspaces must all have the GA's target cardinality.
	for _, m := range subs {
		if m.Card() != 2 {
			t.Fatalf("subspace %v has card %d", m, m.Card())
		}
	}
}
