package evolutionary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
)

// TestCrossoverRepairInvariant (property): children of crossover
// always carry exactly TargetDim constrained dimensions with range
// values in [1, phi], regardless of parent composition.
func TestCrossoverRepairInvariant(t *testing.T) {
	ds, err := datagen.GenerateUniform(60, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewGrid(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		s, err := NewSearcher(grid, Config{Phi: 6, TargetDim: 3, Population: 8, Generations: 1, Seed: seed})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			a := s.randomIndividual()
			b := s.randomIndividual()
			// Corrupt one parent to over/under-constrained shapes to
			// stress repair.
			if rng.Intn(2) == 0 {
				for j := range a {
					a[j] = uint8(1 + rng.Intn(6))
				}
			} else {
				for j := range b {
					b[j] = Wildcard
				}
			}
			child := s.crossover(a, b)
			if child.Constrained() != 3 {
				return false
			}
			for _, v := range child {
				if v != Wildcard && (v < 1 || v > 6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMutatePreservesCardinality (property): mutation never changes
// the number of constrained dimensions.
func TestMutatePreservesCardinality(t *testing.T) {
	ds, _ := datagen.GenerateUniform(60, 10, 5)
	grid, _ := NewGrid(ds, 5)
	f := func(seed int64) bool {
		s, err := NewSearcher(grid, Config{Phi: 5, TargetDim: 4, Population: 8, Generations: 1, Seed: seed})
		if err != nil {
			return false
		}
		ind := s.randomIndividual()
		for trial := 0; trial < 30; trial++ {
			s.mutate(ind)
			if ind.Constrained() != 4 {
				return false
			}
			for _, v := range ind {
				if v != Wildcard && (v < 1 || v > 5) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSparsityMonotoneInCount (property): for a fixed constrained
// cardinality, the sparsity coefficient is strictly increasing in the
// cell count — the GA's fitness ordering matches "emptier is
// sparser".
func TestSparsityMonotoneInCount(t *testing.T) {
	ds, _ := datagen.GenerateUniform(500, 4, 7)
	grid, _ := NewGrid(ds, 10)
	f := func(c1Raw, c2Raw uint16, mRaw uint8) bool {
		m := 1 + int(mRaw%4)
		c1, c2 := int(c1Raw%500), int(c2Raw%500)
		s1 := grid.SparsityFromCount(c1, m)
		s2 := grid.SparsityFromCount(c2, m)
		switch {
		case c1 < c2:
			return s1 < s2
		case c1 > c2:
			return s1 > s2
		default:
			return s1 == s2
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBestSetKeepsKSparsest: offering more individuals than capacity
// retains exactly the k smallest fitness values.
func TestBestSetKeepsKSparsest(t *testing.T) {
	b := newBestSet(3)
	fits := []float64{5, -2, 0, -7, 3, -2.5, 9}
	for i, fit := range fits {
		ind := Individual{uint8(i + 1), Wildcard}
		b.offer(ind, fit)
	}
	got := b.sorted()
	if len(got) != 3 {
		t.Fatalf("kept %d", len(got))
	}
	want := []float64{-7, -2.5, -2}
	for i := range got {
		if got[i].fit != want[i] {
			t.Fatalf("kept fits %v, want %v", got, want)
		}
	}
	// Duplicate offers are ignored.
	b.offer(Individual{4, Wildcard}, -7)
	if len(b.sorted()) != 3 {
		t.Fatal("duplicate changed the set")
	}
}
