// Package dataio loads and saves datasets as CSV so the CLIs can
// exchange data with external tools. The format is plain numeric CSV
// with an optional header row of column names.
package dataio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"repro/internal/vector"
)

// ErrNonFinite rejects datasets containing NaN or ±Inf coordinates at
// write time. Such values have no faithful CSV round-trip: Go formats
// them as "NaN"/"+Inf", which a later ReadCSV either rejects outright
// (so the written file is unloadable) or — for a first row — silently
// misclassifies as a header, shearing a data row off the dataset.
// Failing the write is the only honest option.
var ErrNonFinite = errors.New("dataio: non-finite value")

// WriteCSV writes the dataset to w. When header is true, column names
// (or dimN defaults) form the first row. Datasets with NaN or ±Inf
// coordinates fail with an error wrapping ErrNonFinite before any
// output is produced.
func WriteCSV(w io.Writer, ds *vector.Dataset, header bool) error {
	if ds == nil {
		return fmt.Errorf("dataio: nil dataset")
	}
	// Vet the whole dataset before emitting a byte: a partial file
	// that fails mid-write is worse than no file.
	for i := 0; i < ds.N(); i++ {
		for j, v := range ds.Point(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w %v at row %d col %d", ErrNonFinite, v, i+1, j+1)
			}
		}
	}
	cw := csv.NewWriter(w)
	if header {
		cols := make([]string, ds.Dim())
		for j := range cols {
			cols[j] = ds.ColumnName(j)
		}
		if err := cw.Write(cols); err != nil {
			return err
		}
	}
	row := make([]string, ds.Dim())
	for i := 0; i < ds.N(); i++ {
		p := ds.Point(i)
		for j, v := range p {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a numeric CSV into a Dataset. A first row whose
// cells are not all numeric is treated as a header and becomes the
// column names.
func ReadCSV(r io.Reader) (*vector.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate shape ourselves for better errors
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataio: empty CSV")
	}

	var cols []string
	start := 0
	if !allNumeric(records[0]) {
		cols = records[0]
		start = 1
	}
	if start >= len(records) {
		return nil, fmt.Errorf("dataio: CSV has a header but no data rows")
	}
	d := len(records[start])
	if d == 0 {
		return nil, fmt.Errorf("dataio: row %d has no fields", start+1)
	}
	rows := make([][]float64, 0, len(records)-start)
	for i := start; i < len(records); i++ {
		rec := records[i]
		if len(rec) != d {
			return nil, fmt.Errorf("dataio: row %d has %d fields, want %d", i+1, len(rec), d)
		}
		row := make([]float64, d)
		for j, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: row %d col %d: %w", i+1, j+1, err)
			}
			// ParseFloat accepts "NaN"/"Inf" spellings; mining over them
			// is undefined (every distance comparison involving NaN is
			// false), so the read side enforces the same finiteness
			// contract the write side does.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w %q at row %d col %d", ErrNonFinite, cell, i+1, j+1)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	ds, err := vector.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	if cols != nil {
		if err := ds.SetColumns(cols); err != nil {
			return nil, fmt.Errorf("dataio: %w", err)
		}
	}
	return ds, nil
}

// SaveFile writes the dataset to path (with header).
func SaveFile(path string, ds *vector.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteCSV(f, ds, true); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from a CSV file.
func LoadFile(path string) (*vector.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

func allNumeric(cells []string) bool {
	for _, c := range cells {
		if _, err := strconv.ParseFloat(c, 64); err != nil {
			return false
		}
	}
	return len(cells) > 0
}
