package dataio

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/vector"
)

func TestRoundTripWithHeader(t *testing.T) {
	ds, _ := vector.FromRows([][]float64{{1.5, -2}, {0, 1e-9}, {math.MaxFloat64, 3}})
	if err := ds.SetColumns([]string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.Dim() != 2 {
		t.Fatalf("shape (%d,%d)", back.N(), back.Dim())
	}
	if back.ColumnName(0) != "alpha" || back.ColumnName(1) != "beta" {
		t.Fatalf("columns = %v", back.Columns())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if back.Point(i)[j] != ds.Point(i)[j] {
				t.Fatalf("value (%d,%d): %v != %v", i, j, back.Point(i)[j], ds.Point(i)[j])
			}
		}
	}
}

func TestRoundTripNoHeader(t *testing.T) {
	ds, _ := vector.FromRows([][]float64{{1, 2}, {3, 4}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, false); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Columns() != nil {
		t.Fatalf("shape/cols: %d %v", back.N(), back.Columns())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "a,b\n",
		"ragged":       "1,2\n3\n",
		"non-numeric":  "1,2\n3,x\n",
		"ragged first": "a,b\n1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadCSVHeaderDetection(t *testing.T) {
	// All-numeric first row is data, not header.
	ds, err := ReadCSV(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Fatalf("numeric first row should be data: N = %d", ds.N())
	}
}

func TestWriteCSVNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil, true); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	ds, _ := vector.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err := SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Dim() != 3 {
		t.Fatalf("shape (%d,%d)", back.N(), back.Dim())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestWriteCSVRejectsNonFinite is the regression test for the
// NaN/±Inf round-trip hole: such values used to serialize into cells
// that either failed a later ReadCSV outright or silently passed
// allNumeric and sheared rows into headers. The write now fails with
// ErrNonFinite before emitting anything, and the read side enforces
// the same contract on external files.
func TestWriteCSVRejectsNonFinite(t *testing.T) {
	cases := map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	}
	for name, v := range cases {
		ds, _ := vector.FromRows([][]float64{{1, 2}, {v, 4}})
		var buf bytes.Buffer
		err := WriteCSV(&buf, ds, true)
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: err = %v, want ErrNonFinite", name, err)
		}
		if buf.Len() != 0 {
			t.Errorf("%s: partial output emitted (%d bytes)", name, buf.Len())
		}
	}
	// Read side: spelled-out non-finite cells are rejected, not parsed.
	for _, in := range []string{"1,2\nNaN,4\n", "1,2\n+Inf,4\n", "a,b\n1,-Inf\n"} {
		if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrNonFinite) {
			t.Errorf("ReadCSV(%q): err = %v, want ErrNonFinite", in, err)
		}
	}
}

// TestSnapshotFileRoundTrip covers the dataio snapshot wrappers: the
// format details are internal/snapshot's, the path-level Save/Load
// belongs beside SaveFile/LoadFile.
func TestSnapshotFileRoundTrip(t *testing.T) {
	ds, _ := vector.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err := ds.SetColumns([]string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	s, err := snapshot.FromDataset("pair", snapshot.Provenance{Source: "unit"}, ds)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pair.snap")
	if err := SaveSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "pair" || back.Dataset.N() != 3 || back.Dataset.ColumnName(1) != "y" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// A CSV handed to LoadSnapshot is refused with the typed error.
	csvPath := filepath.Join(t.TempDir(), "data.csv")
	if err := SaveFile(csvPath, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(csvPath); !errors.Is(err, snapshot.ErrSnapshot) {
		t.Fatalf("LoadSnapshot(csv): err = %v, want a typed snapshot error", err)
	}
}
