package dataio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vector"
)

func TestRoundTripWithHeader(t *testing.T) {
	ds, _ := vector.FromRows([][]float64{{1.5, -2}, {0, 1e-9}, {math.MaxFloat64, 3}})
	if err := ds.SetColumns([]string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.Dim() != 2 {
		t.Fatalf("shape (%d,%d)", back.N(), back.Dim())
	}
	if back.ColumnName(0) != "alpha" || back.ColumnName(1) != "beta" {
		t.Fatalf("columns = %v", back.Columns())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if back.Point(i)[j] != ds.Point(i)[j] {
				t.Fatalf("value (%d,%d): %v != %v", i, j, back.Point(i)[j], ds.Point(i)[j])
			}
		}
	}
}

func TestRoundTripNoHeader(t *testing.T) {
	ds, _ := vector.FromRows([][]float64{{1, 2}, {3, 4}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, false); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Columns() != nil {
		t.Fatalf("shape/cols: %d %v", back.N(), back.Columns())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "a,b\n",
		"ragged":       "1,2\n3\n",
		"non-numeric":  "1,2\n3,x\n",
		"ragged first": "a,b\n1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadCSVHeaderDetection(t *testing.T) {
	// All-numeric first row is data, not header.
	ds, err := ReadCSV(strings.NewReader("1,2\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Fatalf("numeric first row should be data: N = %d", ds.N())
	}
}

func TestWriteCSVNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil, true); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	ds, _ := vector.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err := SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Dim() != 3 {
		t.Fatalf("shape (%d,%d)", back.N(), back.Dim())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
