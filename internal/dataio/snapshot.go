package dataio

import (
	"hash/crc32"
	"io"
	"os"

	"repro/internal/snapshot"
)

// Snapshot I/O lives beside the CSV codecs so callers have one package
// to reach for when moving datasets on and off disk: CSV for plain
// data interchange with external tools, snapshots for the full
// preprocessed serving state (dataset + provenance + miner config +
// threshold/priors + serialized index). The format itself — layout,
// checksums, typed errors — is internal/snapshot's.

// SaveSnapshot writes s to path atomically. The conventional file
// name is <name>.snap.
func SaveSnapshot(path string, s *snapshot.Snapshot) error {
	return snapshot.SaveFile(path, s)
}

// LoadSnapshot reads a snapshot file. Corrupt or truncated files fail
// with errors matching snapshot.ErrSnapshot, never a panic.
func LoadSnapshot(path string) (*snapshot.Snapshot, error) {
	return snapshot.LoadFile(path)
}

// FileCRC32 returns the CRC-32 (IEEE) of the file's bytes, streamed —
// the binding key a WAL header (wal.Header.BaseCRC) uses to tie a
// delta log to the exact base snapshot it extends.
func FileCRC32(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}
