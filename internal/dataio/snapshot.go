package dataio

import (
	"repro/internal/snapshot"
)

// Snapshot I/O lives beside the CSV codecs so callers have one package
// to reach for when moving datasets on and off disk: CSV for plain
// data interchange with external tools, snapshots for the full
// preprocessed serving state (dataset + provenance + miner config +
// threshold/priors + serialized index). The format itself — layout,
// checksums, typed errors — is internal/snapshot's.

// SaveSnapshot writes s to path atomically. The conventional file
// name is <name>.snap.
func SaveSnapshot(path string, s *snapshot.Snapshot) error {
	return snapshot.SaveFile(path, s)
}

// LoadSnapshot reads a snapshot file. Corrupt or truncated files fail
// with errors matching snapshot.ErrSnapshot, never a panic.
func LoadSnapshot(path string) (*snapshot.Snapshot, error) {
	return snapshot.LoadFile(path)
}
